# Convenience entry points; see PERFORMANCE.md for the benchmark workflow.

PYTEST := PYTHONPATH=src python -m pytest

.PHONY: test bench bench-update bench-full bench-smoke sweep-quick determinism \
	scale-smoke async-smoke chaos-smoke compression-smoke llm-smoke \
	examples-smoke docs-check

## tier-1 test suite
test:
	$(PYTEST) -x -q

## bit-reproducibility gate: trainer/determinism tests, then the fig11 smoke
## twice with the reports diffed (they must be byte-identical)
determinism:
	$(PYTEST) tests/test_parallel_trainer.py tests/test_determinism.py -q
	PYTHONPATH=src python -m repro.experiments.runner --quick --jobs 1 fig11 \
		--output /tmp/fig11_run_a.txt > /dev/null
	PYTHONPATH=src python -m repro.experiments.runner --quick --jobs 1 fig11 \
		--output /tmp/fig11_run_b.txt > /dev/null
	diff /tmp/fig11_run_a.txt /tmp/fig11_run_b.txt
	@echo "fig11 report byte-identical across consecutive runs"

## quick figure sweeps through the parallel runner (one worker per core)
sweep-quick:
	PYTHONPATH=src python -m repro.experiments.runner --quick fig5 fig8 fidelity

## 1k-node fluid what-if sweep inside a 10 s wall-clock budget (CI smoke)
scale-smoke:
	timeout 10 env PYTHONPATH=src python -m repro.experiments.runner \
		--quick --jobs 1 fig_scale > /dev/null
	@echo "1k-node fluid sweep finished inside the 10s budget"

## beyond-BSP smoke: policy tests, then the fig_async sweep with its two
## structural invariants checked (monotone staleness frontier, 1/H traffic)
async-smoke:
	$(PYTEST) tests/test_policy.py -q
	PYTHONPATH=src python -m repro.experiments.runner --quick --jobs 1 \
		fig_async > /tmp/fig_async_smoke.txt
	@grep -q "Beyond-BSP frontier" /tmp/fig_async_smoke.txt
	@echo "fig_async smoke report rendered"

## fault-tolerance smoke: chaos + checkpoint round-trip tests, then the
## fig_faults sweep (monotone cost-vs-MTBF frontier, straggler masking)
chaos-smoke:
	$(PYTEST) tests/test_chaos.py tests/test_faults.py \
		tests/test_substrate_checkpoint.py -q
	PYTHONPATH=src python -m repro.experiments.runner --quick --jobs 1 \
		fig_faults > /tmp/fig_faults_smoke.txt
	@grep -q "Fault frontier" /tmp/fig_faults_smoke.txt
	@echo "fig_faults smoke report rendered"

## compression smoke: wire/compressor/bucketing tests, then the
## fig_compression sweep with its headline crossover line checked
compression-smoke:
	$(PYTEST) tests/test_compression.py tests/test_bucketing.py \
		tests/test_fig_compression.py -q
	PYTHONPATH=src python -m repro.experiments.runner --quick --jobs 1 \
		fig_compression > /tmp/fig_compression_smoke.txt
	@grep -q "Compression zoo" /tmp/fig_compression_smoke.txt
	@grep -q "crossover at" /tmp/fig_compression_smoke.txt
	@echo "fig_compression smoke report rendered"

## transformer smoke: layer gradchecks + fig_llm tests, then the quick
## fig_llm sweep with its headline lines checked (SFB vocab head, crossover)
llm-smoke:
	$(PYTEST) tests/test_layers.py tests/test_fig_llm.py -q
	PYTHONPATH=src python -m repro.experiments.runner --quick --jobs 1 \
		fig_llm > /tmp/fig_llm_smoke.txt
	@grep -q "Transformer/LLM sweep" /tmp/fig_llm_smoke.txt
	@grep -q "vocab head lm_head" /tmp/fig_llm_smoke.txt
	@echo "fig_llm smoke report rendered"

## run all four examples/ scripts at reduced sizes (CI smoke)
examples-smoke:
	PYTHONPATH=src python examples/quickstart.py
	PYTHONPATH=src python examples/bandwidth_planning.py --nodes 8 \
		--bandwidths 10 40
	PYTHONPATH=src python examples/cluster_scaling_study.py --nodes 1 2 4
	PYTHONPATH=src python examples/distributed_cifar_training.py \
		--iterations 10 --workers 2

## intra-repo markdown links + public-API doctests
docs-check:
	python tools/check_links.py README.md PERFORMANCE.md ROADMAP.md \
		CHANGES.md docs/architecture.md docs/backends.md
	PYTHONPATH=src python -m doctest src/repro/config.py src/repro/sweep.py \
		src/repro/comm/backend.py
	@echo "docs check passed"

## every benchmark executed once as a plain test, no timing gates (CI smoke)
bench-smoke:
	$(PYTEST) benchmarks/ -q --benchmark-disable \
		-o python_files='test_*.py bench_*.py'

## tier-1 tests + micro-benchmarks gated against benchmarks/baseline.json
bench:
	$(PYTEST) -x -q
	$(PYTEST) benchmarks/bench_micro.py benchmarks/bench_flow.py \
		benchmarks/bench_fluid.py benchmarks/bench_compression.py \
		benchmarks/bench_transformer.py \
		--benchmark-only -q --benchmark-json=bench_results.json
	python benchmarks/compare.py bench_results.json

## refresh benchmarks/baseline.json from a fresh run (after intentional changes)
bench-update:
	$(PYTEST) benchmarks/bench_micro.py benchmarks/bench_flow.py \
		benchmarks/bench_fluid.py benchmarks/bench_compression.py \
		benchmarks/bench_transformer.py \
		--benchmark-only -q --benchmark-json=bench_results.json
	python benchmarks/compare.py bench_results.json --update

## every benchmark suite (figure/table regeneration included; slow)
bench-full:
	$(PYTEST) benchmarks/ --benchmark-only -q \
		-o python_files='test_*.py bench_*.py'
