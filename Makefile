# Convenience entry points; see PERFORMANCE.md for the benchmark workflow.

PYTEST := PYTHONPATH=src python -m pytest

.PHONY: test bench bench-update bench-full

## tier-1 test suite
test:
	$(PYTEST) -x -q

## tier-1 tests + micro-benchmarks gated against benchmarks/baseline.json
bench:
	$(PYTEST) -x -q
	$(PYTEST) benchmarks/bench_micro.py --benchmark-only -q \
		--benchmark-json=bench_results.json
	python benchmarks/compare.py bench_results.json

## refresh benchmarks/baseline.json from a fresh run (after intentional changes)
bench-update:
	$(PYTEST) benchmarks/bench_micro.py --benchmark-only -q \
		--benchmark-json=bench_results.json
	python benchmarks/compare.py bench_results.json --update

## every benchmark suite (figure/table regeneration included; slow)
bench-full:
	$(PYTEST) benchmarks/ --benchmark-only -q
