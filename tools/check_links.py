#!/usr/bin/env python
"""Check that intra-repo references in markdown files resolve.

Two kinds of references are validated:

* markdown links ``[text](target)`` whose target is not an external URL
  or a pure ``#anchor`` -- the target path (anchor stripped) must exist
  relative to the referencing file (or the repo root);
* backticked file paths like ``src/repro/sim/core.py`` -- any backticked
  token that contains a ``/`` and ends in a known source extension must
  exist relative to the repo root (or under ``src/`` / ``src/repro/``,
  so package-relative spellings like ``repro/comm/ring.py`` and
  ``comm/ring.py`` keep working).

Usage::

    python tools/check_links.py README.md PERFORMANCE.md docs/*.md

Exits non-zero and lists every broken reference if any fail.
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent

#: [text](target) -- excluding images handled identically anyway.
LINK_RE = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")

#: `path/to/file.ext` tokens inside backticks.
BACKTICK_RE = re.compile(r"`([^`\s]+/[^`\s]+\.(?:py|md|json|yml|yaml|txt|toml))`")

EXTERNAL_PREFIXES = ("http://", "https://", "mailto:", "ftp://")


def candidate_paths(base: Path, target: str):
    """Places a relative reference may legitimately point to."""
    yield (base.parent / target).resolve()
    yield (REPO_ROOT / target).resolve()
    yield (REPO_ROOT / "src" / target).resolve()
    yield (REPO_ROOT / "src" / "repro" / target).resolve()


def check_file(path: Path):
    """Yield (line_number, reference) for every broken reference."""
    text = path.read_text(encoding="utf-8")
    for line_number, line in enumerate(text.splitlines(), start=1):
        references = []
        for match in LINK_RE.finditer(line):
            target = match.group(1)
            if target.startswith(EXTERNAL_PREFIXES) or target.startswith("#"):
                continue
            references.append(target.split("#", 1)[0])
        references.extend(BACKTICK_RE.findall(line))
        for target in references:
            if not target:
                continue
            if not any(p.exists() for p in candidate_paths(path, target)):
                yield line_number, target


def main(argv):
    if not argv:
        print("usage: check_links.py FILE.md [FILE.md ...]", file=sys.stderr)
        return 2
    broken = 0
    checked = 0
    for name in argv:
        path = Path(name)
        if not path.exists():
            print(f"BROKEN {name}: file itself does not exist")
            broken += 1
            continue
        checked += 1
        for line_number, target in check_file(path):
            print(f"BROKEN {name}:{line_number}: {target}")
            broken += 1
    if broken:
        print(f"{broken} broken reference(s)")
        return 1
    print(f"all intra-repo references resolve ({checked} files)")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
