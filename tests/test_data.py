"""Tests for the synthetic datasets, partitioning and samplers."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.data import (
    BatchSampler,
    SyntheticImageDataset,
    make_cifar10_like,
    make_linearly_separable,
    partition_indices,
    shard_dataset,
)
from repro.exceptions import ConfigurationError


class TestSyntheticImageDataset:
    def test_shapes_match_spec(self):
        dataset = make_cifar10_like(num_train=100, num_test=20, image_size=16)
        assert dataset.train_images.shape == (100, 3, 16, 16)
        assert dataset.test_images.shape == (20, 3, 16, 16)
        assert dataset.num_classes == 10

    def test_deterministic_given_seed(self):
        a = make_cifar10_like(num_train=50, seed=3)
        b = make_cifar10_like(num_train=50, seed=3)
        np.testing.assert_array_equal(a.train_images, b.train_images)
        np.testing.assert_array_equal(a.train_labels, b.train_labels)

    def test_different_seeds_differ(self):
        a = make_cifar10_like(num_train=50, seed=3)
        b = make_cifar10_like(num_train=50, seed=4)
        assert not np.array_equal(a.train_images, b.train_images)

    def test_labels_within_range(self):
        dataset = make_cifar10_like(num_train=200)
        assert dataset.train_labels.min() >= 0
        assert dataset.train_labels.max() < 10

    def test_class_signal_present(self):
        """Same-class images are closer to their template than other classes'."""
        dataset = make_cifar10_like(num_train=500, noise_scale=0.5, seed=0)
        images, labels = dataset.train_images, dataset.train_labels
        class0 = images[labels == 0].mean(axis=0)
        class1 = images[labels == 1].mean(axis=0)
        sample0 = images[labels == 0][0]
        assert np.linalg.norm(sample0 - class0) < np.linalg.norm(sample0 - class1)

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ConfigurationError):
            SyntheticImageDataset("bad", num_train=0, num_test=0,
                                  image_shape=(3, 8, 8), num_classes=10)
        with pytest.raises(ConfigurationError):
            SyntheticImageDataset("bad", num_train=10, num_test=0,
                                  image_shape=(3, 8, 8), num_classes=1)

    def test_train_batch_gathers_indices(self):
        dataset = make_cifar10_like(num_train=50)
        images, labels = dataset.train_batch(np.array([3, 7]))
        np.testing.assert_array_equal(images[0], dataset.train_images[3])
        assert labels[1] == dataset.train_labels[7]

    def test_linearly_separable_learnable_signal(self):
        train_x, train_y, _, _ = make_linearly_separable(num_train=500, margin=4.0)
        centroid0 = train_x[train_y == 0].mean(axis=0)
        centroid1 = train_x[train_y == 1].mean(axis=0)
        assert np.linalg.norm(centroid0 - centroid1) > 1.0


class TestPartitioning:
    def test_partitions_cover_all_indices_once(self):
        partitions = partition_indices(103, 4, seed=0)
        combined = np.concatenate(partitions)
        assert sorted(combined.tolist()) == list(range(103))

    def test_partition_sizes_balanced(self):
        partitions = partition_indices(103, 4, seed=0)
        sizes = [len(p) for p in partitions]
        assert max(sizes) - min(sizes) <= 1

    def test_too_few_samples_rejected(self):
        with pytest.raises(ConfigurationError):
            partition_indices(3, 4)

    def test_shard_dataset_shapes(self):
        images = np.zeros((40, 3, 4, 4))
        labels = np.zeros(40, dtype=np.int64)
        shards = shard_dataset(images, labels, 4)
        assert len(shards) == 4
        assert all(shard[0].shape[0] == 10 for shard in shards)

    def test_shard_dataset_length_mismatch_rejected(self):
        with pytest.raises(ConfigurationError):
            shard_dataset(np.zeros((10, 2)), np.zeros(9), 2)

    @settings(max_examples=25, deadline=None)
    @given(num_samples=st.integers(8, 500), num_workers=st.integers(1, 8),
           seed=st.integers(0, 100))
    def test_partition_property_disjoint_and_complete(self, num_samples, num_workers,
                                                      seed):
        if num_samples < num_workers:
            return
        partitions = partition_indices(num_samples, num_workers, seed=seed)
        combined = np.concatenate(partitions)
        assert len(combined) == num_samples
        assert len(np.unique(combined)) == num_samples


class TestBatchSampler:
    def test_batches_have_requested_size(self):
        sampler = BatchSampler(num_samples=50, batch_size=8, seed=0)
        for _ in range(10):
            assert len(sampler.next_batch()) == 8

    def test_epoch_counter_advances(self):
        sampler = BatchSampler(num_samples=16, batch_size=8, seed=0)
        for _ in range(5):
            sampler.next_batch()
        assert sampler.epoch >= 2

    def test_each_epoch_covers_distinct_indices(self):
        sampler = BatchSampler(num_samples=32, batch_size=8, seed=0)
        seen = np.concatenate([sampler.next_batch() for _ in range(4)])
        assert len(np.unique(seen)) == 32

    def test_deterministic_given_seed(self):
        a = BatchSampler(num_samples=64, batch_size=16, seed=9)
        b = BatchSampler(num_samples=64, batch_size=16, seed=9)
        for _ in range(5):
            np.testing.assert_array_equal(a.next_batch(), b.next_batch())

    def test_oversized_batch_rejected(self):
        with pytest.raises(ConfigurationError):
            BatchSampler(num_samples=4, batch_size=8)

    def test_batches_iterator_counts(self):
        sampler = BatchSampler(num_samples=64, batch_size=16, seed=1)
        batches = list(sampler.batches(3))
        assert len(batches) == 3
