"""Tests for the Project-Adam-style SF-push / matrix-pull server."""

import numpy as np
import pytest

from repro.comm.adam import AdamSFServer
from repro.exceptions import CommunicationError
from repro.nn.optim import SGD
from repro.nn.sufficient_factors import SufficientFactors


@pytest.fixture
def initial_params():
    return {"fc6": {"weight": np.ones((6, 4), dtype=np.float32),
                    "bias": np.zeros((4,), dtype=np.float32)}}


def make_factors(rng, batch=3, m=6, n=4):
    return SufficientFactors(u=rng.standard_normal((batch, m)).astype(np.float32),
                             v=rng.standard_normal((batch, n)).astype(np.float32))


class TestAdamServer:
    def test_push_pull_roundtrip(self, initial_params, rng):
        server = AdamSFServer(initial_params, num_workers=2,
                              optimizer=SGD(learning_rate=0.1))
        f0, f1 = make_factors(rng), make_factors(rng)
        server.push_factors(0, "fc6", f0, extras={"bias": np.ones(4)})
        server.push_factors(1, "fc6", f1, extras={"bias": np.ones(4)})
        params = server.pull_matrix(0, "fc6", min_version=1)
        expected_grad = (f0.reconstruct() + f1.reconstruct()) / 2.0
        np.testing.assert_allclose(
            params["weight"], 1.0 - 0.1 * expected_grad, rtol=1e-5)
        np.testing.assert_allclose(params["bias"], -0.1 * np.ones(4), rtol=1e-5)

    def test_push_bytes_are_factor_sized(self, initial_params, rng):
        server = AdamSFServer(initial_params, num_workers=1)
        factors = make_factors(rng)
        nbytes = server.push_factors(0, "fc6", factors)
        assert nbytes == factors.nbytes

    def test_pull_bytes_are_matrix_sized(self, initial_params, rng):
        server = AdamSFServer(initial_params, num_workers=1)
        server.push_factors(0, "fc6", make_factors(rng))
        server.pull_matrix(0, "fc6", min_version=1)
        dense_bytes = 6 * 4 * 4 + 4 * 4
        assert server.meter.sent == dense_bytes

    def test_pull_imbalance_vs_push(self, initial_params, rng):
        """Adam's pull direction moves far more bytes than its push direction."""
        server = AdamSFServer(initial_params, num_workers=1)
        pushed = server.push_factors(0, "fc6", make_factors(rng, batch=2))
        server.pull_matrix(0, "fc6", min_version=1)
        assert server.meter.sent > pushed

    def test_unknown_layer_rejected(self, initial_params, rng):
        server = AdamSFServer(initial_params, num_workers=1)
        with pytest.raises(CommunicationError):
            server.push_factors(0, "nope", make_factors(rng))

    def test_pull_timeout(self, initial_params):
        server = AdamSFServer(initial_params, num_workers=2)
        with pytest.raises(CommunicationError):
            server.pull_matrix(0, "fc6", min_version=1, timeout=0.05)

    def test_too_many_pushes_rejected(self, initial_params, rng):
        server = AdamSFServer(initial_params, num_workers=1)
        server.push_factors(0, "fc6", make_factors(rng))
        server.push_factors(0, "fc6", make_factors(rng))
        assert server.version("fc6") == 2

    def test_invalid_configuration(self, initial_params):
        with pytest.raises(CommunicationError):
            AdamSFServer(initial_params, num_workers=0)
        with pytest.raises(CommunicationError):
            AdamSFServer(initial_params, num_workers=1, aggregation="mode")
