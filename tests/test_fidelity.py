"""Tests for the reproduction-fidelity scoring module."""

import pytest

from repro.experiments.fidelity import FidelityCheck, FidelityReport, scaling_fidelity


class TestFidelityReport:
    def test_ratio_check_within_band_passes(self):
        report = FidelityReport()
        check = report.add_ratio_check("x", reported=10.0, measured=12.0,
                                       rel_tolerance=0.5)
        assert check.passed

    def test_ratio_check_outside_band_fails(self):
        report = FidelityReport()
        check = report.add_ratio_check("x", reported=10.0, measured=30.0,
                                       rel_tolerance=0.5)
        assert not check.passed
        assert not report.all_passed

    def test_missing_paper_value_is_recorded_not_failed(self):
        report = FidelityReport()
        check = report.add_ratio_check("x", reported=None, measured=5.0)
        assert check.passed
        assert "recorded" in check.detail

    def test_ordering_check(self):
        report = FidelityReport()
        assert report.add_ordering_check("a<=b", 1.0, 2.0).passed
        assert not report.add_ordering_check("bad", 3.0, 2.0).passed
        assert report.num_passed == 1

    def test_render_contains_status_column(self):
        report = FidelityReport()
        report.add_ratio_check("good", 10.0, 11.0)
        report.add_ratio_check("bad", 10.0, 100.0)
        rendering = report.render()
        assert "MISMATCH" in rendering and "ok" in rendering
        assert "1/2" in rendering


class TestScalingFidelity:
    @pytest.fixture(scope="class")
    def report(self):
        # Reduced node counts keep this quick; the bands scale with `top`.
        return scaling_fidelity(node_counts=(1, 8, 16))

    def test_all_ordering_claims_hold(self, report):
        ordering_checks = [c for c in report.checks if c.reported is None]
        assert ordering_checks
        assert all(check.passed for check in ordering_checks)

    def test_majority_of_ratio_checks_within_band(self, report):
        ratio_checks = [c for c in report.checks if c.reported is not None]
        passed = sum(1 for check in ratio_checks if check.passed)
        # At 16 nodes (instead of the paper's 32) the reported values are
        # compared against a smaller cluster, so only a qualified majority is
        # required; the full-scale comparison lives in EXPERIMENTS.md.
        assert passed >= len(ratio_checks) // 2

    def test_report_renders(self, report):
        assert "Reproduction fidelity" in report.render()
