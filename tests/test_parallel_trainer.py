"""Tests for the functional distributed trainer and the serial references."""

import numpy as np
import pytest

from repro.config import TrainingConfig
from repro.core.wfbp import ScheduleMode
from repro.data import make_linearly_separable, shard_dataset
from repro.exceptions import TrainingError
from repro.nn.model_zoo import build_mlp_network
from repro.parallel import (
    DistributedTrainer,
    SerialTrainer,
    assign_schemes,
    simulate_synchronous_sgd,
)
from repro.core.cost_model import CommScheme


NUM_WORKERS = 3
BATCH = 8


def deterministic_provider(shards, batch=BATCH):
    """A batch provider shared by distributed and serial-emulation runs."""
    def provider(iteration, worker):
        rng = np.random.default_rng(10_000 + iteration * 31 + worker)
        images, labels = shards[worker]
        indices = rng.choice(images.shape[0], size=batch, replace=False)
        return images[indices], labels[indices]
    return provider


@pytest.fixture
def setup():
    train_x, train_y, test_x, test_y = make_linearly_separable(
        num_train=180, num_test=60, input_dim=16, num_classes=4, seed=1)
    shards = shard_dataset(train_x, train_y, NUM_WORKERS, seed=2)
    config = TrainingConfig(batch_size=BATCH, learning_rate=0.05, iterations=6, seed=5)

    def factory():
        return build_mlp_network(input_dim=16, hidden_dims=(32, 16), num_classes=4,
                                 seed=21)

    return factory, shards, config, (test_x, test_y)


def make_trainer(setup, mode, schedule=ScheduleMode.WFBP, provider=None, **kwargs):
    factory, shards, config, test_data = setup
    return DistributedTrainer(
        network_factory=factory,
        num_workers=NUM_WORKERS,
        train_shards=shards,
        training=config,
        mode=mode,
        schedule=schedule,
        test_data=test_data,
        batch_provider=provider,
        **kwargs,
    )


class TestSchemeAssignment:
    def test_ps_mode_assigns_ps_everywhere(self, setup):
        factory = setup[0]
        assignment = assign_schemes(factory(), "ps", 4, 4, 32)
        assert all(s is CommScheme.PS for s in assignment.schemes.values())

    def test_sfb_mode_assigns_sfb_to_dense(self, setup):
        factory = setup[0]
        assignment = assign_schemes(factory(), "sfb", 4, 4, 32)
        assert assignment.sfb_layers  # every Dense layer
        assert set(assignment.sfb_layers) == set(assignment.schemes)

    def test_hybrid_prefers_ps_for_small_layers(self, setup):
        factory = setup[0]
        assignment = assign_schemes(factory(), "hybrid", 4, 4, 32)
        # These layers are tiny (32x16 etc.); PS should win everywhere.
        assert assignment.sfb_layers == []

    def test_hybrid_prefers_sfb_for_wide_layer_and_small_batch(self):
        network = build_mlp_network(input_dim=2048, hidden_dims=(2048,),
                                    num_classes=1000, seed=0)
        assignment = assign_schemes(network, "hybrid", num_workers=8, num_servers=8,
                                    batch_size=4)
        assert "fc1" in assignment.sfb_layers

    def test_unknown_mode_rejected(self, setup):
        factory = setup[0]
        from repro.exceptions import ConfigurationError
        with pytest.raises(ConfigurationError):
            assign_schemes(factory(), "carrier-pigeon", 2, 2, 8)


class TestDistributedTraining:
    @pytest.mark.parametrize("mode", ["ps", "sfb", "hybrid", "adam", "onebit"])
    def test_all_modes_train_and_stay_consistent(self, setup, mode):
        trainer = make_trainer(setup, mode)
        history = trainer.train(4)
        assert len(history.losses) == 4
        assert np.isfinite(history.losses).all()
        assert trainer.replica_states_close()

    def test_exact_modes_agree_with_each_other(self, setup):
        """PS, SFB, hybrid and Adam all perform exact synchronization."""
        provider = deterministic_provider(setup[1])
        final_losses = {}
        for mode in ("ps", "sfb", "adam"):
            trainer = make_trainer(setup, mode, provider=provider)
            history = trainer.train(5)
            final_losses[mode] = history.losses
        np.testing.assert_allclose(final_losses["ps"], final_losses["sfb"], atol=1e-4)
        np.testing.assert_allclose(final_losses["ps"], final_losses["adam"], atol=1e-4)

    def test_distributed_ps_matches_serial_emulation(self, setup):
        factory, shards, config, _ = setup
        provider = deterministic_provider(shards)
        trainer = make_trainer(setup, "ps", provider=provider)
        history = trainer.train(5)

        reference = factory()
        serial_losses = simulate_synchronous_sgd(
            reference, provider, NUM_WORKERS, 5, config)
        np.testing.assert_allclose(history.losses, serial_losses, atol=1e-4)
        replica_state = trainer.replica(0).get_state()
        reference_state = reference.get_state()
        for layer in reference_state:
            for key in reference_state[layer]:
                np.testing.assert_allclose(replica_state[layer][key],
                                           reference_state[layer][key], atol=1e-4)

    def test_sequential_schedule_produces_same_result_as_wfbp(self, setup):
        provider = deterministic_provider(setup[1])
        wfbp = make_trainer(setup, "ps", schedule=ScheduleMode.WFBP,
                            provider=provider).train(4)
        seq = make_trainer(setup, "ps", schedule=ScheduleMode.SEQUENTIAL,
                           provider=provider).train(4)
        np.testing.assert_allclose(wfbp.losses, seq.losses, atol=1e-5)

    def test_loss_decreases_over_training(self, setup):
        trainer = make_trainer(setup, "hybrid")
        history = trainer.train(30)
        early = np.mean(history.losses[:5])
        late = np.mean(history.losses[-5:])
        assert late < early

    def test_eval_records_test_error(self, setup):
        trainer = make_trainer(setup, "ps", eval_every=2)
        history = trainer.train(4)
        assert len(history.test_errors) == 2
        assert all(0.0 <= err <= 1.0 for _, err in history.test_errors)

    def test_onebit_uses_fewer_bytes_than_ps(self, setup):
        provider = deterministic_provider(setup[1])
        ps_history = make_trainer(setup, "ps", provider=provider).train(3)
        onebit_history = make_trainer(setup, "onebit", provider=provider).train(3)
        assert onebit_history.bytes_sent < ps_history.bytes_sent

    def test_zero_iterations_is_a_noop(self, setup):
        history = make_trainer(setup, "ps").train(0)
        assert history.losses == []

    def test_history_metadata(self, setup):
        history = make_trainer(setup, "hybrid").train(2)
        assert history.mode == "hybrid"
        assert history.num_workers == NUM_WORKERS
        assert history.iterations == 2
        assert history.total_bytes == history.bytes_sent + history.bytes_received

    def test_invalid_configurations_rejected(self, setup):
        factory, shards, config, _ = setup
        with pytest.raises(TrainingError):
            DistributedTrainer(factory, 0, shards, config)
        with pytest.raises(TrainingError):
            DistributedTrainer(factory, 2, shards, config)  # 3 shards for 2 workers
        with pytest.raises(TrainingError):
            DistributedTrainer(factory, 3, None, config)


class TestSerialTrainer:
    def test_loss_decreases(self, setup):
        factory, _, config, test_data = setup
        train_x, train_y, _, _ = make_linearly_separable(
            num_train=180, num_test=10, input_dim=16, num_classes=4, seed=1)
        trainer = SerialTrainer(factory(), (train_x, train_y), config,
                                test_data=test_data, eval_every=10)
        history = trainer.train(40)
        assert history.losses[-1] < history.losses[0]
        assert history.test_errors

    def test_final_loss_property(self, setup):
        factory, _, config, _ = setup
        train_x, train_y, _, _ = make_linearly_separable(
            num_train=64, num_test=10, input_dim=16, num_classes=4, seed=1)
        trainer = SerialTrainer(factory(), (train_x, train_y), config)
        history = trainer.train(3)
        assert history.final_loss == history.losses[-1]
