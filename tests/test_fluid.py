"""Tests for the fluid-mode analytic simulator and engine selection.

Four layers of protection:

* cross-validation of the fluid engine against the discrete-event
  simulator -- a hypothesis property over random small clusters (all
  registered comm modes, flat and oversubscribed) plus deterministic
  32-node pins at the measured accuracy envelope;
* exact-equality pins that ``engine="auto"`` below the node threshold
  reproduces the DES results byte-identically, and that unknown engine
  names raise ``ConfigurationError`` at every entry point;
* internal consistency: the vectorized ``sweep_axis`` path equals
  point-by-point aggregate evaluation exactly, the detail and aggregate
  tiers agree within per-scheme bounds where they overlap, and warm
  caches keyed on topology fields never leak state across
  oversubscription settings (the PR 3 memo-table audit);
* the multi-job contention model: background jobs slow oversubscribed
  clusters monotonically and leave flat clusters untouched.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.comm.backend import fluid_terms
from repro.config import ClusterConfig
from repro.core.cost_model import CommScheme
from repro.core.wfbp import ScheduleMode
from repro.engines.base import CommMode, Partitioning, SystemConfig
from repro.exceptions import ConfigurationError
from repro.nn.model_zoo import get_model_spec
from repro.simulation.fluid import (
    DETAIL_NODE_MAX,
    ENGINES,
    FLUID_NODE_THRESHOLD,
    FluidSimulator,
    resolve_engine,
    session_engine,
    simulate_fluid,
    sweep_axis,
    use_engine,
)
from repro.simulation.speedup import curve_tasks, simulate_point
from repro.simulation.throughput import IterationSimulator, simulate_system
from repro.simulation.workload import build_workload

VGG = get_model_spec("vgg19")

#: Fluid-vs-DES relative tolerance on flat clusters.  The PS family and
#: ring reproduce the DES bookings exactly; the SF schemes (broadcast
#: convoys, owner fans, leader hierarchies) approximate head-of-line
#: coupling and carry a measured worst case just above 10%.
FLAT_EXACT = {CommScheme.PS, CommScheme.ONEBIT, CommScheme.RING}
FLAT_TOL_EXACT = 5e-3
FLAT_TOL_APPROX = 0.15

#: Under rack oversubscription the fluid engine replaces the channels'
#: FIFO coupling with work-conserving shares; the measured envelope over
#: the full calibration grid (2-32 nodes, all seven backends) is +-38%
#: at deep saturation, typical error ~10-15%.
TOPO_TOL = 0.45


def make_system(comm: CommMode, name: str = "probe") -> SystemConfig:
    return SystemConfig(name=name, engine="probe", comm=comm,
                        schedule=ScheduleMode.WFBP,
                        partitioning=Partitioning.FINE,
                        overlap_pull=True, overlap_host_copy=True)


def relative_error(cluster: ClusterConfig, comm: CommMode) -> float:
    workload = build_workload(VGG, gpu=cluster.gpu)
    system = make_system(comm)
    des = IterationSimulator(workload, cluster, system).run()
    fluid = FluidSimulator(workload, cluster, system).run()
    return (fluid.iteration_seconds - des.iteration_seconds) \
        / des.iteration_seconds


class TestFluidVsDes:
    """Cross-validation against the event-driven simulator."""

    @settings(max_examples=12, deadline=None)
    @given(
        nodes=st.sampled_from([2, 4, 8, 16]),
        comm=st.sampled_from(sorted(CommMode, key=lambda m: m.value)),
        bandwidth=st.sampled_from([10.0, 40.0]),
        topo=st.sampled_from([(1, 1.0), (2, 2.0), (2, 4.0), (4, 4.0)]),
    )
    def test_random_small_clusters(self, nodes, comm, bandwidth, topo):
        racks, oversub = topo
        if racks > 1 and nodes < 2 * racks:
            racks, oversub = 1, 1.0
        cluster = ClusterConfig(num_workers=nodes, bandwidth_gbps=bandwidth,
                                racks=racks, oversubscription=oversub)
        err = abs(relative_error(cluster, comm))
        if racks == 1:
            schemes = set(decide_all(cluster, comm).values())
            tol = (FLAT_TOL_EXACT if schemes <= FLAT_EXACT
                   else FLAT_TOL_APPROX)
        else:
            tol = TOPO_TOL
        assert err <= tol

    @pytest.mark.parametrize("comm", sorted(CommMode, key=lambda m: m.value))
    @pytest.mark.parametrize("racks,oversub", [(1, 1.0), (4, 4.0)])
    def test_32_node_envelope(self, comm, racks, oversub):
        cluster = ClusterConfig(num_workers=32, bandwidth_gbps=10.0,
                                racks=racks, oversubscription=oversub)
        err = abs(relative_error(cluster, comm))
        if racks == 1:
            schemes = set(decide_all(cluster, comm).values())
            tol = (FLAT_TOL_EXACT if schemes <= FLAT_EXACT
                   else FLAT_TOL_APPROX)
        else:
            tol = TOPO_TOL
        assert err <= tol

    def test_flat_ps_is_exact(self):
        cluster = ClusterConfig(num_workers=16, bandwidth_gbps=10.0)
        assert abs(relative_error(cluster, CommMode.PS)) < 1e-9

    def test_result_contract_matches_des(self):
        cluster = ClusterConfig(num_workers=8, bandwidth_gbps=10.0,
                                racks=2, oversubscription=2.0)
        workload = build_workload(VGG, gpu=cluster.gpu)
        system = make_system(CommMode.HYBRID)
        des = IterationSimulator(workload, cluster, system).run()
        fluid = FluidSimulator(workload, cluster, system).run()
        assert fluid.scheme_by_unit == des.scheme_by_unit
        assert len(fluid.per_node_traffic_bytes) == cluster.num_workers
        assert 0.0 < fluid.gpu_busy_fraction <= 1.0
        assert fluid.model_name == des.model_name
        assert fluid.batch_size == des.batch_size
        assert fluid.single_node_seconds == des.single_node_seconds


def decide_all(cluster: ClusterConfig, comm: CommMode):
    from repro.core.cost_model import NetworkTopology
    from repro.simulation.throughput import decide_schemes

    workload = build_workload(VGG, gpu=cluster.gpu)
    topology = NetworkTopology.from_cluster(cluster)
    return decide_schemes(workload, comm, cluster.num_workers,
                          cluster.num_servers,
                          topology=None if topology.is_flat else topology)


class TestEngineSelection:
    """resolve_engine / use_engine / engine= plumbing."""

    def test_engines_tuple(self):
        assert ENGINES == ("des", "fluid", "auto")

    def test_resolve_defaults_to_session(self):
        assert session_engine() == "des"
        assert resolve_engine(None, 10000) == "des"
        with use_engine("fluid"):
            assert resolve_engine(None, 2) == "fluid"
        assert session_engine() == "des"

    def test_auto_threshold(self):
        assert resolve_engine("auto", FLUID_NODE_THRESHOLD) == "fluid"
        assert resolve_engine("auto", FLUID_NODE_THRESHOLD - 1) == "des"

    @pytest.mark.parametrize("bogus", ["warp", "DES", "", "analytic"])
    def test_unknown_engine_raises(self, bogus):
        with pytest.raises(ConfigurationError):
            resolve_engine(bogus, 8)
        with pytest.raises(ConfigurationError):
            with use_engine(bogus):
                pass  # pragma: no cover
        cluster = ClusterConfig(num_workers=2)
        with pytest.raises(ConfigurationError):
            simulate_system(VGG, make_system(CommMode.PS), cluster,
                            engine=bogus)
        with pytest.raises(ConfigurationError):
            curve_tasks(VGG, make_system(CommMode.PS), (2, 4), engine=bogus)

    def test_auto_below_threshold_is_byte_identical_to_des(self):
        system = make_system(CommMode.HYBRID)
        for nodes in (2, 8, 32):
            auto = simulate_point(VGG, system, nodes, bandwidth_gbps=10.0,
                                  engine="auto")
            des = simulate_point(VGG, system, nodes, bandwidth_gbps=10.0,
                                 engine="des")
            assert auto == des  # full dataclass equality, every field

    def test_default_engine_is_des(self):
        cluster = ClusterConfig(num_workers=4, bandwidth_gbps=10.0)
        default = simulate_system(VGG, make_system(CommMode.PS), cluster)
        des = simulate_system(VGG, make_system(CommMode.PS), cluster,
                              engine="des")
        assert default == des

    def test_fluid_engine_dispatches(self):
        cluster = ClusterConfig(num_workers=4, bandwidth_gbps=10.0)
        fluid = simulate_system(VGG, make_system(CommMode.PS), cluster,
                                engine="fluid")
        des = simulate_system(VGG, make_system(CommMode.PS), cluster,
                              engine="des")
        # flat PS is one of the exact replays: same number, fluid path
        assert fluid.iteration_seconds == pytest.approx(
            des.iteration_seconds, rel=1e-9)

    def test_runner_rejects_unknown_engine(self):
        from repro.experiments.runner import run_experiments
        with pytest.raises(ConfigurationError):
            run_experiments(["table1"], quick=True, engine="bogus")


class TestTransformerFluidVsDes:
    """Cross-validation on the attention workload (nanogpt-12l).

    Measured at 8 nodes / 40 GbE flat: PS reproduces the DES exactly and
    the SF schemes sit at ~12% (the lm_head factor broadcast dominates the
    convoy approximation) -- inside the same FLAT_TOL_APPROX envelope the
    CNN workloads carry.  See PERFORMANCE.md for the full grid.
    """

    GPT = get_model_spec("nanogpt-12l")

    def transformer_error(self, comm: CommMode) -> float:
        cluster = ClusterConfig(num_workers=8, bandwidth_gbps=40.0)
        workload = build_workload(self.GPT, gpu=cluster.gpu)
        system = make_system(comm)
        des = IterationSimulator(workload, cluster, system).run()
        fluid = FluidSimulator(workload, cluster, system).run()
        return (fluid.iteration_seconds - des.iteration_seconds) \
            / des.iteration_seconds

    def test_flat_ps_is_exact(self):
        assert abs(self.transformer_error(CommMode.PS)) < 1e-9

    @pytest.mark.parametrize("comm", [CommMode.SFB_ONLY, CommMode.HYBRID])
    def test_sf_schemes_within_flat_envelope(self, comm):
        assert abs(self.transformer_error(comm)) <= FLAT_TOL_APPROX


class TestTiersAndSweeps:
    """Aggregate tier, vectorized axis sweeps, warm caches."""

    @pytest.mark.parametrize("comm,tol", [
        (CommMode.PS, 0.20),
        (CommMode.ONEBIT, 0.05),
        (CommMode.RING, 1e-9),
        (CommMode.ADAM, 0.10),
        (CommMode.SFB_ONLY, 0.60),
        (CommMode.HYBRID, 0.60),
        (CommMode.HIERPS, 0.30),
    ])
    def test_detail_vs_aggregate(self, comm, tol):
        cluster = ClusterConfig(num_workers=64, bandwidth_gbps=20.0,
                                racks=8, oversubscription=4.0)
        workload = build_workload(VGG, gpu=cluster.gpu)
        system = make_system(comm)
        detail = FluidSimulator(workload, cluster, system,
                                mode="detail").run().iteration_seconds
        agg = FluidSimulator(workload, cluster, system,
                             mode="aggregate").run().iteration_seconds
        assert abs(agg - detail) / detail <= tol

    def test_detail_node_max_picks_tier(self):
        flat = ClusterConfig(num_workers=DETAIL_NODE_MAX, bandwidth_gbps=10.0)
        big = ClusterConfig(num_workers=DETAIL_NODE_MAX + 1,
                            bandwidth_gbps=10.0)
        workload = build_workload(VGG, gpu=flat.gpu)
        system = make_system(CommMode.PS)
        assert FluidSimulator(workload, flat, system).detail
        assert not FluidSimulator(workload, big, system).detail

    def test_unknown_mode_raises(self):
        cluster = ClusterConfig(num_workers=4)
        workload = build_workload(VGG, gpu=cluster.gpu)
        with pytest.raises(ConfigurationError):
            FluidSimulator(workload, cluster, make_system(CommMode.PS),
                           mode="exact")

    def test_sweep_axis_matches_pointwise(self):
        bandwidths = [5.0, 10.0, 20.0, 40.0]
        cluster = ClusterConfig(num_workers=1000, bandwidth_gbps=40.0,
                                racks=25, oversubscription=4.0)
        workload = build_workload(VGG, gpu=cluster.gpu)
        system = make_system(CommMode.PS)
        axis = sweep_axis(VGG, system, cluster, bandwidths,
                          workload=workload)
        assert axis.shape == (len(bandwidths),)
        for bw, vectorized in zip(bandwidths, axis):
            point = FluidSimulator(workload, cluster.with_bandwidth(bw),
                                   system, mode="aggregate").run()
            assert vectorized == pytest.approx(point.iteration_seconds,
                                               rel=1e-12)

    def test_sweep_axis_monotone_in_bandwidth(self):
        bandwidths = [1.0, 5.0, 10.0, 40.0, 100.0]
        cluster = ClusterConfig(num_workers=4000, bandwidth_gbps=40.0,
                                racks=100, oversubscription=4.0)
        for comm in CommMode:
            axis = sweep_axis(VGG, make_system(comm), cluster, bandwidths)
            assert np.all(np.diff(axis) <= 1e-12), comm

    def test_sweep_axis_warm_cache_is_topology_keyed(self):
        """The PR 3 memo-table audit, applied to the fluid warm cache.

        Sweeping oversubscription with a warm cache must re-derive the
        rack state: an oversubscribed cluster evaluated after a flat one
        (same workload, same node count) must not reuse the flat answer.
        """
        bandwidths = [10.0, 40.0]
        workload = build_workload(VGG)
        system = make_system(CommMode.SFB_ONLY)
        flat = ClusterConfig(num_workers=1000, bandwidth_gbps=40.0)
        results = {}
        for oversub in (1.0, 2.0, 4.0):
            cluster = (flat if oversub == 1.0 else
                       ClusterConfig(num_workers=1000, bandwidth_gbps=40.0,
                                     racks=25, oversubscription=oversub))
            results[oversub] = sweep_axis(VGG, system, cluster, bandwidths,
                                          workload=workload)
        # warm repeat of the *first* config must be unchanged ...
        again = sweep_axis(VGG, system, flat, bandwidths, workload=workload)
        assert np.array_equal(again, results[1.0])
        # ... and contention must strictly grow with oversubscription.
        assert np.all(results[2.0] > results[1.0])
        assert np.all(results[4.0] > results[2.0])

    def test_scheme_cache_is_topology_keyed(self):
        """Scheme decisions warmed on a flat cluster must not leak into an
        oversubscribed one (and vice versa), for the same workload."""
        flat = ClusterConfig(num_workers=32, bandwidth_gbps=10.0)
        racked = ClusterConfig(num_workers=32, bandwidth_gbps=10.0,
                               racks=4, oversubscription=8.0)
        flat_schemes = decide_all(flat, CommMode.HYBRID)
        racked_schemes = decide_all(racked, CommMode.HYBRID)
        again = decide_all(flat, CommMode.HYBRID)
        assert again == flat_schemes
        assert flat_schemes != racked_schemes  # rack premium shifts choices


class TestMultiJob:
    """Rack-uplink contention from concurrent jobs."""

    def test_background_jobs_slow_oversubscribed_clusters(self):
        cluster = ClusterConfig(num_workers=1000, bandwidth_gbps=40.0,
                                racks=25, oversubscription=4.0)
        system = make_system(CommMode.SFB_ONLY)
        alone = simulate_fluid(VGG, system, cluster).iteration_seconds
        shared = simulate_fluid(VGG, system, cluster,
                                background_jobs=1).iteration_seconds
        crowded = simulate_fluid(VGG, system, cluster,
                                 background_jobs=3).iteration_seconds
        assert alone < shared < crowded

    def test_background_jobs_do_not_touch_flat_clusters(self):
        cluster = ClusterConfig(num_workers=1000, bandwidth_gbps=40.0)
        system = make_system(CommMode.PS)
        alone = simulate_fluid(VGG, system, cluster).iteration_seconds
        shared = simulate_fluid(VGG, system, cluster,
                                background_jobs=4).iteration_seconds
        assert shared == alone


class TestFluidTerms:
    """The vectorizable per-unit cost-term export."""

    def test_sfb_terms(self):
        workload = build_workload(VGG)
        unit = next(u for u in workload.units if u.sf_eligible)
        n = 16
        terms = fluid_terms(CommScheme.SFB, unit, workload.batch_size, n, n)
        sf = unit.sufficient_factor_bytes(workload.batch_size)
        assert terms.push_bytes == sf
        assert terms.symmetric_bytes == 2 * (n - 1) * sf
        assert terms.owner_bytes == 0.0

    @pytest.mark.parametrize("scheme", list(CommScheme))
    def test_terms_are_nonnegative(self, scheme):
        workload = build_workload(VGG)
        unit = next(u for u in workload.units if u.sf_eligible)
        terms = fluid_terms(scheme, unit, workload.batch_size, 8, 8)
        assert terms.push_bytes >= 0
        assert terms.pull_bytes >= 0
        assert terms.symmetric_bytes >= 0
        assert terms.owner_bytes >= 0

    def test_fine_vs_coarse_ps(self):
        workload = build_workload(VGG)
        unit = workload.units[0]
        fine = fluid_terms(CommScheme.PS, unit, workload.batch_size, 8, 8,
                           fine=True)
        coarse = fluid_terms(CommScheme.PS, unit, workload.batch_size, 8, 8,
                             fine=False)
        assert fine.owner_bytes == 0.0
        assert coarse.owner_bytes > 0.0


class TestScaleFigure:
    """fig_scale rides entirely on the fluid engine."""

    def test_quick_fig_scale(self):
        from repro.experiments import fig_scale
        result = fig_scale.run_fig_scale(node_counts=(1000,))
        assert len(result.points) == 7 * 2  # schemes x oversub settings
        rendering = fig_scale.render(result)
        assert "1000" in rendering and "fluid engine" in rendering
        point = result.point("SFB", 1000, 4.0)
        flat = result.point("SFB", 1000, 1.0)
        # oversubscription must hurt, and contending jobs must hurt more
        assert point.speedup < flat.speedup
        assert point.multi_job_speedup < point.speedup

    def test_fig_scale_registered(self):
        from repro.experiments.runner import EXPERIMENTS
        assert "fig_scale" in EXPERIMENTS
