"""Tests for sufficient-factor packaging and reconstruction."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.exceptions import ShapeError
from repro.nn.sufficient_factors import (
    SufficientFactors,
    factorize_dense_gradient,
    reconstruction_matches,
)


class TestSufficientFactors:
    def test_reconstruct_matches_outer_product_sum(self, rng):
        u = rng.standard_normal((8, 5))
        v = rng.standard_normal((8, 3))
        factors = SufficientFactors(u=u, v=v)
        expected = sum(np.outer(u[i], v[i]) for i in range(8))
        np.testing.assert_allclose(factors.reconstruct(), expected, rtol=1e-6)

    def test_batch_size_and_shape(self, rng):
        factors = SufficientFactors(u=rng.standard_normal((4, 10)),
                                    v=rng.standard_normal((4, 6)))
        assert factors.batch_size == 4
        assert factors.weight_shape == (10, 6)

    def test_mismatched_batch_rejected(self, rng):
        with pytest.raises(ShapeError):
            SufficientFactors(u=rng.standard_normal((4, 10)),
                              v=rng.standard_normal((5, 6)))

    def test_one_dimensional_factors_rejected(self, rng):
        with pytest.raises(ShapeError):
            SufficientFactors(u=rng.standard_normal(4), v=rng.standard_normal((4, 6)))

    def test_nbytes_counts_both_factors(self, rng):
        u = rng.standard_normal((4, 10)).astype(np.float32)
        v = rng.standard_normal((4, 6)).astype(np.float32)
        factors = SufficientFactors(u=u, v=v)
        assert factors.nbytes == u.nbytes + v.nbytes

    def test_compression_ratio_large_layer(self, rng):
        u = rng.standard_normal((32, 4096)).astype(np.float32)
        v = rng.standard_normal((32, 4096)).astype(np.float32)
        factors = SufficientFactors(u=u, v=v)
        # MN / K(M+N) = 4096*4096 / (32*8192) = 64.
        assert factors.compression_ratio == pytest.approx(64.0)

    def test_reconstruction_matches_helper(self, rng):
        u = rng.standard_normal((6, 7)).astype(np.float32)
        v = rng.standard_normal((6, 4)).astype(np.float32)
        factors = factorize_dense_gradient(u, v)
        assert reconstruction_matches(factors, u.T @ v)

    def test_reconstruction_matches_shape_mismatch(self, rng):
        factors = factorize_dense_gradient(rng.standard_normal((6, 7)),
                                           rng.standard_normal((6, 4)))
        with pytest.raises(ShapeError):
            reconstruction_matches(factors, np.zeros((3, 3)))


class TestSufficientFactorProperties:
    @settings(max_examples=30, deadline=None)
    @given(batch=st.integers(1, 16), m=st.integers(1, 24), n=st.integers(1, 24),
           seed=st.integers(0, 1000))
    def test_reconstruction_exact_for_any_shape(self, batch, m, n, seed):
        rng = np.random.default_rng(seed)
        u = rng.standard_normal((batch, m))
        v = rng.standard_normal((batch, n))
        factors = SufficientFactors(u=u, v=v)
        np.testing.assert_allclose(factors.reconstruct(), u.T @ v, rtol=1e-9, atol=1e-9)

    @settings(max_examples=30, deadline=None)
    @given(batch=st.integers(1, 8), m=st.integers(2, 32), n=st.integers(2, 32))
    def test_rank_bounded_by_batch(self, batch, m, n):
        rng = np.random.default_rng(0)
        factors = SufficientFactors(u=rng.standard_normal((batch, m)),
                                    v=rng.standard_normal((batch, n)))
        rank = np.linalg.matrix_rank(factors.reconstruct())
        assert rank <= min(batch, m, n)
