"""Tests for layer/model specifications and the spec builder."""

import pytest
from hypothesis import given, strategies as st

from repro import units
from repro.exceptions import ModelSpecError
from repro.nn.spec import LayerKind, LayerSpec, ModelSpec, SpecBuilder


def build_toy_spec():
    builder = SpecBuilder("toy", input_shape=(3, 16, 16))
    builder.conv("conv1", out_channels=8, kernel=3, pad=1)
    builder.relu("relu1")
    builder.max_pool("pool1", kernel=2, stride=2)
    builder.flatten("flatten")
    builder.fc("fc1", 32)
    builder.fc("fc2", 10)
    builder.softmax("prob")
    return builder.build(dataset="toy", default_batch_size=8)


class TestLayerSpec:
    def test_param_bytes_is_four_per_param(self):
        layer = LayerSpec(name="fc", kind=LayerKind.FC, param_count=100,
                          param_shape=(10, 10), sf_decomposable=True,
                          output_shape=(10,))
        assert layer.param_bytes == 400

    def test_fc_dims(self):
        layer = LayerSpec(name="fc", kind=LayerKind.FC, param_count=110,
                          param_shape=(10, 11), sf_decomposable=True,
                          output_shape=(11,))
        assert layer.fc_dims == (10, 11)

    def test_fc_dims_rejected_for_conv(self):
        layer = LayerSpec(name="conv", kind=LayerKind.CONV, param_count=9,
                          param_shape=(1, 1, 3, 3), output_shape=(1, 4, 4))
        with pytest.raises(ModelSpecError):
            layer.fc_dims

    def test_sufficient_factor_bytes(self):
        layer = LayerSpec(name="fc", kind=LayerKind.FC, param_count=200,
                          param_shape=(10, 20), sf_decomposable=True,
                          output_shape=(20,))
        assert layer.sufficient_factor_bytes(batch_size=4) == 4 * 30 * units.FLOAT32_BYTES

    def test_sf_bytes_rejected_for_non_decomposable(self):
        layer = LayerSpec(name="conv", kind=LayerKind.CONV, param_count=9,
                          param_shape=(1, 1, 3, 3), output_shape=(1, 4, 4))
        with pytest.raises(ModelSpecError):
            layer.sufficient_factor_bytes(4)

    def test_negative_params_rejected(self):
        with pytest.raises(ModelSpecError):
            LayerSpec(name="x", kind=LayerKind.FC, param_count=-1)

    def test_params_on_pool_rejected(self):
        with pytest.raises(ModelSpecError):
            LayerSpec(name="pool", kind=LayerKind.POOL, param_count=10)

    def test_sf_flag_only_on_fc(self):
        with pytest.raises(ModelSpecError):
            LayerSpec(name="conv", kind=LayerKind.CONV, param_count=9,
                      sf_decomposable=True)


class TestSpecBuilder:
    def test_conv_output_shape_tracking(self):
        builder = SpecBuilder("t", input_shape=(3, 32, 32))
        conv = builder.conv("c1", out_channels=16, kernel=3, stride=2, pad=1)
        assert conv.output_shape == (16, 16, 16)

    def test_conv_param_count(self):
        builder = SpecBuilder("t", input_shape=(3, 32, 32))
        conv = builder.conv("c1", out_channels=8, kernel=3)
        assert conv.param_count == 8 * 3 * 3 * 3 + 8

    def test_fc_requires_flat_input(self):
        builder = SpecBuilder("t", input_shape=(3, 8, 8))
        with pytest.raises(ModelSpecError):
            builder.fc("fc", 10)

    def test_conv_requires_spatial_input(self):
        builder = SpecBuilder("t", input_shape=(64,))
        with pytest.raises(ModelSpecError):
            builder.conv("c1", out_channels=8, kernel=3)

    def test_conv_rect_rectangular_kernel(self):
        builder = SpecBuilder("t", input_shape=(4, 17, 17))
        layer = builder.conv_rect("c", out_channels=8, kernel_h=1, kernel_w=7, pad_w=3)
        assert layer.output_shape == (8, 17, 17)
        assert layer.param_count == 8 * 4 * 1 * 7 + 8

    def test_collapsing_convolution_rejected(self):
        builder = SpecBuilder("t", input_shape=(3, 4, 4))
        with pytest.raises(ModelSpecError):
            builder.conv("too-big", out_channels=4, kernel=7)

    def test_flatten_and_fc_dims(self):
        spec = build_toy_spec()
        fc1 = spec.layer("fc1")
        assert fc1.fc_dims == (8 * 8 * 8, 32)

    def test_global_avg_pool_collapses_spatial(self):
        builder = SpecBuilder("t", input_shape=(12, 7, 7))
        layer = builder.global_avg_pool("gap")
        assert layer.output_shape == (12, 1, 1)

    def test_batch_norm_params(self):
        builder = SpecBuilder("t", input_shape=(16, 8, 8))
        layer = builder.batch_norm("bn")
        assert layer.param_count == 32

    def test_concat_channels(self):
        builder = SpecBuilder("t", input_shape=(8, 14, 14))
        layer = builder.concat_channels("cat", (8, 16, 4))
        assert layer.output_shape == (28, 14, 14)


class TestModelSpec:
    def test_duplicate_layer_names_rejected(self):
        layer = LayerSpec(name="dup", kind=LayerKind.ACTIVATION, output_shape=(4,))
        with pytest.raises(ModelSpecError):
            ModelSpec(name="bad", layers=(layer, layer))

    def test_empty_model_rejected(self):
        with pytest.raises(ModelSpecError):
            ModelSpec(name="empty", layers=())

    def test_total_params_sum(self):
        spec = build_toy_spec()
        assert spec.total_params == sum(l.param_count for l in spec.layers)

    def test_fc_plus_conv_params_cover_all(self):
        spec = build_toy_spec()
        assert spec.fc_params + spec.conv_params == spec.total_params

    def test_parameter_layers_only_parameterised(self):
        spec = build_toy_spec()
        assert all(layer.has_parameters for layer in spec.parameter_layers())

    def test_layer_lookup_unknown_raises(self):
        spec = build_toy_spec()
        with pytest.raises(KeyError):
            spec.layer("nonexistent")

    def test_summary_mentions_model_name(self):
        assert "toy" in build_toy_spec().summary()

    def test_flops_positive(self):
        spec = build_toy_spec()
        assert spec.flops_forward > 0
        assert spec.flops_backward > spec.flops_forward


class TestSpecProperties:
    @given(m=st.integers(min_value=1, max_value=2048),
           n=st.integers(min_value=1, max_value=2048),
           batch=st.integers(min_value=1, max_value=512))
    def test_sf_bytes_smaller_than_dense_for_large_layers(self, m, n, batch):
        layer = LayerSpec(name="fc", kind=LayerKind.FC, param_count=m * n,
                          param_shape=(m, n), sf_decomposable=True,
                          output_shape=(n,))
        sf = layer.sufficient_factor_bytes(batch)
        dense = layer.param_bytes
        # SFs win exactly when K(M+N) < MN.
        assert (sf < dense) == (batch * (m + n) < m * n)

    @given(channels=st.integers(min_value=1, max_value=32),
           kernel=st.integers(min_value=1, max_value=5),
           size=st.integers(min_value=8, max_value=32))
    def test_conv_flops_scale_with_output(self, channels, kernel, size):
        builder = SpecBuilder("t", input_shape=(3, size, size))
        layer = builder.conv("c", out_channels=channels, kernel=kernel)
        out_c, out_h, out_w = layer.output_shape
        expected = 2.0 * channels * 3 * kernel * kernel * out_h * out_w
        assert layer.flops_forward == pytest.approx(expected)
