"""Tests for per-layer syncers across all communication schemes."""

import numpy as np
import pytest

from repro.comm.adam import AdamSFServer
from repro.comm.parameter_server import ShardedParameterServer
from repro.comm.quantization import OneBitQuantizer
from repro.comm.sfb import SufficientFactorBroadcaster
from repro.core.cost_model import CommScheme
from repro.core.syncer import Syncer
from repro.exceptions import TrainingError
from repro.nn.layers import Conv2D, Dense
from repro.nn.optim import SGD


@pytest.fixture
def dense_layer(rng):
    layer = Dense("fc", 6, 4, rng=rng)
    x = rng.standard_normal((3, 6)).astype(np.float32)
    layer.forward(x)
    layer.backward(rng.standard_normal((3, 4)).astype(np.float32))
    return layer


def make_ps(layer, num_workers=1, lr=0.1):
    return ShardedParameterServer({layer.name: layer.get_params()},
                                  num_workers=num_workers,
                                  optimizer=SGD(learning_rate=lr))


class TestSyncerValidation:
    def test_ps_scheme_requires_server(self, dense_layer):
        with pytest.raises(TrainingError):
            Syncer(0, dense_layer, CommScheme.PS)

    def test_sfb_scheme_requires_broadcaster_and_optimizer(self, dense_layer):
        with pytest.raises(TrainingError):
            Syncer(0, dense_layer, CommScheme.SFB,
                   sfb=SufficientFactorBroadcaster(1))

    def test_sfb_scheme_requires_dense_layer(self, rng):
        conv = Conv2D("conv", 1, 2, kernel=3, rng=rng)
        with pytest.raises(TrainingError):
            Syncer(0, conv, CommScheme.SFB,
                   sfb=SufficientFactorBroadcaster(1), local_optimizer=SGD(0.1))

    def test_onebit_scheme_requires_quantizer(self, dense_layer):
        with pytest.raises(TrainingError):
            Syncer(0, dense_layer, CommScheme.ONEBIT, ps=make_ps(dense_layer))

    def test_adam_scheme_requires_server(self, dense_layer):
        with pytest.raises(TrainingError):
            Syncer(0, dense_layer, CommScheme.ADAM)


class TestPsSyncer:
    def test_sync_applies_server_update_to_layer(self, dense_layer):
        ps = make_ps(dense_layer, lr=0.1)
        syncer = Syncer(0, dense_layer, CommScheme.PS, ps=ps)
        before = dense_layer.params["weight"].copy()
        grads = dense_layer.get_grads()
        syncer.sync(iteration=0)
        expected = before - 0.1 * grads["weight"]
        np.testing.assert_allclose(dense_layer.params["weight"], expected, rtol=1e-5)

    def test_sync_updates_stats(self, dense_layer):
        syncer = Syncer(0, dense_layer, CommScheme.PS, ps=make_ps(dense_layer))
        stats = syncer.sync(iteration=0)
        assert stats.syncs == 1
        assert stats.bytes_sent > 0
        assert stats.bytes_received > 0

    def test_layer_matches_server_copy_after_sync(self, dense_layer):
        ps = make_ps(dense_layer)
        syncer = Syncer(0, dense_layer, CommScheme.PS, ps=ps)
        syncer.sync(iteration=0)
        server_params = ps.global_params("fc")
        np.testing.assert_allclose(dense_layer.params["weight"],
                                   server_params["weight"])


class TestOneBitSyncer:
    @staticmethod
    def _prepared_layer(seed: int, m: int = 32, n: int = 16) -> Dense:
        """A Dense layer large enough for the quantizer to engage (>= 64 weights)."""
        layer = Dense("fc", m, n, rng=np.random.default_rng(seed))
        rng = np.random.default_rng(seed + 100)
        layer.forward(rng.standard_normal((3, m)).astype(np.float32))
        layer.backward(rng.standard_normal((3, n)).astype(np.float32))
        return layer

    def test_wire_bytes_smaller_than_dense(self):
        dense_layer = self._prepared_layer(seed=1)
        dense_stats = Syncer(0, dense_layer, CommScheme.PS,
                             ps=make_ps(dense_layer)).sync(iteration=0)

        layer2 = self._prepared_layer(seed=1)
        onebit_stats = Syncer(0, layer2, CommScheme.ONEBIT, ps=make_ps(layer2),
                              quantizer=OneBitQuantizer()).sync(iteration=0)
        assert onebit_stats.bytes_sent < dense_stats.bytes_sent

    def test_update_is_lossy(self):
        """The 1-bit path must not produce the exact dense update."""
        exact_layer = self._prepared_layer(seed=5)
        lossy_layer = self._prepared_layer(seed=5)
        Syncer(0, exact_layer, CommScheme.PS, ps=make_ps(exact_layer)).sync(0)
        Syncer(0, lossy_layer, CommScheme.ONEBIT, ps=make_ps(lossy_layer),
               quantizer=OneBitQuantizer()).sync(0)
        assert not np.allclose(exact_layer.params["weight"],
                               lossy_layer.params["weight"])


class TestSfbSyncer:
    def test_two_workers_stay_consistent(self, rng):
        """Two SFB replicas end up with identical parameters after a sync."""
        broadcaster = SufficientFactorBroadcaster(num_workers=2)
        layers = []
        syncers = []
        x = rng.standard_normal((3, 6)).astype(np.float32)
        for worker in range(2):
            layer = Dense("fc", 6, 4, rng=np.random.default_rng(42))
            layer.forward(x + worker)  # different data per worker
            layer.backward(rng.standard_normal((3, 4)).astype(np.float32))
            layers.append(layer)
            syncers.append(Syncer(worker, layer, CommScheme.SFB, sfb=broadcaster,
                                  local_optimizer=SGD(learning_rate=0.1)))
        import threading
        threads = [threading.Thread(target=syncer.sync, args=(0,))
                   for syncer in syncers]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        np.testing.assert_allclose(layers[0].params["weight"],
                                   layers[1].params["weight"], rtol=1e-5)
        np.testing.assert_allclose(layers[0].params["bias"],
                                   layers[1].params["bias"], rtol=1e-5)

    def test_sfb_bytes_below_dense_for_wide_layer(self, rng):
        """For a wide layer and tiny batch, SF traffic beats dense traffic."""
        broadcaster = SufficientFactorBroadcaster(num_workers=2)
        layer = Dense("wide", 256, 256, rng=rng)
        x = rng.standard_normal((2, 256)).astype(np.float32)
        layer.forward(x)
        layer.backward(rng.standard_normal((2, 256)).astype(np.float32))
        syncer = Syncer(0, layer, CommScheme.SFB, sfb=broadcaster,
                        local_optimizer=SGD(0.1))
        import threading

        peer_layer = Dense("wide", 256, 256, rng=np.random.default_rng(0))
        peer_layer.forward(x)
        peer_layer.backward(rng.standard_normal((2, 256)).astype(np.float32))
        peer = Syncer(1, peer_layer, CommScheme.SFB, sfb=broadcaster,
                      local_optimizer=SGD(0.1))
        threads = [threading.Thread(target=s.sync, args=(0,)) for s in (syncer, peer)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        dense_bytes = layer.params["weight"].nbytes
        assert syncer.stats.bytes_sent < dense_bytes


class TestAdamSyncer:
    def test_sync_pulls_full_matrix(self, dense_layer):
        adam = AdamSFServer({dense_layer.name: dense_layer.get_params()},
                            num_workers=1, optimizer=SGD(learning_rate=0.1))
        syncer = Syncer(0, dense_layer, CommScheme.ADAM, adam=adam)
        stats = syncer.sync(iteration=0)
        dense_bytes = sum(p.nbytes for p in dense_layer.params.values())
        assert stats.bytes_received == dense_bytes

    def test_adam_and_ps_updates_agree(self, rng):
        """With one worker, Adam's SF path equals the dense PS update."""
        x = rng.standard_normal((3, 6)).astype(np.float32)
        grad_out = rng.standard_normal((3, 4)).astype(np.float32)
        ps_layer = Dense("fc", 6, 4, rng=np.random.default_rng(9))
        adam_layer = Dense("fc", 6, 4, rng=np.random.default_rng(9))
        for layer in (ps_layer, adam_layer):
            layer.forward(x.copy())
            layer.backward(grad_out.copy())
        Syncer(0, ps_layer, CommScheme.PS, ps=make_ps(ps_layer)).sync(0)
        adam = AdamSFServer({adam_layer.name: adam_layer.get_params()},
                            num_workers=1, optimizer=SGD(learning_rate=0.1))
        Syncer(0, adam_layer, CommScheme.ADAM, adam=adam).sync(0)
        np.testing.assert_allclose(ps_layer.params["weight"],
                                   adam_layer.params["weight"], rtol=1e-5)
