"""Tests for BSP consistency control and the WFBP scheduler."""

import threading
import time

import pytest

from repro.core.consistency import BSPController
from repro.core.wfbp import ScheduleMode, WFBPScheduler
from repro.exceptions import TrainingError


class TestBSPController:
    def test_wait_returns_when_all_syncers_done(self):
        controller = BSPController(num_workers=1, syncer_names=["a", "b"])
        controller.reset_worker(0)
        controller.mark_done(0, "a")
        controller.mark_done(0, "b")
        controller.wait_worker(0, timeout=1.0)

    def test_wait_times_out_when_syncer_missing(self):
        controller = BSPController(num_workers=1, syncer_names=["a", "b"])
        controller.reset_worker(0)
        controller.mark_done(0, "a")
        with pytest.raises(TrainingError, match="b"):
            controller.wait_worker(0, timeout=0.05)

    def test_pending_lists_unfinished_syncers(self):
        controller = BSPController(num_workers=1, syncer_names=["a", "b", "c"])
        controller.reset_worker(0)
        controller.mark_done(0, "b")
        assert controller.pending(0) == ["a", "c"]

    def test_unknown_syncer_rejected(self):
        controller = BSPController(num_workers=1, syncer_names=["a"])
        with pytest.raises(TrainingError):
            controller.mark_done(0, "zzz")

    def test_reset_clears_vector(self):
        controller = BSPController(num_workers=1, syncer_names=["a"])
        controller.reset_worker(0)
        controller.mark_done(0, "a")
        controller.reset_worker(0)
        assert controller.pending(0) == ["a"]

    def test_barrier_synchronises_workers(self):
        controller = BSPController(num_workers=3, syncer_names=["a"])
        release_times = []

        def worker(delay):
            time.sleep(delay)
            controller.barrier(0, timeout=5.0)
            release_times.append(time.monotonic())

        threads = [threading.Thread(target=worker, args=(d,))
                   for d in (0.0, 0.05, 0.1)]
        start = time.monotonic()
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert controller.iterations_completed == 1
        # Nobody passes the barrier before the slowest worker arrives.
        assert min(release_times) - start >= 0.09

    def test_invalid_construction(self):
        with pytest.raises(TrainingError):
            BSPController(num_workers=0, syncer_names=["a"])
        with pytest.raises(TrainingError):
            BSPController(num_workers=1, syncer_names=[])


class TestWFBPScheduler:
    def test_wfbp_jobs_run_concurrently_with_caller(self):
        scheduler = WFBPScheduler(mode=ScheduleMode.WFBP, num_threads=2)
        started = threading.Event()
        release = threading.Event()

        def job():
            started.set()
            release.wait(timeout=5.0)
            return "done"

        scheduler.schedule(job)
        # The job starts while the "compute" thread is still free to proceed.
        assert started.wait(timeout=2.0)
        release.set()
        assert scheduler.wait_all() == ["done"]
        scheduler.shutdown()

    def test_sequential_jobs_deferred_until_wait(self):
        scheduler = WFBPScheduler(mode=ScheduleMode.SEQUENTIAL)
        executed = []
        scheduler.schedule(lambda: executed.append(1))
        scheduler.schedule(lambda: executed.append(2))
        assert executed == []
        scheduler.wait_all()
        assert executed == [1, 2]

    def test_wait_all_propagates_job_errors(self):
        scheduler = WFBPScheduler(mode=ScheduleMode.WFBP, num_threads=1)

        def bad_job():
            raise ValueError("sync exploded")

        scheduler.schedule(bad_job)
        with pytest.raises(TrainingError, match="sync exploded"):
            scheduler.wait_all()
        scheduler.shutdown()

    def test_jobs_scheduled_counter(self):
        scheduler = WFBPScheduler(mode=ScheduleMode.SEQUENTIAL)
        for _ in range(5):
            scheduler.schedule(lambda: None)
        assert scheduler.jobs_scheduled == 5
        scheduler.wait_all()

    def test_context_manager_shuts_down(self):
        with WFBPScheduler(mode=ScheduleMode.WFBP, num_threads=1) as scheduler:
            scheduler.schedule(lambda: 42)
            assert scheduler.wait_all() == [42]
        assert scheduler._executor is None

    def test_invalid_thread_count(self):
        with pytest.raises(TrainingError):
            WFBPScheduler(num_threads=0)

    def test_wfbp_overlap_is_faster_than_sequential(self):
        """With 2 sync threads, two 50 ms jobs overlap under WFBP."""
        def job():
            time.sleep(0.05)

        start = time.monotonic()
        with WFBPScheduler(mode=ScheduleMode.WFBP, num_threads=2) as scheduler:
            scheduler.schedule(job)
            scheduler.schedule(job)
            scheduler.wait_all()
        wfbp_elapsed = time.monotonic() - start

        start = time.monotonic()
        sequential = WFBPScheduler(mode=ScheduleMode.SEQUENTIAL)
        sequential.schedule(job)
        sequential.schedule(job)
        sequential.wait_all()
        sequential_elapsed = time.monotonic() - start
        assert wfbp_elapsed < sequential_elapsed
