"""Tests for the fig_llm experiment (transformer scheme choice x topology).

Pins the acceptance physics the figure exists to show: the untied
vocabulary head picks SFB at every swept bandwidth and topology, while at
least one attention/MLP projection flips scheme across the swept
bandwidths (the timed Algorithm-1 crossover the volumetric variant cannot
see).  Also pins byte-identity of the report across sweep worker counts
and the runner registration.
"""

import pytest

from repro.experiments import fig_llm
from repro.experiments.runner import EXPERIMENTS
from repro.nn.model_zoo import get_model_spec

#: Reduced sweep shared by the tests (module-scoped: one simulation pass).
MODELS = ("nanogpt-12l",)


@pytest.fixture(scope="module")
def result():
    return fig_llm.run_fig_llm(models=MODELS)


class TestDecisionLayers:
    def test_block0_and_head_only(self):
        spec = get_model_spec("nanogpt-12l")
        layers = fig_llm.decision_layers(spec)
        assert layers == ["h0_attn_qkv", "h0_attn_proj", "h0_mlp_fc",
                          "h0_mlp_proj", "lm_head"]

    def test_systems_subset_of_backend_zoo(self):
        names = [system.name for system in fig_llm.llm_systems()]
        assert names == list(fig_llm.FIG_LLM_SYSTEM_NAMES)


class TestDecisions:
    def test_vocab_head_is_sfb_everywhere(self, result):
        """The headline: the giant untied head always favours factors."""
        assert set(result.head_schemes("nanogpt-12l")) == {"sfb"}

    def test_vocab_head_is_sfb_at_10gbe_flat(self, result):
        assert result.decision("nanogpt-12l", "flat", 10.0, "lm_head") == "sfb"

    def test_attention_projection_flips_across_bandwidths(self, result):
        """The crossover: a square projection changes scheme with bandwidth."""
        flips = result.flipping_layers("nanogpt-12l", topology="flat")
        assert "h0_attn_proj" in flips

    def test_projection_prefers_sfb_only_when_constrained(self, result):
        assert result.decision("nanogpt-12l", "flat", 10.0,
                               "h0_attn_proj") == "sfb"
        assert result.decision("nanogpt-12l", "flat", 40.0,
                               "h0_attn_proj") == "ps"

    def test_oversubscription_pulls_in_topology_schemes(self, result):
        """On the 4:1 fabric the projection goes topology-aware, not PS."""
        scheme = result.decision("nanogpt-12l", "4:1-oversub", 10.0,
                                 "h0_attn_proj")
        assert scheme in ("ring", "hierps")

    def test_speedups_positive_for_all_systems(self, result):
        for system in fig_llm.FIG_LLM_SYSTEM_NAMES:
            for bandwidth in fig_llm.FIG_LLM_BANDWIDTHS:
                for label, _, _ in fig_llm.FIG_LLM_TOPOLOGIES:
                    assert result.speedup("nanogpt-12l", system, bandwidth,
                                          label) > 0.0

    def test_sfb_beats_ps_when_constrained(self, result):
        """Factor traffic wins end to end at 10 GbE on both fabrics."""
        for label, _, _ in fig_llm.FIG_LLM_TOPOLOGIES:
            assert result.speedup("nanogpt-12l", "SFB", 10.0, label) > \
                result.speedup("nanogpt-12l", "PS", 10.0, label)


class TestRendering:
    def test_render_structure(self, result):
        rendering = fig_llm.render(result)
        assert rendering.startswith(
            "Transformer/LLM sweep: timed Algorithm-1 choice per FC layer")
        assert "vocab head lm_head" in rendering
        assert "sfb at every swept bandwidth and topology" in rendering
        assert "crossover: h0_attn_proj flips" in rendering
        assert "DES throughput speedup" in rendering

    def test_report_byte_identical_across_jobs(self, result):
        """The report must not depend on the sweep worker count."""
        sequential = fig_llm.run_fig_llm(models=MODELS, jobs=1)
        parallel = fig_llm.run_fig_llm(models=MODELS, jobs=2)
        assert fig_llm.render(sequential) == fig_llm.render(parallel)
        assert fig_llm.render(sequential) == fig_llm.render(result)

    def test_registered_in_runner(self):
        assert "fig_llm" in EXPERIMENTS
