"""Tests for scaling sweeps, convergence models and engine descriptors."""

import pytest

from repro.config import ClusterConfig
from repro.core.wfbp import ScheduleMode
from repro.engines import (
    CAFFE_PS,
    CAFFE_WFBP,
    POSEIDON_CAFFE,
    POSEIDON_TF,
    TF,
    caffe_systems,
    tensorflow_systems,
)
from repro.engines.base import CommMode, Partitioning
from repro.exceptions import ConfigurationError
from repro.simulation.convergence import (
    RESNET152_FINAL_ERROR,
    compare_convergence,
    epochs_to_error,
    resnet152_error_curve,
    time_to_error_hours,
)
from repro.simulation.speedup import (
    bandwidth_sweep,
    compare_systems,
    scaling_curve,
    single_node_reference_seconds,
)


class TestScalingCurve:
    def test_curve_records_every_node_count(self, googlenet_spec):
        curve = scaling_curve(googlenet_spec, POSEIDON_CAFFE, node_counts=(1, 2, 4))
        assert curve.node_counts == [1, 2, 4]
        assert len(curve.speedups) == 3
        assert len(curve.results) == 3

    def test_speedup_at_unknown_node_count_raises(self, googlenet_spec):
        curve = scaling_curve(googlenet_spec, POSEIDON_CAFFE, node_counts=(1, 2))
        with pytest.raises(KeyError):
            curve.speedup_at(64)

    def test_scaling_efficiency_of_linear_curve(self, googlenet_spec):
        curve = scaling_curve(googlenet_spec, POSEIDON_CAFFE, node_counts=(1, 4, 8))
        assert 0.8 <= curve.scaling_efficiency(8) <= 1.0

    def test_single_node_reference_seconds(self, vgg19_spec):
        assert single_node_reference_seconds(vgg19_spec) == pytest.approx(
            32 / 35.5, rel=1e-6)

    def test_compare_systems_keys(self, googlenet_spec):
        curves = compare_systems(googlenet_spec, (CAFFE_PS, POSEIDON_CAFFE),
                                 node_counts=(1, 4))
        assert set(curves) == {"Caffe+PS", "Poseidon (Caffe)"}

    def test_bandwidth_sweep_structure(self, vgg19_spec):
        sweep = bandwidth_sweep(vgg19_spec, CAFFE_WFBP, bandwidths_gbps=(10.0, 40.0),
                                node_counts=(1, 8))
        assert set(sweep) == {10.0, 40.0}
        assert sweep[40.0].speedup_at(8) >= sweep[10.0].speedup_at(8)

    def test_base_cluster_override(self, vgg19_spec):
        base = ClusterConfig(num_workers=1, network_efficiency=1.0)
        curve = scaling_curve(vgg19_spec, CAFFE_WFBP, node_counts=(1, 8),
                              bandwidth_gbps=10.0, base_cluster=base)
        default = scaling_curve(vgg19_spec, CAFFE_WFBP, node_counts=(1, 8),
                                bandwidth_gbps=10.0)
        assert curve.speedup_at(8) >= default.speedup_at(8)


class TestConvergenceModel:
    def test_error_decreases_with_epochs(self):
        curve = resnet152_error_curve(num_nodes=16, epochs=100)
        assert curve.errors[0] > curve.errors[-1]
        assert all(curve.errors[i] >= curve.errors[i + 1] - 1e-9
                   for i in range(len(curve.errors) - 1))

    def test_reaches_paper_error_within_budget(self):
        """16 and 32 nodes reach ~0.24 error in under 90 epochs (Figure 9b)."""
        for nodes in (16, 32):
            epochs = epochs_to_error(nodes, target_error=0.25)
            assert epochs is not None
            assert epochs < 90

    def test_final_error_close_to_paper(self):
        curve = resnet152_error_curve(num_nodes=16, epochs=120)
        assert curve.final_error == pytest.approx(RESNET152_FINAL_ERROR, abs=0.02)

    def test_larger_clusters_slightly_slower_per_epoch(self):
        """Very large effective batches converge a bit slower per epoch."""
        small = resnet152_error_curve(num_nodes=8, epochs=60)
        huge = resnet152_error_curve(num_nodes=128, epochs=60)
        assert huge.final_error >= small.final_error

    def test_error_at_and_epochs_to_reach(self):
        curve = resnet152_error_curve(num_nodes=8, epochs=100)
        assert curve.error_at(0) > 0.9
        assert curve.epochs_to_reach(2.0) == 0

    def test_time_to_error_decreases_with_more_nodes(self):
        hours_8 = time_to_error_hours(8, iteration_seconds=1.8)
        hours_32 = time_to_error_hours(32, iteration_seconds=1.8)
        assert hours_32 < hours_8

    def test_compare_convergence_returns_requested_nodes(self):
        curves = compare_convergence((8, 16))
        assert [nodes for nodes, _ in curves] == [8, 16]

    def test_invalid_arguments_rejected(self):
        with pytest.raises(ConfigurationError):
            resnet152_error_curve(num_nodes=0)
        with pytest.raises(ConfigurationError):
            resnet152_error_curve(num_nodes=4, epochs=0)


class TestSystemDescriptors:
    def test_caffe_systems_registry(self):
        systems = caffe_systems()
        assert set(systems) == {"Caffe+PS", "Caffe+WFBP", "Poseidon (Caffe)"}

    def test_tensorflow_systems_registry(self):
        systems = tensorflow_systems()
        assert set(systems) == {"TF", "TF+WFBP", "Poseidon (TF)"}

    def test_poseidon_uses_hybrid_and_wfbp(self):
        assert POSEIDON_CAFFE.comm is CommMode.HYBRID
        assert POSEIDON_CAFFE.schedule is ScheduleMode.WFBP
        assert POSEIDON_CAFFE.partitioning is Partitioning.FINE

    def test_tf_baseline_is_coarse_without_pull_overlap(self):
        assert TF.partitioning is Partitioning.COARSE
        assert TF.overlap_pull is False

    def test_caffe_ps_does_not_overlap_host_copies(self):
        assert CAFFE_PS.overlap_host_copy is False
        assert CAFFE_PS.schedule is ScheduleMode.SEQUENTIAL

    def test_with_helpers_return_modified_copies(self):
        modified = POSEIDON_CAFFE.with_comm(CommMode.PS)
        assert modified.comm is CommMode.PS
        assert POSEIDON_CAFFE.comm is CommMode.HYBRID
        renamed = POSEIDON_CAFFE.renamed("x")
        assert renamed.name == "x"
        rescheduled = POSEIDON_CAFFE.with_schedule(ScheduleMode.SEQUENTIAL)
        assert rescheduled.schedule is ScheduleMode.SEQUENTIAL
        repartitioned = POSEIDON_CAFFE.with_partitioning(Partitioning.COARSE)
        assert repartitioned.partitioning is Partitioning.COARSE
