"""Equivalence tests for the hot-path rewrites.

Each optimised substrate (GEMM-batched SFB aggregation, strided im2col /
col2im, packed-column Conv2D, in-place parameter-server accumulation, the
allocation-free DES core) is checked against a straightforward reference
implementation copied from the seed revision, and the DES is checked against
a trace recorded from the seed engine so same-time event ordering is
bit-for-bit unchanged.
"""

import numpy as np
import pytest

from repro.comm.parameter_server import ShardedParameterServer
from repro.comm.sfb import SufficientFactorBroadcaster
from repro.nn.layers import Conv2D
from repro.nn.layers.conv import col2im, im2col
from repro.nn.optim import SGD
from repro.nn.sufficient_factors import SufficientFactors, batch_reconstruct
from repro.sim import AllOf, AnyOf, Environment, Interrupt

ATOL = 1e-6
#: np.allclose default relative tolerance (the issue's acceptance criterion is
#: np.allclose with atol=1e-6, which keeps rtol at its 1e-5 default).
RTOL = 1e-5


# -- seed reference implementations ---------------------------------------------

def naive_im2col(inputs, kernel, stride, pad):
    batch, channels, height, width = inputs.shape
    out_h = (height + 2 * pad - kernel) // stride + 1
    out_w = (width + 2 * pad - kernel) // stride + 1
    padded = np.pad(inputs, ((0, 0), (0, 0), (pad, pad), (pad, pad)),
                    mode="constant")
    cols = np.empty((batch, channels, kernel, kernel, out_h, out_w),
                    dtype=inputs.dtype)
    for y in range(kernel):
        y_max = y + stride * out_h
        for x in range(kernel):
            x_max = x + stride * out_w
            cols[:, :, y, x, :, :] = padded[:, :, y:y_max:stride, x:x_max:stride]
    cols = cols.transpose(0, 4, 5, 1, 2, 3).reshape(batch * out_h * out_w, -1)
    return cols, out_h, out_w


def naive_col2im(cols, input_shape, kernel, stride, pad):
    batch, channels, height, width = input_shape
    out_h = (height + 2 * pad - kernel) // stride + 1
    out_w = (width + 2 * pad - kernel) // stride + 1
    cols = cols.reshape(batch, out_h, out_w, channels, kernel, kernel)
    cols = cols.transpose(0, 3, 4, 5, 1, 2)
    padded = np.zeros((batch, channels, height + 2 * pad, width + 2 * pad),
                      dtype=cols.dtype)
    for y in range(kernel):
        y_max = y + stride * out_h
        for x in range(kernel):
            x_max = x + stride * out_w
            padded[:, :, y:y_max:stride, x:x_max:stride] += cols[:, :, y, x, :, :]
    if pad == 0:
        return padded
    return padded[:, :, pad:-pad, pad:-pad]


def naive_aggregate(contributions, aggregation="mean"):
    weight_grad = None
    extra_totals = {}
    for _, factors, extras in contributions:
        dense = factors.reconstruct()
        weight_grad = dense if weight_grad is None else weight_grad + dense
        for key, value in extras.items():
            if key in extra_totals:
                extra_totals[key] = extra_totals[key] + value
            else:
                extra_totals[key] = value.copy()
    if aggregation == "mean":
        count = float(len(contributions))
        weight_grad = weight_grad / count
        extra_totals = {k: v / count for k, v in extra_totals.items()}
    return weight_grad, extra_totals


def make_factors(rng, batch=4, m=16, n=12):
    return SufficientFactors(
        u=rng.standard_normal((batch, m)).astype(np.float32),
        v=rng.standard_normal((batch, n)).astype(np.float32))


# -- SFB aggregation ------------------------------------------------------------

class TestSFBAggregationEquivalence:
    @pytest.mark.parametrize("aggregation", ["sum", "mean"])
    def test_matches_naive(self, rng, aggregation):
        contributions = [
            (w, make_factors(rng), {"bias": rng.standard_normal(12).astype(np.float32)})
            for w in range(5)
        ]
        got_w, got_e = SufficientFactorBroadcaster.aggregate(
            contributions, aggregation=aggregation)
        exp_w, exp_e = naive_aggregate(contributions, aggregation=aggregation)
        np.testing.assert_allclose(got_w, exp_w, atol=ATOL, rtol=RTOL)
        assert set(got_e) == set(exp_e)
        for key in exp_e:
            np.testing.assert_allclose(got_e[key], exp_e[key], atol=ATOL, rtol=RTOL)

    def test_heterogeneous_batch_sizes(self, rng):
        contributions = [(w, make_factors(rng, batch=b), {})
                         for w, b in enumerate([1, 3, 7])]
        got_w, _ = SufficientFactorBroadcaster.aggregate(contributions, "sum")
        exp_w, _ = naive_aggregate(contributions, "sum")
        np.testing.assert_allclose(got_w, exp_w, atol=ATOL, rtol=RTOL)

    def test_aggregate_does_not_mutate_inputs(self, rng):
        contributions = [
            (w, make_factors(rng), {"bias": rng.standard_normal(12).astype(np.float32)})
            for w in range(3)
        ]
        before = [(c[1].u.copy(), c[1].v.copy(), c[2]["bias"].copy())
                  for c in contributions]
        SufficientFactorBroadcaster.aggregate(contributions, "mean")
        for (u, v, b), (_, factors, extras) in zip(before, contributions):
            np.testing.assert_array_equal(u, factors.u)
            np.testing.assert_array_equal(v, factors.v)
            np.testing.assert_array_equal(b, extras["bias"])

    def test_batch_reconstruct_matches_sum(self, rng):
        factors = [make_factors(rng, batch=b) for b in (2, 5)]
        expected = factors[0].reconstruct() + factors[1].reconstruct()
        np.testing.assert_allclose(batch_reconstruct(factors), expected, atol=ATOL, rtol=RTOL)
        out = np.empty_like(expected)
        result = batch_reconstruct(factors, out=out)
        assert result is out
        np.testing.assert_allclose(out, expected, atol=ATOL, rtol=RTOL)


# -- im2col / col2im -------------------------------------------------------------

CONV_CASES = [
    # (B, C, H, W, kernel, stride, pad)
    (2, 3, 8, 8, 3, 1, 1),
    (1, 2, 7, 9, 3, 2, 0),
    (2, 4, 11, 11, 5, 2, 2),
    (3, 1, 6, 6, 2, 2, 0),   # stride == kernel: non-overlapping fast path
    (1, 2, 9, 9, 2, 3, 1),   # stride > kernel
]


class TestIm2colEquivalence:
    @pytest.mark.parametrize("case", CONV_CASES)
    def test_im2col_matches_naive(self, rng, case):
        b, c, h, w, k, s, p = case
        x = rng.standard_normal((b, c, h, w)).astype(np.float32)
        got, oh, ow = im2col(x, k, s, p)
        exp, eoh, eow = naive_im2col(x, k, s, p)
        assert (oh, ow) == (eoh, eow)
        np.testing.assert_array_equal(got, exp)

    @pytest.mark.parametrize("case", CONV_CASES)
    def test_col2im_matches_naive(self, rng, case):
        b, c, h, w, k, s, p = case
        oh = (h + 2 * p - k) // s + 1
        ow = (w + 2 * p - k) // s + 1
        cols = rng.standard_normal((b * oh * ow, c * k * k)).astype(np.float32)
        got = col2im(cols, (b, c, h, w), k, s, p)
        exp = naive_col2im(cols, (b, c, h, w), k, s, p)
        np.testing.assert_allclose(got, exp, atol=ATOL, rtol=RTOL)

    def test_im2col_out_buffer_reused(self, rng):
        x1 = rng.standard_normal((2, 3, 8, 8)).astype(np.float32)
        x2 = rng.standard_normal((2, 3, 8, 8)).astype(np.float32)
        cols1, _, _ = im2col(x1, 3, 1, 1)
        buf = cols1.copy()
        cols2, _, _ = im2col(x2, 3, 1, 1, out=buf)
        assert cols2 is buf
        np.testing.assert_array_equal(cols2, naive_im2col(x2, 3, 1, 1)[0])


class TestConvLayerEquivalence:
    @pytest.mark.parametrize("case", CONV_CASES)
    def test_forward_backward_match_naive_pipeline(self, rng, case):
        b, c, h, w, k, s, p = case
        out_channels = 5
        layer = Conv2D("conv", c, out_channels, kernel=k, stride=s, pad=p,
                       rng=np.random.default_rng(7))
        x = rng.standard_normal((b, c, h, w)).astype(np.float32)

        out = layer.forward(x)
        # reference forward via the naive im2col pipeline
        cols, oh, ow = naive_im2col(x, k, s, p)
        w_mat = layer.params["weight"].reshape(out_channels, -1)
        ref = (cols @ w_mat.T + layer.params["bias"]).reshape(
            b, oh, ow, out_channels).transpose(0, 3, 1, 2)
        np.testing.assert_allclose(out, ref, atol=ATOL, rtol=1e-5)

        grad_out = rng.standard_normal(out.shape).astype(np.float32)
        grad_in = layer.backward(grad_out)
        grad_cols = grad_out.transpose(0, 2, 3, 1).reshape(-1, out_channels)
        ref_gw = (grad_cols.T @ cols).reshape(layer.params["weight"].shape)
        ref_gb = grad_cols.sum(axis=0)
        ref_gi = naive_col2im(grad_cols @ w_mat, x.shape, k, s, p)
        np.testing.assert_allclose(layer.grads["weight"], ref_gw,
                                   atol=1e-4, rtol=1e-5)
        np.testing.assert_allclose(layer.grads["bias"], ref_gb,
                                   atol=1e-4, rtol=1e-5)
        np.testing.assert_allclose(grad_in, ref_gi, atol=1e-5, rtol=1e-5)

    def test_buffer_reuse_across_iterations_is_stable(self, rng):
        layer = Conv2D("conv", 3, 4, kernel=3, pad=1, rng=np.random.default_rng(3))
        x = rng.standard_normal((2, 3, 8, 8)).astype(np.float32)
        g = rng.standard_normal((2, 4, 8, 8)).astype(np.float32)
        layer.forward(x)
        layer.backward(g)
        first_gw = layer.grads["weight"].copy()
        first_gi = layer.backward(g).copy()
        # second iteration with identical inputs reuses the buffers
        layer.forward(x)
        grad_in = layer.backward(g)
        np.testing.assert_array_equal(layer.grads["weight"], first_gw)
        np.testing.assert_array_equal(grad_in, first_gi)

    def test_inference_forward_does_not_clobber_training_cache(self, rng):
        layer = Conv2D("conv", 3, 4, kernel=3, pad=1, rng=np.random.default_rng(3))
        x_train = rng.standard_normal((2, 3, 8, 8)).astype(np.float32)
        x_eval = rng.standard_normal((2, 3, 8, 8)).astype(np.float32)
        g = rng.standard_normal((2, 4, 8, 8)).astype(np.float32)
        layer.forward(x_train)
        layer.backward(g)
        expected = layer.grads["weight"].copy()
        layer.forward(x_train)
        layer.forward(x_eval, training=False)  # must not touch the cache
        layer.backward(g)
        np.testing.assert_array_equal(layer.grads["weight"], expected)


# -- parameter server -----------------------------------------------------------

class TestParameterServerEquivalence:
    @pytest.mark.parametrize("aggregation", ["mean", "sum"])
    def test_accumulation_matches_naive_sum(self, rng, aggregation):
        params = {"fc": {"weight": rng.standard_normal((6, 4)).astype(np.float32),
                         "bias": rng.standard_normal(4).astype(np.float32)}}
        workers = 3
        grads = [{"weight": rng.standard_normal((6, 4)).astype(np.float32),
                  "bias": rng.standard_normal(4).astype(np.float32)}
                 for _ in range(workers)]
        server = ShardedParameterServer(
            params, num_workers=workers, optimizer=SGD(learning_rate=0.1),
            aggregation=aggregation)
        for w, grad in enumerate(grads):
            server.push(w, "fc", grad)
        got = server.pull(0, "fc", min_version=1)

        # naive reference: stack, sum, divide, SGD step
        expected = {}
        for key in params["fc"]:
            total = np.sum([g[key] for g in grads], axis=0)
            if aggregation == "mean":
                total = total / float(workers)
            expected[key] = params["fc"][key] - 0.1 * total
        for key in expected:
            np.testing.assert_allclose(got[key], expected[key], atol=ATOL, rtol=RTOL)

    def test_two_iterations_accumulate_independently(self, rng):
        params = {"fc": {"weight": np.zeros((3, 3), dtype=np.float32)}}
        server = ShardedParameterServer(
            params, num_workers=2, optimizer=SGD(learning_rate=1.0),
            aggregation="mean")
        g1 = {"weight": np.full((3, 3), 2.0, dtype=np.float32)}
        g2 = {"weight": np.full((3, 3), 4.0, dtype=np.float32)}
        server.push(0, "fc", g1)
        server.push(1, "fc", g2)      # mean 3 -> params -3
        server.push(0, "fc", g1)
        server.push(1, "fc", g1)      # mean 2 -> params -5
        got = server.pull(0, "fc", min_version=2)
        np.testing.assert_allclose(got["weight"], -5.0, atol=ATOL, rtol=RTOL)

    def test_apply_hooks_receive_stable_copies(self, rng):
        # Hooks must not see their retained arrays mutate when the internal
        # accumulation buffers are reused on the next iteration.
        params = {"fc": {"weight": np.zeros((2, 2), dtype=np.float32)}}
        server = ShardedParameterServer(params, num_workers=1,
                                        optimizer=SGD(learning_rate=1.0))
        seen = []
        server.add_apply_hook(lambda layer, grads: seen.append(grads["weight"]))
        server.push(0, "fc", {"weight": np.full((2, 2), 1.0, dtype=np.float32)})
        server.push(0, "fc", {"weight": np.full((2, 2), 9.0, dtype=np.float32)})
        np.testing.assert_array_equal(seen[0], np.full((2, 2), 1.0))
        np.testing.assert_array_equal(seen[1], np.full((2, 2), 9.0))

    def test_shared_snapshot_pull_is_read_only_and_consistent(self, rng):
        params = {"fc": {"weight": rng.standard_normal((4, 4)).astype(np.float32)}}
        server = ShardedParameterServer(params, num_workers=1,
                                        optimizer=SGD(learning_rate=0.1))
        server.push(0, "fc", {"weight": np.ones((4, 4), dtype=np.float32)})
        shared_a = server.pull(0, "fc", min_version=1, copy=False)
        shared_b = server.pull(0, "fc", min_version=1, copy=False)
        assert shared_a["weight"] is shared_b["weight"]  # one snapshot per version
        with pytest.raises(ValueError):
            shared_a["weight"][0, 0] = 99.0
        copied = server.pull(0, "fc", min_version=1)
        np.testing.assert_array_equal(copied["weight"], shared_a["weight"])
        copied["weight"][:] = 99.0    # default pull stays mutable + private
        fresh = server.global_params("fc")
        assert not np.allclose(fresh["weight"], 99.0)


# -- SFB board hygiene -----------------------------------------------------------

class TestSFBAutoGarbageCollect:
    def test_board_drops_entry_once_all_workers_collected(self, rng):
        board = SufficientFactorBroadcaster(num_workers=2)
        for w in range(2):
            board.publish(w, "fc6", 0, make_factors(rng))
        assert ("fc6", 0) in board._board
        board.collect(0, "fc6", 0)
        assert ("fc6", 0) in board._board       # worker 1 still needs it
        board.collect(1, "fc6", 0)
        assert ("fc6", 0) not in board._board   # auto-GC'd
        assert board._collected == {}

    def test_board_stays_bounded_over_many_iterations(self, rng):
        board = SufficientFactorBroadcaster(num_workers=1)
        for iteration in range(50):
            board.publish(0, "fc6", iteration, make_factors(rng))
            board.collect(0, "fc6", iteration)
        assert len(board._board) == 0

    def test_manual_garbage_collect_still_works(self, rng):
        board = SufficientFactorBroadcaster(num_workers=2)
        board.publish(0, "fc6", 0, make_factors(rng))
        board.publish(0, "fc6", 7, make_factors(rng))
        assert board.garbage_collect(before_iteration=5) == 1
        assert ("fc6", 7) in board._board


# -- DES determinism --------------------------------------------------------------

#: Trace recorded from the seed (pre-optimisation) engine for the scenario
#: below: same-time events must be processed in exactly this order.
SEED_TRACE = [
    (0.0, "z:0"), (0.0, "z:1"), (0.0, "z:2"), (0.0, "z:3"),
    (1.0, "a"), (1.0, "b"), (1.0, "c"),
    (2.0, "attacker"), (2.0, "a"), (2.0, "b"), (2.0, "c"),
    (2.0, "w:all"), (2.0, "victim:interrupted:stop"),
    (2.25, "victim:after"), (2.5, "w:any"),
    (3.0, "a"), (3.0, "b"), (3.0, "c"), (3.0, "stale"),
]
SEED_EVENTS_PROCESSED = 42


class TestDESDeterminism:
    def test_same_time_ordering_matches_seed_engine(self):
        env = Environment()
        trace = []

        def worker(name, delays):
            for d in delays:
                yield env.timeout(d)
                trace.append((env.now, name))
            return name

        def zero_spinner(name, n):
            for i in range(n):
                yield env.timeout(0)
                trace.append((env.now, f"{name}:{i}"))

        def waiter(name, events):
            yield AllOf(env, events)
            trace.append((env.now, f"{name}:all"))
            yield AnyOf(env, [env.timeout(0.5), env.timeout(1.5)])
            trace.append((env.now, f"{name}:any"))

        def victim():
            try:
                yield env.timeout(100)
            except Interrupt as interrupt:
                trace.append((env.now, f"victim:interrupted:{interrupt.cause}"))
                yield env.timeout(0.25)
                trace.append((env.now, "victim:after"))

        def attacker(process):
            yield env.timeout(2)
            process.interrupt(cause="stop")
            trace.append((env.now, "attacker"))

        def stale(tmo):
            yield env.timeout(3)
            yield tmo  # already processed long ago
            trace.append((env.now, "stale"))

        for name in ("a", "b", "c"):
            env.process(worker(name, [1, 1, 1]))
        env.process(zero_spinner("z", 4))
        e1, e2 = env.timeout(1), env.timeout(2)
        env.process(waiter("w", [e1, e2]))
        v = env.process(victim())
        env.process(attacker(v))
        env.process(stale(env.timeout(0.5)))
        env.run()

        assert trace == SEED_TRACE
        assert env.events_processed == SEED_EVENTS_PROCESSED

    def test_interrupted_process_reregisters_behind_existing_waiters(self):
        # Seed behavior (differentially verified): when an interrupted
        # process re-yields a shared timeout, it re-registers *behind* the
        # waiters that stayed registered, so they resume first.
        env = Environment()
        trace = []

        def p1(t):
            try:
                yield t
                trace.append("p1:normal")
            except Interrupt:
                yield t  # re-register on the same shared timeout
                trace.append("p1:after-interrupt")

        def p2(t):
            yield t
            trace.append("p2")

        def attacker(process):
            yield env.timeout(1)
            process.interrupt()

        shared = env.timeout(5)
        proc1 = env.process(p1(shared))
        env.process(p2(shared))
        env.process(attacker(proc1))
        env.run()
        assert trace == ["p2", "p1:after-interrupt"]

    def test_step_and_run_produce_identical_order(self):
        def build(run_all):
            env = Environment()
            trace = []

            def proc(name, delay):
                yield env.timeout(delay)
                trace.append((env.now, name))
                yield env.timeout(delay)
                trace.append((env.now, name))

            for i, d in enumerate([2, 1, 1, 3]):
                env.process(proc(f"p{i}", d))
            if run_all:
                env.run()
            else:
                from repro.exceptions import SimulationError
                while True:
                    try:
                        env.step()
                    except SimulationError:
                        break
            return trace

        assert build(True) == build(False)


# -- composite-event failure propagation (AllOf/AnyOf bugfix) ---------------------

class TestCompositeFailurePropagation:
    def test_all_of_fails_on_already_processed_failure(self):
        env = Environment()
        failed = env.event()
        failed.fail(RuntimeError("boom"))
        env.step()  # process the failure with nothing waiting
        assert failed.processed

        def proc():
            yield AllOf(env, [env.timeout(1), failed])

        process = env.process(proc())
        env.run()
        assert process.ok is False
        assert isinstance(process.value, RuntimeError)

    def test_any_of_fails_on_already_processed_failure(self):
        env = Environment()
        failed = env.event()
        failed.fail(RuntimeError("boom"))
        env.step()
        assert failed.processed

        def proc():
            yield AnyOf(env, [failed, env.timeout(1)])

        process = env.process(proc())
        env.run()
        assert process.ok is False
        assert isinstance(process.value, RuntimeError)

    def test_all_of_still_succeeds_with_processed_successes(self):
        env = Environment()

        def proc():
            done = env.timeout(1, value="early")
            yield env.timeout(2)
            values = yield AllOf(env, [done, env.timeout(1, value="late")])
            return values

        assert env.run_process(proc()) == ["early", "late"]
