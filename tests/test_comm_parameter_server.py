"""Tests for the functional bulk-synchronous parameter server."""

import threading

import numpy as np
import pytest

from repro.comm.parameter_server import ShardedParameterServer
from repro.exceptions import CommunicationError
from repro.nn.optim import SGD


@pytest.fixture
def initial_params():
    return {
        "fc1": {"weight": np.ones((4, 3), dtype=np.float32),
                "bias": np.zeros((3,), dtype=np.float32)},
        "fc2": {"weight": np.full((3, 2), 2.0, dtype=np.float32)},
    }


def make_server(initial_params, num_workers=2, aggregation="mean", lr=0.1):
    return ShardedParameterServer(
        initial_params, num_workers=num_workers,
        optimizer=SGD(learning_rate=lr), aggregation=aggregation)


class TestPushPull:
    def test_update_applied_after_all_workers_push(self, initial_params):
        server = make_server(initial_params, num_workers=2)
        grad = {"weight": np.ones((4, 3)), "bias": np.ones((3,))}
        server.push(0, "fc1", grad)
        assert server.version("fc1") == 0
        server.push(1, "fc1", grad)
        assert server.version("fc1") == 1

    def test_mean_aggregation_matches_manual_sgd(self, initial_params):
        server = make_server(initial_params, num_workers=2, aggregation="mean", lr=0.1)
        server.push(0, "fc1", {"weight": np.full((4, 3), 2.0), "bias": np.zeros(3)})
        server.push(1, "fc1", {"weight": np.full((4, 3), 4.0), "bias": np.zeros(3)})
        params = server.pull(0, "fc1", min_version=1)
        # mean gradient = 3.0, lr = 0.1 -> weight = 1 - 0.3
        np.testing.assert_allclose(params["weight"], 0.7, rtol=1e-6)

    def test_sum_aggregation(self, initial_params):
        server = make_server(initial_params, num_workers=2, aggregation="sum", lr=0.1)
        server.push(0, "fc1", {"weight": np.full((4, 3), 2.0), "bias": np.zeros(3)})
        server.push(1, "fc1", {"weight": np.full((4, 3), 4.0), "bias": np.zeros(3)})
        params = server.pull(0, "fc1", min_version=1)
        np.testing.assert_allclose(params["weight"], 1.0 - 0.6, rtol=1e-6)

    def test_pull_returns_copy(self, initial_params):
        server = make_server(initial_params, num_workers=1)
        server.push(0, "fc2", {"weight": np.zeros((3, 2))})
        params = server.pull(0, "fc2", min_version=1)
        params["weight"][:] = 99.0
        fresh = server.global_params("fc2")
        assert not np.allclose(fresh["weight"], 99.0)

    def test_pull_blocks_until_version(self, initial_params):
        server = make_server(initial_params, num_workers=2)
        results = {}

        def puller():
            results["params"] = server.pull(0, "fc1", min_version=1, timeout=5.0)

        thread = threading.Thread(target=puller)
        thread.start()
        grad = {"weight": np.ones((4, 3)), "bias": np.zeros(3)}
        server.push(0, "fc1", grad)
        server.push(1, "fc1", grad)
        thread.join(timeout=5.0)
        assert "params" in results

    def test_pull_timeout_raises(self, initial_params):
        server = make_server(initial_params, num_workers=2)
        with pytest.raises(CommunicationError):
            server.pull(0, "fc1", min_version=1, timeout=0.05)

    def test_byte_metering(self, initial_params):
        server = make_server(initial_params, num_workers=1)
        grad = {"weight": np.ones((4, 3), dtype=np.float32),
                "bias": np.zeros(3, dtype=np.float32)}
        pushed = server.push(0, "fc1", grad)
        assert pushed == 4 * 3 * 4 + 3 * 4
        server.pull(0, "fc1", min_version=1)
        assert server.meter.received == pushed
        assert server.meter.sent == pushed

    def test_explicit_nbytes_override(self, initial_params):
        """1-bit pushes report compressed wire sizes while carrying dense data."""
        server = make_server(initial_params, num_workers=1)
        grad = {"weight": np.ones((4, 3)), "bias": np.zeros(3)}
        pushed = server.push(0, "fc1", grad, nbytes=10)
        assert pushed == 10
        assert server.meter.received == 10


class TestValidation:
    def test_unknown_layer_rejected(self, initial_params):
        server = make_server(initial_params)
        with pytest.raises(CommunicationError):
            server.push(0, "nope", {"weight": np.zeros((1, 1))})
        with pytest.raises(CommunicationError):
            server.pull(0, "nope", min_version=0)

    def test_unknown_parameter_rejected(self, initial_params):
        server = make_server(initial_params)
        with pytest.raises(CommunicationError):
            server.push(0, "fc1", {"gamma": np.zeros((4, 3))})

    def test_gradient_shape_mismatch_rejected(self, initial_params):
        server = make_server(initial_params)
        with pytest.raises(CommunicationError):
            server.push(0, "fc1", {"weight": np.zeros((2, 2))})

    def test_too_many_pushes_rejected(self, initial_params):
        server = make_server(initial_params, num_workers=2)
        grad = {"weight": np.zeros((4, 3)), "bias": np.zeros(3)}
        server.push(0, "fc1", grad)
        server.push(1, "fc1", grad)   # triggers apply, resets pending
        server.push(0, "fc1", grad)
        server.push(1, "fc1", grad)
        assert server.version("fc1") == 2

    def test_invalid_configuration(self, initial_params):
        with pytest.raises(CommunicationError):
            ShardedParameterServer(initial_params, num_workers=0)
        with pytest.raises(CommunicationError):
            ShardedParameterServer(initial_params, num_workers=1, aggregation="max")

    def test_apply_hook_invoked(self, initial_params):
        server = make_server(initial_params, num_workers=1)
        seen = []
        server.add_apply_hook(lambda layer, grads: seen.append(layer))
        server.push(0, "fc1", {"weight": np.zeros((4, 3)), "bias": np.zeros(3)})
        assert seen == ["fc1"]

    def test_concurrent_pushes_from_threads(self, initial_params):
        server = make_server(initial_params, num_workers=4)
        grad = {"weight": np.ones((4, 3)), "bias": np.zeros(3)}
        threads = [
            threading.Thread(target=server.push, args=(w, "fc1", grad))
            for w in range(4)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert server.version("fc1") == 1
