"""Tests for the coordinator, the hybrid planner and the Poseidon context."""

import pytest

from repro.config import ClusterConfig, TrainingConfig
from repro.core.coordinator import Coordinator
from repro.core.cost_model import CommScheme
from repro.core.hybrid import HybridCommPlanner
from repro.core.poseidon import PoseidonContext
from repro.exceptions import ConfigurationError
from repro.nn.model_zoo import get_model_spec


@pytest.fixture
def vgg_coordinator(vgg19_spec):
    return Coordinator(vgg19_spec, ClusterConfig(num_workers=8),
                       TrainingConfig(batch_size=32))


class TestCoordinator:
    def test_query_cluster_facts(self, vgg_coordinator):
        assert vgg_coordinator.query("n_worker") == 8
        assert vgg_coordinator.query("n_server") == 8
        assert vgg_coordinator.query("batchsize") == 32

    def test_query_multiple_properties(self, vgg_coordinator):
        workers, servers, batch = vgg_coordinator.query(
            "n_worker", "n_server", "batchsize")
        assert (workers, servers, batch) == (8, 8, 32)

    def test_query_layer_properties(self, vgg_coordinator):
        assert vgg_coordinator.query("layer:fc6:type") == "fc"
        assert vgg_coordinator.query("layer:fc6:width") == 25088
        assert vgg_coordinator.query("layer:fc6:height") == 4096

    def test_query_unknown_property_raises(self, vgg_coordinator):
        with pytest.raises(KeyError):
            vgg_coordinator.query("nonexistent")

    def test_query_requires_a_property(self, vgg_coordinator):
        with pytest.raises(ConfigurationError):
            vgg_coordinator.query()

    def test_update_information(self, vgg_coordinator):
        vgg_coordinator.update_information("straggler_count", 2)
        assert vgg_coordinator.query("straggler_count") == 2

    def test_best_scheme_by_name_and_spec(self, vgg_coordinator, vgg19_spec):
        assert vgg_coordinator.best_scheme("fc6") is CommScheme.SFB
        assert vgg_coordinator.best_scheme(vgg19_spec.layer("conv1_1")) is CommScheme.PS

    def test_scheme_assignments_cover_all_parameter_layers(self, vgg_coordinator,
                                                           vgg19_spec):
        assignments = vgg_coordinator.scheme_assignments()
        assert set(assignments) == {l.name for l in vgg19_spec.parameter_layers()}

    def test_sfb_layers_are_fc_only(self, vgg_coordinator, vgg19_spec):
        sfb = vgg_coordinator.sfb_layers()
        assert {layer.name for layer in sfb} == {"fc6", "fc7", "fc8"}

    def test_fine_grained_partition_by_default(self, vgg_coordinator):
        assert vgg_coordinator.partition.imbalance() < 1.05

    def test_coarse_partition_option(self, vgg19_spec):
        coordinator = Coordinator(vgg19_spec, ClusterConfig(num_workers=8),
                                  TrainingConfig(batch_size=32), fine_grained=False)
        assert coordinator.partition.imbalance() > 1.5


class TestHybridPlanner:
    def test_plan_covers_all_parameter_layers(self, vgg_coordinator, vgg19_spec):
        planner = HybridCommPlanner(vgg_coordinator)
        plan = planner.plan()
        assert len(plan) == len(vgg19_spec.parameter_layers())

    def test_hybrid_saves_bytes_on_vgg(self, vgg_coordinator):
        planner = HybridCommPlanner(vgg_coordinator)
        totals = planner.bytes_per_iteration()
        assert totals["hybrid_bytes"] < totals["ps_bytes"]
        assert totals["savings_fraction"] > 0.5

    def test_force_ps_removes_savings(self, vgg_coordinator):
        planner = HybridCommPlanner(vgg_coordinator)
        decisions = planner.plan(force_scheme=CommScheme.PS)
        totals = planner.bytes_per_iteration(decisions)
        assert totals["savings_fraction"] == pytest.approx(0.0)

    def test_force_sfb_falls_back_to_ps_for_conv(self, vgg_coordinator):
        planner = HybridCommPlanner(vgg_coordinator)
        decisions = planner.plan(force_scheme=CommScheme.SFB)
        conv_decisions = [d for d in decisions if d.layer.startswith("conv")]
        assert all(d.scheme is CommScheme.PS for d in conv_decisions)

    def test_summary_contains_totals(self, vgg_coordinator):
        planner = HybridCommPlanner(vgg_coordinator)
        assert "total per node" in planner.summary()

    def test_decision_savings_non_negative(self, vgg_coordinator):
        planner = HybridCommPlanner(vgg_coordinator)
        assert all(decision.savings_bytes >= 0 for decision in planner.plan())


class TestPoseidonContext:
    def test_plan_assignments_match_algorithm1(self, vgg19_spec):
        context = PoseidonContext(vgg19_spec, ClusterConfig(num_workers=16),
                                  TrainingConfig(batch_size=32))
        plan = context.plan
        assert plan.scheme_for("fc6") is CommScheme.SFB
        assert plan.scheme_for("conv1_1") is CommScheme.PS

    def test_googlenet_reduces_to_ps(self, googlenet_spec):
        context = PoseidonContext(googlenet_spec, ClusterConfig(num_workers=16),
                                  TrainingConfig(batch_size=128))
        assert context.plan.sfb_layer_names == []

    def test_hybrid_disabled_forces_ps(self, vgg19_spec):
        context = PoseidonContext(vgg19_spec, ClusterConfig(num_workers=16),
                                  TrainingConfig(batch_size=32), hybrid_enabled=False)
        assert context.plan.sfb_layer_names == []

    def test_bytes_per_iteration_scheme_comparison(self, vgg19_spec):
        context = PoseidonContext(vgg19_spec, ClusterConfig(num_workers=16),
                                  TrainingConfig(batch_size=32))
        hybrid = context.bytes_per_iteration()
        ps_only = context.bytes_per_iteration(CommScheme.PS)
        assert hybrid < ps_only

    def test_savings_fraction_grows_with_vocabulary(self):
        """VGG19-22K (91% FC) saves a larger traffic fraction than VGG19."""
        cluster = ClusterConfig(num_workers=16)
        vgg = PoseidonContext(get_model_spec("vgg19"), cluster,
                              TrainingConfig(batch_size=32))
        vgg22k = PoseidonContext(get_model_spec("vgg19-22k"), cluster,
                                 TrainingConfig(batch_size=32))
        assert vgg22k.plan.savings_fraction > vgg.plan.savings_fraction

    def test_default_training_config_uses_model_batch(self, googlenet_spec):
        context = PoseidonContext(googlenet_spec, ClusterConfig(num_workers=8))
        assert context.training.batch_size == 128

    def test_describe_mentions_model(self, vgg19_spec):
        context = PoseidonContext(vgg19_spec, ClusterConfig(num_workers=8))
        assert "VGG19" in context.describe()

    def test_plan_is_cached(self, vgg19_spec):
        context = PoseidonContext(vgg19_spec, ClusterConfig(num_workers=8))
        assert context.plan is context.plan
