"""Tests for the flow-level iteration simulator."""

import pytest

from repro.config import ClusterConfig
from repro.core.cost_model import CommScheme
from repro.core.wfbp import ScheduleMode
from repro.engines import (
    ADAM_TF,
    CAFFE_PS,
    CAFFE_WFBP,
    CNTK_1BIT,
    POSEIDON_CAFFE,
    POSEIDON_TF,
    TF,
    TF_WFBP,
)
from repro.engines.base import CommMode, Partitioning
from repro.nn.model_zoo import get_model_spec
from repro.simulation import build_workload, simulate_system
from repro.simulation.speedup import scaling_curve


def cluster(nodes, bandwidth=40.0, **kwargs):
    return ClusterConfig(num_workers=nodes, bandwidth_gbps=bandwidth, **kwargs)


class TestSingleNode:
    def test_single_node_iteration_equals_compute(self, vgg19_spec):
        result = simulate_system(vgg19_spec, POSEIDON_CAFFE, cluster(1))
        assert result.iteration_seconds == pytest.approx(
            result.compute_seconds, rel=1e-6)
        assert result.speedup == pytest.approx(1.0, rel=1e-6)

    def test_caffe_ps_single_node_overhead(self, vgg19_spec):
        """The vanilla PS baseline is slower than plain Caffe even on 1 node."""
        result = simulate_system(vgg19_spec, CAFFE_PS, cluster(1))
        assert result.speedup < 0.75

    def test_gpu_fully_busy_on_single_node(self, vgg19_spec):
        result = simulate_system(vgg19_spec, POSEIDON_CAFFE, cluster(1))
        assert result.gpu_busy_fraction == pytest.approx(1.0, abs=1e-6)

    def test_throughput_definition(self, vgg19_spec):
        result = simulate_system(vgg19_spec, POSEIDON_CAFFE, cluster(4))
        assert result.throughput_images_per_sec == pytest.approx(
            4 * result.batch_size / result.iteration_seconds)


class TestScalingShapes:
    def test_speedup_monotonic_in_nodes(self, vgg19_spec):
        curve = scaling_curve(vgg19_spec, POSEIDON_CAFFE,
                              node_counts=(1, 2, 4, 8), bandwidth_gbps=40.0)
        assert curve.speedups == sorted(curve.speedups)

    def test_speedup_bounded_by_node_count(self, vgg19_spec):
        curve = scaling_curve(vgg19_spec, POSEIDON_CAFFE,
                              node_counts=(2, 8, 16), bandwidth_gbps=40.0)
        for nodes, speedup in zip(curve.node_counts, curve.speedups):
            assert speedup <= nodes + 1e-6

    def test_wfbp_beats_sequential_ps(self, vgg19_spec):
        wfbp = simulate_system(vgg19_spec, CAFFE_WFBP, cluster(16))
        sequential = simulate_system(vgg19_spec, CAFFE_PS, cluster(16))
        assert wfbp.speedup > sequential.speedup

    def test_poseidon_at_least_as_fast_as_ps_only(self, vgg19_spec):
        """Poseidon never underperforms the PS scheme (Section 5.2)."""
        for bandwidth in (10.0, 40.0):
            poseidon = simulate_system(vgg19_spec, POSEIDON_CAFFE,
                                       cluster(16, bandwidth))
            ps_only = simulate_system(vgg19_spec, CAFFE_WFBP, cluster(16, bandwidth))
            assert poseidon.speedup >= ps_only.speedup - 1e-6

    def test_hybcomm_shines_at_low_bandwidth(self, vgg19_spec):
        """At 10 GbE the PS-only system loses half its throughput; Poseidon doesn't."""
        poseidon = simulate_system(vgg19_spec, POSEIDON_CAFFE, cluster(16, 10.0))
        ps_only = simulate_system(vgg19_spec, CAFFE_WFBP, cluster(16, 10.0))
        assert poseidon.speedup > 1.5 * ps_only.speedup
        assert poseidon.speedup > 14.0

    def test_more_bandwidth_never_hurts(self, vgg19_spec):
        slow = simulate_system(vgg19_spec, CAFFE_WFBP, cluster(16, 10.0))
        fast = simulate_system(vgg19_spec, CAFFE_WFBP, cluster(16, 40.0))
        assert fast.speedup >= slow.speedup

    def test_googlenet_poseidon_reduces_to_ps(self, googlenet_spec):
        """GoogLeNet (thin FC, batch 128): the hybrid plan contains no SFB unit."""
        result = simulate_system(googlenet_spec, POSEIDON_CAFFE, cluster(16))
        assert CommScheme.SFB.value not in result.scheme_by_unit.values()

    def test_vgg_poseidon_uses_sfb_for_fc(self, vgg19_spec):
        result = simulate_system(vgg19_spec, POSEIDON_CAFFE, cluster(16))
        assert result.scheme_by_unit["fc6"] == CommScheme.SFB.value
        assert result.scheme_by_unit["conv1_1"] == CommScheme.PS.value


class TestTensorFlowBaseline:
    def test_tf_scales_poorly_on_vgg(self, vgg19_spec):
        """Coarse partitioning + no pull overlap caps TF's VGG19 scaling."""
        tf = simulate_system(vgg19_spec, TF, cluster(16))
        poseidon = simulate_system(vgg19_spec, POSEIDON_TF, cluster(16))
        assert tf.speedup < 0.5 * poseidon.speedup

    def test_tf_wfbp_between_tf_and_poseidon(self, vgg19_spec):
        tf = simulate_system(vgg19_spec, TF, cluster(16))
        tf_wfbp = simulate_system(vgg19_spec, TF_WFBP, cluster(16))
        poseidon = simulate_system(vgg19_spec, POSEIDON_TF, cluster(16))
        assert tf.speedup <= tf_wfbp.speedup <= poseidon.speedup + 1e-6

    def test_tf_hotspot_traffic_imbalanced(self, vgg19_spec):
        result = simulate_system(vgg19_spec, TF, cluster(8))
        traffic = result.per_node_traffic_bytes
        assert max(traffic) > 1.5 * (sum(traffic) / len(traffic))

    def test_fine_partitioning_traffic_balanced(self, vgg19_spec):
        result = simulate_system(vgg19_spec, TF_WFBP, cluster(8))
        traffic = result.per_node_traffic_bytes
        assert max(traffic) == pytest.approx(min(traffic), rel=0.05)

    def test_stall_ordering_matches_figure7(self, vgg19_spec):
        tf = simulate_system(vgg19_spec, TF, cluster(8))
        tf_wfbp = simulate_system(vgg19_spec, TF_WFBP, cluster(8))
        poseidon = simulate_system(vgg19_spec, POSEIDON_TF, cluster(8))
        assert tf.gpu_stall_fraction > tf_wfbp.gpu_stall_fraction >= \
            poseidon.gpu_stall_fraction - 1e-9


class TestAdamAndQuantization:
    def test_adam_creates_hotspot(self, vgg19_spec):
        result = simulate_system(vgg19_spec, ADAM_TF, cluster(8))
        traffic = result.per_node_traffic_bytes
        assert max(traffic) > 2.0 * (sum(traffic) / len(traffic))

    def test_adam_slower_than_poseidon(self, vgg19_spec):
        adam = simulate_system(vgg19_spec, ADAM_TF, cluster(8))
        poseidon = simulate_system(vgg19_spec, POSEIDON_TF, cluster(8))
        assert adam.speedup < poseidon.speedup

    def test_poseidon_traffic_below_dense_ps(self, vgg19_spec):
        dense = simulate_system(vgg19_spec, TF_WFBP, cluster(8))
        poseidon = simulate_system(vgg19_spec, POSEIDON_TF, cluster(8))
        assert poseidon.mean_traffic_gbits < 0.5 * dense.mean_traffic_gbits

    def test_cntk_quantization_lowers_traffic_but_not_ideal_speedup(self, vgg19_spec):
        cntk = simulate_system(vgg19_spec, CNTK_1BIT, cluster(16))
        poseidon = simulate_system(vgg19_spec, POSEIDON_CAFFE, cluster(16))
        assert cntk.mean_traffic_gbits < poseidon.mean_traffic_gbits
        assert cntk.speedup < poseidon.speedup


class TestSimulatorInternals:
    def test_workload_reuse_gives_same_result(self, vgg19_spec):
        workload = build_workload(vgg19_spec)
        a = simulate_system(vgg19_spec, POSEIDON_CAFFE, cluster(8), workload=workload)
        b = simulate_system(vgg19_spec, POSEIDON_CAFFE, cluster(8), workload=workload)
        assert a.iteration_seconds == pytest.approx(b.iteration_seconds, rel=1e-9)

    def test_simulator_is_deterministic(self, googlenet_spec):
        a = simulate_system(googlenet_spec, TF, cluster(8))
        b = simulate_system(googlenet_spec, TF, cluster(8))
        assert a.iteration_seconds == b.iteration_seconds
        assert a.per_node_traffic_bytes == b.per_node_traffic_bytes

    def test_traffic_symmetry_under_fine_ps(self, vgg19_spec):
        """With colocated shards, every node sends as much as it receives."""
        result = simulate_system(vgg19_spec, CAFFE_WFBP, cluster(8))
        assert result.per_node_traffic_bytes  # populated
        # Total cluster traffic is conserved: sent == received overall, and
        # per-node loads are symmetric by construction in the balanced case.
        assert max(result.per_node_traffic_bytes) == pytest.approx(
            min(result.per_node_traffic_bytes), rel=0.05)

    def test_multi_gpu_adds_local_reduction_but_scales(self, googlenet_spec):
        single = simulate_system(googlenet_spec, POSEIDON_CAFFE,
                                 cluster(1, gpus_per_node=1))
        multi = simulate_system(googlenet_spec, POSEIDON_CAFFE,
                                cluster(1, gpus_per_node=4))
        # Per-GPU iteration time barely changes; total throughput is ~4x.
        assert multi.iteration_seconds < 1.2 * single.iteration_seconds
