"""Tests for the fig_compression experiment (compressor x bucket x backend).

Pins the headline crossover the figure exists to show -- an aggressive
sparsifier on the bandwidth-optimal ring substrate beats the paper's
1-bit PS at constrained bandwidth -- plus the runner registration and
the structure of the rendering.
"""

import pytest

from repro.engines.base import CommMode, Partitioning
from repro.experiments import fig_compression
from repro.experiments.runner import EXPERIMENTS

#: Reduced sweep shared by the tests (module-scoped: one simulation pass).
NODES = (8,)
BANDWIDTHS = (1.0,)
VARIANTS = tuple(
    variant for variant in fig_compression.FIG_COMPRESSION_VARIANTS
    if variant[0] in ("PS dense", "1-bit PS", "Ring topk(0.01)",
                      "Ring topk(0.01) +bucket"))


@pytest.fixture(scope="module")
def result():
    return fig_compression.run_fig_compression(
        node_counts=NODES, bandwidths=BANDWIDTHS, variants=VARIANTS)


class TestVariantSystems:
    def test_systems_are_coarse_with_unique_names(self):
        systems = fig_compression.variant_systems()
        names = [system.name for system in systems]
        assert len(names) == len(set(names))
        assert all(system.partitioning is Partitioning.COARSE
                   for system in systems)

    def test_default_variants_cover_both_axes(self):
        variants = fig_compression.FIG_COMPRESSION_VARIANTS
        assert any(bucket is not None for *_, bucket in variants)
        assert any(spec.startswith("topk") for _, _, spec, _ in variants)
        assert any(spec.startswith("powersgd") for _, _, spec, _ in variants)
        assert any(comm is CommMode.ONEBIT for _, comm, _, _ in variants)


class TestCrossover:
    def test_ring_topk_beats_onebit_at_constrained_bandwidth(self, result):
        """The acceptance crossover: sparsified ring > dense 1-bit PS."""
        winner, loser, winner_tput, loser_tput, bandwidth = \
            result.crossover(max(NODES))
        assert winner == "Ring topk(0.01)"
        assert loser == "1-bit PS"
        assert winner_tput > loser_tput
        assert bandwidth == min(BANDWIDTHS)

    def test_compression_beats_dense_everywhere_constrained(self, result):
        nodes = max(NODES)
        dense = result.throughput("PS dense", 1.0, nodes)
        for label in ("1-bit PS", "Ring topk(0.01)"):
            assert result.throughput(label, 1.0, nodes) > dense

    def test_bucketing_preserves_traffic(self, result):
        nodes = max(NODES)
        assert result.traffic_gbits("Ring topk(0.01) +bucket", 1.0, nodes) \
            == pytest.approx(result.traffic_gbits("Ring topk(0.01)", 1.0,
                                                  nodes), rel=1e-12)


class TestRendering:
    def test_render_structure_and_crossover_line(self, result):
        rendering = fig_compression.render(result)
        assert rendering.startswith(
            "Compression zoo: compressor x bucketing x backend x bandwidth")
        assert "throughput (images/s)" in rendering
        assert "mean per-node traffic" in rendering
        assert "crossover at 1 GbE" in rendering
        assert "Ring topk(0.01)" in rendering

    def test_registered_in_runner(self):
        assert "fig_compression" in EXPERIMENTS
