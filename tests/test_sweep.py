"""Tests for the parallel sweep runner.

Covers the generic engine (`repro.sweep`), the experiments facade
(`repro.experiments.sweep`) and the headline determinism property: a
report produced with a process pool is byte-identical to the sequential
one, including when there are more workers than configs.
"""

import pytest

from repro.engines import CAFFE_WFBP, POSEIDON_CAFFE
from repro.experiments import fig5, fig8
from repro.experiments.runner import run_experiments
from repro.experiments.sweep import sweep_scaling_curves
from repro.sweep import (
    SweepTask,
    default_jobs,
    resolve_jobs,
    run_sweep,
    set_default_jobs,
    use_jobs,
)
from repro.simulation.speedup import (
    bandwidth_sweep,
    compare_systems,
    scaling_curve,
)


def _square(x):
    return x * x


def _affine(x, scale=1, offset=0):
    return x * scale + offset


def _boom(x):
    raise RuntimeError(f"task {x} failed")


def _boom_oserror(x):
    raise FileNotFoundError(f"no such config {x}")


def _make_tasks(count, fn=_square):
    return [SweepTask(key=("t", i), fn=fn, args=(i,)) for i in range(count)]


class TestRunSweep:
    def test_serial_results_keyed_and_ordered(self):
        results = run_sweep(_make_tasks(5), jobs=1)
        assert list(results) == [("t", i) for i in range(5)]
        assert results[("t", 3)] == 9

    def test_parallel_matches_serial(self):
        serial = run_sweep(_make_tasks(7), jobs=1)
        parallel = run_sweep(_make_tasks(7), jobs=4)
        assert list(serial) == list(parallel)
        assert serial == parallel

    def test_more_workers_than_tasks(self):
        results = run_sweep(_make_tasks(3), jobs=32)
        assert results == {("t", i): i * i for i in range(3)}

    def test_kwargs_forwarded(self):
        tasks = [SweepTask(key=i, fn=_affine, args=(i,),
                           kwargs={"scale": 10, "offset": 1}) for i in range(3)]
        assert run_sweep(tasks, jobs=2) == {0: 1, 1: 11, 2: 21}

    def test_empty_sweep(self):
        assert run_sweep([], jobs=4) == {}

    def test_duplicate_keys_rejected(self):
        tasks = [SweepTask(key="same", fn=_square, args=(1,)),
                 SweepTask(key="same", fn=_square, args=(2,))]
        with pytest.raises(ValueError, match="duplicate"):
            run_sweep(tasks, jobs=1)

    @pytest.mark.parametrize("jobs", [1, 4])
    def test_task_failure_propagates(self, jobs):
        tasks = _make_tasks(2) + [SweepTask(key="bad", fn=_boom, args=(9,))]
        with pytest.raises(RuntimeError, match="task 9 failed"):
            run_sweep(tasks, jobs=jobs)

    @pytest.mark.parametrize("jobs", [1, 4])
    def test_task_oserror_not_mistaken_for_broken_pool(self, jobs):
        """An OSError raised *by a task* must propagate as-is, not trigger
        the pool-unavailable serial fallback (which would re-run the
        whole sweep and mislabel the failure)."""
        tasks = [SweepTask(key="bad", fn=_boom_oserror, args=(3,)),
                 *_make_tasks(2)]
        with pytest.raises(FileNotFoundError, match="no such config 3"):
            run_sweep(tasks, jobs=jobs)


class TestJobsResolution:
    def test_default_is_serial(self):
        assert default_jobs() == 1

    def test_explicit_jobs_win(self):
        assert resolve_jobs(3) == 3

    def test_zero_means_cpu_count(self):
        assert resolve_jobs(0) >= 1

    def test_use_jobs_restores_previous_default(self):
        before = default_jobs()
        with use_jobs(5):
            assert default_jobs() == 5
            with use_jobs(2):
                assert default_jobs() == 2
            assert default_jobs() == 5
        assert default_jobs() == before

    def test_set_default_jobs_roundtrip(self):
        before = default_jobs()
        try:
            set_default_jobs(7)
            assert default_jobs() == 7
            assert resolve_jobs(None) == 7
        finally:
            set_default_jobs(before)


class TestSpeedupSweeps:
    """The simulation-layer entry points give identical curves either way."""

    def test_scaling_curve_parallel_matches_serial(self, googlenet_spec):
        serial = scaling_curve(googlenet_spec, POSEIDON_CAFFE,
                               node_counts=(1, 4, 8), jobs=1)
        parallel = scaling_curve(googlenet_spec, POSEIDON_CAFFE,
                                 node_counts=(1, 4, 8), jobs=4)
        assert serial.node_counts == parallel.node_counts
        assert serial.speedups == parallel.speedups

    def test_bandwidth_sweep_parallel_matches_serial(self, vgg19_spec):
        kwargs = dict(bandwidths_gbps=(10.0, 40.0), node_counts=(1, 8))
        serial = bandwidth_sweep(vgg19_spec, CAFFE_WFBP, jobs=1, **kwargs)
        parallel = bandwidth_sweep(vgg19_spec, CAFFE_WFBP, jobs=4, **kwargs)
        assert list(serial) == list(parallel)
        for bandwidth in serial:
            assert serial[bandwidth].speedups == parallel[bandwidth].speedups

    def test_compare_systems_parallel_matches_serial(self, googlenet_spec):
        systems = (CAFFE_WFBP, POSEIDON_CAFFE)
        serial = compare_systems(googlenet_spec, systems,
                                 node_counts=(1, 4), jobs=1)
        parallel = compare_systems(googlenet_spec, systems,
                                   node_counts=(1, 4), jobs=4)
        assert list(serial) == list(parallel)
        for name in serial:
            assert serial[name].speedups == parallel[name].speedups

    def test_sweep_scaling_curves_keys(self, googlenet_spec):
        combos = [(googlenet_spec, system, 40.0)
                  for system in (CAFFE_WFBP, POSEIDON_CAFFE)]
        curves = sweep_scaling_curves(combos, node_counts=(1, 4), jobs=2)
        assert list(curves) == combos
        for combo, curve in curves.items():
            assert curve.system_name == combo[1].name
            assert curve.node_counts == [1, 4]


class TestFigureDeterminism:
    """Figure-level and report-level byte-identity across worker counts."""

    def test_fig5_render_identical(self):
        serial = fig5.render(fig5.run_fig5(node_counts=(1, 4), jobs=1))
        parallel = fig5.render(fig5.run_fig5(node_counts=(1, 4), jobs=4))
        assert serial == parallel

    def test_fig8_render_identical(self):
        serial = fig8.render(fig8.run_fig8(node_counts=(1, 4), jobs=1))
        parallel = fig8.render(fig8.run_fig8(node_counts=(1, 4), jobs=4))
        assert serial == parallel

    def test_quick_report_byte_identical_across_jobs(self):
        """The acceptance check: --quick fig5 fig8 fidelity, jobs 1 vs 4."""
        names = ["fig5", "fig8", "fidelity"]
        sequential = run_experiments(names, quick=True, jobs=1)
        parallel = run_experiments(names, quick=True, jobs=4)
        assert sequential == parallel

    def test_report_identical_with_more_workers_than_configs(self):
        """jobs far above the config count changes nothing."""
        sequential = run_experiments(["fig9"], quick=True, jobs=1)
        oversubscribed = run_experiments(["fig9"], quick=True, jobs=64)
        assert sequential == oversubscribed
