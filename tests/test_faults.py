"""Fault model unit tests: plans, injector, detector, and the analytic model.

Covers the fault subsystem below the trainer:

* :class:`repro.core.faults.FaultPlan` construction, seeded sampling and
  the fire-once :class:`~repro.core.faults.FaultInjector` semantics;
* the :class:`~repro.core.faults.FailureDetector` heartbeat/lease board
  and its one-shot abort fan-out;
* the closed-form Young--Daly checkpoint model and straggler-excess model
  shared by both simulation engines;
* the engines themselves: default fault axes are a byte-identical no-op,
  the cost-vs-MTBF frontier is monotone, relaxed policies mask stragglers,
  and the DES and fluid engines agree within the documented envelope;
* the ``fig_faults`` experiment rendering.
"""

import math

import pytest
from hypothesis import given, settings, strategies as st

from repro.config import ClusterConfig
from repro.core.faults import (
    CrashFault,
    FailureDetector,
    FaultInjector,
    FaultPlan,
    PushPullFault,
    SlowdownFault,
    effective_straggler_fraction,
    fault_overhead_factor,
    straggler_excess_seconds,
    young_daly_interval,
)
from repro.core.wfbp import ScheduleMode
from repro.engines.base import CommMode, Partitioning, SystemConfig
from repro.exceptions import ConfigurationError, TransientFault, WorkerFailure
from repro.simulation.fluid import simulate_fluid
from repro.simulation.throughput import simulate_system


def _system(name="sys", comm=CommMode.PS):
    return SystemConfig(name=name, engine="poseidon",
                        schedule=ScheduleMode.WFBP,
                        partitioning=Partitioning.FINE, comm=comm)


# -- FaultPlan -----------------------------------------------------------------
class TestFaultPlan:
    def test_empty_plan_is_empty(self):
        assert FaultPlan().is_empty
        assert not FaultPlan(crashes=(CrashFault(0, 1),)).is_empty

    def test_crash_iteration_picks_first(self):
        plan = FaultPlan(crashes=(CrashFault(1, 5), CrashFault(1, 2)))
        assert plan.crash_iteration(1) == 2
        assert plan.crash_iteration(0) is None

    def test_slow_factor_compounds_overlapping_slowdowns(self):
        plan = FaultPlan(slowdowns=(
            SlowdownFault(0, start_iteration=1, duration=3, factor=2.0),
            SlowdownFault(0, start_iteration=2, duration=1, factor=3.0),
        ))
        assert plan.slow_factor(0, 0) == 1.0
        assert plan.slow_factor(0, 1) == 2.0
        assert plan.slow_factor(0, 2) == 6.0
        assert plan.slow_factor(0, 4) == 1.0
        assert plan.slow_factor(1, 2) == 1.0

    def test_transient_failures_sum_per_step(self):
        plan = FaultPlan(transients=(PushPullFault(0, 3, failures=2),
                                     PushPullFault(0, 3, failures=1)))
        assert plan.transient_failures(0, 3) == 3
        assert plan.transient_failures(0, 2) == 0

    def test_random_is_deterministic_in_seed(self):
        a = FaultPlan.random(seed=11, num_workers=4, iterations=8)
        b = FaultPlan.random(seed=11, num_workers=4, iterations=8)
        assert a == b
        assert a != FaultPlan.random(seed=12, num_workers=4, iterations=8)

    @given(seed=st.integers(0, 10_000))
    @settings(max_examples=25, deadline=None)
    def test_random_respects_bounds(self, seed):
        plan = FaultPlan.random(seed=seed, num_workers=3, iterations=6)
        assert len(plan.crashes) <= 1
        for crash in plan.crashes:
            assert 0 <= crash.worker_id < 3
            assert 1 <= crash.iteration < 6
        for slow in plan.slowdowns:
            assert slow.start_iteration + slow.duration <= 6
            assert slow.factor >= 1.0
        for transient in plan.transients:
            assert 0 <= transient.iteration < 6
            assert 1 <= transient.failures <= 2

    def test_random_rejects_degenerate_shapes(self):
        with pytest.raises(ConfigurationError):
            FaultPlan.random(seed=0, num_workers=0, iterations=5)
        with pytest.raises(ConfigurationError):
            FaultPlan.random(seed=0, num_workers=2, iterations=0)


# -- FaultInjector -------------------------------------------------------------
class TestFaultInjector:
    def test_crash_fires_exactly_once(self):
        injector = FaultInjector(FaultPlan(crashes=(CrashFault(1, 2),)))
        injector.begin_step(1, 1)  # before the scheduled step: no-op
        with pytest.raises(WorkerFailure) as excinfo:
            injector.begin_step(1, 2)
        assert excinfo.value.worker_id == 1
        assert excinfo.value.iteration == 2
        # After restart the replayed step runs fault-free.
        injector.begin_step(1, 2)

    def test_transients_consumed_then_exhausted(self):
        plan = FaultPlan(transients=(PushPullFault(0, 1, failures=2),))
        injector = FaultInjector(plan)
        for _ in range(2):
            with pytest.raises(TransientFault):
                injector.before_sync(0, 1)
        injector.before_sync(0, 1)  # budget consumed: clean from now on
        injector.before_sync(1, 1)  # other workers never affected

    def test_empty_plan_hooks_are_noops(self):
        injector = FaultInjector(FaultPlan())
        injector.begin_step(0, 0)
        injector.before_sync(0, 0)


# -- FailureDetector -----------------------------------------------------------
class _Abortable:
    def __init__(self):
        self.aborts = []
        self.cleared = 0

    def abort(self, exc):
        self.aborts.append(exc)

    def clear_abort(self):
        self.cleared += 1


class TestFailureDetector:
    def test_mark_dead_fans_out_once(self):
        detector = FailureDetector(num_workers=3)
        primitive = _Abortable()
        detector.register(primitive)
        detector.register(primitive)  # duplicate registration ignored
        exc = WorkerFailure("boom", worker_id=1)
        assert detector.mark_dead(1, exc)
        assert not detector.mark_dead(1, exc)  # second declaration: no-op
        assert primitive.aborts == [exc]
        assert detector.is_dead(1)
        assert detector.dead_workers() == frozenset({1})

    def test_revive_clears_dead_set_and_aborts(self):
        detector = FailureDetector(num_workers=2)
        primitive = _Abortable()
        detector.register(primitive)
        detector.mark_dead(0, WorkerFailure("boom", worker_id=0))
        detector.revive_all()
        assert not detector.is_dead(0)
        assert primitive.cleared == 1

    def test_expired_leases_track_heartbeats(self):
        detector = FailureDetector(num_workers=2, lease_seconds=10.0)
        detector.beat(0, step=0)
        detector.beat(1, step=0)
        now = __import__("time").monotonic()
        assert detector.expired_leases(now) == []
        assert sorted(detector.expired_leases(now + 11.0)) == [0, 1]
        detector.mark_dead(1, WorkerFailure("boom", worker_id=1))
        assert detector.expired_leases(now + 11.0) == [0]  # dead not re-reported


# -- closed-form model ---------------------------------------------------------
class TestAnalyticModel:
    def test_young_daly_formula(self):
        assert young_daly_interval(5.0, 3600.0) == pytest.approx(
            math.sqrt(2 * 5.0 * 3600.0))
        assert young_daly_interval(0.0, 3600.0) == math.inf
        with pytest.raises(ConfigurationError):
            young_daly_interval(5.0, 0.0)

    def test_overhead_factor_defaults_to_exactly_one(self):
        assert fault_overhead_factor(None, None, 0.0) == 1.0
        assert fault_overhead_factor(None, None, 5.0) == 1.0

    def test_overhead_factor_pays_checkpoints_without_failures(self):
        # Interval explicitly configured, MTBF None: still pay C/I.
        assert fault_overhead_factor(None, 100.0, 5.0) == pytest.approx(1.05)

    def test_overhead_monotone_decreasing_in_mtbf(self):
        factors = [fault_overhead_factor(mtbf, None, 5.0)
                   for mtbf in (600.0, 3600.0, 86_400.0)]
        assert factors == sorted(factors, reverse=True)
        assert all(f > 1.0 for f in factors)

    @given(mtbf=st.floats(60.0, 1e6), interval=st.floats(1.0, 1e5))
    @settings(max_examples=50, deadline=None)
    def test_young_daly_never_loses_to_fixed_interval(self, mtbf, interval):
        cost = 5.0
        optimal = fault_overhead_factor(mtbf, None, cost)
        fixed = fault_overhead_factor(mtbf, interval, cost)
        assert optimal <= fixed + 1e-12

    def test_overhead_factor_rejects_bad_inputs(self):
        with pytest.raises(ConfigurationError):
            fault_overhead_factor(3600.0, None, -1.0)
        with pytest.raises(ConfigurationError):
            fault_overhead_factor(-5.0, None, 1.0)
        with pytest.raises(ConfigurationError):
            fault_overhead_factor(3600.0, -1.0, 1.0)

    def test_straggler_fraction_quantizes_to_whole_workers(self):
        assert effective_straggler_fraction(0.0, 8) == 0.0
        assert effective_straggler_fraction(0.1, 8) == pytest.approx(1 / 8)
        assert effective_straggler_fraction(0.25, 8) == pytest.approx(0.25)
        assert effective_straggler_fraction(1.0, 8) == 1.0
        with pytest.raises(ConfigurationError):
            effective_straggler_fraction(1.5, 8)

    def test_straggler_excess_policy_ordering(self):
        kwargs = dict(compute_seconds=2.0, fraction=0.25, factor=3.0,
                      num_workers=8)
        barrier = straggler_excess_seconds(staleness=0, **kwargs)
        ssp = straggler_excess_seconds(staleness=2, **kwargs)
        loose = straggler_excess_seconds(staleness=50, **kwargs)
        free = straggler_excess_seconds(is_async=True, **kwargs)
        # BSP pays the full max excess; async only the mean; ssp between.
        assert barrier == pytest.approx((3.0 - 1.0) * 2.0)
        assert free == pytest.approx(0.25 * (3.0 - 1.0) * 2.0)
        assert free < ssp < barrier
        assert loose == pytest.approx(free, rel=0.1)

    def test_straggler_excess_degenerate_cases(self):
        assert straggler_excess_seconds(2.0, 0.0, 3.0, 8) == 0.0
        assert straggler_excess_seconds(2.0, 0.5, 1.0, 8) == 0.0
        assert straggler_excess_seconds(0.0, 0.5, 3.0, 8) == 0.0
        with pytest.raises(ConfigurationError):
            straggler_excess_seconds(2.0, 0.5, 0.5, 8)
        with pytest.raises(ConfigurationError):
            straggler_excess_seconds(2.0, 0.5, 3.0, 8, staleness=-1)


# -- fault axes in the engines -------------------------------------------------
class TestSimulatedFaults:
    def _simulate(self, spec, system, engine, nodes=8):
        cluster = ClusterConfig(num_workers=nodes, bandwidth_gbps=10.0)
        if engine == "fluid":
            return simulate_fluid(spec, system, cluster)
        return simulate_system(spec, system, cluster, engine="des")

    @pytest.mark.parametrize("engine", ["des", "fluid"])
    def test_default_fault_axes_are_byte_identical_noop(self, tiny_model_spec,
                                                        engine):
        plain = self._simulate(tiny_model_spec, _system(), engine)
        explicit = self._simulate(tiny_model_spec,
                                  _system().with_faults(), engine)
        assert plain.iteration_seconds == explicit.iteration_seconds
        assert plain.per_node_traffic_bytes == explicit.per_node_traffic_bytes

    @pytest.mark.parametrize("engine", ["des", "fluid"])
    def test_cost_vs_mtbf_frontier_monotone(self, tiny_model_spec, engine):
        base = self._simulate(tiny_model_spec, _system(), engine)
        seconds = [
            self._simulate(
                tiny_model_spec,
                _system(name=f"m{mtbf}").with_faults(
                    mtbf_seconds=mtbf, checkpoint_cost_seconds=5.0),
                engine).iteration_seconds
            for mtbf in (600.0, 3600.0, 86_400.0)
        ]
        # Flakier clusters pay strictly more; everything costs more than
        # the fault-free baseline.
        assert seconds == sorted(seconds, reverse=True)
        assert all(s > base.iteration_seconds for s in seconds)

    def test_checkpoint_overhead_identical_across_engines(self, tiny_model_spec):
        # The checkpoint/restart axis uses the same closed form in both
        # engines, so their *relative* overhead agrees exactly.
        system = _system().with_faults(mtbf_seconds=3600.0,
                                       checkpoint_cost_seconds=5.0)
        for engine in ("des", "fluid"):
            base = self._simulate(tiny_model_spec, _system(), engine)
            faulty = self._simulate(tiny_model_spec, system, engine)
            ratio = faulty.iteration_seconds / base.iteration_seconds
            assert ratio == pytest.approx(
                fault_overhead_factor(3600.0, None, 5.0), rel=1e-9)

    @pytest.mark.parametrize("engine", ["des", "fluid"])
    def test_relaxed_policies_mask_stragglers(self, tiny_model_spec, engine):
        def seconds(policy):
            system = _system(name=policy).with_policy(policy).with_faults(
                straggler_fraction=0.25, straggler_factor=4.0)
            return self._simulate(tiny_model_spec, system, engine
                                  ).iteration_seconds

        bsp, ssp, free = seconds("bsp"), seconds("ssp-4"), seconds("async")
        assert ssp < bsp
        assert free <= ssp * (1.0 + 1e-9)

    def test_engines_agree_within_straggler_envelope(self, tiny_model_spec):
        # The fluid straggler model is a first-order UPPER bound on the
        # DES (it ignores the extra communication overlap a slowed worker
        # gains), documented to agree within ~35% on <= 32-node configs.
        system = _system().with_faults(straggler_fraction=0.25,
                                       straggler_factor=2.0)
        des = self._simulate(tiny_model_spec, system, "des")
        fluid = self._simulate(tiny_model_spec, system, "fluid")
        assert fluid.iteration_seconds >= des.iteration_seconds * (1 - 1e-9)
        rel = (fluid.iteration_seconds - des.iteration_seconds) \
            / des.iteration_seconds
        assert rel <= 0.35


# -- the fig_faults experiment -------------------------------------------------
class TestFigFaults:
    @pytest.fixture(scope="class")
    def result(self):
        from repro.experiments import fig_faults

        return fig_faults.run_fig_faults(
            node_counts=(8,),
            schemes=((CommMode.PS, "PS"),),
            mtbfs=(None, 3600.0, 600.0),
            intervals=(None, 120.0),
            stragglers=((0.0, 1.0), (0.25, 4.0)),
            policies=("bsp", "ssp-2", "async"),
            jobs=1)

    def test_frontier_monotone_and_above_one(self, result):
        frontier = result.mtbf_frontier("PS", None, nodes=8)
        overheads = [overhead for _, overhead in frontier]
        assert overheads == sorted(overheads, reverse=True)
        assert all(overhead > 1.0 for overhead in overheads)

    def test_young_daly_beats_fixed_interval(self, result):
        for mtbf in (3600.0, 600.0):
            assert result.overhead("PS", mtbf, None, 8) <= \
                result.overhead("PS", mtbf, 120.0, 8) + 1e-12

    def test_policies_mask_stragglers(self, result):
        severity = (0.25, 4.0)
        bsp = result.straggler_slowdown("bsp", severity, 8)
        ssp = result.straggler_slowdown("ssp-2", severity, 8)
        free = result.straggler_slowdown("async", severity, 8)
        assert free <= ssp <= bsp
        assert bsp > 1.0

    def test_render_carries_smoke_marker(self, result):
        from repro.experiments import fig_faults

        text = fig_faults.render(result)
        assert text.startswith("Fault frontier")
        assert "Young--Daly" in text
        assert "straggler slowdown factor" in text

    def test_registered_in_runner(self):
        from repro.experiments import runner

        assert "fig_faults" in runner.EXPERIMENTS
