"""Tests for cluster and training configuration objects."""

import pytest

from repro.config import (
    BandwidthPreset,
    ClusterConfig,
    GpuModel,
    TESLA_K80,
    TITAN_X,
    TrainingConfig,
)
from repro.exceptions import ConfigurationError


class TestBandwidthPreset:
    def test_values_in_gbps(self):
        assert BandwidthPreset.GBE_40.value == 40.0

    def test_bits_per_second(self):
        assert BandwidthPreset.GBE_10.bits_per_second == 10e9


class TestGpuModel:
    def test_compute_seconds(self):
        gpu = GpuModel(effective_flops=1e12)
        assert gpu.compute_seconds(2e12) == pytest.approx(2.0)

    def test_compute_seconds_rejects_negative(self):
        with pytest.raises(ConfigurationError):
            TITAN_X.compute_seconds(-1)

    def test_k80_slower_than_titan(self):
        assert TESLA_K80.effective_flops < TITAN_X.effective_flops


class TestClusterConfig:
    def test_servers_default_to_workers(self):
        cluster = ClusterConfig(num_workers=6)
        assert cluster.num_servers == 6

    def test_explicit_server_count_preserved(self):
        cluster = ClusterConfig(num_workers=6, num_servers=2)
        assert cluster.num_servers == 2

    def test_effective_bandwidth_below_line_rate(self):
        cluster = ClusterConfig(num_workers=2, bandwidth_gbps=10)
        assert cluster.effective_bandwidth_bps < cluster.bandwidth_bps
        assert cluster.effective_bandwidth_bps == pytest.approx(
            10e9 * cluster.network_efficiency)

    def test_with_workers_updates_colocated_servers(self):
        cluster = ClusterConfig(num_workers=4)
        grown = cluster.with_workers(16)
        assert grown.num_workers == 16
        assert grown.num_servers == 16

    def test_with_workers_keeps_dedicated_servers(self):
        cluster = ClusterConfig(num_workers=4, num_servers=2, colocate_servers=False)
        grown = cluster.with_workers(8)
        assert grown.num_servers == 2

    def test_with_bandwidth(self):
        cluster = ClusterConfig(num_workers=4).with_bandwidth(10)
        assert cluster.bandwidth_gbps == 10

    def test_total_gpus(self):
        assert ClusterConfig(num_workers=4, gpus_per_node=8).total_gpus == 32

    @pytest.mark.parametrize("kwargs", [
        {"num_workers": 0},
        {"num_workers": 2, "num_servers": 0},
        {"num_workers": 2, "bandwidth_gbps": 0},
        {"num_workers": 2, "gpus_per_node": 0},
        {"num_workers": 2, "kv_pair_bytes": 0},
        {"num_workers": 2, "network_efficiency": 0.0},
        {"num_workers": 2, "network_efficiency": 1.5},
    ])
    def test_invalid_configurations_rejected(self, kwargs):
        with pytest.raises(ConfigurationError):
            ClusterConfig(**kwargs)


class TestTrainingConfig:
    def test_defaults_valid(self):
        cfg = TrainingConfig()
        assert cfg.batch_size == 32

    @pytest.mark.parametrize("kwargs", [
        {"batch_size": 0},
        {"learning_rate": 0.0},
        {"momentum": 1.0},
        {"momentum": -0.1},
        {"iterations": -1},
    ])
    def test_invalid_hyperparameters_rejected(self, kwargs):
        with pytest.raises(ConfigurationError):
            TrainingConfig(**kwargs)
