"""Tests for supporting infrastructure: messages, reports, logging, runner CLI,
exceptions and the package surface."""

import logging

import numpy as np
import pytest

import repro
from repro import exceptions
from repro.comm.message import ByteMeter, Message, MessageKind, payload_nbytes
from repro.experiments import paper_reference
from repro.experiments.report import format_series, format_table, ratio_string
from repro.experiments.runner import main as runner_main
from repro.logging_util import enable_console_logging, get_logger
from repro.nn.sufficient_factors import SufficientFactors


class TestMessage:
    def test_payload_nbytes_array(self):
        assert payload_nbytes(np.zeros((4, 4), dtype=np.float32)) == 64

    def test_payload_nbytes_nested_dict(self):
        payload = {"a": np.zeros(10, dtype=np.float32),
                   "b": [np.zeros(5, dtype=np.float32)]}
        assert payload_nbytes(payload) == 60

    def test_payload_nbytes_sufficient_factors(self, rng):
        factors = SufficientFactors(u=rng.standard_normal((2, 3)).astype(np.float32),
                                    v=rng.standard_normal((2, 4)).astype(np.float32))
        assert payload_nbytes(factors) == factors.nbytes

    def test_payload_nbytes_none(self):
        assert payload_nbytes(None) == 0

    def test_message_computes_size_from_payload(self):
        message = Message(kind=MessageKind.DENSE_GRADIENT, layer="fc", iteration=0,
                          src="worker-0", dst="server",
                          payload=np.zeros(100, dtype=np.float32))
        assert message.nbytes == 400

    def test_message_explicit_size_preserved(self):
        message = Message(kind=MessageKind.QUANTIZED_GRADIENT, layer="fc",
                          iteration=0, src="w", dst="s", payload=None, nbytes=13)
        assert message.nbytes == 13

    def test_message_ids_unique(self):
        a = Message(MessageKind.CONTROL, "fc", 0, "w", "s")
        b = Message(MessageKind.CONTROL, "fc", 0, "w", "s")
        assert a.message_id != b.message_id


class TestByteMeter:
    def test_directional_accounting(self):
        meter = ByteMeter()
        meter.record(100, "sent", tag="push")
        meter.record(40, "received", tag="pull")
        assert meter.sent == 100
        assert meter.received == 40
        assert meter.total == 140
        assert meter.by_tag == {"push": 100, "pull": 40}

    def test_invalid_direction_rejected(self):
        with pytest.raises(ValueError):
            ByteMeter().record(10, "sideways")

    def test_snapshot_contains_tags(self):
        meter = ByteMeter()
        meter.record(2 ** 20, "sent", tag="sfb")
        snapshot = meter.snapshot()
        assert snapshot["sent"] == 2 ** 20
        assert snapshot["tag:sfb"] == 2 ** 20
        assert meter.total_megabytes == pytest.approx(1.0)


class TestReportHelpers:
    def test_format_table_alignment_and_title(self):
        table = format_table(["name", "value"], [("a", 1.5), ("bb", 22.25)],
                             title="T")
        lines = table.splitlines()
        assert lines[0] == "T"
        assert "name" in lines[1]
        assert "1.50" in table and "22.25" in table

    def test_format_series(self):
        series = format_series("label", [1, 2], [1.0, 2.5])
        assert series == "label: 1=1.0 2=2.5"

    def test_ratio_string_with_and_without_reference(self):
        assert "paper: 2.00" in ratio_string(1.5, 2.0)
        assert "n/a" in ratio_string(1.5, None)


class TestPaperReference:
    def test_reported_speedup_lookup(self):
        assert paper_reference.reported_speedup("fig5", "VGG19-22K", "Caffe+WFBP") == 21.5
        assert paper_reference.reported_speedup("fig6", "Inception-V3", "TF") == 20.0
        assert paper_reference.reported_speedup("fig5", "nope", "x") is None

    def test_table3_reference_contains_all_models(self):
        assert set(paper_reference.TABLE3_MODELS) == {
            "CIFAR-10 quick", "GoogLeNet", "Inception-V3", "VGG19", "VGG19-22K",
            "ResNet-152"}


class TestLogging:
    def test_get_logger_namespaced(self):
        assert get_logger("something").name == "repro.something"
        assert get_logger("repro.simulation").name == "repro.simulation"

    def test_enable_console_logging_idempotent(self):
        enable_console_logging()
        enable_console_logging()
        root = logging.getLogger("repro")
        handlers = [h for h in root.handlers if isinstance(h, logging.StreamHandler)]
        assert len(handlers) == 1


class TestExceptions:
    @pytest.mark.parametrize("exc", [
        exceptions.ConfigurationError,
        exceptions.ModelSpecError,
        exceptions.CommunicationError,
        exceptions.PartitionError,
        exceptions.SimulationError,
        exceptions.TrainingError,
        exceptions.ShapeError,
    ])
    def test_all_errors_derive_from_repro_error(self, exc):
        assert issubclass(exc, exceptions.ReproError)
        with pytest.raises(exceptions.ReproError):
            raise exc("boom")


class TestPackageSurface:
    def test_version_string(self):
        assert repro.__version__.count(".") == 2

    def test_top_level_exports(self):
        for name in ("PoseidonContext", "ClusterConfig", "TrainingConfig",
                     "CommScheme", "BandwidthPreset"):
            assert hasattr(repro, name)

    def test_core_exports_extensions(self):
        from repro.core import SSPClock, StalenessBoundedQueue  # noqa: F401


class TestRunnerCli:
    def test_cli_runs_selected_experiment(self, capsys, tmp_path):
        output = tmp_path / "report.txt"
        exit_code = runner_main(["table1", "--quick", "--output", str(output)])
        assert exit_code == 0
        captured = capsys.readouterr().out
        assert "Table 1" in captured
        assert output.read_text().startswith("=== table1")

    def test_cli_unknown_experiment_raises(self):
        with pytest.raises(KeyError):
            runner_main(["does-not-exist"])
