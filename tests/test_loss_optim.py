"""Tests for the loss function and the SGD optimiser."""

import numpy as np
import pytest
from hypothesis import given, strategies as st
from hypothesis.extra import numpy as hnp

from repro.exceptions import ConfigurationError, ShapeError
from repro.nn.loss import SoftmaxCrossEntropyLoss, softmax
from repro.nn.model_zoo import build_mlp_network
from repro.nn.optim import SGD


class TestSoftmax:
    def test_rows_sum_to_one(self):
        logits = np.random.default_rng(0).standard_normal((5, 7))
        probs = softmax(logits)
        np.testing.assert_allclose(probs.sum(axis=1), 1.0, rtol=1e-6)

    def test_invariant_to_constant_shift(self):
        logits = np.random.default_rng(0).standard_normal((3, 4))
        np.testing.assert_allclose(softmax(logits), softmax(logits + 100.0), rtol=1e-6)

    @given(hnp.arrays(np.float64, (4, 6), elements=st.floats(-50, 50)))
    def test_probabilities_bounded(self, logits):
        probs = softmax(logits)
        assert np.all(probs >= 0) and np.all(probs <= 1)


class TestCrossEntropy:
    def test_perfect_prediction_low_loss(self):
        loss_fn = SoftmaxCrossEntropyLoss()
        logits = np.array([[10.0, -10.0], [-10.0, 10.0]])
        labels = np.array([0, 1])
        loss, _ = loss_fn.forward(logits, labels)
        assert loss < 1e-3

    def test_uniform_prediction_loss_is_log_classes(self):
        loss_fn = SoftmaxCrossEntropyLoss()
        logits = np.zeros((4, 10))
        labels = np.arange(4)
        loss, _ = loss_fn.forward(logits, labels)
        assert loss == pytest.approx(np.log(10), rel=1e-6)

    def test_gradient_matches_numeric(self):
        loss_fn = SoftmaxCrossEntropyLoss()
        rng = np.random.default_rng(3)
        logits = rng.standard_normal((3, 5))
        labels = rng.integers(0, 5, size=3)
        _, grad = loss_fn.forward(logits, labels)
        eps = 1e-5
        for i in (0, 1):
            for j in (0, 2, 4):
                perturbed = logits.copy()
                perturbed[i, j] += eps
                loss_plus, _ = loss_fn.forward(perturbed, labels)
                perturbed[i, j] -= 2 * eps
                loss_minus, _ = loss_fn.forward(perturbed, labels)
                numeric = (loss_plus - loss_minus) / (2 * eps)
                assert numeric == pytest.approx(grad[i, j], abs=1e-4)

    def test_gradient_rows_sum_to_zero(self):
        loss_fn = SoftmaxCrossEntropyLoss()
        rng = np.random.default_rng(3)
        logits = rng.standard_normal((6, 4))
        labels = rng.integers(0, 4, size=6)
        _, grad = loss_fn.forward(logits, labels)
        np.testing.assert_allclose(grad.sum(axis=1), 0.0, atol=1e-7)

    def test_label_out_of_range_rejected(self):
        loss_fn = SoftmaxCrossEntropyLoss()
        with pytest.raises(ShapeError):
            loss_fn.forward(np.zeros((2, 3)), np.array([0, 3]))

    def test_shape_mismatch_rejected(self):
        loss_fn = SoftmaxCrossEntropyLoss()
        with pytest.raises(ShapeError):
            loss_fn.forward(np.zeros((2, 3)), np.array([0, 1, 2]))

    def test_accuracy_and_error_complementary(self):
        logits = np.array([[1.0, 0.0], [0.0, 1.0], [1.0, 0.0], [1.0, 0.0]])
        labels = np.array([0, 1, 1, 0])
        acc = SoftmaxCrossEntropyLoss.accuracy(logits, labels)
        err = SoftmaxCrossEntropyLoss.error_rate(logits, labels)
        assert acc == pytest.approx(0.75)
        assert acc + err == pytest.approx(1.0)


class TestSGD:
    def test_plain_sgd_step(self):
        param = np.array([1.0, 2.0])
        sgd = SGD(learning_rate=0.1)
        sgd.apply("p", param, np.array([1.0, -1.0]))
        np.testing.assert_allclose(param, [0.9, 2.1])

    def test_momentum_accumulates(self):
        param = np.zeros(1)
        sgd = SGD(learning_rate=0.1, momentum=0.9)
        grad = np.array([1.0])
        sgd.apply("p", param, grad)
        first = param.copy()
        sgd.apply("p", param, grad)
        second_step = param - first
        assert abs(second_step[0]) > abs(first[0])

    def test_weight_decay_pulls_towards_zero(self):
        param = np.array([1.0])
        sgd = SGD(learning_rate=0.1, weight_decay=0.5)
        sgd.apply("p", param, np.array([0.0]))
        assert param[0] < 1.0

    def test_shape_mismatch_rejected(self):
        sgd = SGD(learning_rate=0.1)
        with pytest.raises(ConfigurationError):
            sgd.apply("p", np.zeros(3), np.zeros(4))

    def test_invalid_hyperparameters(self):
        with pytest.raises(ConfigurationError):
            SGD(learning_rate=0.0)
        with pytest.raises(ConfigurationError):
            SGD(learning_rate=0.1, momentum=1.0)
        with pytest.raises(ConfigurationError):
            SGD(learning_rate=0.1, weight_decay=-1.0)

    def test_step_network_reduces_loss(self):
        network = build_mlp_network(input_dim=10, hidden_dims=(16,), num_classes=3,
                                    seed=0)
        rng = np.random.default_rng(0)
        x = rng.standard_normal((64, 10)).astype(np.float32)
        y = rng.integers(0, 3, size=64)
        sgd = SGD(learning_rate=0.1)
        first_loss = network.train_step(x, y)
        for _ in range(30):
            network.train_step(x, y)
            sgd.step_network(network)
        final_loss = network.train_step(x, y)
        assert final_loss < first_loss

    def test_reset_clears_momentum(self):
        sgd = SGD(learning_rate=0.1, momentum=0.9)
        param = np.zeros(1)
        sgd.apply("p", param, np.array([1.0]))
        sgd.reset()
        assert sgd._velocity == {}
