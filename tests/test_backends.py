"""Tests for the pluggable communication-backend layer.

Covers the registry (resolution, duplicate rejection), the Algorithm-1
cost interface (including the hybrid decision-boundary property), the two
new backends (ring all-reduce, hierarchical PS) across both halves of the
system -- functional trainer and flow simulator -- and the backend
comparison sweep.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.comm.backend import (
    CommBackend,
    FlowPlan,
    TrainerContext,
    get_backend,
    hybrid_candidates,
    hybrid_choice,
    register_backend,
    registered_backends,
    unregister_backend,
)
from repro.comm.hierarchical import HierarchicalParameterServer, HierPSSyncer
from repro.comm.ring import RingAllReducer, RingSyncer
from repro.config import ClusterConfig, TrainingConfig
from repro.core.cost_model import (
    CommScheme,
    CostModel,
    ps_combined_cost,
    sfb_worker_cost,
)
from repro.engines import HIERARCHICAL_PS, RING_ALLREDUCE
from repro.exceptions import CommunicationError, ConfigurationError, TrainingError
from repro.data import make_linearly_separable, shard_dataset
from repro.nn.layers import Dense
from repro.nn.model_zoo import build_mlp_network, get_model_spec
from repro.nn.optim import SGD
from repro.parallel import DistributedTrainer, assign_schemes, simulate_synchronous_sgd
from repro.simulation.throughput import simulate_system

NUM_WORKERS = 3
BATCH = 8


class TestRegistry:
    def test_all_seven_schemes_registered(self):
        names = set(registered_backends())
        assert {"ps", "sfb", "onebit", "adam", "ring", "hierps"} <= names

    def test_resolution_by_enum_and_by_name(self):
        assert get_backend(CommScheme.RING) is get_backend("ring")
        assert get_backend(CommScheme.PS).scheme is CommScheme.PS

    def test_unknown_scheme_rejected(self):
        with pytest.raises(ConfigurationError):
            get_backend("carrier-pigeon")

    def test_duplicate_registration_rejected(self):
        class Dummy(CommBackend):
            scheme = CommScheme.PS
            flow_plan = FlowPlan()

            def cost(self, m, n, num_workers, num_servers, batch_size,
                     bandwidth_bps=None, topology=None):
                return 0.0

            def build_substrate(self, initial_layers, ctx):
                return None

            def make_syncer(self, layer, substrate, resources, ctx):
                return None

        with pytest.raises(ConfigurationError):
            register_backend(Dummy())

    def test_new_backend_becomes_a_trainer_mode(self):
        class Pigeon(CommBackend):
            scheme = CommScheme.PS  # reuse PS cost/syncers under a new name
            flow_plan = FlowPlan()

            @property
            def name(self):
                return "pigeon"

            def cost(self, m, n, num_workers, num_servers, batch_size,
                     bandwidth_bps=None, topology=None):
                return ps_combined_cost(m, n, num_workers, num_servers)

            def build_substrate(self, initial_layers, ctx):
                return None

            def make_syncer(self, layer, substrate, resources, ctx):
                return None

        register_backend(Pigeon())
        try:
            network = build_mlp_network(input_dim=8, hidden_dims=(8,),
                                        num_classes=4, seed=0)
            assignment = assign_schemes(network, "pigeon", 2, 2, 8)
            assert set(assignment.schemes.values()) == {CommScheme.PS}
        finally:
            unregister_backend("pigeon")

    def test_wire_bytes_is_cost_in_bytes(self):
        backend = get_backend(CommScheme.PS)
        assert backend.wire_bytes(100, 10, 8, 8, 32) == \
            backend.cost(100, 10, 8, 8, 32) * 4


class TestAssignSchemesValidation:
    @pytest.fixture
    def network(self):
        return build_mlp_network(input_dim=8, hidden_dims=(8,), num_classes=4,
                                 seed=0)

    def test_zero_workers_rejected(self, network):
        with pytest.raises(ConfigurationError):
            assign_schemes(network, "ps", 0, 1, 8)

    def test_zero_servers_rejected(self, network):
        with pytest.raises(ConfigurationError):
            assign_schemes(network, "ps", 1, 0, 8)

    def test_zero_batch_rejected(self, network):
        with pytest.raises(ConfigurationError):
            assign_schemes(network, "ps", 1, 1, 0)

    def test_ring_mode_assigns_ring_everywhere(self, network):
        assignment = assign_schemes(network, "ring", 4, 4, 8)
        assert set(assignment.schemes.values()) == {CommScheme.RING}

    def test_hierps_mode_assigns_hierps_everywhere(self, network):
        assignment = assign_schemes(network, "hierps", 4, 4, 8)
        assert set(assignment.schemes.values()) == {CommScheme.HIERPS}


class TestHybridDecisionBoundary:
    """Algorithm 1 must pick the cheapest hybrid-candidate backend."""

    def test_candidates_are_exact_schemes_only(self):
        schemes = {backend.scheme for backend in hybrid_candidates()}
        assert schemes == {CommScheme.PS, CommScheme.SFB}

    def test_tie_goes_to_sfb(self):
        # Pick M, N, P1, P2 so the costs tie exactly, then solve for K:
        # 2K(P1-1)(M+N) == 2MN(P1+P2-2)/P2.
        m = n = 128
        p1 = p2 = 8
        ps = ps_combined_cost(m, n, p1, p2)
        k = int(ps / (2 * (p1 - 1) * (m + n)))
        assert sfb_worker_cost(m, n, k, p1) == ps  # exact crossover
        assert hybrid_choice(m, n, p1, p2, k) is CommScheme.SFB
        assert hybrid_choice(m, n, p1, p2, k + 1) is CommScheme.PS

    @settings(max_examples=200, deadline=None)
    @given(
        m=st.integers(min_value=1, max_value=4096),
        n=st.integers(min_value=1, max_value=4096),
        p1=st.integers(min_value=2, max_value=64),
        p2=st.integers(min_value=1, max_value=64),
        k=st.integers(min_value=1, max_value=512),
    )
    def test_chosen_cost_is_minimal_among_candidates(self, m, n, p1, p2, k):
        chosen = hybrid_choice(m, n, p1, p2, k, sf_eligible=True)
        chosen_cost = get_backend(chosen).cost(m, n, p1, p2, k)
        for backend in hybrid_candidates():
            assert chosen_cost <= backend.cost(m, n, p1, p2, k)

    @settings(max_examples=100, deadline=None)
    @given(
        m=st.integers(min_value=1, max_value=2048),
        n=st.integers(min_value=1, max_value=2048),
        p1=st.integers(min_value=2, max_value=32),
        k=st.integers(min_value=1, max_value=256),
    )
    def test_matches_cost_model_best_scheme(self, m, n, p1, k):
        """The registry-driven choice equals CostModel.best_scheme."""
        from repro.nn.spec import LayerKind, LayerSpec

        layer = LayerSpec(name="fc", kind=LayerKind.FC, param_count=m * n,
                          param_shape=(m, n), sf_decomposable=True)
        model = CostModel(ClusterConfig(num_workers=p1), batch_size=k)
        assert model.best_scheme(layer) is hybrid_choice(m, n, p1, p1, k)


class TestCostModelDispatch:
    def test_ring_and_hierps_costs_exposed(self):
        ring = get_backend(CommScheme.RING)
        hier = get_backend(CommScheme.HIERPS)
        # Ring equals the colocated sharded-PS combined cost (both are
        # bandwidth optimal): 4MN(P-1)/P.
        assert ring.cost(100, 50, 8, 8, 32) == ps_combined_cost(100, 50, 8, 8)
        assert ring.cost(100, 50, 1, 1, 32) == 0.0
        # Hierarchical hotspot: max(rack fan, root fan) full exchanges.
        assert hier.cost(10, 10, 16, 16, 32) == 2.0 * 100 * 4  # R=4, racks=4

    def test_scheme_cost_params_routes_through_registry(self):
        from repro.nn.spec import LayerKind, LayerSpec

        layer = LayerSpec(name="fc", kind=LayerKind.FC, param_shape=(64, 32),
                          flops_forward=0.0, flops_backward=0.0)
        model = CostModel(ClusterConfig(num_workers=8), batch_size=16)
        assert model.scheme_cost_params(layer, CommScheme.RING) == \
            get_backend(CommScheme.RING).cost(64, 32, 8, 8, 16)


class TestRingAllReducer:
    def test_single_worker_is_identity_with_zero_bytes(self):
        ring = RingAllReducer(1)
        grads = {"weight": np.ones((4, 4), dtype=np.float32)}
        reduced, sent, received = ring.allreduce(0, "fc", 0, grads)
        assert sent == received == 0
        np.testing.assert_array_equal(reduced["weight"], grads["weight"])

    def test_reduction_is_mean_in_worker_id_order(self):
        import threading

        ring = RingAllReducer(3)
        grads = [{"w": np.full((2, 2), float(wid + 1), dtype=np.float32)}
                 for wid in range(3)]
        results = [None] * 3

        def worker(wid):
            results[wid] = ring.allreduce(wid, "fc", 0, grads[wid])[0]

        threads = [threading.Thread(target=worker, args=(wid,)) for wid in range(3)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        expected = np.full((2, 2), 2.0, dtype=np.float32)  # mean of 1, 2, 3
        for reduced in results:
            np.testing.assert_array_equal(reduced["w"], expected)

    def test_wire_bytes_are_bandwidth_optimal_fraction(self):
        ring = RingAllReducer(4)
        assert ring.wire_bytes(1000) == int(1000 * 2 * 3 / 4)

    def test_double_contribution_rejected(self):
        ring = RingAllReducer(2)
        grads = {"w": np.zeros(4, dtype=np.float32)}
        import threading

        t = threading.Thread(
            target=lambda: ring.allreduce(1, "fc", 0, grads))
        t.start()
        ring.allreduce(0, "fc", 0, grads)
        t.join()
        with pytest.raises(CommunicationError):
            # iteration 0 already complete and collected
            ring.allreduce(0, "fc", 0, grads, timeout=0.2)


class TestHierarchicalParameterServer:
    def make_server(self, num_workers, rack_size, lr=0.1):
        params = {"fc": {"weight": np.zeros((2, 2), dtype=np.float32)}}
        return HierarchicalParameterServer(
            params, num_workers, rack_size=rack_size,
            optimizer=SGD(learning_rate=lr))

    def test_topology(self):
        server = self.make_server(6, rack_size=4)
        assert server.num_racks == 2
        assert server.rack_members(0) == [0, 1, 2, 3]
        assert server.rack_members(1) == [4, 5]
        assert server.leader_of(1) == 4

    def test_mean_aggregation_matches_flat_ps(self):
        """Rack-summed mean equals the flat PS mean update."""
        from repro.comm.parameter_server import ShardedParameterServer

        num_workers = 5
        grads = [np.full((2, 2), float(wid + 1), dtype=np.float32)
                 for wid in range(num_workers)]
        flat = ShardedParameterServer(
            {"fc": {"weight": np.zeros((2, 2), dtype=np.float32)}},
            num_workers, optimizer=SGD(learning_rate=0.1))
        hier = self.make_server(num_workers, rack_size=2)
        for wid in range(num_workers):
            flat.push(wid, "fc", {"weight": grads[wid]})
            hier.push(wid, "fc", {"weight": grads[wid]})
        flat_params = flat.global_params("fc")["weight"]
        hier_params = hier.global_params("fc")["weight"]
        np.testing.assert_allclose(hier_params, flat_params, rtol=1e-6)
        assert hier.version("fc") == 1

    def test_double_push_rejected(self):
        server = self.make_server(4, rack_size=4)
        server.push(0, "fc", {"weight": np.zeros((2, 2), dtype=np.float32)})
        with pytest.raises(CommunicationError):
            server.push(0, "fc", {"weight": np.zeros((2, 2), dtype=np.float32)})

    def test_invalid_shapes_rejected(self):
        with pytest.raises(CommunicationError):
            HierarchicalParameterServer({}, num_workers=0)
        with pytest.raises(CommunicationError):
            HierarchicalParameterServer({}, num_workers=2, rack_size=0)


class TestNewSyncers:
    @pytest.fixture
    def dense_layer(self, rng):
        layer = Dense("fc", 6, 4, rng=rng)
        x = rng.standard_normal((3, 6)).astype(np.float32)
        layer.forward(x)
        layer.backward(rng.standard_normal((3, 4)).astype(np.float32))
        return layer

    def test_ring_syncer_requires_substrate(self, dense_layer):
        with pytest.raises(TrainingError):
            RingSyncer(0, dense_layer, None, SGD(0.1))

    def test_ring_syncer_single_worker_matches_local_sgd(self, dense_layer):
        expected = dense_layer.params["weight"] - \
            0.1 * dense_layer.grads["weight"]
        syncer = RingSyncer(0, dense_layer, RingAllReducer(1), SGD(0.1))
        stats = syncer.sync(iteration=0)
        np.testing.assert_allclose(dense_layer.params["weight"], expected,
                                   rtol=1e-6)
        assert stats.syncs == 1

    def test_hierps_syncer_matches_ps_update(self, rng):
        x = rng.standard_normal((3, 6)).astype(np.float32)
        grad_out = rng.standard_normal((3, 4)).astype(np.float32)
        layers = []
        for _ in range(2):
            layer = Dense("fc", 6, 4, rng=np.random.default_rng(7))
            layer.forward(x.copy())
            layer.backward(grad_out.copy())
            layers.append(layer)
        from repro.comm.parameter_server import ShardedParameterServer
        from repro.core.syncer import Syncer

        ps = ShardedParameterServer({"fc": layers[0].get_params()}, 1,
                                    optimizer=SGD(learning_rate=0.1))
        Syncer(0, layers[0], CommScheme.PS, ps=ps).sync(0)
        hier = HierarchicalParameterServer({"fc": layers[1].get_params()}, 1,
                                           optimizer=SGD(learning_rate=0.1))
        HierPSSyncer(0, layers[1], hier).sync(0)
        np.testing.assert_allclose(layers[0].params["weight"],
                                   layers[1].params["weight"], rtol=1e-6)


@pytest.fixture
def trainer_setup():
    train_x, train_y, test_x, test_y = make_linearly_separable(
        num_train=180, num_test=60, input_dim=16, num_classes=4, seed=1)
    shards = shard_dataset(train_x, train_y, NUM_WORKERS, seed=2)
    config = TrainingConfig(batch_size=BATCH, learning_rate=0.05, iterations=6,
                            seed=5)

    def factory():
        return build_mlp_network(input_dim=16, hidden_dims=(32, 16),
                                 num_classes=4, seed=21)

    def provider(iteration, worker):
        rng = np.random.default_rng(10_000 + iteration * 31 + worker)
        images, labels = shards[worker]
        indices = rng.choice(images.shape[0], size=BATCH, replace=False)
        return images[indices], labels[indices]

    return factory, shards, config, provider


class TestNewTrainerModes:
    @pytest.mark.parametrize("mode", ["ring", "hierps"])
    def test_modes_train_and_stay_consistent(self, trainer_setup, mode):
        factory, shards, config, _ = trainer_setup
        trainer = DistributedTrainer(factory, NUM_WORKERS, shards, config,
                                     mode=mode)
        history = trainer.train(4)
        assert len(history.losses) == 4
        assert np.isfinite(history.losses).all()
        assert trainer.replica_states_close()

    @pytest.mark.parametrize("mode", ["ring", "hierps"])
    def test_modes_match_serial_emulation(self, trainer_setup, mode):
        """Both new schemes are exact: they reproduce synchronous SGD."""
        factory, shards, config, provider = trainer_setup
        trainer = DistributedTrainer(factory, NUM_WORKERS, shards, config,
                                     mode=mode, batch_provider=provider)
        history = trainer.train(5)
        reference = factory()
        serial_losses = simulate_synchronous_sgd(
            reference, provider, NUM_WORKERS, 5, config)
        np.testing.assert_allclose(history.losses, serial_losses, atol=1e-4)

    def test_ring_bytes_are_bandwidth_optimal_fraction(self, trainer_setup):
        """Ring wire volume is 2(P-1)/P of the dense gradient per direction.

        The flat PS syncer's ``bytes_sent`` counts exactly one dense push
        per layer, so the ring/PS sent ratio must equal ``2(P-1)/P``."""
        factory, shards, config, provider = trainer_setup
        ps = DistributedTrainer(factory, NUM_WORKERS, shards, config,
                                mode="ps", batch_provider=provider).train(3)
        ring = DistributedTrainer(factory, NUM_WORKERS, shards, config,
                                  mode="ring", batch_provider=provider).train(3)
        assert ring.bytes_sent == ring.bytes_received
        expected_ratio = 2 * (NUM_WORKERS - 1) / NUM_WORKERS
        assert ring.bytes_sent / ps.bytes_sent == pytest.approx(
            expected_ratio, rel=1e-3)

    def test_hierps_trainer_substrate_exposed(self, trainer_setup):
        factory, shards, config, _ = trainer_setup
        trainer = DistributedTrainer(factory, NUM_WORKERS, shards, config,
                                     mode="hierps")
        substrate = trainer.substrate(CommScheme.HIERPS)
        assert isinstance(substrate, HierarchicalParameterServer)
        assert trainer.parameter_server is None


class TestNewSimulatorSystems:
    @pytest.mark.parametrize("system,scheme", [(RING_ALLREDUCE, "ring"),
                                               (HIERARCHICAL_PS, "hierps")])
    def test_simulation_produces_sane_speedups(self, system, scheme):
        spec = get_model_spec("googlenet")
        for nodes in (1, 4, 8):
            result = simulate_system(spec, system,
                                     ClusterConfig(num_workers=nodes))
            assert 0.0 < result.speedup <= nodes + 1e-9
            if nodes > 1:
                assert set(result.scheme_by_unit.values()) == {scheme}

    def test_ring_scales_near_linearly_on_conv_model(self):
        spec = get_model_spec("googlenet")
        result = simulate_system(spec, RING_ALLREDUCE,
                                 ClusterConfig(num_workers=16))
        assert result.speedup > 14.0

    def test_hierps_reduces_cross_rack_flows_on_conv_model(self):
        """Rack aggregation must beat the coarse per-tensor baseline at scale."""
        from repro.engines import TF

        spec = get_model_spec("googlenet")
        cluster = ClusterConfig(num_workers=32, bandwidth_gbps=10.0)
        hier = simulate_system(spec, HIERARCHICAL_PS, cluster)
        coarse = simulate_system(spec, TF.with_schedule(HIERARCHICAL_PS.schedule),
                                 cluster)
        assert hier.speedup > coarse.speedup


class TestBackendSweep:
    def test_all_seven_schemes_in_sweep(self):
        from repro.experiments import fig_backends

        result = fig_backends.run_fig_backends(
            node_counts=(2, 8), bandwidths=(40.0,), models=("vgg19",))
        assert result.scheme_names == [
            "PS", "SFB", "HybComm", "1-bit PS", "Adam",
            "Ring-AllReduce", "Hierarchical-PS"]
        for scheme in result.scheme_names:
            curve = result.curve("VGG19", scheme, 40.0)
            assert curve.node_counts == [2, 8]
            assert all(np.isfinite(curve.speedups))
        rendering = fig_backends.render(result)
        assert "Ring-AllReduce" in rendering
        assert "Hierarchical-PS" in rendering
