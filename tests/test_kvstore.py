"""Tests for KV-store partitioning (fine-grained vs. coarse)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro import units
from repro.core.kvstore import (
    chunk_layer,
    partition_coarse_grained,
    partition_fine_grained,
)
from repro.exceptions import PartitionError
from repro.nn.model_zoo import get_model_spec
from repro.nn.spec import LayerKind, LayerSpec, ModelSpec, SpecBuilder


def small_model(fc_sizes=(1000, 2000, 500)):
    builder = SpecBuilder("small", input_shape=(64,))
    for index, width in enumerate(fc_sizes):
        builder.fc(f"fc{index}", width)
    return builder.build()


class TestFineGrainedPartition:
    def test_total_bytes_preserved(self, vgg19_spec):
        partition = partition_fine_grained(vgg19_spec, num_shards=8)
        assert partition.total_bytes == vgg19_spec.total_param_bytes

    def test_no_pair_exceeds_kv_size(self, vgg19_spec):
        partition = partition_fine_grained(vgg19_spec, num_shards=8,
                                           kv_pair_bytes=2 * units.MB)
        assert all(pair.nbytes <= 2 * units.MB for pair in partition.pairs)

    def test_every_layer_covered(self, vgg19_spec):
        partition = partition_fine_grained(vgg19_spec, num_shards=8)
        covered = {pair.layer for pair in partition.pairs}
        expected = {layer.name for layer in vgg19_spec.parameter_layers()}
        assert covered == expected

    def test_balanced_across_shards(self, vgg19_spec):
        partition = partition_fine_grained(vgg19_spec, num_shards=8)
        assert partition.imbalance() < 1.05

    def test_big_fc_layer_spread_over_many_shards(self, vgg19_spec):
        partition = partition_fine_grained(vgg19_spec, num_shards=8)
        fc6_shards = partition.layer_bytes_per_shard("fc6")
        assert len(fc6_shards) == 8

    def test_layer_bytes_sum_matches_layer(self, vgg19_spec):
        partition = partition_fine_grained(vgg19_spec, num_shards=8)
        fc6 = vgg19_spec.layer("fc6")
        assert sum(partition.layer_bytes_per_shard("fc6").values()) == fc6.param_bytes

    def test_summary_mentions_imbalance(self, vgg19_spec):
        partition = partition_fine_grained(vgg19_spec, num_shards=4)
        assert "imbalance" in partition.summary()

    def test_invalid_parameters(self, vgg19_spec):
        with pytest.raises(PartitionError):
            partition_fine_grained(vgg19_spec, num_shards=0)
        with pytest.raises(PartitionError):
            partition_fine_grained(vgg19_spec, num_shards=2, kv_pair_bytes=0)

    @settings(max_examples=20, deadline=None)
    @given(num_shards=st.integers(1, 32),
           kv_bytes=st.sampled_from([256 * 1024, units.MB, 2 * units.MB, 8 * units.MB]))
    def test_partition_properties_hold_for_any_shard_count(self, num_shards, kv_bytes):
        model = small_model()
        partition = partition_fine_grained(model, num_shards=num_shards,
                                           kv_pair_bytes=kv_bytes)
        assert partition.total_bytes == model.total_param_bytes
        assert all(pair.nbytes <= kv_bytes for pair in partition.pairs)
        assert all(0 <= pair.shard < num_shards for pair in partition.pairs)


class TestCoarsePartition:
    def test_one_pair_per_layer(self, vgg19_spec):
        partition = partition_coarse_grained(vgg19_spec, num_shards=8)
        assert len(partition.pairs) == len(vgg19_spec.parameter_layers())

    def test_imbalance_much_worse_than_fine(self, vgg19_spec):
        fine = partition_fine_grained(vgg19_spec, num_shards=8)
        coarse = partition_coarse_grained(vgg19_spec, num_shards=8)
        # VGG19's fc6 (~400 MB) lands on a single shard under coarse placement.
        assert coarse.imbalance() > 2.0 * fine.imbalance()

    def test_total_bytes_preserved(self, vgg19_spec):
        partition = partition_coarse_grained(vgg19_spec, num_shards=8)
        assert partition.total_bytes == vgg19_spec.total_param_bytes


class TestChunkLayer:
    def test_chunks_cover_layer(self):
        layer = LayerSpec(name="fc", kind=LayerKind.FC, param_count=1_000_000,
                          param_shape=(1000, 1000), sf_decomposable=True,
                          output_shape=(1000,))
        chunks = chunk_layer(layer, kv_pair_bytes=units.MB)
        assert sum(size for _, size in chunks) == layer.param_bytes
        assert len(chunks) == 4  # 4 MB of parameters in 1 MB pairs.

    def test_chunk_keys_unique(self):
        layer = LayerSpec(name="fc", kind=LayerKind.FC, param_count=1_000_000,
                          param_shape=(1000, 1000), sf_decomposable=True,
                          output_shape=(1000,))
        chunks = chunk_layer(layer, kv_pair_bytes=units.MB)
        keys = [key for key, _ in chunks]
        assert len(set(keys)) == len(keys)

    def test_invalid_pair_size(self):
        layer = LayerSpec(name="fc", kind=LayerKind.FC, param_count=100,
                          param_shape=(10, 10), sf_decomposable=True,
                          output_shape=(10,))
        with pytest.raises(PartitionError):
            chunk_layer(layer, kv_pair_bytes=0)
