"""Tests for workload derivation (calibration, coarsening, unit ordering)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro import units
from repro.config import TITAN_X
from repro.exceptions import ConfigurationError
from repro.nn.model_zoo import get_model_spec
from repro.simulation.workload import build_workload


class TestCalibration:
    def test_single_node_time_matches_reported_throughput(self, vgg19_spec):
        workload = build_workload(vgg19_spec)
        # 32 images at 35.5 img/s.
        assert workload.single_node_seconds == pytest.approx(32 / 35.5, rel=1e-6)

    def test_compute_seconds_equals_single_node_seconds(self, vgg19_spec):
        workload = build_workload(vgg19_spec)
        assert workload.compute_seconds == pytest.approx(
            workload.single_node_seconds, rel=1e-6)

    def test_forward_faster_than_backward(self, vgg19_spec):
        workload = build_workload(vgg19_spec)
        assert workload.forward_seconds < workload.backward_seconds

    def test_batch_size_scales_compute(self, vgg19_spec):
        full = build_workload(vgg19_spec, batch_size=32)
        half = build_workload(vgg19_spec, batch_size=16)
        assert half.single_node_seconds == pytest.approx(
            full.single_node_seconds / 2, rel=1e-6)

    def test_uncalibrated_model_uses_gpu_flops(self):
        spec = get_model_spec("mlp")
        workload = build_workload(spec, batch_size=64, gpu=TITAN_X)
        expected = 64 * spec.flops_per_sample / TITAN_X.effective_flops
        assert workload.single_node_seconds == pytest.approx(expected, rel=1e-6)

    def test_invalid_batch_rejected(self, vgg19_spec):
        with pytest.raises(ConfigurationError):
            build_workload(vgg19_spec, batch_size=0)


class TestUnits:
    def test_total_bytes_preserved_by_coarsening(self, vgg19_spec):
        workload = build_workload(vgg19_spec)
        assert sum(u.param_bytes for u in workload.units) == vgg19_spec.total_param_bytes

    def test_fc_layers_never_merged(self, vgg19_spec):
        workload = build_workload(vgg19_spec)
        fc_units = [u for u in workload.units if u.sf_eligible]
        assert {u.name for u in fc_units} == {"fc6", "fc7", "fc8"}
        assert all(len(u.layer_names) == 1 for u in fc_units)

    def test_coarsening_reduces_unit_count(self):
        spec = get_model_spec("resnet-152")
        fine = build_workload(spec, coarsen_bytes=0)
        coarse = build_workload(spec, coarsen_bytes=2 * units.MB)
        assert coarse.num_units < fine.num_units
        assert sum(u.param_bytes for u in fine.units) == \
            sum(u.param_bytes for u in coarse.units)

    def test_units_in_forward_order(self, vgg19_spec):
        workload = build_workload(vgg19_spec)
        names = [u.name for u in workload.units]
        assert names.index("conv1_1") < names.index("fc6") < names.index("fc8")

    def test_backward_seconds_positive(self, vgg19_spec):
        workload = build_workload(vgg19_spec)
        assert all(u.backward_seconds > 0 for u in workload.units)

    def test_fc_gradients_available_early_in_backward(self, vgg19_spec):
        """FC backward time is a small share of the whole backward pass."""
        workload = build_workload(vgg19_spec)
        fc_backward = sum(u.backward_seconds for u in workload.units if u.sf_eligible)
        assert fc_backward < 0.2 * workload.backward_seconds

    def test_sf_bytes_accessor(self, vgg19_spec):
        workload = build_workload(vgg19_spec, batch_size=32)
        fc6 = workload.unit_by_name("fc6")
        assert fc6.sufficient_factor_bytes(32) == 32 * (25088 + 4096) * 4
        conv = workload.unit_by_name("conv1_1")
        with pytest.raises(ConfigurationError):
            conv.sufficient_factor_bytes(32)

    def test_unknown_unit_lookup(self, vgg19_spec):
        workload = build_workload(vgg19_spec)
        with pytest.raises(KeyError):
            workload.unit_by_name("bogus")

    @settings(max_examples=10, deadline=None)
    @given(coarsen_mb=st.sampled_from([0, 1, 2, 4, 16]))
    def test_byte_conservation_for_any_coarsening(self, coarsen_mb):
        spec = get_model_spec("googlenet")
        workload = build_workload(spec, coarsen_bytes=coarsen_mb * units.MB)
        assert sum(u.param_bytes for u in workload.units) == spec.total_param_bytes
