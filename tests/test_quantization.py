"""Tests for 1-bit quantization with error feedback."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.comm.quantization import (
    OneBitQuantizer,
    dequantize_dict,
    quantized_nbytes,
)
from repro.exceptions import CommunicationError


class TestOneBitQuantizer:
    def test_dequantized_shape_matches(self, rng):
        quantizer = OneBitQuantizer()
        grad = rng.standard_normal((8, 5)).astype(np.float32)
        quantized = quantizer.quantize("w", grad)
        assert quantized.dequantize().shape == grad.shape

    def test_wire_size_much_smaller_than_dense(self, rng):
        quantizer = OneBitQuantizer()
        grad = rng.standard_normal((256, 256)).astype(np.float32)
        quantized = quantizer.quantize("w", grad)
        assert quantized.nbytes < grad.nbytes / 8

    def test_signs_preserved(self, rng):
        quantizer = OneBitQuantizer()
        grad = rng.standard_normal((16, 4)).astype(np.float32)
        quantized = quantizer.quantize("w", grad)
        recon = quantized.dequantize()
        # Column means of positive/negative entries keep the sign structure.
        assert np.all((recon >= 0) == (grad >= 0))

    def test_residual_is_quantization_error(self, rng):
        quantizer = OneBitQuantizer()
        grad = rng.standard_normal((8, 3)).astype(np.float32)
        quantized = quantizer.quantize("w", grad)
        residual = quantizer.residual("w")
        np.testing.assert_allclose(residual, grad - quantized.dequantize(), atol=1e-6)

    def test_error_feedback_compensates_over_time(self):
        """The running sum of dequantized gradients tracks the true sum."""
        quantizer = OneBitQuantizer()
        rng = np.random.default_rng(0)
        true_total = np.zeros((8, 4))
        sent_total = np.zeros((8, 4))
        for _ in range(50):
            grad = rng.standard_normal((8, 4))
            true_total += grad
            sent_total += quantizer.quantize("w", grad).dequantize()
        residual = quantizer.residual("w")
        np.testing.assert_allclose(sent_total + residual, true_total, atol=1e-6)

    def test_column_means_reconstructed_exactly(self):
        quantizer = OneBitQuantizer()
        grad = np.array([[1.0, -2.0], [3.0, -4.0]], dtype=np.float32)
        recon = quantizer.quantize("w", grad).dequantize()
        np.testing.assert_allclose(recon[:, 0], 2.0)
        np.testing.assert_allclose(recon[:, 1], -3.0)

    def test_scalar_rejected(self):
        with pytest.raises(CommunicationError):
            OneBitQuantizer().quantize("w", np.float32(3.0))

    def test_reset_clears_residuals(self, rng):
        quantizer = OneBitQuantizer()
        quantizer.quantize("w", rng.standard_normal((4, 4)))
        quantizer.reset()
        assert quantizer.residual("w") is None

    def test_quantize_dict_splits_small_tensors(self, rng):
        quantizer = OneBitQuantizer()
        grads = {"weight": rng.standard_normal((32, 16)).astype(np.float32),
                 "bias": rng.standard_normal(16).astype(np.float32)}
        quantized, dense = quantizer.quantize_dict("fc", grads)
        assert "weight" in quantized
        assert "bias" in dense

    def test_dequantize_dict_merges(self, rng):
        quantizer = OneBitQuantizer()
        grads = {"weight": rng.standard_normal((32, 16)).astype(np.float32),
                 "bias": rng.standard_normal(16).astype(np.float32)}
        quantized, dense = quantizer.quantize_dict("fc", grads)
        merged = dequantize_dict(quantized, dense)
        assert set(merged) == {"weight", "bias"}
        assert merged["weight"].shape == (32, 16)

    @pytest.mark.parametrize("shape", [(3, 3), (5, 7), (13, 1), (7, 3)])
    def test_wire_size_rounds_sign_payload_up(self, rng, shape):
        """Regression: odd element counts need ceil(bits/8) sign bytes.

        The seed implementation floored the division, undercounting every
        tensor whose size is not a multiple of 8 (a (3, 3) tensor's 9 sign
        bits were billed as 1 byte instead of 2).
        """
        quantizer = OneBitQuantizer()
        grad = rng.standard_normal(shape).astype(np.float32)
        quantized = quantizer.quantize("w", grad)
        elements = shape[0] * shape[1]
        scale_bytes = quantized.positive_scale.nbytes + quantized.negative_scale.nbytes
        assert quantized.nbytes == -(-elements // 8) + scale_bytes
        assert quantized.nbytes > scale_bytes  # sign payload never free

    def test_loop_reference_equivalence(self, rng):
        """The vectorized per-column scales match the per-column loop."""
        quantizer = OneBitQuantizer()
        for shape in ((8, 5), (1, 9), (16, 1), (6, 4, 3)):
            grad = rng.standard_normal(shape).astype(np.float32)
            quantized = quantizer.quantize(f"w{shape}", grad)
            matrix = grad.reshape(grad.shape[0], -1)
            signs = matrix >= 0
            for column in range(matrix.shape[1]):
                pos = matrix[signs[:, column], column]
                neg = matrix[~signs[:, column], column]
                expected_pos = pos.mean() if pos.size else 0.0
                expected_neg = neg.mean() if neg.size else 0.0
                assert quantized.positive_scale[0, column] == pytest.approx(
                    expected_pos, abs=1e-6)
                assert quantized.negative_scale[0, column] == pytest.approx(
                    expected_neg, abs=1e-6)

    def test_quantized_nbytes_accounts_both_parts(self, rng):
        quantizer = OneBitQuantizer()
        grads = {"weight": rng.standard_normal((32, 16)).astype(np.float32),
                 "bias": rng.standard_normal(16).astype(np.float32)}
        quantized, dense = quantizer.quantize_dict("fc", grads)
        total = quantized_nbytes(quantized, dense)
        assert total == quantized["weight"].nbytes + dense["bias"].nbytes


class TestQuantizationProperties:
    @settings(max_examples=25, deadline=None)
    @given(rows=st.integers(2, 32), cols=st.integers(1, 16), seed=st.integers(0, 999))
    def test_residual_bounded_by_gradient_scale(self, rows, cols, seed):
        rng = np.random.default_rng(seed)
        grad = rng.standard_normal((rows, cols))
        quantizer = OneBitQuantizer()
        quantizer.quantize("w", grad)
        residual = quantizer.residual("w")
        # The quantization error of a single step cannot exceed the spread of
        # the corrected gradient column-wise.
        assert np.abs(residual).max() <= np.abs(grad).max() * 2 + 1e-9

    @settings(max_examples=25, deadline=None)
    @given(rows=st.integers(2, 16), cols=st.integers(1, 8), seed=st.integers(0, 999))
    def test_compression_ratio_at_least_8(self, rows, cols, seed):
        rng = np.random.default_rng(seed)
        grad = rng.standard_normal((rows, cols)).astype(np.float32)
        quantized = OneBitQuantizer().quantize("w", grad)
        # 1 bit per element + two float32 scales per column.
        assert quantized.nbytes <= grad.nbytes // 8 + 8 * cols + 8
