"""Tests for the runnable numpy layers, including numeric gradient checks."""

import numpy as np
import pytest

from repro.exceptions import ShapeError
from repro.nn.gradcheck import check_layer_gradients
from repro.nn.layers import AvgPool2D, Conv2D, Dense, Dropout, Flatten, MaxPool2D, ReLU
from repro.nn.layers.activation import Tanh
from repro.nn.layers.conv import col2im, im2col


@pytest.fixture
def rng():
    return np.random.default_rng(7)


class TestDense:
    def test_forward_shape(self, rng):
        layer = Dense("fc", 8, 4, rng=rng)
        out = layer.forward(rng.standard_normal((5, 8)).astype(np.float32))
        assert out.shape == (5, 4)

    def test_forward_rejects_wrong_features(self, rng):
        layer = Dense("fc", 8, 4, rng=rng)
        with pytest.raises(ShapeError):
            layer.forward(np.zeros((5, 9), dtype=np.float32))

    def test_backward_before_forward_raises(self, rng):
        layer = Dense("fc", 8, 4, rng=rng)
        with pytest.raises(RuntimeError):
            layer.backward(np.zeros((5, 4)))

    def test_gradient_check(self, rng):
        layer = Dense("fc", 6, 5, rng=rng)
        inputs = rng.standard_normal((4, 6)).astype(np.float64)
        check_layer_gradients(layer, inputs)

    def test_weight_gradient_equals_sf_reconstruction(self, rng):
        layer = Dense("fc", 6, 5, rng=rng)
        inputs = rng.standard_normal((4, 6)).astype(np.float64)
        layer.forward(inputs)
        grad_out = rng.standard_normal((4, 5))
        layer.backward(grad_out)
        u, v = layer.sufficient_factors()
        np.testing.assert_allclose(u.T @ v, layer.grads["weight"], rtol=1e-6)

    def test_set_params_shape_mismatch(self, rng):
        layer = Dense("fc", 6, 5, rng=rng)
        with pytest.raises(ShapeError):
            layer.set_params({"weight": np.zeros((2, 2), dtype=np.float32)})

    def test_set_params_unknown_key(self, rng):
        layer = Dense("fc", 6, 5, rng=rng)
        with pytest.raises(KeyError):
            layer.set_params({"gamma": np.zeros((5,), dtype=np.float32)})


class TestConv2D:
    def test_forward_shape_with_padding(self, rng):
        layer = Conv2D("conv", in_channels=3, out_channels=4, kernel=3, pad=1, rng=rng)
        out = layer.forward(rng.standard_normal((2, 3, 8, 8)).astype(np.float32))
        assert out.shape == (2, 4, 8, 8)

    def test_forward_shape_with_stride(self, rng):
        layer = Conv2D("conv", in_channels=3, out_channels=4, kernel=3, stride=2, rng=rng)
        out = layer.forward(rng.standard_normal((2, 3, 9, 9)).astype(np.float32))
        assert out.shape == (2, 4, 4, 4)

    def test_channel_mismatch_rejected(self, rng):
        layer = Conv2D("conv", in_channels=3, out_channels=4, kernel=3, rng=rng)
        with pytest.raises(ShapeError):
            layer.forward(np.zeros((1, 2, 8, 8), dtype=np.float32))

    def test_gradient_check(self, rng):
        layer = Conv2D("conv", in_channels=2, out_channels=3, kernel=3, pad=1, rng=rng)
        inputs = rng.standard_normal((2, 2, 6, 6)).astype(np.float64)
        check_layer_gradients(layer, inputs, max_elements=24)

    def test_backward_input_gradient_shape(self, rng):
        layer = Conv2D("conv", in_channels=2, out_channels=3, kernel=3, pad=1, rng=rng)
        x = rng.standard_normal((2, 2, 6, 6)).astype(np.float32)
        out = layer.forward(x)
        grad_in = layer.backward(np.ones_like(out))
        assert grad_in.shape == x.shape

    def test_im2col_col2im_adjoint(self, rng):
        """col2im is the adjoint of im2col: <im2col(x), y> == <x, col2im(y)>."""
        x = rng.standard_normal((2, 3, 6, 6))
        cols, _, _ = im2col(x, kernel=3, stride=1, pad=1)
        y = rng.standard_normal(cols.shape)
        lhs = float((cols * y).sum())
        rhs = float((x * col2im(y, x.shape, kernel=3, stride=1, pad=1)).sum())
        assert lhs == pytest.approx(rhs, rel=1e-9)


class TestPooling:
    def test_max_pool_selects_maximum(self):
        layer = MaxPool2D("pool", kernel=2, stride=2)
        x = np.arange(16, dtype=np.float32).reshape(1, 1, 4, 4)
        out = layer.forward(x)
        np.testing.assert_array_equal(out[0, 0], [[5, 7], [13, 15]])

    def test_max_pool_backward_routes_to_argmax(self):
        layer = MaxPool2D("pool", kernel=2, stride=2)
        x = np.arange(16, dtype=np.float32).reshape(1, 1, 4, 4)
        out = layer.forward(x)
        grad = layer.backward(np.ones_like(out))
        # Only the max positions receive gradient.
        assert grad.sum() == pytest.approx(4.0)
        assert grad[0, 0, 1, 1] == 1.0
        assert grad[0, 0, 0, 0] == 0.0

    def test_avg_pool_value(self):
        layer = AvgPool2D("pool", kernel=2, stride=2)
        x = np.ones((1, 2, 4, 4), dtype=np.float32)
        out = layer.forward(x)
        np.testing.assert_allclose(out, 1.0)

    def test_avg_pool_backward_spreads_gradient(self):
        layer = AvgPool2D("pool", kernel=2, stride=2)
        x = np.ones((1, 1, 4, 4), dtype=np.float32)
        out = layer.forward(x)
        grad = layer.backward(np.ones_like(out))
        np.testing.assert_allclose(grad, 0.25)

    @pytest.mark.parametrize("cls", [MaxPool2D, AvgPool2D])
    def test_backward_buffer_reuse_is_equivalent(self, cls):
        """Repeated backwards through one layer (reused grad-col buffer)
        match a fresh layer bit for bit, and returned gradients stay valid
        after the buffer is overwritten by the next iteration."""
        rng = np.random.default_rng(3)
        layer = cls("pool", kernel=3, stride=2, pad=1)
        previous = None
        for _ in range(3):
            x = rng.standard_normal((4, 8, 12, 12)).astype(np.float32)
            out = layer.forward(x)
            grad_out = rng.standard_normal(out.shape).astype(np.float32)
            grad_in = layer.backward(grad_out)

            fresh = cls("fresh", kernel=3, stride=2, pad=1)
            fresh.forward(x)
            np.testing.assert_array_equal(grad_in, fresh.backward(grad_out))
            if previous is not None:
                # The previous iteration's output must not alias the buffer.
                np.testing.assert_array_equal(previous[0], previous[1])
            previous = (grad_in, grad_in.copy())

    @pytest.mark.parametrize("cls", [MaxPool2D, AvgPool2D])
    def test_backward_buffer_rebuilds_on_shape_change(self, cls):
        rng = np.random.default_rng(4)
        layer = cls("pool", kernel=2, stride=2)
        for shape in ((2, 4, 8, 8), (3, 4, 6, 6), (2, 4, 8, 8)):
            x = rng.standard_normal(shape).astype(np.float32)
            out = layer.forward(x)
            grad_out = rng.standard_normal(out.shape).astype(np.float32)
            grad_in = layer.backward(grad_out)
            fresh = cls("fresh", kernel=2, stride=2)
            fresh.forward(x)
            np.testing.assert_array_equal(grad_in, fresh.backward(grad_out))
            assert grad_in.shape == shape


class TestActivationsAndFriends:
    def test_relu_masks_negative(self):
        layer = ReLU("relu")
        x = np.array([[-1.0, 2.0, -3.0, 4.0]])
        np.testing.assert_array_equal(layer.forward(x), [[0, 2, 0, 4]])

    def test_relu_backward_uses_mask(self):
        layer = ReLU("relu")
        x = np.array([[-1.0, 2.0]])
        layer.forward(x)
        np.testing.assert_array_equal(layer.backward(np.array([[5.0, 5.0]])), [[0, 5]])

    def test_tanh_gradient(self):
        layer = Tanh("tanh")
        x = np.array([[0.5, -0.5]])
        out = layer.forward(x)
        grad = layer.backward(np.ones_like(out))
        np.testing.assert_allclose(grad, 1 - np.tanh(x) ** 2, rtol=1e-6)

    def test_flatten_roundtrip(self):
        layer = Flatten("flat")
        x = np.arange(24, dtype=np.float32).reshape(2, 3, 2, 2)
        out = layer.forward(x)
        assert out.shape == (2, 12)
        assert layer.backward(out).shape == x.shape

    def test_dropout_eval_is_identity(self):
        layer = Dropout("drop", rate=0.5)
        x = np.ones((4, 10), dtype=np.float32)
        np.testing.assert_array_equal(layer.forward(x, training=False), x)

    def test_dropout_preserves_expectation(self):
        layer = Dropout("drop", rate=0.5, rng=np.random.default_rng(0))
        x = np.ones((2000, 10), dtype=np.float32)
        out = layer.forward(x, training=True)
        assert out.mean() == pytest.approx(1.0, abs=0.05)

    def test_dropout_invalid_rate(self):
        from repro.exceptions import ConfigurationError
        with pytest.raises(ConfigurationError):
            Dropout("drop", rate=1.0)

    def test_param_count_zero_for_stateless_layers(self):
        assert ReLU("r").param_count == 0
        assert Flatten("f").param_count == 0
