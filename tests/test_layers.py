"""Tests for the runnable numpy layers, including numeric gradient checks."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.exceptions import ShapeError
from repro.nn.gradcheck import check_layer_gradients, numeric_gradient
from repro.nn.layers import (
    GELU,
    AvgPool2D,
    Conv2D,
    Dense,
    Dropout,
    Embedding,
    Flatten,
    LayerNorm,
    MaxPool2D,
    MultiHeadAttention,
    PositionalEmbedding,
    ReLU,
    SequenceMeanPool,
    TokenFlatten,
    TransformerBlock,
)
from repro.nn.layers.activation import Tanh
from repro.nn.layers.conv import col2im, im2col


@pytest.fixture
def rng():
    return np.random.default_rng(7)


class TestDense:
    def test_forward_shape(self, rng):
        layer = Dense("fc", 8, 4, rng=rng)
        out = layer.forward(rng.standard_normal((5, 8)).astype(np.float32))
        assert out.shape == (5, 4)

    def test_forward_rejects_wrong_features(self, rng):
        layer = Dense("fc", 8, 4, rng=rng)
        with pytest.raises(ShapeError):
            layer.forward(np.zeros((5, 9), dtype=np.float32))

    def test_backward_before_forward_raises(self, rng):
        layer = Dense("fc", 8, 4, rng=rng)
        with pytest.raises(RuntimeError):
            layer.backward(np.zeros((5, 4)))

    def test_gradient_check(self, rng):
        layer = Dense("fc", 6, 5, rng=rng)
        inputs = rng.standard_normal((4, 6)).astype(np.float64)
        check_layer_gradients(layer, inputs)

    def test_weight_gradient_equals_sf_reconstruction(self, rng):
        layer = Dense("fc", 6, 5, rng=rng)
        inputs = rng.standard_normal((4, 6)).astype(np.float64)
        layer.forward(inputs)
        grad_out = rng.standard_normal((4, 5))
        layer.backward(grad_out)
        u, v = layer.sufficient_factors()
        np.testing.assert_allclose(u.T @ v, layer.grads["weight"], rtol=1e-6)

    def test_set_params_shape_mismatch(self, rng):
        layer = Dense("fc", 6, 5, rng=rng)
        with pytest.raises(ShapeError):
            layer.set_params({"weight": np.zeros((2, 2), dtype=np.float32)})

    def test_set_params_unknown_key(self, rng):
        layer = Dense("fc", 6, 5, rng=rng)
        with pytest.raises(KeyError):
            layer.set_params({"gamma": np.zeros((5,), dtype=np.float32)})


class TestConv2D:
    def test_forward_shape_with_padding(self, rng):
        layer = Conv2D("conv", in_channels=3, out_channels=4, kernel=3, pad=1, rng=rng)
        out = layer.forward(rng.standard_normal((2, 3, 8, 8)).astype(np.float32))
        assert out.shape == (2, 4, 8, 8)

    def test_forward_shape_with_stride(self, rng):
        layer = Conv2D("conv", in_channels=3, out_channels=4, kernel=3, stride=2, rng=rng)
        out = layer.forward(rng.standard_normal((2, 3, 9, 9)).astype(np.float32))
        assert out.shape == (2, 4, 4, 4)

    def test_channel_mismatch_rejected(self, rng):
        layer = Conv2D("conv", in_channels=3, out_channels=4, kernel=3, rng=rng)
        with pytest.raises(ShapeError):
            layer.forward(np.zeros((1, 2, 8, 8), dtype=np.float32))

    def test_gradient_check(self, rng):
        layer = Conv2D("conv", in_channels=2, out_channels=3, kernel=3, pad=1, rng=rng)
        inputs = rng.standard_normal((2, 2, 6, 6)).astype(np.float64)
        check_layer_gradients(layer, inputs, max_elements=24)

    def test_backward_input_gradient_shape(self, rng):
        layer = Conv2D("conv", in_channels=2, out_channels=3, kernel=3, pad=1, rng=rng)
        x = rng.standard_normal((2, 2, 6, 6)).astype(np.float32)
        out = layer.forward(x)
        grad_in = layer.backward(np.ones_like(out))
        assert grad_in.shape == x.shape

    def test_im2col_col2im_adjoint(self, rng):
        """col2im is the adjoint of im2col: <im2col(x), y> == <x, col2im(y)>."""
        x = rng.standard_normal((2, 3, 6, 6))
        cols, _, _ = im2col(x, kernel=3, stride=1, pad=1)
        y = rng.standard_normal(cols.shape)
        lhs = float((cols * y).sum())
        rhs = float((x * col2im(y, x.shape, kernel=3, stride=1, pad=1)).sum())
        assert lhs == pytest.approx(rhs, rel=1e-9)


class TestPooling:
    def test_max_pool_selects_maximum(self):
        layer = MaxPool2D("pool", kernel=2, stride=2)
        x = np.arange(16, dtype=np.float32).reshape(1, 1, 4, 4)
        out = layer.forward(x)
        np.testing.assert_array_equal(out[0, 0], [[5, 7], [13, 15]])

    def test_max_pool_backward_routes_to_argmax(self):
        layer = MaxPool2D("pool", kernel=2, stride=2)
        x = np.arange(16, dtype=np.float32).reshape(1, 1, 4, 4)
        out = layer.forward(x)
        grad = layer.backward(np.ones_like(out))
        # Only the max positions receive gradient.
        assert grad.sum() == pytest.approx(4.0)
        assert grad[0, 0, 1, 1] == 1.0
        assert grad[0, 0, 0, 0] == 0.0

    def test_avg_pool_value(self):
        layer = AvgPool2D("pool", kernel=2, stride=2)
        x = np.ones((1, 2, 4, 4), dtype=np.float32)
        out = layer.forward(x)
        np.testing.assert_allclose(out, 1.0)

    def test_avg_pool_backward_spreads_gradient(self):
        layer = AvgPool2D("pool", kernel=2, stride=2)
        x = np.ones((1, 1, 4, 4), dtype=np.float32)
        out = layer.forward(x)
        grad = layer.backward(np.ones_like(out))
        np.testing.assert_allclose(grad, 0.25)

    @pytest.mark.parametrize("cls", [MaxPool2D, AvgPool2D])
    def test_backward_buffer_reuse_is_equivalent(self, cls):
        """Repeated backwards through one layer (reused grad-col buffer)
        match a fresh layer bit for bit, and returned gradients stay valid
        after the buffer is overwritten by the next iteration."""
        rng = np.random.default_rng(3)
        layer = cls("pool", kernel=3, stride=2, pad=1)
        previous = None
        for _ in range(3):
            x = rng.standard_normal((4, 8, 12, 12)).astype(np.float32)
            out = layer.forward(x)
            grad_out = rng.standard_normal(out.shape).astype(np.float32)
            grad_in = layer.backward(grad_out)

            fresh = cls("fresh", kernel=3, stride=2, pad=1)
            fresh.forward(x)
            np.testing.assert_array_equal(grad_in, fresh.backward(grad_out))
            if previous is not None:
                # The previous iteration's output must not alias the buffer.
                np.testing.assert_array_equal(previous[0], previous[1])
            previous = (grad_in, grad_in.copy())

    @pytest.mark.parametrize("cls", [MaxPool2D, AvgPool2D])
    def test_backward_buffer_rebuilds_on_shape_change(self, cls):
        rng = np.random.default_rng(4)
        layer = cls("pool", kernel=2, stride=2)
        for shape in ((2, 4, 8, 8), (3, 4, 6, 6), (2, 4, 8, 8)):
            x = rng.standard_normal(shape).astype(np.float32)
            out = layer.forward(x)
            grad_out = rng.standard_normal(out.shape).astype(np.float32)
            grad_in = layer.backward(grad_out)
            fresh = cls("fresh", kernel=2, stride=2)
            fresh.forward(x)
            np.testing.assert_array_equal(grad_in, fresh.backward(grad_out))
            assert grad_in.shape == shape


class TestActivationsAndFriends:
    def test_relu_masks_negative(self):
        layer = ReLU("relu")
        x = np.array([[-1.0, 2.0, -3.0, 4.0]])
        np.testing.assert_array_equal(layer.forward(x), [[0, 2, 0, 4]])

    def test_relu_backward_uses_mask(self):
        layer = ReLU("relu")
        x = np.array([[-1.0, 2.0]])
        layer.forward(x)
        np.testing.assert_array_equal(layer.backward(np.array([[5.0, 5.0]])), [[0, 5]])

    def test_tanh_gradient(self):
        layer = Tanh("tanh")
        x = np.array([[0.5, -0.5]])
        out = layer.forward(x)
        grad = layer.backward(np.ones_like(out))
        np.testing.assert_allclose(grad, 1 - np.tanh(x) ** 2, rtol=1e-6)

    def test_flatten_roundtrip(self):
        layer = Flatten("flat")
        x = np.arange(24, dtype=np.float32).reshape(2, 3, 2, 2)
        out = layer.forward(x)
        assert out.shape == (2, 12)
        assert layer.backward(out).shape == x.shape

    def test_dropout_eval_is_identity(self):
        layer = Dropout("drop", rate=0.5)
        x = np.ones((4, 10), dtype=np.float32)
        np.testing.assert_array_equal(layer.forward(x, training=False), x)

    def test_dropout_preserves_expectation(self):
        layer = Dropout("drop", rate=0.5, rng=np.random.default_rng(0))
        x = np.ones((2000, 10), dtype=np.float32)
        out = layer.forward(x, training=True)
        assert out.mean() == pytest.approx(1.0, abs=0.05)

    def test_dropout_invalid_rate(self):
        from repro.exceptions import ConfigurationError
        with pytest.raises(ConfigurationError):
            Dropout("drop", rate=1.0)

    def test_param_count_zero_for_stateless_layers(self):
        assert ReLU("r").param_count == 0
        assert Flatten("f").param_count == 0

    def test_gelu_matches_tanh_approximation(self):
        layer = GELU("gelu")
        x = np.array([[-2.0, -0.5, 0.0, 0.5, 2.0]])
        expected = 0.5 * x * (1.0 + np.tanh(
            np.sqrt(2.0 / np.pi) * (x + 0.044715 * x ** 3)))
        np.testing.assert_allclose(layer.forward(x), expected, rtol=1e-12)

    def test_gelu_gradient_check(self, rng):
        layer = GELU("gelu")
        x = rng.standard_normal((3, 7))
        proj = rng.standard_normal((3, 7))
        layer.forward(x.copy())
        analytic = layer.backward(proj)
        numeric = numeric_gradient(
            lambda arr: float((layer.forward(arr.copy()) * proj).sum()),
            x, max_elements=16, rng=rng)
        for index, estimate in numeric.items():
            assert analytic[index] == pytest.approx(estimate, abs=1e-5)

    def test_gelu_backward_before_forward_raises(self):
        with pytest.raises(RuntimeError):
            GELU("gelu").backward(np.ones((2, 2)))


class TestEmbedding:
    def test_forward_looks_up_rows(self, rng):
        layer = Embedding("wte", 10, 4, rng=rng)
        tokens = np.array([[1, 3], [3, 9]])
        out = layer.forward(tokens)
        assert out.shape == (2, 2, 4)
        np.testing.assert_array_equal(out[0, 1], layer.params["weight"][3])
        np.testing.assert_array_equal(out[1, 0], layer.params["weight"][3])

    def test_rejects_float_tokens(self, rng):
        layer = Embedding("wte", 10, 4, rng=rng)
        with pytest.raises(ShapeError):
            layer.forward(np.zeros((2, 3), dtype=np.float32))

    def test_rejects_out_of_range_tokens(self, rng):
        layer = Embedding("wte", 10, 4, rng=rng)
        with pytest.raises(ShapeError):
            layer.forward(np.array([[0, 10]]))

    def test_gradient_check_sparse_rows(self, rng):
        """The batch touches few rows; the helper must still find them."""
        layer = Embedding("wte", 50, 6, rng=rng)
        tokens = rng.integers(0, 50, size=(3, 4))
        check_layer_gradients(layer, tokens)

    def test_backward_scatter_adds_repeated_tokens(self, rng):
        layer = Embedding("wte", 10, 4, rng=rng)
        tokens = np.array([[2, 2, 2]])
        out = layer.forward(tokens)
        layer.backward(np.ones_like(out))
        np.testing.assert_allclose(layer.grads["weight"][2], 3.0)

    def test_untouched_rows_get_zero_gradient(self, rng):
        layer = Embedding("wte", 10, 4, rng=rng)
        out = layer.forward(np.array([[1, 2]]))
        layer.backward(np.ones_like(out))
        np.testing.assert_array_equal(layer.grads["weight"][5], 0.0)

    def test_positional_gradient_check(self, rng):
        layer = PositionalEmbedding("wpe", 8, 6, rng=rng)
        check_layer_gradients(layer, rng.standard_normal((3, 5, 6)))

    def test_positional_rejects_long_sequence(self, rng):
        layer = PositionalEmbedding("wpe", 4, 6, rng=rng)
        with pytest.raises(ShapeError):
            layer.forward(np.zeros((1, 5, 6)))


class TestLayerNorm:
    def test_output_is_normalized(self, rng):
        layer = LayerNorm("ln", 16)
        out = layer.forward(10.0 + 3.0 * rng.standard_normal((4, 5, 16)))
        np.testing.assert_allclose(out.mean(axis=-1), 0.0, atol=1e-6)
        np.testing.assert_allclose(out.std(axis=-1), 1.0, atol=1e-3)

    def test_gradient_check_3d(self, rng):
        layer = LayerNorm("ln", 8)
        check_layer_gradients(layer, rng.standard_normal((3, 5, 8)))

    def test_gradient_check_2d(self, rng):
        layer = LayerNorm("ln", 8)
        check_layer_gradients(layer, rng.standard_normal((6, 8)))

    def test_rejects_wrong_channels(self, rng):
        layer = LayerNorm("ln", 8)
        with pytest.raises(ShapeError):
            layer.forward(np.zeros((2, 3, 7)))

    def test_identical_train_and_eval(self, rng):
        layer = LayerNorm("ln", 8)
        x = rng.standard_normal((2, 3, 8))
        np.testing.assert_array_equal(layer.forward(x.copy(), training=True),
                                      layer.forward(x.copy(), training=False))


class TestMultiHeadAttention:
    def test_forward_shape(self, rng):
        layer = MultiHeadAttention("attn", 8, 2, rng=rng)
        out = layer.forward(rng.standard_normal((2, 5, 8)))
        assert out.shape == (2, 5, 8)

    def test_rejects_indivisible_heads(self, rng):
        with pytest.raises(ShapeError):
            MultiHeadAttention("attn", 8, 3, rng=rng)

    def test_gradient_check_causal(self, rng):
        layer = MultiHeadAttention("attn", 8, 2, causal=True, rng=rng)
        check_layer_gradients(layer, rng.standard_normal((2, 4, 8)))

    def test_gradient_check_unmasked(self, rng):
        layer = MultiHeadAttention("attn", 8, 2, causal=False, rng=rng)
        check_layer_gradients(layer, rng.standard_normal((2, 4, 8)))

    def test_causal_mask_blocks_future_tokens(self, rng):
        layer = MultiHeadAttention("attn", 8, 2, causal=True, rng=rng)
        x = rng.standard_normal((1, 5, 8))
        base = layer.forward(x.copy(), training=False)
        perturbed = x.copy()
        perturbed[0, 4] += 10.0
        shifted = layer.forward(perturbed, training=False)
        np.testing.assert_allclose(base[0, :4], shifted[0, :4], atol=1e-12)
        assert not np.allclose(base[0, 4], shifted[0, 4])

    def test_unmasked_attention_sees_future_tokens(self, rng):
        layer = MultiHeadAttention("attn", 8, 2, causal=False, rng=rng)
        x = rng.standard_normal((1, 5, 8))
        base = layer.forward(x.copy(), training=False)
        perturbed = x.copy()
        perturbed[0, 4] += 10.0
        shifted = layer.forward(perturbed, training=False)
        assert not np.allclose(base[0, :4], shifted[0, :4])


class TestTransformerBlock:
    def test_gradient_check(self, rng):
        layer = TransformerBlock("h0", 8, 2, rng=rng)
        check_layer_gradients(layer, rng.standard_normal((2, 4, 8)),
                              max_elements=16)

    def test_params_share_arrays_with_sublayers(self, rng):
        layer = TransformerBlock("h0", 8, 2, rng=rng)
        assert layer.params["attn.qkv_weight"] is \
            layer.sublayer("attn").params["qkv_weight"]
        update = {"ln1.gain": np.full((8,), 2.0, dtype=np.float32)}
        layer.set_params(update)
        np.testing.assert_array_equal(layer.sublayer("ln1").params["gain"], 2.0)

    def test_residual_path_dominates_at_init(self, rng):
        """Pre-norm blocks start near the identity: output tracks the input."""
        layer = TransformerBlock("h0", 8, 2, rng=rng)
        x = rng.standard_normal((2, 4, 8))
        out = layer.forward(x.copy(), training=False)
        assert np.corrcoef(out.ravel(), x.ravel())[0, 1] > 0.5

    def test_grads_cover_every_param(self, rng):
        layer = TransformerBlock("h0", 8, 2, rng=rng)
        out = layer.forward(rng.standard_normal((2, 4, 8)))
        layer.backward(np.ones_like(out))
        assert set(layer.grads) == set(layer.params)
        for key, grad in layer.grads.items():
            assert grad.shape == layer.params[key].shape


class TestTokenReshapeHeads:
    def test_token_flatten_roundtrip(self, rng):
        layer = TokenFlatten("tokens")
        x = rng.standard_normal((2, 4, 8))
        out = layer.forward(x)
        assert out.shape == (8, 8)
        np.testing.assert_array_equal(layer.backward(out), x)

    def test_mean_pool_value_and_gradient(self, rng):
        layer = SequenceMeanPool("pool")
        x = rng.standard_normal((2, 4, 8))
        np.testing.assert_allclose(layer.forward(x), x.mean(axis=1))
        grad = layer.backward(np.ones((2, 8)))
        np.testing.assert_allclose(grad, 0.25)


class TestTransformerLayerProperties:
    """Hypothesis property tests over arbitrary shapes and dtypes."""

    @settings(max_examples=20, deadline=None)
    @given(batch=st.integers(1, 3), seq=st.integers(1, 6),
           dim=st.sampled_from([4, 8]),
           dtype=st.sampled_from([np.float32, np.float64]))
    def test_layernorm_shape_and_stats(self, batch, seq, dim, dtype):
        layer = LayerNorm("ln", dim)
        x = np.random.default_rng(0).standard_normal(
            (batch, seq, dim)).astype(dtype)
        out = layer.forward(x)
        assert out.shape == x.shape
        grad = layer.backward(np.ones_like(out))
        assert grad.shape == x.shape
        if dim > 1:
            np.testing.assert_allclose(out.mean(axis=-1), 0.0, atol=1e-4)

    @settings(max_examples=20, deadline=None)
    @given(batch=st.integers(1, 3), seq=st.integers(1, 5),
           heads=st.sampled_from([1, 2]), causal=st.booleans(),
           dtype=st.sampled_from([np.float32, np.float64]))
    def test_mha_shapes_any_config(self, batch, seq, heads, causal, dtype):
        dim = 4 * heads
        layer = MultiHeadAttention("attn", dim, heads, causal=causal,
                                   rng=np.random.default_rng(1))
        x = np.random.default_rng(2).standard_normal(
            (batch, seq, dim)).astype(dtype)
        out = layer.forward(x)
        assert out.shape == (batch, seq, dim)
        grad = layer.backward(np.ones_like(out))
        assert grad.shape == (batch, seq, dim)
        assert np.isfinite(out).all() and np.isfinite(grad).all()

    @settings(max_examples=20, deadline=None)
    @given(vocab=st.integers(2, 30), batch=st.integers(1, 3),
           seq=st.integers(1, 6), dim=st.sampled_from([2, 8]))
    def test_embedding_gradient_rows_match_token_counts(self, vocab, batch,
                                                        seq, dim):
        layer = Embedding("wte", vocab, dim, rng=np.random.default_rng(3))
        tokens = np.random.default_rng(4).integers(0, vocab, size=(batch, seq))
        out = layer.forward(tokens)
        layer.backward(np.ones_like(out))
        counts = np.bincount(tokens.ravel(), minlength=vocab).astype(float)
        np.testing.assert_allclose(
            layer.grads["weight"], counts[:, None] * np.ones((1, dim)))

    @settings(max_examples=20, deadline=None)
    @given(shape=st.tuples(st.integers(1, 4), st.integers(1, 5)),
           dtype=st.sampled_from([np.float32, np.float64]))
    def test_gelu_monotone_and_dtype_preserving(self, shape, dtype):
        layer = GELU("gelu")
        x = np.sort(np.random.default_rng(5).standard_normal(shape).astype(dtype),
                    axis=-1)
        out = layer.forward(x)
        assert out.dtype == x.dtype
        # GELU is monotone on [-0.7, inf); restrict to positives for the check.
        positive = np.clip(x, 0.1, None)
        assert (np.diff(layer.forward(positive), axis=-1) >= 0).all()
