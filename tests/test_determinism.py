"""Bit-reproducibility of the threaded trainer.

The seed trainer was nondeterministic run-to-run: the parameter server
accumulated gradient pushes in thread-arrival order and floating-point
addition is not associative, so fig11's Poseidon-1bit rows (whose 1-bit
error-feedback residual compounds the perturbation) drifted between runs.
The fix is at the root -- ``ordered=True`` reductions (worker-id order) in
the aggregation substrates plus the single-thread
:class:`~repro.core.wfbp.DeterministicScheduler` -- and these tests pin it:
every mode is bit-identical across runs under ``deterministic=True``, and
fig11's rows (including Poseidon-1bit) are regression-pinned.
"""

import numpy as np
import pytest

from repro.comm.adam import AdamSFServer
from repro.comm.parameter_server import ShardedParameterServer
from repro.config import TrainingConfig
from repro.core.wfbp import DeterministicScheduler, ScheduleMode
from repro.data import make_linearly_separable, shard_dataset
from repro.experiments.fig11 import run_fig11
from repro.nn.model_zoo import build_mlp_network, build_transformer_network
from repro.nn.optim import SGD
from repro.nn.sufficient_factors import SufficientFactors
from repro.parallel import DistributedTrainer


class TestOrderedReduction:
    def test_ps_ordered_reduction_is_arrival_order_independent(self):
        """The ordered server applies bit-identical updates for any push order."""
        grads = [np.random.default_rng(wid).standard_normal((16, 16))
                 .astype(np.float32) for wid in range(4)]
        results = []
        for order in ([0, 1, 2, 3], [3, 1, 0, 2], [2, 3, 1, 0]):
            server = ShardedParameterServer(
                {"fc": {"weight": np.zeros((16, 16), dtype=np.float32)}},
                num_workers=4, optimizer=SGD(learning_rate=0.1), ordered=True)
            for wid in order:
                server.push(wid, "fc", {"weight": grads[wid]})
            results.append(server.global_params("fc")["weight"])
        for other in results[1:]:
            np.testing.assert_array_equal(results[0], other)

    def test_unordered_matches_ordered_within_tolerance(self):
        """Ordering only changes float associativity, not the mathematics."""
        grads = [np.random.default_rng(wid).standard_normal((16, 16))
                 .astype(np.float32) for wid in range(4)]
        params = {}
        for ordered in (False, True):
            server = ShardedParameterServer(
                {"fc": {"weight": np.zeros((16, 16), dtype=np.float32)}},
                num_workers=4, optimizer=SGD(learning_rate=0.1), ordered=ordered)
            for wid in (3, 1, 0, 2):
                server.push(wid, "fc", {"weight": grads[wid]})
            params[ordered] = server.global_params("fc")["weight"]
        np.testing.assert_allclose(params[False], params[True], atol=1e-6)

    def test_ordered_double_push_rejected(self):
        from repro.exceptions import CommunicationError

        server = ShardedParameterServer(
            {"fc": {"weight": np.zeros((4, 4), dtype=np.float32)}},
            num_workers=2, ordered=True)
        server.push(0, "fc", {"weight": np.ones((4, 4), dtype=np.float32)})
        with pytest.raises(CommunicationError):
            server.push(0, "fc", {"weight": np.ones((4, 4), dtype=np.float32)})

    def test_adam_ordered_reduction_is_arrival_order_independent(self):
        rng = np.random.default_rng(0)
        factors = [
            SufficientFactors(rng.standard_normal((2, 8)).astype(np.float32),
                              rng.standard_normal((2, 4)).astype(np.float32))
            for _ in range(3)
        ]
        results = []
        for order in ([0, 1, 2], [2, 0, 1]):
            server = AdamSFServer(
                {"fc": {"weight": np.zeros((8, 4), dtype=np.float32)}},
                num_workers=3, optimizer=SGD(learning_rate=0.1), ordered=True)
            for wid in order:
                server.push_factors(wid, "fc", factors[wid])
            results.append(server.pull_matrix(0, "fc", min_version=1)["weight"])
        np.testing.assert_array_equal(results[0], results[1])


class TestDeterministicScheduler:
    def test_jobs_complete_in_submission_order(self):
        completed = []
        with DeterministicScheduler() as scheduler:
            for index in range(20):
                scheduler.schedule(lambda i=index: completed.append(i))
            scheduler.wait_all()
        assert completed == list(range(20))

    def test_is_a_wfbp_scheduler(self):
        scheduler = DeterministicScheduler()
        assert scheduler.mode is ScheduleMode.WFBP
        assert scheduler.num_threads == 1
        scheduler.shutdown()


class TestTrainerBitReproducibility:
    @pytest.fixture
    def setup(self):
        train_x, train_y, _, _ = make_linearly_separable(
            num_train=180, num_test=10, input_dim=16, num_classes=4, seed=1)
        shards = shard_dataset(train_x, train_y, 3, seed=2)
        config = TrainingConfig(batch_size=8, learning_rate=0.05, iterations=5,
                                seed=5)

        def factory():
            return build_mlp_network(input_dim=16, hidden_dims=(32, 16),
                                     num_classes=4, seed=21)

        return factory, shards, config

    def run_once(self, setup, mode, policy=None):
        factory, shards, config = setup
        trainer = DistributedTrainer(factory, 3, shards, config, mode=mode,
                                     deterministic=True, policy=policy)
        history = trainer.train(5)
        return history.losses, trainer.replica(0).get_state()

    @pytest.mark.parametrize(
        "mode", ["ps", "onebit", "sfb", "hybrid", "adam", "ring", "hierps"])
    def test_every_mode_is_bit_identical_across_runs(self, setup, mode):
        losses_a, state_a = self.run_once(setup, mode)
        losses_b, state_b = self.run_once(setup, mode)
        assert losses_a == losses_b
        for layer, params in state_a.items():
            for key, value in params.items():
                np.testing.assert_array_equal(value, state_b[layer][key])

    @pytest.mark.parametrize("mode,policy", [
        ("ps", "ssp-2"),
        ("ps", "async"),
        ("ps", "local-2"),
        ("onebit", "ssp-1"),
        ("onebit", "async"),
        ("ring", "local-2"),
        ("hierps", "local-4"),
        ("hybrid", "local-2"),
        ("sfb", "local-2"),
        ("adam", "local-2"),
    ])
    def test_every_policy_is_bit_identical_across_runs(self, setup, mode,
                                                       policy):
        losses_a, state_a = self.run_once(setup, mode, policy=policy)
        losses_b, state_b = self.run_once(setup, mode, policy=policy)
        assert losses_a == losses_b
        for layer, params in state_a.items():
            for key, value in params.items():
                np.testing.assert_array_equal(value, state_b[layer][key])

    @pytest.mark.parametrize("mode", ["ps", "sfb", "ring", "hybrid"])
    @pytest.mark.parametrize("degenerate", ["ssp(0)", "local_sgd(1)"])
    def test_degenerate_policies_match_bsp(self, setup, mode, degenerate):
        losses_bsp, state_bsp = self.run_once(setup, mode)
        losses, state = self.run_once(setup, mode, policy=degenerate)
        assert losses == losses_bsp
        for layer, params in state_bsp.items():
            for key, value in params.items():
                np.testing.assert_array_equal(value, state[layer][key])


class TestTransformerTrainerDeterminism:
    """The attention stack trains bit-identically under every comm mode."""

    @pytest.fixture
    def setup(self):
        rng = np.random.default_rng(3)
        tokens = rng.integers(0, 24, size=(180, 6))
        labels = tokens[:, 0] % 4  # learnable: class is the first token mod 4
        shards = shard_dataset(tokens, labels, 3, seed=2)
        config = TrainingConfig(batch_size=8, learning_rate=0.05, iterations=4,
                                seed=5)

        def factory():
            return build_transformer_network(vocab_size=24, block_size=6,
                                             n_embd=12, num_heads=2,
                                             num_blocks=1, num_classes=4,
                                             seed=11)

        return factory, shards, config

    def run_once(self, setup, mode):
        factory, shards, config = setup
        trainer = DistributedTrainer(factory, 3, shards, config, mode=mode,
                                     deterministic=True)
        history = trainer.train(4)
        return history.losses, trainer.replica(0).get_state()

    @pytest.mark.parametrize("mode", ["ps", "sfb", "hybrid", "ring"])
    def test_transformer_bit_identical_across_runs(self, setup, mode):
        losses_a, state_a = self.run_once(setup, mode)
        losses_b, state_b = self.run_once(setup, mode)
        assert losses_a == losses_b
        for layer, params in state_a.items():
            for key, value in params.items():
                np.testing.assert_array_equal(value, state_b[layer][key])

    def test_transformer_loss_decreases(self, setup):
        losses, _ = self.run_once(setup, "ps")
        assert losses[-1] < losses[0]


class TestFig11Regression:
    """fig11 is deterministic by default; its rows are pinned.

    The pinned values were produced by this configuration under ordered
    reduction + DeterministicScheduler; the loose tolerance absorbs BLAS
    differences between platforms while catching algorithmic drift.  The
    bit-identity assertion is exact: two in-process runs must agree on
    every float.
    """

    KWARGS = dict(iterations=40, num_workers=4, batch_size=16, num_train=400,
                  num_test=100, eval_every=20, image_size=12, seed=0)

    @pytest.fixture(scope="class")
    def results(self):
        return run_fig11(**self.KWARGS), run_fig11(**self.KWARGS)

    @pytest.mark.parametrize("label", ["Poseidon", "Poseidon-1bit"])
    def test_consecutive_runs_bit_identical(self, results, label):
        first, second = results
        assert first.histories[label].losses == second.histories[label].losses
        assert first.histories[label].test_errors == \
            second.histories[label].test_errors

    def test_poseidon_rows_pinned(self, results):
        history = results[0].histories["Poseidon"]
        np.testing.assert_allclose(
            [history.losses[0], history.losses[19], history.losses[39]],
            [8.34953761100769, 1.7344650030136108, 1.5117377638816833],
            rtol=1e-5)

    def test_poseidon_1bit_rows_pinned(self, results):
        history = results[0].histories["Poseidon-1bit"]
        np.testing.assert_allclose(
            [history.losses[0], history.losses[19], history.losses[39]],
            [8.34953761100769, 2.0139759480953217, 1.9073570370674133],
            rtol=1e-5)
        assert [it for it, _ in history.test_errors] == [20, 40]

    def test_quantized_run_behind_exact_run(self, results):
        first, _ = results
        assert first.final_error("Poseidon-1bit") > first.final_error("Poseidon")
