"""Tests for unit helpers."""

import pytest
from hypothesis import given, strategies as st

from repro import units


class TestConversions:
    def test_gbe_to_bits_per_second(self):
        assert units.gbe(40) == 40e9

    def test_bits_bytes_roundtrip(self):
        assert units.bits_to_bytes(units.bytes_to_bits(123.0)) == pytest.approx(123.0)

    def test_params_to_bytes_float32(self):
        assert units.params_to_bytes(1000) == 4000

    def test_transfer_seconds_basic(self):
        # 1 GB over 8 Gb/s takes one second.
        assert units.transfer_seconds(1e9, 8e9) == pytest.approx(1.0)

    def test_transfer_seconds_rejects_zero_bandwidth(self):
        with pytest.raises(ValueError):
            units.transfer_seconds(100, 0)

    @given(st.floats(min_value=0, max_value=1e15),
           st.floats(min_value=1e3, max_value=1e12))
    def test_transfer_seconds_non_negative(self, nbytes, bandwidth):
        assert units.transfer_seconds(nbytes, bandwidth) >= 0.0

    @given(st.floats(min_value=1, max_value=1e15))
    def test_transfer_seconds_monotonic_in_bytes(self, nbytes):
        slow = units.transfer_seconds(nbytes, 1e9)
        fast = units.transfer_seconds(nbytes, 10e9)
        assert slow >= fast


class TestHumanFormatting:
    def test_human_bytes_mib(self):
        assert units.human_bytes(2 * units.MB) == "2.0 MiB"

    def test_human_bytes_small(self):
        assert units.human_bytes(12) == "12.0 B"

    def test_human_seconds_milliseconds(self):
        assert "ms" in units.human_seconds(0.005)

    def test_human_seconds_microseconds(self):
        assert "us" in units.human_seconds(2e-6)

    def test_human_seconds_minutes(self):
        assert "min" in units.human_seconds(600)

    def test_human_seconds_plain(self):
        assert units.human_seconds(2.5) == "2.50 s"

    def test_human_seconds_zero(self):
        assert units.human_seconds(0.0) == "0.0 us"

    def test_human_seconds_negative_picks_unit_by_magnitude(self):
        """Regression: -0.5 used to fall into the sub-millisecond branch
        and render as '-500000.0 us'."""
        assert units.human_seconds(-0.5) == "-500.0 ms"

    @pytest.mark.parametrize("value, rendered", [
        (-2e-6, "-2.0 us"),
        (-0.005, "-5.0 ms"),
        (-2.5, "-2.50 s"),
        (-600, "-10.0 min"),
    ])
    def test_human_seconds_negative_symmetry(self, value, rendered):
        assert units.human_seconds(value) == rendered
        assert units.human_seconds(-value) == rendered.lstrip("-")
