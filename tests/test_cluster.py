"""Tests for the cluster model: NICs, GPUs, transfers and traffic accounting."""

import pytest

from repro.cluster.machine import FABRIC, ClusterModel
from repro.config import ClusterConfig
from repro.exceptions import SimulationError
from repro.sim import Environment


def make_cluster(num_workers=4, bandwidth_gbps=10.0, **kwargs):
    env = Environment()
    config = ClusterConfig(num_workers=num_workers, bandwidth_gbps=bandwidth_gbps,
                           latency_seconds=0.0, network_efficiency=1.0, **kwargs)
    return env, ClusterModel(env, config)


class TestTopology:
    def test_colocated_servers_reuse_worker_nodes(self):
        _, cluster = make_cluster(num_workers=4)
        assert cluster.server_ids == [0, 1, 2, 3]
        assert len(cluster.machines) == 4

    def test_dedicated_servers_get_extra_nodes(self):
        env = Environment()
        config = ClusterConfig(num_workers=4, num_servers=2, colocate_servers=False,
                               network_efficiency=1.0)
        cluster = ClusterModel(env, config)
        assert cluster.server_ids == [4, 5]
        assert len(cluster.machines) == 6

    def test_unknown_machine_rejected(self):
        _, cluster = make_cluster()
        with pytest.raises(SimulationError):
            cluster.machine(99)

    def test_fabric_has_no_machine(self):
        _, cluster = make_cluster()
        with pytest.raises(SimulationError):
            cluster.machine(FABRIC)


class TestTransfers:
    def test_transfer_time_matches_bandwidth(self):
        env, cluster = make_cluster(bandwidth_gbps=10.0)

        def proc():
            # 1.25 GB at 10 Gb/s = 1 second.
            yield env.process(cluster.transfer(0, 1, 1.25e9))
            return env.now

        assert env.run_process(proc()) == pytest.approx(1.0, rel=1e-6)

    def test_self_transfer_is_free(self):
        env, cluster = make_cluster()

        def proc():
            yield env.process(cluster.transfer(2, 2, 1e9))
            return env.now

        assert env.run_process(proc()) == pytest.approx(0.0)

    def test_fabric_transfer_occupies_only_one_end(self):
        env, cluster = make_cluster(bandwidth_gbps=10.0)

        def proc():
            yield env.process(cluster.transfer(0, FABRIC, 1.25e9))
            return env.now

        env.run_process(proc())
        assert cluster.machine(0).nic.traffic.bytes_sent == pytest.approx(1.25e9)
        # No receiver was charged.
        for node in (1, 2, 3):
            assert cluster.machine(node).nic.traffic.bytes_received == 0

    def test_transfer_needs_one_real_endpoint(self):
        env, cluster = make_cluster()
        with pytest.raises(SimulationError):
            env.run_process(cluster.transfer(FABRIC, FABRIC, 100))

    def test_negative_bytes_rejected(self):
        env, cluster = make_cluster()
        with pytest.raises(SimulationError):
            env.run_process(cluster.transfer(0, 1, -5))

    def test_shared_uplink_serialises_flows(self):
        env, cluster = make_cluster(bandwidth_gbps=10.0)
        completions = []

        def sender(dst):
            yield env.process(cluster.transfer(0, dst, 1.25e9))
            completions.append(env.now)

        env.process(sender(1))
        env.process(sender(2))
        env.run()
        assert sorted(completions) == pytest.approx([1.0, 2.0], rel=1e-6)

    def test_different_uplinks_run_in_parallel(self):
        env, cluster = make_cluster(bandwidth_gbps=10.0)
        completions = []

        def sender(src, dst):
            yield env.process(cluster.transfer(src, dst, 1.25e9))
            completions.append(env.now)

        env.process(sender(0, 2))
        env.process(sender(1, 3))
        env.run()
        assert completions == pytest.approx([1.0, 1.0], rel=1e-6)

    def test_downlink_hotspot_serialises_incast(self):
        """Many senders to one receiver are limited by the receiver NIC."""
        env, cluster = make_cluster(bandwidth_gbps=10.0)
        completions = []

        def sender(src):
            yield env.process(cluster.transfer(src, 3, 1.25e9))
            completions.append(env.now)

        for src in (0, 1, 2):
            env.process(sender(src))
        env.run()
        assert max(completions) == pytest.approx(3.0, rel=1e-6)

    def test_broadcast_reaches_all_destinations(self):
        env, cluster = make_cluster(bandwidth_gbps=10.0)

        def proc():
            yield env.process(cluster.broadcast(0, [1, 2, 3], 1.25e9))
            return env.now

        finish = env.run_process(proc())
        assert finish == pytest.approx(3.0, rel=1e-6)
        for node in (1, 2, 3):
            assert cluster.machine(node).nic.traffic.bytes_received == pytest.approx(1.25e9)


class TestTrafficAccounting:
    def test_tagged_traffic(self):
        env, cluster = make_cluster()

        def proc():
            yield env.process(cluster.transfer(0, 1, 1000, tag="push:fc6"))
            yield env.process(cluster.transfer(1, 0, 500, tag="pull:fc6"))

        env.run_process(proc())
        sent_tags = cluster.machine(0).nic.traffic.by_tag_sent
        assert sent_tags["push:fc6"] == 1000
        assert cluster.machine(0).nic.traffic.bytes_received == 500

    def test_total_gigabits(self):
        env, cluster = make_cluster()

        def proc():
            yield env.process(cluster.transfer(0, 1, 125e6))

        env.run_process(proc())
        assert cluster.machine(0).nic.traffic.total_gigabits == pytest.approx(1.0)

    def test_reset_traffic(self):
        env, cluster = make_cluster()

        def proc():
            yield env.process(cluster.transfer(0, 1, 1000))

        env.run_process(proc())
        cluster.reset_traffic()
        assert cluster.machine(0).nic.traffic.total_bytes == 0

    def test_latency_added_to_transfer(self):
        env = Environment()
        config = ClusterConfig(num_workers=2, bandwidth_gbps=10.0,
                               latency_seconds=0.5, network_efficiency=1.0)
        cluster = ClusterModel(env, config)

        def proc():
            yield env.process(cluster.transfer(0, 1, 1.25e9))
            return env.now

        assert env.run_process(proc()) == pytest.approx(1.5, rel=1e-6)


class TestGpuDevice:
    def test_compute_busy_accounting(self):
        env, cluster = make_cluster()
        gpu = cluster.machine(0).gpu

        def proc():
            yield env.process(gpu.compute(0.25))
            yield env.process(gpu.compute(0.75))
            return env.now

        assert env.run_process(proc()) == pytest.approx(1.0)
        assert gpu.busy_seconds == pytest.approx(1.0)

    def test_compute_flops_uses_throughput(self):
        env, cluster = make_cluster()
        gpu = cluster.machine(0).gpu

        def proc():
            yield env.process(gpu.compute_flops(gpu.effective_flops))
            return env.now

        assert env.run_process(proc()) == pytest.approx(1.0)

    def test_negative_compute_rejected(self):
        env, cluster = make_cluster()
        with pytest.raises(SimulationError):
            env.run_process(cluster.machine(0).gpu.compute(-1.0))

    def test_multi_gpu_machines(self):
        env = Environment()
        config = ClusterConfig(num_workers=1, gpus_per_node=4, network_efficiency=1.0)
        cluster = ClusterModel(env, config)
        assert len(cluster.machine(0).gpus) == 4
