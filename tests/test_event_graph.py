"""Tests for the event-graph reduction primitives (PR 3).

Three layers of protection:

* property-style tests pinning :class:`CountdownEvent` against ``all_of``
  and :class:`TailChannel` against the :class:`Resource` implementation on
  randomized schedules (identical completion times);
* a transfer-level equivalence test pinning the tail-clock cluster model
  against a resource-based reference implementation on randomized flow
  schedules (identical per-flow finish times and traffic);
* a recorded-trace test: the committed ``tests/data/flow_sim_trace.json``
  holds the exact (``repr``-level) outputs of the pre-reduction simulator
  on figure-style configs of every scheme path, and the current simulator
  must reproduce them byte-identically.
"""

import json
import os

import pytest
from hypothesis import given, settings, strategies as st

from repro import units
from repro.cluster.machine import FABRIC, ClusterModel
from repro.config import ClusterConfig
from repro.engines import (
    ADAM_TF,
    CAFFE_PS,
    CAFFE_WFBP,
    CNTK_1BIT,
    POSEIDON_CAFFE,
    POSEIDON_TF,
    TF,
    TF_WFBP,
)
from repro.exceptions import SimulationError
from repro.nn.model_zoo import get_model_spec
from repro.sim import CountdownEvent, Environment, Event, Resource, TailChannel
from repro.simulation.throughput import simulate_system

TRACE_PATH = os.path.join(os.path.dirname(__file__), "data",
                          "flow_sim_trace.json")

SYSTEMS = {
    "poseidon_caffe": POSEIDON_CAFFE,
    "caffe_wfbp": CAFFE_WFBP,
    "caffe_ps": CAFFE_PS,
    "tf": TF,
    "tf_wfbp": TF_WFBP,
    "poseidon_tf": POSEIDON_TF,
    "adam": ADAM_TF,
    "cntk_1bit": CNTK_1BIT,
}


class TestCountdownEvent:
    def test_fires_on_last_arrival(self):
        env = Environment()
        barrier = env.countdown(3)
        times = []

        def arriver(delay):
            yield env.timeout(delay)
            barrier.arrive()

        def waiter():
            yield barrier
            times.append(env.now)

        env.process(waiter())
        for delay in (1.0, 5.0, 3.0):
            env.process(arriver(delay))
        env.run()
        assert times == [5.0]

    def test_zero_count_fires_immediately(self):
        env = Environment()
        barrier = env.countdown(0)
        assert barrier.triggered

        def waiter():
            yield barrier
            return env.now

        assert env.run_process(waiter()) == 0.0

    def test_extra_arrival_rejected(self):
        env = Environment()
        barrier = env.countdown(1)
        barrier.arrive()
        with pytest.raises(SimulationError):
            barrier.arrive()

    def test_negative_count_rejected(self):
        with pytest.raises(SimulationError):
            CountdownEvent(Environment(), -1)

    def test_arrive_on_propagates_failure(self):
        env = Environment()
        barrier = env.countdown(2)

        def boom():
            yield env.timeout(1.0)
            raise ValueError("boom")

        def fine():
            yield env.timeout(2.0)

        barrier.arrive_on(env.process(boom()))
        barrier.arrive_on(env.process(fine()))

        def waiter():
            yield barrier

        root = env.process(waiter())
        env.run()
        assert root.ok is False
        assert isinstance(root.value, ValueError)

    @given(delays=st.lists(
        st.floats(min_value=0.0, max_value=100.0,
                  allow_nan=False, allow_infinity=False),
        min_size=1, max_size=20))
    @settings(max_examples=50, deadline=None)
    def test_matches_all_of_on_random_schedules(self, delays):
        """Barrier completion time equals an all_of over member events."""

        def run(use_countdown):
            env = Environment()
            done = []
            if use_countdown:
                barrier = env.countdown(len(delays))
            else:
                members = [env.event() for _ in delays]

            def member(index, delay):
                yield env.timeout(delay)
                if use_countdown:
                    barrier.arrive()
                else:
                    members[index].succeed()

            def waiter():
                if use_countdown:
                    yield barrier
                else:
                    yield env.all_of(members)
                done.append(env.now)

            env.process(waiter())
            for index, delay in enumerate(delays):
                env.process(member(index, delay))
            env.run()
            return done

        assert run(True) == run(False)


class TestDeferredTrigger:
    def test_succeed_at_processes_in_the_future(self):
        env = Environment()
        event = env.event()
        event.succeed_at(4.0, value="late")
        assert event.triggered and not event.processed

        def waiter():
            value = yield event
            return env.now, value

        assert env.run_process(waiter()) == (4.0, "late")

    def test_succeed_at_past_rejected(self):
        env = Environment()

        def proc():
            yield env.timeout(2.0)

        env.run_process(proc())
        with pytest.raises(SimulationError):
            env.event().succeed_at(1.0)

    def test_succeed_at_is_bit_exact(self):
        """The waiter observes exactly the requested instant."""
        env = Environment()
        # A time whose delta round-trip (now + (t - now)) is lossy.
        target = 0.1 + 0.2 + 0.30000000000000004

        def mover():
            yield env.timeout(0.3)
            env.event().succeed_at(target).add_waiter(
                lambda ok, value: seen.append(env.now))

        seen = []
        env.process(mover())
        env.run()
        assert seen == [target]

    def test_timeout_at_is_bit_exact(self):
        env = Environment()
        target = 1.0000000000000002

        def proc():
            yield env.timeout(0.5)
            yield env.timeout_at(target)
            return env.now

        assert env.run_process(proc()) == target


class TestTailChannelAgainstResource:
    """Tail-clock channels must reproduce Resource hold timing exactly."""

    @given(holds=st.lists(
        st.tuples(
            st.floats(min_value=0.0, max_value=50.0,
                      allow_nan=False, allow_infinity=False),  # spawn delay
            st.floats(min_value=0.0, max_value=10.0,
                      allow_nan=False, allow_infinity=False),  # hold duration
        ),
        min_size=1, max_size=15))
    @settings(max_examples=50, deadline=None)
    def test_occupy_matches_resource(self, holds):
        def run(make_channel, occupy):
            env = Environment()
            channel = make_channel(env)
            finished = {}

            def holder(index, spawn, duration):
                yield env.timeout(spawn)
                yield env.process(occupy(channel, duration))
                finished[index] = env.now

            for index, (spawn, duration) in enumerate(holds):
                env.process(holder(index, spawn, duration))
            env.run()
            return finished

        resource_times = run(lambda env: Resource(env, capacity=1),
                             lambda ch, d: ch.occupy(d))
        tail_times = run(lambda env: TailChannel(env),
                         lambda ch, d: ch.occupy(d))
        assert tail_times == resource_times

    def test_request_release_protocol(self):
        env = Environment()
        channel = TailChannel(env, name="ch")
        order = []

        def holder(name, spawn, duration):
            yield env.timeout(spawn)
            release = yield from channel.request()
            start = env.now
            channel.release(release, start + duration)
            yield release
            order.append((name, start, env.now))

        env.process(holder("a", 0.0, 4.0))
        env.process(holder("b", 1.0, 2.0))
        env.process(holder("c", 2.0, 1.0))
        env.run()
        assert order == [("a", 0.0, 4.0), ("b", 4.0, 6.0), ("c", 6.0, 7.0)]

    def test_book_requires_resolved_channel(self):
        env = Environment()
        channel = TailChannel(env)

        def holder():
            release = yield from channel.request()
            with pytest.raises(SimulationError):
                channel.book(1.0)
            channel.release(release, env.now + 1.0)
            yield release

        env.run_process(holder())
        # Resolved again: analytic booking allowed.
        assert channel.book(2.0) == pytest.approx(3.0)


def _reference_transfer(env, resources, traffic, src, dst, nbytes,
                        bandwidth_bps, latency):
    """The seed's Resource-based transfer protocol (reference for tests)."""
    if src == dst or nbytes == 0:
        return
    duration = units.transfer_seconds(nbytes, bandwidth_bps) + latency
    up = resources.get((src, "up")) if src != FABRIC else None
    down = resources.get((dst, "down")) if dst != FABRIC else None
    up_request = up.request() if up is not None else None
    if up_request is not None:
        yield up_request
    down_request = down.request() if down is not None else None
    if down_request is not None:
        yield down_request
    try:
        yield env.timeout(duration)
    finally:
        if up_request is not None:
            up.release(up_request)
            traffic[src] = traffic.get(src, 0.0) + nbytes
        if down_request is not None:
            down.release(down_request)
            traffic[dst] = traffic.get(dst, 0.0) + nbytes


class TestTransferAgainstResourceModel:
    @given(flows=st.lists(
        st.tuples(
            st.floats(min_value=1e-6, max_value=0.01,
                      allow_nan=False, allow_infinity=False),  # spawn spacing
            st.integers(min_value=-1, max_value=3),            # src (-1=fabric)
            st.integers(min_value=-1, max_value=3),            # dst (-1=fabric)
            st.integers(min_value=1, max_value=10_000_000),    # bytes
        ),
        min_size=1, max_size=25, unique_by=lambda f: f[3]))
    @settings(max_examples=40, deadline=None)
    def test_flow_times_match_reference(self, flows):
        """Distinct-instant flow schedules complete identically.

        Spawn times are strictly increasing (prefix sums) and flow sizes
        unique, so no two flows contend for a channel at the same simulated
        instant: FIFO order is time-determined, and the tail-clock model
        must reproduce the resource model's completion times exactly.
        (Same-instant tie-breaking is pinned at the simulator level by the
        recorded-trace test below, which covers the figure workloads.)
        """
        flows = [f for f in flows if not (f[1] == FABRIC and f[2] == FABRIC)]
        if not flows:
            return
        spawn = 0.0
        spaced = []
        for delta, src, dst, nbytes in flows:
            spawn += delta
            spaced.append((spawn, src, dst, nbytes))
        flows = spaced
        config = ClusterConfig(num_workers=4, bandwidth_gbps=10.0,
                               latency_seconds=50 * units.US,
                               network_efficiency=1.0)

        def run_tail():
            env = Environment()
            cluster = ClusterModel(env, config)
            finished = {}

            def flow(index, spawn, src, dst, nbytes):
                yield env.timeout(spawn)
                yield env.process(cluster.transfer(src, dst, nbytes))
                finished[index] = env.now

            for index, (spawn, src, dst, nbytes) in enumerate(flows):
                env.process(flow(index, spawn, src, dst, nbytes))
            env.run()
            traffic = {node: account.total_bytes for node, account
                       in cluster.traffic_by_node().items()}
            return finished, traffic

        def run_reference():
            env = Environment()
            bandwidth = config.effective_bandwidth_bps
            resources = {}
            for node in range(4):
                resources[(node, "up")] = Resource(env, capacity=1)
                resources[(node, "down")] = Resource(env, capacity=1)
            traffic = {}
            finished = {}

            def flow(index, spawn, src, dst, nbytes):
                yield env.timeout(spawn)
                yield env.process(_reference_transfer(
                    env, resources, traffic, src, dst, nbytes,
                    bandwidth, config.latency_seconds))
                finished[index] = env.now

            for index, (spawn, src, dst, nbytes) in enumerate(flows):
                env.process(flow(index, spawn, src, dst, nbytes))
            env.run()
            full = {node: traffic.get(node, 0.0) for node in range(4)}
            return finished, full

        tail_finished, tail_traffic = run_tail()
        ref_finished, ref_traffic = run_reference()
        assert tail_finished == ref_finished
        assert tail_traffic == ref_traffic

    def test_broadcast_matches_spawned_transfers(self):
        """Batched broadcast == per-destination processes joined by all_of."""
        config = ClusterConfig(num_workers=5, bandwidth_gbps=10.0,
                               latency_seconds=0.0, network_efficiency=1.0)

        def run(batched):
            env = Environment()
            cluster = ClusterModel(env, config)

            def proc():
                if batched:
                    yield env.process(cluster.broadcast(0, [1, 2, 3, 4], 2.5e8))
                else:
                    transfers = [
                        env.process(cluster.transfer(0, dst, 2.5e8))
                        for dst in (1, 2, 3, 4)
                    ]
                    yield env.all_of(transfers)
                return env.now

            finish = env.run_process(proc())
            traffic = {node: account.total_bytes for node, account
                       in cluster.traffic_by_node().items()}
            return finish, traffic

        assert run(True) == run(False)


class TestRecordedTrace:
    """The simulator must reproduce the pre-reduction outputs exactly."""

    with open(TRACE_PATH) as _fh:
        TRACE = json.load(_fh)

    @pytest.mark.parametrize(
        "config", TRACE["configs"],
        ids=["%s-%s-%dn-%g" % (c["system"], c["model"], c["nodes"],
                               c["bandwidth_gbps"])
             for c in TRACE["configs"]])
    def test_config_byte_identical(self, config):
        spec = get_model_spec(config["model"])
        cluster = ClusterConfig(num_workers=config["nodes"],
                                bandwidth_gbps=config["bandwidth_gbps"])
        result = simulate_system(spec, SYSTEMS[config["system"]], cluster)
        assert repr(result.iteration_seconds) == config["iteration_seconds"]
        assert repr(result.gpu_busy_fraction) == config["gpu_busy_fraction"]
        assert ([repr(t) for t in result.per_node_traffic_bytes]
                == config["per_node_traffic_bytes"])
        assert result.scheme_by_unit == config["scheme_by_unit"]
