"""Checkpoint/restore round-trips for every stateful synchronization substrate.

The paper's KV store "will regularly checkpoint current parameter states
for fault tolerance"; these tests pin that every substrate's snapshot is a
faithful deep copy -- restoring it reproduces the exact pre-snapshot state
(parameters, versions, and server-side optimizer velocities) regardless of
what happened in between -- for the flat PS, the hierarchical PS, the Adam
SF server, the parameter averager, and the stateless collectives (whose
contract is an *empty* snapshot plus a board-clearing restore).
"""

import numpy as np
import pytest

from repro.comm.adam import AdamSFServer
from repro.comm.averaging import ParameterAverager
from repro.comm.parameter_server import ShardedParameterServer
from repro.comm.quantization import OneBitQuantizer
from repro.config import TrainingConfig
from repro.core.cost_model import CommScheme
from repro.data import make_linearly_separable, shard_dataset
from repro.nn.model_zoo import build_mlp_network
from repro.nn.optim import SGD
from repro.parallel import DistributedTrainer

NUM_WORKERS = 3


def assert_nested_equal(actual, expected):
    """Bit-exact comparison of nested {layer: {param: array}} snapshots."""
    assert actual.keys() == expected.keys()
    for layer, params in expected.items():
        assert actual[layer].keys() == params.keys()
        for key, value in params.items():
            np.testing.assert_array_equal(actual[layer][key], value,
                                          err_msg=f"{layer}/{key}")


def _perturbed(snapshot):
    """A structurally identical snapshot with every float array shifted."""
    out = {}
    for layer, params in snapshot.items():
        out[layer] = {}
        for key, value in params.items():
            array = np.array(value, copy=True)
            if np.issubdtype(array.dtype, np.floating):
                array += 1.0
            out[layer][key] = array
    return out


def _make_trainer(mode):
    train_x, train_y, _, _ = make_linearly_separable(
        num_train=96, num_test=32, input_dim=16, num_classes=4, seed=7)
    shards = shard_dataset(train_x, train_y, NUM_WORKERS, seed=2)
    return DistributedTrainer(
        network_factory=lambda: build_mlp_network(
            input_dim=16, hidden_dims=(32, 16), num_classes=4, seed=21),
        num_workers=NUM_WORKERS,
        train_shards=shards,
        training=TrainingConfig(batch_size=8, learning_rate=0.05,
                                iterations=4, seed=5),
        mode=mode,
        deterministic=True,
    )


class TestFlatParameterServer:
    def _server(self):
        params = {"fc": {"W": np.arange(6, dtype=np.float64).reshape(2, 3),
                         "b": np.zeros(3)}}
        return ShardedParameterServer(
            params, num_workers=1,
            optimizer=SGD(learning_rate=0.1, momentum=0.9))

    def test_round_trip_restores_params_versions_and_optimizer(self):
        ps = self._server()
        grad = {"W": np.ones((2, 3)), "b": np.ones(3)}
        ps.push(0, "fc", grad)  # single worker: applies immediately
        snap = ps.checkpoint(include_optimizer=True)
        assert "__optimizer__" in snap
        assert snap["fc"]["__version__"] == 1
        momentum_before = ps.optimizer.get_state()

        # Diverge: another full iteration moves params, version and
        # momentum velocities.
        ps.push(0, "fc", grad)
        assert not np.array_equal(
            ps.checkpoint()["fc"]["W"], snap["fc"]["W"])

        ps.restore(snap)
        assert_nested_equal(ps.checkpoint(include_optimizer=True), snap)
        pulled = ps.pull(0, "fc", min_version=1)
        np.testing.assert_array_equal(pulled["W"], snap["fc"]["W"])
        for key, velocity in ps.optimizer.get_state().items():
            np.testing.assert_array_equal(velocity, momentum_before[key])

    def test_restore_replays_identically(self):
        """Restoring and replaying the same push reproduces the same state."""
        ps = self._server()
        grad = {"W": np.full((2, 3), 0.5), "b": np.full(3, 0.25)}
        ps.push(0, "fc", grad)
        snap = ps.checkpoint(include_optimizer=True)
        ps.push(0, "fc", grad)
        after = ps.checkpoint(include_optimizer=True)
        ps.restore(snap)
        ps.push(0, "fc", grad)
        assert_nested_equal(ps.checkpoint(include_optimizer=True), after)

    def test_restore_rejects_unknown_layers_and_shapes(self):
        from repro.exceptions import CommunicationError

        ps = self._server()
        with pytest.raises(CommunicationError):
            ps.restore({"ghost": {"W": np.zeros((2, 3))}})
        with pytest.raises(CommunicationError):
            ps.restore({"fc": {"W": np.zeros((5, 5))}})


class TestAdamSFServer:
    def test_round_trip_includes_optimizer_by_default(self):
        server = AdamSFServer(
            {"fc": {"W": np.arange(4, dtype=np.float64).reshape(2, 2)}},
            num_workers=2, optimizer=SGD(learning_rate=0.1, momentum=0.9))
        snap = server.checkpoint()
        assert "__optimizer__" in snap
        server.restore(_perturbed(snap))
        assert not np.array_equal(server.checkpoint()["fc"]["W"],
                                  snap["fc"]["W"])
        server.restore(snap)
        assert_nested_equal(server.checkpoint(), snap)


class TestParameterAverager:
    def test_checkpoint_is_empty_and_restore_clears_rounds(self):
        averager = ParameterAverager(num_workers=1)
        assert averager.checkpoint() == {}
        result = averager.average(0, "fc", 0, {"W": np.ones(3)})
        np.testing.assert_array_equal(result["W"], np.ones(3))
        averager.restore({})  # idempotent on a quiet board

    def test_remove_worker_renormalizes_to_survivor_mean(self):
        averager = ParameterAverager(num_workers=2)
        averager.remove_worker(1)
        result = averager.average(0, "fc", 0, {"W": np.full(3, 2.0)})
        # Mean over the single survivor, not /2 with a ghost zero.
        np.testing.assert_array_equal(result["W"], np.full(3, 2.0))


class TestQuantizerState:
    def test_error_feedback_residuals_round_trip(self):
        quantizer = OneBitQuantizer()
        rng = np.random.default_rng(3)
        grad = rng.normal(size=(16, 8))
        quantizer.quantize("fc/W", grad)
        state = quantizer.get_state()
        # A different gradient moves the error-feedback residuals on.
        quantizer.quantize("fc/W", grad * 0.3 + 0.1)
        drifted = quantizer.get_state()
        assert any(not np.array_equal(drifted[k], state[k]) for k in state)
        quantizer.set_state(state)
        restored = quantizer.get_state()
        assert restored.keys() == state.keys()
        for key in state:
            np.testing.assert_array_equal(restored[key], state[key])


class TestTrainerSubstrates:
    """Round-trips through real substrates built and warmed by the trainer."""

    @pytest.mark.parametrize("mode,scheme", [
        ("ps", CommScheme.PS),
        ("onebit", CommScheme.ONEBIT),
        ("adam", CommScheme.ADAM),
        ("hierps", CommScheme.HIERPS),
    ])
    def test_stateful_substrates_round_trip_after_training(self, mode, scheme):
        trainer = _make_trainer(mode)
        trainer.train(2)
        substrate = trainer.substrate(scheme)
        try:
            snap = substrate.checkpoint(include_optimizer=True)
        except TypeError:
            snap = substrate.checkpoint()
        substrate.restore(_perturbed(snap))
        substrate.restore(snap)
        try:
            again = substrate.checkpoint(include_optimizer=True)
        except TypeError:
            again = substrate.checkpoint()
        assert_nested_equal(again, snap)

    @pytest.mark.parametrize("mode,scheme", [
        ("ring", CommScheme.RING),
        ("sfb", CommScheme.SFB),
    ])
    def test_stateless_collectives_snapshot_empty(self, mode, scheme):
        trainer = _make_trainer(mode)
        trainer.train(2)
        substrate = trainer.substrate(scheme)
        assert substrate.checkpoint() == {}
        substrate.restore({})  # clears the board without raising
