"""Tests for the sequential network container."""

import numpy as np
import pytest

from repro.nn.gradcheck import check_network_input_gradient
from repro.nn.layers import Dense, ReLU
from repro.nn.model_zoo import build_mlp_network
from repro.nn.network import Network


@pytest.fixture
def network():
    return build_mlp_network(input_dim=12, hidden_dims=(16,), num_classes=4, seed=5)


@pytest.fixture
def batch(rng):
    x = rng.standard_normal((8, 12)).astype(np.float32)
    y = rng.integers(0, 4, size=8)
    return x, y


class TestConstruction:
    def test_empty_network_rejected(self):
        with pytest.raises(ValueError):
            Network([])

    def test_duplicate_layer_names_rejected(self):
        with pytest.raises(ValueError):
            Network([ReLU("same"), ReLU("same")])

    def test_param_count_sums_layers(self, network):
        expected = sum(l.param_count for l in network.layers)
        assert network.param_count == expected

    def test_layer_by_name_missing(self, network):
        with pytest.raises(KeyError):
            network.layer_by_name("bogus")


class TestExecution:
    def test_train_step_returns_finite_loss(self, network, batch):
        loss = network.train_step(*batch)
        assert np.isfinite(loss)

    def test_backward_hook_called_top_down(self, network, batch):
        order = []
        x, y = batch
        network.train_step(x, y, hook=lambda idx, layer: order.append(idx))
        assert order == sorted(order, reverse=True)
        assert len(order) == network.num_layers

    def test_hook_sees_fresh_gradients(self, network, batch):
        """When the hook fires for a layer, that layer's gradients are populated."""
        seen = {}

        def hook(index, layer):
            if layer.has_parameters:
                seen[layer.name] = float(np.abs(layer.grads["weight"]).sum())

        network.train_step(*batch, hook=hook)
        assert all(value > 0 for value in seen.values())

    def test_input_gradient_matches_numeric(self, network, rng):
        x = rng.standard_normal((4, 12)).astype(np.float64)
        y = rng.integers(0, 4, size=4)
        check_network_input_gradient(network, x, y)

    def test_evaluate_returns_loss_and_error(self, network, rng):
        x = rng.standard_normal((32, 12)).astype(np.float32)
        y = rng.integers(0, 4, size=32)
        loss, error = network.evaluate(x, y, batch_size=8)
        assert loss > 0
        assert 0.0 <= error <= 1.0


class TestState:
    def test_state_roundtrip(self, network, batch):
        original = network.get_state()
        network.train_step(*batch)
        from repro.nn.optim import SGD
        SGD(learning_rate=0.1).step_network(network)
        changed = network.get_state()
        assert any(
            not np.allclose(original[l][k], changed[l][k])
            for l in original for k in original[l]
        )
        network.set_state(original)
        restored = network.get_state()
        for layer_name in original:
            for key in original[layer_name]:
                np.testing.assert_array_equal(
                    restored[layer_name][key], original[layer_name][key])

    def test_get_gradients_keys_match_parameter_layers(self, network, batch):
        network.train_step(*batch)
        grads = network.get_gradients()
        expected = {layer.name for _, layer in network.parameter_layers()}
        assert set(grads) == expected

    def test_zero_grads(self, network, batch):
        network.train_step(*batch)
        network.zero_grads()
        for _, layer in network.parameter_layers():
            for grad in layer.grads.values():
                assert not grad.any()
