"""Execution-semantics policies: parsing, SSP invariant, end-to-end effects.

Covers the beyond-BSP axis at every layer it threads through:

* :class:`repro.core.policy.SyncPolicy` parsing and validation;
* the SSP clock invariant (no worker resumes compute more than ``s``
  clocks ahead of the slowest worker), property-tested over random
  thread interleavings;
* trainer bit-identity of the degenerate policies (``ssp(0)`` and
  ``local_sgd(1)`` take the exact BSP code path);
* local SGD's ``1/H`` wire-traffic scaling in the trainer, the DES and
  the fluid engine;
* the monotone throughput-vs-staleness frontier in both engines;
* backend capability declarations and the cost model's sync-frequency
  scaling.
"""

import threading

import pytest
from hypothesis import given, settings, strategies as st

from repro.config import ClusterConfig, TrainingConfig
from repro.core.cost_model import CommScheme, CostModel
from repro.core.policy import BSP, SyncPolicy
from repro.core.staleness import SSPClock
from repro.core.wfbp import ScheduleMode
from repro.data import make_linearly_separable, shard_dataset
from repro.engines.base import CommMode, Partitioning, SystemConfig
from repro.exceptions import ConfigurationError, TrainingError
from repro.nn.model_zoo import build_mlp_network
from repro.parallel import DistributedTrainer
from repro.simulation.fluid import simulate_fluid
from repro.simulation.throughput import simulate_system

NUM_WORKERS = 3


# -- the policy object ---------------------------------------------------------
class TestSyncPolicyParsing:
    @pytest.mark.parametrize("spec,kind,staleness,period", [
        ("bsp", "bsp", 0, 1),
        ("ssp", "ssp", 1, 1),
        ("ssp(2)", "ssp", 2, 1),
        ("ssp-3", "ssp", 3, 1),
        ("async", "async", 0, 1),
        ("local_sgd(4)", "local_sgd", 0, 4),
        ("local-8", "local_sgd", 0, 8),
    ])
    def test_parse_specs(self, spec, kind, staleness, period):
        policy = SyncPolicy.parse(spec)
        assert (policy.kind, policy.staleness, policy.sync_period) == \
            (kind, staleness, period)

    def test_parse_none_and_passthrough(self):
        assert SyncPolicy.parse(None) == BSP
        policy = SyncPolicy.parse("ssp-2")
        assert SyncPolicy.parse(policy) is policy

    @pytest.mark.parametrize("bad", ["", "bsp(2)", "ssp(-1)", "local_sgd(0)",
                                     "gossip", "async(1)"])
    def test_parse_rejects(self, bad):
        with pytest.raises(ConfigurationError):
            SyncPolicy.parse(bad)

    def test_degenerate_policies_are_bsp_equivalent(self):
        assert SyncPolicy.parse("ssp(0)").is_bsp_equivalent
        assert SyncPolicy.parse("local_sgd(1)").is_bsp_equivalent
        assert BSP.is_bsp_equivalent
        assert not SyncPolicy.parse("ssp(1)").is_bsp_equivalent
        assert not SyncPolicy.parse("async").is_bsp_equivalent
        assert not SyncPolicy.parse("local-2").is_bsp_equivalent

    def test_properties(self):
        assert SyncPolicy.parse("async").bound is None
        assert SyncPolicy.parse("ssp-2").bound == 2
        assert SyncPolicy.parse("local-4").sync_frequency == 0.25
        assert SyncPolicy.parse("local-4").averages_parameters
        assert not SyncPolicy.parse("local_sgd(1)").averages_parameters
        assert SyncPolicy.parse("ssp-1").relaxed_consistency
        assert SyncPolicy.parse("async").relaxed_consistency
        assert not BSP.relaxed_consistency

    def test_ready_gate(self):
        ssp2 = SyncPolicy.parse("ssp-2")
        assert ssp2.ready(worker_clock=5, min_clock=3)
        assert not ssp2.ready(worker_clock=6, min_clock=3)
        assert SyncPolicy.parse("async").ready(worker_clock=100, min_clock=0)

    def test_str_round_trips(self):
        for spec in ("bsp", "ssp(2)", "async", "local_sgd(4)"):
            assert str(SyncPolicy.parse(spec)) == spec
            assert SyncPolicy.parse(str(SyncPolicy.parse(spec))) == \
                SyncPolicy.parse(spec)


# -- the SSP clock invariant ---------------------------------------------------
class TestSSPInvariant:
    @settings(max_examples=15, deadline=None)
    @given(num_workers=st.integers(2, 4), staleness=st.integers(0, 3),
           iterations=st.integers(2, 8))
    def test_no_worker_resumes_more_than_s_ahead(self, num_workers, staleness,
                                                 iterations):
        """After advance() returns, the worker's lag is within the bound.

        Threads race freely; the observation is taken right after advance
        unblocks.  Because min_clock only ever increases, a late lag()
        reading can only under-estimate, never inflate, so the assertion is
        race-free.
        """
        clock = SSPClock(num_workers, staleness=staleness, default_timeout=10.0)
        max_lag = [0]
        lock = threading.Lock()
        errors = []

        def worker(worker_id):
            try:
                for _ in range(iterations):
                    clock.advance(worker_id)
                    lag = clock.lag(worker_id)
                    with lock:
                        max_lag[0] = max(max_lag[0], lag)
            except Exception as exc:  # pragma: no cover - surfaced below
                errors.append(exc)

        threads = [threading.Thread(target=worker, args=(w,))
                   for w in range(num_workers)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=30.0)
        assert not errors
        assert max_lag[0] <= staleness
        assert clock.min_clock() == iterations

    def test_async_clock_never_blocks(self):
        clock = SSPClock(2, staleness=None, default_timeout=0.001)
        for _ in range(50):
            clock.advance(0)  # worker 1 never moves; must not time out
        assert clock.lag(0) == 50
        assert clock.can_proceed(0)

    def test_default_timeout_is_plumbed(self):
        clock = SSPClock(2, staleness=0, default_timeout=0.01)
        with pytest.raises(TrainingError):
            clock.advance(0)  # worker 1 never arrives: bound + tiny timeout


# -- trainer-level semantics ---------------------------------------------------
def _make_setup():
    train_x, train_y, _, _ = make_linearly_separable(
        num_train=180, num_test=10, input_dim=16, num_classes=4, seed=1)
    shards = shard_dataset(train_x, train_y, NUM_WORKERS, seed=2)
    config = TrainingConfig(batch_size=8, learning_rate=0.05, iterations=6,
                            seed=5)

    def factory():
        return build_mlp_network(input_dim=16, hidden_dims=(32, 16),
                                 num_classes=4, seed=21)

    return factory, shards, config


def _train(mode, policy, iterations=6, deterministic=True):
    factory, shards, config = _make_setup()
    trainer = DistributedTrainer(factory, NUM_WORKERS, shards, config,
                                 mode=mode, schedule=ScheduleMode.WFBP,
                                 deterministic=deterministic, policy=policy)
    history = trainer.train(iterations)
    return history, trainer.replica(0).get_state()


class TestTrainerPolicies:
    @pytest.mark.parametrize("degenerate", ["ssp(0)", "local_sgd(1)"])
    def test_degenerate_policies_bit_identical_to_bsp(self, degenerate):
        base_history, base_state = _train("ps", "bsp")
        history, state = _train("ps", degenerate)
        assert history.losses == base_history.losses
        for layer, params in base_state.items():
            for key, value in params.items():
                assert (value == state[layer][key]).all()

    def test_local_sgd_wire_bytes_scale_inverse_h(self):
        base_history, _ = _train("ps", "bsp")
        for period in (2, 3):
            history, _ = _train("ps", f"local-{period}")
            assert history.total_bytes * period == base_history.total_bytes

    @pytest.mark.parametrize("policy", ["ssp-2", "async"])
    def test_relaxed_policies_deterministic_across_runs(self, policy):
        history_a, state_a = _train("ps", policy)
        history_b, state_b = _train("ps", policy)
        assert history_a.losses == history_b.losses
        for layer, params in state_a.items():
            for key, value in params.items():
                assert (value == state_b[layer][key]).all()

    def test_local_sgd_runs_on_every_substrate(self):
        final = {mode: _train(mode, "local-2")[0].final_loss
                 for mode in ("ps", "ring", "hierps")}
        # Parameter averaging happens above the substrate, so every backend
        # reaches the same deterministic trajectory.
        assert len(set(final.values())) == 1

    def test_unsupported_policy_rejected_at_construction(self):
        factory, shards, config = _make_setup()
        with pytest.raises(TrainingError, match="cannot run under policy"):
            DistributedTrainer(factory, NUM_WORKERS, shards, config,
                               mode="sfb", policy="ssp-2")

    def test_history_records_policy(self):
        history, _ = _train("ps", "ssp-2")
        assert history.policy == "ssp(2)"


# -- backend capability declarations ------------------------------------------
class TestBackendCapabilities:
    def test_ps_family_declares_relaxed_semantics(self):
        from repro.comm.backend import get_backend

        for name in ("ps", "onebit"):
            backend = get_backend(name)
            for spec in ("bsp", "ssp-2", "async", "local-2"):
                assert backend.supports_policy(SyncPolicy.parse(spec))

    def test_collectives_reject_relaxed_consistency(self):
        from repro.comm.backend import get_backend

        for name in ("sfb", "ring", "hierps", "adam"):
            backend = get_backend(name)
            assert backend.supports_policy(BSP)
            assert backend.supports_policy(SyncPolicy.parse("local-2"))
            assert not backend.supports_policy(SyncPolicy.parse("ssp-2"))
            assert not backend.supports_policy(SyncPolicy.parse("async"))

    def test_degenerate_policies_validate_as_bsp(self):
        from repro.comm.backend import get_backend

        assert get_backend("sfb").supports_policy(SyncPolicy.parse("ssp(0)"))
        assert get_backend("ring").supports_policy(
            SyncPolicy.parse("local_sgd(1)"))


# -- simulators ----------------------------------------------------------------
def _system(comm=CommMode.PS, name="sys"):
    return SystemConfig(name=name, engine="poseidon",
                        schedule=ScheduleMode.WFBP,
                        partitioning=Partitioning.FINE, comm=comm)


class TestSystemConfigPolicy:
    @pytest.mark.parametrize("spec,staleness,period", [
        ("bsp", 0, 1), ("ssp-3", 3, 1), ("async", None, 1), ("local-4", 0, 4),
    ])
    def test_with_policy_maps_axes(self, spec, staleness, period):
        system = _system().with_policy(spec)
        assert (system.staleness, system.sync_period) == (staleness, period)

    def test_defaults_are_bsp(self):
        system = _system()
        assert (system.staleness, system.sync_period) == (0, 1)


@pytest.mark.parametrize("engine", ["des", "fluid"])
class TestSimulatedPolicies:
    def _simulate(self, tiny_model_spec, system, engine):
        cluster = ClusterConfig(num_workers=8, bandwidth_gbps=1.0)
        if engine == "fluid":
            return simulate_fluid(tiny_model_spec, system, cluster)
        return simulate_system(tiny_model_spec, system, cluster, engine="des")

    def test_local_sgd_traffic_scales_inverse_h(self, tiny_model_spec, engine):
        base = self._simulate(tiny_model_spec, _system(), engine)
        for period in (2, 4):
            relaxed = self._simulate(
                tiny_model_spec,
                _system(name=f"local{period}").with_policy(f"local-{period}"),
                engine)
            assert relaxed.mean_traffic_gbits == pytest.approx(
                base.mean_traffic_gbits / period)

    def test_throughput_monotone_in_staleness(self, tiny_model_spec, engine):
        frontier = []
        for label, spec in [("bsp", "bsp"), ("ssp1", "ssp-1"),
                            ("ssp2", "ssp-2"), ("ssp4", "ssp-4"),
                            ("async", "async")]:
            system = _system(name=label).with_policy(spec)
            result = self._simulate(tiny_model_spec, system, engine)
            frontier.append(result.throughput_images_per_sec)
        for earlier, later in zip(frontier, frontier[1:]):
            assert later >= earlier * (1.0 - 1e-9)

    def test_default_policy_unchanged(self, tiny_model_spec, engine):
        plain = self._simulate(tiny_model_spec, _system(), engine)
        explicit = self._simulate(tiny_model_spec,
                                  _system().with_policy("bsp"), engine)
        assert plain.iteration_seconds == explicit.iteration_seconds
        assert plain.per_node_traffic_bytes == explicit.per_node_traffic_bytes


# -- cost model ----------------------------------------------------------------
class TestCostModelPolicy:
    def test_local_sgd_scales_comm_terms(self, vgg19_spec):
        cluster = ClusterConfig(num_workers=8, bandwidth_gbps=10.0)
        model = CostModel(cluster, batch_size=32)
        layer = next(l for l in vgg19_spec.layers if l.sf_decomposable)
        base = model.scheme_cost_params(layer, CommScheme.PS)
        scaled = model.scheme_cost_params(layer, CommScheme.PS,
                                          policy="local-4")
        assert scaled == pytest.approx(base / 4)
        sticky = CostModel(cluster, batch_size=32, policy="local-2")
        assert sticky.scheme_cost_params(layer, CommScheme.PS) == \
            pytest.approx(base / 2)

    def test_estimate_layer_scales_every_strategy(self, vgg19_spec):
        cluster = ClusterConfig(num_workers=8, bandwidth_gbps=10.0)
        model = CostModel(cluster, batch_size=32)
        layer = next(l for l in vgg19_spec.layers if l.sf_decomposable)
        base = model.estimate_layer(layer)
        scaled = model.estimate_layer(layer, policy="local-2")
        assert scaled.ps_worker == pytest.approx(base.ps_worker / 2)
        assert scaled.sfb_worker == pytest.approx(base.sfb_worker / 2)

    def test_best_scheme_policy_invariant(self, vgg19_spec):
        cluster = ClusterConfig(num_workers=8, bandwidth_gbps=10.0)
        model = CostModel(cluster, batch_size=32)
        for layer in vgg19_spec.layers:
            assert model.best_scheme(layer) == \
                model.best_scheme(layer, policy="local-4")
