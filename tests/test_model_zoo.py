"""Tests for the model zoo: parameter counts and registry behaviour."""

import numpy as np
import pytest

from repro.exceptions import ConfigurationError
from repro.nn.model_zoo import (
    available_models,
    build_cifar_quick_network,
    build_cifar_quick_small_network,
    build_mlp_network,
    get_model_spec,
    register_model,
)
from repro.nn.model_zoo.googlenet import INCEPTION_MODULES
from repro.nn.spec import LayerKind


class TestRegistry:
    def test_all_table3_models_registered(self):
        names = available_models()
        for expected in ("cifar10-quick", "googlenet", "inception-v3", "vgg19",
                         "vgg19-22k", "resnet-152"):
            assert expected in names

    def test_unknown_model_raises_keyerror(self):
        with pytest.raises(KeyError):
            get_model_spec("not-a-model")

    def test_specs_are_cached(self):
        assert get_model_spec("vgg19") is get_model_spec("vgg19")

    def test_lookup_case_insensitive(self):
        assert get_model_spec("VGG19").name == "VGG19"

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ConfigurationError):
            register_model("vgg19", lambda: get_model_spec("vgg19"))


class TestParameterCounts:
    """Parameter counts should track the paper's Table 3."""

    @pytest.mark.parametrize("model,expected_millions,tolerance", [
        ("cifar10-quick", 0.1456, 0.02),
        ("alexnet", 61.5, 0.05),
        ("vgg19", 143.0, 0.02),
        ("vgg19-22k", 229.0, 0.02),
        ("resnet-152", 60.2, 0.02),
        ("googlenet", 5.0, 0.45),       # main tower only; paper counts 5M
        ("inception-v3", 27.0, 0.15),
    ])
    def test_total_params_close_to_paper(self, model, expected_millions, tolerance):
        spec = get_model_spec(model)
        measured = spec.total_params / 1e6
        assert measured == pytest.approx(expected_millions, rel=tolerance)

    def test_vgg19_fc_dominated(self):
        spec = get_model_spec("vgg19")
        assert spec.fc_param_fraction > 0.8

    def test_vgg19_22k_more_fc_dominated_than_vgg19(self):
        assert (get_model_spec("vgg19-22k").fc_param_fraction
                > get_model_spec("vgg19").fc_param_fraction)

    def test_googlenet_single_thin_fc_layer(self):
        spec = get_model_spec("googlenet")
        fc_layers = spec.fc_layers()
        assert len(fc_layers) == 1
        assert fc_layers[0].fc_dims == (1024, 1000)

    def test_resnet152_conv_dominated(self):
        spec = get_model_spec("resnet-152")
        assert spec.fc_param_fraction < 0.1

    def test_vgg19_has_three_fc_layers(self):
        assert len(get_model_spec("vgg19").fc_layers()) == 3

    def test_vgg19_22k_classifier_width(self):
        spec = get_model_spec("vgg19-22k")
        assert spec.layer("fc8").fc_dims == (4096, 21841)

    def test_inception_modules_channel_arithmetic(self):
        for config in INCEPTION_MODULES:
            assert config.output_channels == (
                config.n1x1 + config.n3x3 + config.n5x5 + config.pool_proj)

    def test_batch_sizes_match_table3(self):
        assert get_model_spec("googlenet").default_batch_size == 128
        assert get_model_spec("vgg19").default_batch_size == 32
        assert get_model_spec("cifar10-quick").default_batch_size == 100


class TestRunnableNetworks:
    def test_cifar_quick_matches_spec_param_count(self):
        spec = get_model_spec("cifar10-quick")
        network = build_cifar_quick_network(seed=0)
        assert network.param_count == spec.total_params

    def test_cifar_quick_forward_shape(self):
        network = build_cifar_quick_network(seed=0)
        x = np.zeros((2, 3, 32, 32), dtype=np.float32)
        assert network.forward(x, training=False).shape == (2, 10)

    def test_small_cifar_quick_trains_one_step(self):
        network = build_cifar_quick_small_network(seed=0)
        rng = np.random.default_rng(0)
        x = rng.standard_normal((4, 3, 16, 16)).astype(np.float32)
        y = np.array([0, 1, 2, 3])
        loss = network.train_step(x, y)
        assert np.isfinite(loss)

    def test_identical_seeds_give_identical_replicas(self):
        a = build_mlp_network(seed=3)
        b = build_mlp_network(seed=3)
        for layer_a, layer_b in zip(a.layers, b.layers):
            for key in layer_a.params:
                np.testing.assert_array_equal(layer_a.params[key], layer_b.params[key])

    def test_different_seeds_differ(self):
        a = build_mlp_network(seed=3)
        b = build_mlp_network(seed=4)
        assert not np.allclose(a.layers[0].params["weight"],
                               b.layers[0].params["weight"])
