"""Chaos tests: fault injection, crash recovery, and no-hang guarantees.

Exercises the fault-tolerant trainer end to end:

* the fault-free path is bit-identical with and without the fault
  machinery attached (hooks are true no-ops by default);
* restart-from-checkpoint recovery is *exact*: recovered parameters are
  bit-identical to a fault-free run under ``deterministic=True``, pinned
  for hand-written plans, random seeded plans (a hypothesis property),
  every substrate family, and the serialized SSP path;
* drop-dead-worker recovery renormalizes aggregation to a P-1 mean and
  collectives reject it at construction;
* transient sync failures retry invisibly and exhaust into a fatal
  :class:`~repro.exceptions.WorkerFailure`;
* a dead peer *fails* the run (abort fan-out / ``SyncTimeout``), it never
  hangs the suite.
"""

import time

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.config import TrainingConfig
from repro.core.consistency import BSPController
from repro.core.cost_model import CommScheme
from repro.core.faults import CrashFault, FaultPlan, PushPullFault, SlowdownFault
from repro.data import make_linearly_separable, shard_dataset
from repro.exceptions import SyncTimeout, TrainingError
from repro.nn.model_zoo import build_mlp_network
from repro.parallel import DistributedTrainer

NUM_WORKERS = 3
ITERATIONS = 6

#: A hand-written plan covering all three fault species at once.
FULL_PLAN = FaultPlan(
    crashes=(CrashFault(worker_id=1, iteration=2),),
    slowdowns=(SlowdownFault(worker_id=2, start_iteration=1, duration=2,
                             factor=2.0),),
    transients=(PushPullFault(worker_id=0, iteration=3, failures=1),),
)


def _make_trainer(mode="ps", plan=None, recovery="none", policy="bsp",
                  iterations=ITERATIONS, **kwargs):
    train_x, train_y, _, _ = make_linearly_separable(
        num_train=96, num_test=32, input_dim=16, num_classes=4, seed=7)
    shards = shard_dataset(train_x, train_y, NUM_WORKERS, seed=2)
    config = TrainingConfig(batch_size=8, learning_rate=0.05,
                            iterations=iterations, seed=5)
    return DistributedTrainer(
        network_factory=lambda: build_mlp_network(
            input_dim=16, hidden_dims=(32, 16), num_classes=4, seed=21),
        num_workers=NUM_WORKERS,
        train_shards=shards,
        training=config,
        mode=mode,
        deterministic=True,
        policy=policy,
        fault_plan=plan,
        recovery=recovery,
        **kwargs,
    )


def _final_state(trainer):
    return trainer.replica(0).get_state()


def assert_states_identical(actual, expected):
    """Bit-exact comparison of two network state dicts."""
    assert actual.keys() == expected.keys()
    for layer, params in expected.items():
        assert actual[layer].keys() == params.keys()
        for name, value in params.items():
            np.testing.assert_array_equal(
                actual[layer][name], value,
                err_msg=f"{layer}/{name} diverged")


_BASELINES = {}


def _baseline(mode="ps", policy="bsp"):
    """Fault-free reference state and losses, computed once per config."""
    key = (mode, policy)
    if key not in _BASELINES:
        trainer = _make_trainer(mode=mode, policy=policy)
        history = trainer.train()
        _BASELINES[key] = (_final_state(trainer), list(history.losses))
    return _BASELINES[key]


class TestFaultFreePath:
    def test_empty_plan_and_checkpoints_are_invisible(self):
        """Attaching the whole fault machinery must not move a single bit."""
        state, losses = _baseline()
        trainer = _make_trainer(plan=FaultPlan(), recovery="restart",
                                checkpoint_interval=2)
        history = trainer.train()
        assert trainer.recoveries == 0
        assert history.losses == losses
        assert_states_identical(_final_state(trainer), state)

    def test_transient_retries_are_numerically_invisible(self):
        """Fail-before-send: a retried sync replays the identical bytes."""
        state, losses = _baseline()
        plan = FaultPlan(transients=(PushPullFault(0, 1, failures=2),
                                     PushPullFault(2, 4, failures=1)))
        trainer = _make_trainer(plan=plan)
        history = trainer.train()
        assert trainer.recoveries == 0
        assert history.losses == losses
        assert_states_identical(_final_state(trainer), state)


class TestRestartRecovery:
    def test_recovery_is_bit_exact_for_full_plan(self):
        state, losses = _baseline()
        trainer = _make_trainer(plan=FULL_PLAN, recovery="restart",
                                checkpoint_interval=2)
        history = trainer.train()
        assert trainer.recoveries == 1
        assert history.losses == losses
        assert_states_identical(_final_state(trainer), state)

    @pytest.mark.parametrize("mode", ["ring", "sfb", "onebit", "hierps"])
    def test_recovery_is_bit_exact_across_substrates(self, mode):
        state, losses = _baseline(mode=mode)
        trainer = _make_trainer(mode=mode, plan=FULL_PLAN, recovery="restart",
                                checkpoint_interval=2)
        history = trainer.train()
        assert trainer.recoveries == 1
        assert history.losses == losses
        assert_states_identical(_final_state(trainer), state)

    def test_recovery_is_bit_exact_under_serialized_ssp(self):
        state, losses = _baseline(policy="ssp-1")
        trainer = _make_trainer(policy="ssp-1", plan=FULL_PLAN,
                                recovery="restart", checkpoint_interval=2)
        history = trainer.train()
        assert trainer.recoveries == 1
        assert history.losses == losses
        assert_states_identical(_final_state(trainer), state)

    def test_exhausted_transients_recover_through_restart(self):
        """A link so lossy that retries exhaust escalates to a worker
        failure, which restart recovery then absorbs."""
        state, losses = _baseline()
        plan = FaultPlan(transients=(PushPullFault(0, 1, failures=6),))
        trainer = _make_trainer(plan=plan, recovery="restart",
                                checkpoint_interval=2, retry_limit=2)
        history = trainer.train()
        assert trainer.recoveries >= 1
        assert history.losses == losses
        assert_states_identical(_final_state(trainer), state)

    @given(seed=st.integers(0, 10_000))
    @settings(max_examples=6, deadline=None)
    def test_random_plans_recover_bit_exact(self, seed):
        """The chaos property: ANY seeded plan recovers bit-identically."""
        state, losses = _baseline()
        plan = FaultPlan.random(seed=seed, num_workers=NUM_WORKERS,
                                iterations=ITERATIONS)
        trainer = _make_trainer(plan=plan, recovery="restart",
                                checkpoint_interval=2)
        history = trainer.train()
        assert trainer.recoveries == len(plan.crashes)
        assert history.losses == losses
        assert_states_identical(_final_state(trainer), state)


class TestDropRecovery:
    def test_dead_worker_is_excised_and_survivors_finish(self):
        plan = FaultPlan(crashes=(CrashFault(worker_id=1, iteration=3),))
        trainer = _make_trainer(plan=plan, recovery="drop")
        history = trainer.train()
        assert trainer.dropped_workers == {1}
        # The dead worker contributed exactly its pre-crash iterations.
        assert len(history.per_worker_losses[1]) == 3
        assert all(len(history.per_worker_losses[w]) == ITERATIONS
                   for w in (0, 2))
        assert np.isfinite(history.losses).all()
        # The PS renormalized its mean to the P-1 survivors.
        assert trainer.substrate(CommScheme.PS).num_workers == NUM_WORKERS - 1
        # Survivors still agree bit-exactly with each other.
        assert_states_identical(trainer.replica(2).get_state(),
                                trainer.replica(0).get_state())

    @pytest.mark.parametrize("mode", ["ring", "sfb", "hierps"])
    def test_collectives_reject_drop_at_construction(self, mode):
        with pytest.raises(TrainingError, match="fault modes"):
            _make_trainer(mode=mode, recovery="drop")

    def test_onebit_ps_supports_drop(self):
        plan = FaultPlan(crashes=(CrashFault(worker_id=2, iteration=2),))
        trainer = _make_trainer(mode="onebit", plan=plan, recovery="drop")
        history = trainer.train()
        assert trainer.dropped_workers == {2}
        assert np.isfinite(history.losses).all()


class TestFailFastNotHang:
    def test_unrecovered_crash_fails_fast(self):
        """Without recovery, a dead peer aborts the run -- promptly."""
        plan = FaultPlan(crashes=(CrashFault(worker_id=1, iteration=2),))
        trainer = _make_trainer(plan=plan, sync_timeout=30.0)
        started = time.monotonic()
        with pytest.raises(TrainingError, match="injected crash"):
            trainer.train()
        # The abort fan-out beat the 30s sync timeout by a wide margin.
        assert time.monotonic() - started < 10.0

    def test_exhausted_retries_fail_without_recovery(self):
        plan = FaultPlan(transients=(PushPullFault(0, 1, failures=6),))
        trainer = _make_trainer(plan=plan, retry_limit=2)
        with pytest.raises(TrainingError, match="retry budget|transient"):
            trainer.train()

    def test_lonely_barrier_times_out_with_sync_timeout(self):
        bsp = BSPController(2, ["layer"])
        started = time.monotonic()
        with pytest.raises(SyncTimeout, match="barrier timed out"):
            bsp.barrier(0, timeout=0.2)
        assert time.monotonic() - started < 5.0

    def test_wait_worker_times_out_with_sync_timeout(self):
        bsp = BSPController(1, ["layer"])
        with pytest.raises(SyncTimeout, match="waiting for syncers"):
            bsp.wait_worker(0, timeout=0.05)


class TestConfigurationValidation:
    def test_unknown_recovery_mode_rejected(self):
        with pytest.raises(TrainingError, match="unknown recovery mode"):
            _make_trainer(recovery="pray")

    def test_negative_knobs_rejected(self):
        with pytest.raises(TrainingError, match="checkpoint_interval"):
            _make_trainer(recovery="restart", checkpoint_interval=-1)
        with pytest.raises(TrainingError, match="retry_limit"):
            _make_trainer(retry_limit=-1)

    def test_drop_needs_bsp_equivalent_policy(self):
        with pytest.raises(TrainingError, match="BSP-equivalent"):
            _make_trainer(recovery="drop", policy="local-2")

    def test_checkpoints_need_a_rendezvous(self):
        with pytest.raises(TrainingError, match="local SGD"):
            _make_trainer(recovery="restart", checkpoint_interval=2,
                          policy="local-2")

    def test_relaxed_checkpoints_need_determinism(self):
        train_x, train_y, _, _ = make_linearly_separable(
            num_train=96, num_test=32, input_dim=16, num_classes=4, seed=7)
        shards = shard_dataset(train_x, train_y, NUM_WORKERS, seed=2)
        with pytest.raises(TrainingError, match="deterministic"):
            DistributedTrainer(
                network_factory=lambda: build_mlp_network(
                    input_dim=16, hidden_dims=(32, 16), num_classes=4,
                    seed=21),
                num_workers=NUM_WORKERS,
                train_shards=shards,
                training=TrainingConfig(batch_size=8, learning_rate=0.05,
                                        iterations=ITERATIONS, seed=5),
                mode="ps",
                policy="ssp-1",
                deterministic=False,
                recovery="restart",
                checkpoint_interval=2,
            )
