"""Tests for the sufficient-factor broadcaster."""

import threading

import numpy as np
import pytest

from repro.comm.sfb import SufficientFactorBroadcaster
from repro.exceptions import CommunicationError
from repro.nn.sufficient_factors import SufficientFactors


def make_factors(rng, batch=4, m=6, n=3):
    return SufficientFactors(u=rng.standard_normal((batch, m)).astype(np.float32),
                             v=rng.standard_normal((batch, n)).astype(np.float32))


class TestPublishCollect:
    def test_collect_returns_all_contributions(self, rng):
        board = SufficientFactorBroadcaster(num_workers=3)
        for worker in range(3):
            board.publish(worker, "fc6", 0, make_factors(rng))
        contributions = board.collect(0, "fc6", 0)
        assert [wid for wid, _, _ in contributions] == [0, 1, 2]

    def test_collect_blocks_until_all_published(self, rng):
        board = SufficientFactorBroadcaster(num_workers=2)
        board.publish(0, "fc6", 0, make_factors(rng))
        results = {}

        def collector():
            results["got"] = board.collect(0, "fc6", 0, timeout=5.0)

        thread = threading.Thread(target=collector)
        thread.start()
        board.publish(1, "fc6", 0, make_factors(rng))
        thread.join(timeout=5.0)
        assert len(results["got"]) == 2

    def test_collect_timeout(self, rng):
        board = SufficientFactorBroadcaster(num_workers=2)
        board.publish(0, "fc6", 0, make_factors(rng))
        with pytest.raises(CommunicationError):
            board.collect(0, "fc6", 0, timeout=0.05)

    def test_double_publish_rejected(self, rng):
        board = SufficientFactorBroadcaster(num_workers=2)
        board.publish(0, "fc6", 0, make_factors(rng))
        with pytest.raises(CommunicationError):
            board.publish(0, "fc6", 0, make_factors(rng))

    def test_worker_id_out_of_range(self, rng):
        board = SufficientFactorBroadcaster(num_workers=2)
        with pytest.raises(CommunicationError):
            board.publish(5, "fc6", 0, make_factors(rng))

    def test_publish_bytes_count_peers(self, rng):
        board = SufficientFactorBroadcaster(num_workers=4)
        factors = make_factors(rng)
        nbytes = board.publish(0, "fc6", 0, factors)
        assert nbytes == factors.nbytes * 3

    def test_iterations_are_independent(self, rng):
        board = SufficientFactorBroadcaster(num_workers=1)
        board.publish(0, "fc6", 0, make_factors(rng))
        board.publish(0, "fc6", 1, make_factors(rng))
        assert len(board.collect(0, "fc6", 0)) == 1
        assert len(board.collect(0, "fc6", 1)) == 1

    def test_garbage_collect_drops_old_iterations(self, rng):
        board = SufficientFactorBroadcaster(num_workers=1)
        board.publish(0, "fc6", 0, make_factors(rng))
        board.publish(0, "fc6", 5, make_factors(rng))
        dropped = board.garbage_collect(before_iteration=3)
        assert dropped == 1


class TestAggregation:
    def test_aggregate_sum_matches_dense_sum(self, rng):
        board = SufficientFactorBroadcaster(num_workers=2)
        factors = [make_factors(rng), make_factors(rng)]
        contributions = [(i, f, {}) for i, f in enumerate(factors)]
        total, extras = board.aggregate(contributions, aggregation="sum")
        expected = factors[0].reconstruct() + factors[1].reconstruct()
        np.testing.assert_allclose(total, expected, rtol=1e-5)
        assert extras == {}

    def test_aggregate_mean_scales(self, rng):
        board = SufficientFactorBroadcaster(num_workers=2)
        factors = [make_factors(rng), make_factors(rng)]
        contributions = [(i, f, {}) for i, f in enumerate(factors)]
        total_sum, _ = board.aggregate(contributions, aggregation="sum")
        total_mean, _ = board.aggregate(contributions, aggregation="mean")
        np.testing.assert_allclose(total_mean, total_sum / 2.0, rtol=1e-6)

    def test_aggregate_extras(self, rng):
        board = SufficientFactorBroadcaster(num_workers=2)
        contributions = [
            (0, make_factors(rng), {"bias": np.array([1.0, 2.0])}),
            (1, make_factors(rng), {"bias": np.array([3.0, 4.0])}),
        ]
        _, extras = board.aggregate(contributions, aggregation="mean")
        np.testing.assert_allclose(extras["bias"], [2.0, 3.0])

    def test_aggregate_empty_rejected(self):
        with pytest.raises(CommunicationError):
            SufficientFactorBroadcaster.aggregate([])

    def test_aggregate_invalid_mode_rejected(self, rng):
        with pytest.raises(CommunicationError):
            SufficientFactorBroadcaster.aggregate(
                [(0, make_factors(rng), {})], aggregation="median")
