"""Tests for the discrete-event simulation engine."""

import pytest

from repro.exceptions import SimulationError
from repro.sim import AllOf, AnyOf, Environment, Event, Interrupt, Resource, Store


class TestEnvironmentBasics:
    def test_clock_starts_at_zero(self):
        assert Environment().now == 0.0

    def test_timeout_advances_clock(self):
        env = Environment()

        def proc():
            yield env.timeout(2.5)
            return env.now

        assert env.run_process(proc()) == pytest.approx(2.5)

    def test_negative_timeout_rejected(self):
        env = Environment()
        with pytest.raises(SimulationError):
            env.timeout(-1)

    def test_events_processed_counter(self):
        env = Environment()

        def proc():
            yield env.timeout(1)
            yield env.timeout(1)

        env.run_process(proc())
        assert env.events_processed >= 2

    def test_run_until_stops_clock(self):
        env = Environment()

        def proc():
            yield env.timeout(100)

        env.process(proc())
        env.run(until=10)
        assert env.now == pytest.approx(10)

    def test_step_on_empty_queue_raises(self):
        with pytest.raises(SimulationError):
            Environment().step()


class TestProcesses:
    def test_process_return_value(self):
        env = Environment()

        def proc():
            yield env.timeout(1)
            return "done"

        assert env.run_process(proc()) == "done"

    def test_nested_process_waiting(self):
        env = Environment()

        def child():
            yield env.timeout(3)
            return 42

        def parent():
            value = yield env.process(child())
            return value + 1

        assert env.run_process(parent()) == 43

    def test_sequential_timeouts_accumulate(self):
        env = Environment()
        trace = []

        def proc(delay):
            yield env.timeout(delay)
            trace.append((env.now, delay))

        env.process(proc(2))
        env.process(proc(1))
        env.run()
        assert trace == [(1, 1), (2, 2)]

    def test_exception_in_process_propagates_from_run_process(self):
        env = Environment()

        def proc():
            yield env.timeout(1)
            raise ValueError("boom")

        with pytest.raises(ValueError, match="boom"):
            env.run_process(proc())

    def test_yielding_non_event_fails_process(self):
        env = Environment()

        def proc():
            yield 42

        process = env.process(proc())
        env.run()
        assert process.ok is False
        assert isinstance(process.value, SimulationError)

    def test_interrupt_raises_inside_process(self):
        env = Environment()
        observed = []

        def victim():
            try:
                yield env.timeout(100)
            except Interrupt as interrupt:
                observed.append(interrupt.cause)
                return "interrupted"

        def attacker(process):
            yield env.timeout(5)
            process.interrupt(cause="stop")

        victim_process = env.process(victim())
        env.process(attacker(victim_process))
        env.run()
        assert observed == ["stop"]
        assert victim_process.value == "interrupted"

    def test_waiting_on_already_processed_event(self):
        env = Environment()

        def proc():
            timeout = env.timeout(1)
            yield env.timeout(5)
            # `timeout` fired long ago; waiting on it should not deadlock.
            yield timeout
            return env.now

        assert env.run_process(proc()) == pytest.approx(5)


class TestCompositeEvents:
    def test_all_of_waits_for_slowest(self):
        env = Environment()

        def proc():
            yield AllOf(env, [env.timeout(1), env.timeout(4), env.timeout(2)])
            return env.now

        assert env.run_process(proc()) == pytest.approx(4)

    def test_any_of_fires_on_fastest(self):
        env = Environment()

        def proc():
            yield AnyOf(env, [env.timeout(5), env.timeout(1)])
            return env.now

        assert env.run_process(proc()) == pytest.approx(1)

    def test_all_of_empty_list_fires_immediately(self):
        env = Environment()

        def proc():
            yield env.all_of([])
            return env.now

        assert env.run_process(proc()) == pytest.approx(0)

    def test_event_double_succeed_rejected(self):
        env = Environment()
        event = Event(env)
        event.succeed()
        with pytest.raises(SimulationError):
            event.succeed()


class TestResource:
    def test_capacity_one_serialises(self):
        env = Environment()
        resource = Resource(env, capacity=1)
        completions = []

        def worker(name):
            yield env.process(resource.occupy(2))
            completions.append((name, env.now))

        env.process(worker("a"))
        env.process(worker("b"))
        env.run()
        assert [t for _, t in completions] == [2, 4]

    def test_capacity_two_runs_in_parallel(self):
        env = Environment()
        resource = Resource(env, capacity=2)
        completions = []

        def worker():
            yield env.process(resource.occupy(3))
            completions.append(env.now)

        for _ in range(2):
            env.process(worker())
        env.run()
        assert completions == [3, 3]

    def test_release_unowned_request_raises(self):
        env = Environment()
        resource = Resource(env, capacity=1)
        request = resource.request()
        resource.release(request)
        with pytest.raises(SimulationError):
            resource.release(request)

    def test_utilization_tracking(self):
        env = Environment()
        resource = Resource(env, capacity=1)

        def worker():
            yield env.process(resource.occupy(4))
            yield env.timeout(4)

        env.run_process(worker())
        assert resource.utilization() == pytest.approx(0.5)

    def test_invalid_capacity_rejected(self):
        with pytest.raises(SimulationError):
            Resource(Environment(), capacity=0)


class TestStore:
    def test_put_then_get(self):
        env = Environment()
        store = Store(env)

        def proc():
            store.put("item")
            value = yield store.get()
            return value

        assert env.run_process(proc()) == "item"

    def test_get_blocks_until_put(self):
        env = Environment()
        store = Store(env)
        received = []

        def consumer():
            value = yield store.get()
            received.append((value, env.now))

        def producer():
            yield env.timeout(7)
            store.put("late")

        env.process(consumer())
        env.process(producer())
        env.run()
        assert received == [("late", 7)]

    def test_fifo_ordering(self):
        env = Environment()
        store = Store(env)

        def proc():
            store.put(1)
            store.put(2)
            first = yield store.get()
            second = yield store.get()
            return (first, second)

        assert env.run_process(proc()) == (1, 2)

    def test_len_reflects_queued_items(self):
        env = Environment()
        store = Store(env)
        store.put("x")
        assert len(store) == 1
