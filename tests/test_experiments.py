"""Tests for the experiment harness: every table/figure runs and has the
paper's qualitative shape (who wins, roughly by how much, where crossovers
fall)."""

import pytest

from repro.experiments import (
    ablation,
    fig5,
    fig7,
    fig8,
    fig9,
    fig10,
    fig11,
    multigpu,
    table1,
    table3,
)
from repro.experiments import fig6
from repro.experiments.runner import EXPERIMENTS, run_experiments


class TestTable1:
    def test_worked_example_matches_paper(self):
        result = table1.run_table1()
        ps = result.row("PS")
        sfb = result.row("SFB")
        assert ps.worker == pytest.approx(33.6, rel=0.02)
        assert ps.server_and_worker == pytest.approx(58.7, rel=0.01)
        assert sfb.worker == pytest.approx(3.7, rel=0.02)

    def test_best_scheme_is_sfb_for_worked_example(self):
        assert table1.run_table1().best_scheme.value == "sfb"

    def test_crossover_batch_size_finite(self):
        crossover = table1.crossover_batch_size(4096, 4096, 8, 8)
        assert 1 < crossover < 4096
        # Below the crossover SFB wins, above it PS wins.
        below = table1.run_table1(batch_size=crossover - 1)
        above = table1.run_table1(batch_size=crossover + 1)
        assert below.best_scheme.value == "sfb"
        assert above.best_scheme.value == "ps"

    def test_cluster_size_sweep_monotone_sfb_cost(self):
        sweep = table1.sweep_cluster_sizes(cluster_sizes=(2, 8, 32))
        sfb_costs = [sweep[p].row("SFB").worker for p in (2, 8, 32)]
        assert sfb_costs == sorted(sfb_costs)

    def test_render_mentions_paper_example(self):
        assert "Paper worked example" in table1.render(table1.run_table1())


class TestTable3:
    def test_all_models_present(self):
        result = table3.run_table3()
        assert {row.model for row in result.rows} == set(table3.TABLE3_MODEL_KEYS)

    def test_parameter_counts_within_tolerance(self):
        result = table3.run_table3()
        for row in result.rows:
            if row.model in ("GoogLeNet", "Inception-V3"):
                continue  # documented deviations (aux heads / trunk counting)
            assert abs(row.relative_error) < 0.05

    def test_render_contains_all_models(self):
        rendering = table3.render(table3.run_table3())
        assert "VGG19-22K" in rendering and "ResNet-152" in rendering


class TestScalingFigures:
    """Figures 5 and 6 at reduced node counts (shape checks only)."""

    @pytest.fixture(scope="class")
    def fig5_result(self):
        return fig5.run_fig5(node_counts=(1, 8, 16))

    @pytest.fixture(scope="class")
    def fig6_result(self):
        return fig6.run_fig6(node_counts=(1, 8, 16))

    def test_fig5_poseidon_beats_ps_baseline(self, fig5_result):
        for model in ("GoogLeNet", "VGG19", "VGG19-22K"):
            poseidon = fig5_result.speedup(model, "Poseidon (Caffe)", 16)
            vanilla = fig5_result.speedup(model, "Caffe+PS", 16)
            assert poseidon > vanilla

    def test_fig5_poseidon_near_linear_at_40gbe(self, fig5_result):
        for model in ("GoogLeNet", "VGG19", "VGG19-22K"):
            assert fig5_result.speedup(model, "Poseidon (Caffe)", 16) > 14.0

    def test_fig5_wfbp_between_ps_and_poseidon(self, fig5_result):
        for model in ("VGG19", "VGG19-22K"):
            ps = fig5_result.speedup(model, "Caffe+PS", 16)
            wfbp = fig5_result.speedup(model, "Caffe+WFBP", 16)
            poseidon = fig5_result.speedup(model, "Poseidon (Caffe)", 16)
            assert ps <= wfbp <= poseidon + 1e-6

    def test_fig6_tf_vgg_fails_to_scale(self, fig6_result):
        """Paper: distributed TF sometimes scales negatively on VGG19-22K."""
        assert fig6_result.speedup("VGG19-22K", "TF", 16) < 6.0

    def test_fig6_poseidon_improves_over_tf(self, fig6_result):
        for model in ("Inception-V3", "VGG19", "VGG19-22K"):
            tf = fig6_result.speedup(model, "TF", 16)
            poseidon = fig6_result.speedup(model, "Poseidon (TF)", 16)
            assert poseidon > tf

    def test_fig6_inception_tf_scales_but_below_poseidon(self, fig6_result):
        tf = fig6_result.speedup("Inception-V3", "TF", 16)
        poseidon = fig6_result.speedup("Inception-V3", "Poseidon (TF)", 16)
        assert 8.0 < tf < poseidon

    def test_renderers_emit_series(self, fig5_result, fig6_result):
        assert "Figure 5" in fig5.render(fig5_result)
        assert "Figure 6" in fig6.render(fig6_result)


class TestFig7:
    @pytest.fixture(scope="class")
    def result(self):
        return fig7.run_fig7(num_nodes=8)

    def test_poseidon_keeps_gpu_busy(self, result):
        for model in result.results:
            assert result.busy_fraction(model, "Poseidon (TF)") > 0.9

    def test_tf_wastes_time_on_big_models(self, result):
        assert result.stall_fraction("VGG19", "TF") > 0.3
        assert result.stall_fraction("VGG19-22K", "TF") > 0.3

    def test_stall_ordering(self, result):
        for model in result.results:
            assert (result.stall_fraction(model, "TF")
                    >= result.stall_fraction(model, "TF+WFBP") - 1e-9)
            assert (result.stall_fraction(model, "TF+WFBP")
                    >= result.stall_fraction(model, "Poseidon (TF)") - 1e-9)

    def test_render(self, result):
        assert "Stall" in fig7.render(result)


class TestFig8:
    @pytest.fixture(scope="class")
    def result(self):
        return fig8.run_fig8(node_counts=(1, 8, 16))

    def test_vgg19_10gbe_matches_paper_shape(self, result):
        """Paper: PS-based ~8x on 16 nodes at 10 GbE; Poseidon near linear."""
        wfbp = result.speedup("VGG19", "Caffe+WFBP", 10.0, 16)
        poseidon = result.speedup("VGG19", "Poseidon (Caffe)", 10.0, 16)
        assert 5.0 <= wfbp <= 11.0
        assert poseidon > 14.0

    def test_higher_bandwidth_closes_the_gap(self, result):
        gap_10 = (result.speedup("VGG19", "Poseidon (Caffe)", 10.0, 16)
                  - result.speedup("VGG19", "Caffe+WFBP", 10.0, 16))
        gap_30 = (result.speedup("VGG19", "Poseidon (Caffe)", 30.0, 16)
                  - result.speedup("VGG19", "Caffe+WFBP", 30.0, 16))
        assert gap_30 < gap_10

    def test_googlenet_poseidon_equals_wfbp(self, result):
        """Poseidon reduces to PS for GoogLeNet, so the two systems coincide."""
        for bandwidth in (2.0, 5.0, 10.0):
            wfbp = result.speedup("GoogLeNet", "Caffe+WFBP", bandwidth, 16)
            poseidon = result.speedup("GoogLeNet", "Poseidon (Caffe)", bandwidth, 16)
            assert poseidon == pytest.approx(wfbp, rel=0.05)

    def test_render(self, result):
        assert "Figure 8" in fig8.render(result)


class TestFig9:
    @pytest.fixture(scope="class")
    def result(self):
        return fig9.run_fig9(node_counts=(1, 8, 16, 32))

    def test_poseidon_speedup_near_paper_value(self, result):
        assert result.speedup("Poseidon (TF)", 32) > 28.0

    def test_poseidon_beats_tf(self, result):
        assert result.speedup("Poseidon (TF)", 32) > result.speedup("TF", 32)

    def test_convergence_reaches_target_within_budget(self, result):
        for nodes in (16, 32):
            epochs = result.epochs_to_target(nodes)
            assert epochs is not None and epochs <= 90

    def test_time_to_accuracy_improves_with_nodes(self, result):
        assert result.time_to_error_hours[32] < result.time_to_error_hours[8]

    def test_render(self, result):
        assert "Figure 9" in fig9.render(result)


class TestFig10:
    @pytest.fixture(scope="class")
    def result(self):
        return fig10.run_fig10()

    def test_adam_is_imbalanced(self, result):
        assert result.imbalance("Adam") > 2.0

    def test_tf_wfbp_and_poseidon_balanced(self, result):
        assert result.imbalance("TF+WFBP") < 1.1
        assert result.imbalance("Poseidon (TF)") < 1.1

    def test_poseidon_traffic_much_lower_than_dense_ps(self, result):
        assert result.mean_gbits("Poseidon (TF)") < 0.4 * result.mean_gbits("TF+WFBP")

    def test_adam_peak_exceeds_poseidon_peak(self, result):
        assert result.max_gbits("Adam") > result.max_gbits("Poseidon (TF)")

    def test_render(self, result):
        assert "Figure 10" in fig10.render(result)


class TestFig11:
    @pytest.fixture(scope="class")
    def result(self):
        # The documented deterministic configuration (seed 0), shortened to
        # 100 iterations; the quantization gap is already fully visible.
        return fig11.run_fig11(iterations=100, eval_every=25)

    def test_exact_run_converges(self, result):
        losses = result.loss_curve("Poseidon")
        assert losses[-1] < 0.3 * losses[0]
        assert result.final_error("Poseidon") < 0.2

    def test_exact_sync_converges_better_than_quantized(self, result):
        """Figure 11: 1-bit quantization hurts convergence on image data."""
        exact = sum(result.loss_curve("Poseidon")[-10:]) / 10
        quantized = sum(result.loss_curve("Poseidon-1bit")[-10:]) / 10
        assert exact < quantized
        assert result.final_error("Poseidon") < result.final_error("Poseidon-1bit")

    def test_error_trace_recorded(self, result):
        assert result.error_curve("Poseidon")
        assert result.final_error("Poseidon") <= 1.0

    def test_cntk_scaling_below_poseidon(self):
        scaling = fig11.cntk_scaling(node_counts=(8, 16))
        for nodes in (8, 16):
            assert scaling["CNTK-1bit"][nodes] < scaling["Poseidon"][nodes]

    def test_render(self, result):
        assert "Figure 11" in fig11.render(result)


class TestMultiGpuAndAblation:
    def test_multigpu_linear_on_local_gpus(self):
        result = multigpu.run_multigpu(models=("googlenet",))
        assert result.speedup("GoogLeNet", 1, 4) > 3.5

    def test_multigpu_cluster_speedup(self):
        result = multigpu.run_multigpu(models=("googlenet",))
        assert result.speedup("GoogLeNet", 4, 8) > 24.0

    def test_ablation_full_system_wins(self):
        result = ablation.run_system_ablation(num_nodes=8, bandwidth_gbps=10.0)
        full = result.speedup("full poseidon")
        assert full >= result.speedup("no WFBP")
        assert full >= result.speedup("no HybComm (PS only)")
        assert full >= result.speedup("no WFBP, no HybComm")

    def test_ablation_batch_crossover(self):
        decisions = ablation.run_batch_size_crossover()
        assert decisions[8].value == "sfb"
        # Analytic crossover for a 4096^2 layer on 8+8 nodes sits at K=512.
        assert decisions[1024].value == "ps"
        assert decisions[2048].value == "ps"

    def test_server_count_ablation_more_shards_helps(self):
        speedups = ablation.run_server_count_ablation(
            num_nodes=8, bandwidth_gbps=10.0, server_counts=(1, 8))
        assert speedups[8] > speedups[1]


class TestRunner:
    def test_registry_covers_all_artifacts(self):
        assert set(EXPERIMENTS) >= {
            "table1", "table3", "fig5", "fig6", "fig7", "fig8", "fig9",
            "fig10", "fig11", "multigpu", "ablation",
        }

    def test_quick_run_of_cheap_experiments(self):
        report = run_experiments(["table1", "table3"], quick=True)
        assert "table1" in report and "Table 3" in report

    def test_unknown_experiment_rejected(self):
        with pytest.raises(KeyError):
            run_experiments(["fig99"])
