"""Tests for bucketed wire granularity (trainer and simulator sides).

Four layers of protection:

* the greedy partition rule (:func:`repro.comm.wire.bucket_partition`):
  order preservation, the flush-on-full invariant and the degenerate
  sizes, as a hypothesis property;
* the simulator-side transformation (:func:`bucket_workload`): byte
  totals are invariant, message (unit) counts follow the partition rule
  exactly, merged units carry per-member ``payload_parts`` so compressed
  wire accounting stays exact, non-bucketable schemes pass through
  unchanged, and both engines book identical traffic at every bucket
  size;
* the trainer-side :class:`GradientBucketer`: jobs run exactly once in
  submission order, message counts match ``bucket_partition``, and --
  the headline property -- final parameters are *bit-identical* for
  every bucket size under ``deterministic=True``;
* the memo-table audit: the fluid ``sweep_axis`` cache and the bucketed
  workload cache key on the compression axes, so no stale cross-config
  hit can occur (the scheme-decision cache needs no such key: schemes
  are decided on the unbucketed workload and are compressor-invariant
  by design, re-checked here).
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.comm import wire
from repro.comm.bucketing import GradientBucketer, bucket_workload
from repro.comm.wire import CompressionConfig
from repro.config import ClusterConfig, TrainingConfig
from repro.core.cost_model import CommScheme
from repro.core.wfbp import ScheduleMode
from repro.data import make_linearly_separable, shard_dataset
from repro.engines.base import CommMode, Partitioning, SystemConfig
from repro.exceptions import ConfigurationError
from repro.nn.model_zoo import build_mlp_network, get_model_spec
from repro.parallel import DistributedTrainer
from repro.simulation.fluid import FluidSimulator, sweep_axis
from repro.simulation.throughput import IterationSimulator, decide_schemes
from repro.simulation.workload import build_workload

VGG = get_model_spec("vgg19")
NUM_WORKERS = 3


def coarse_system(comm: CommMode, compressor: str = "none",
                  bucket_bytes=None) -> SystemConfig:
    return SystemConfig(
        name="probe", engine="probe", comm=comm,
        schedule=ScheduleMode.WFBP, partitioning=Partitioning.COARSE,
        overlap_pull=True, overlap_host_copy=True,
    ).with_compression(compressor, bucket_bytes)


# -- the greedy partition rule -------------------------------------------------
class TestBucketPartition:
    def test_flushes_on_full(self):
        assert wire.bucket_partition([4, 4, 4], 8) == [[0, 1], [2]]

    def test_oversized_item_gets_own_bucket(self):
        assert wire.bucket_partition([100, 1, 1], 8) == [[0], [1, 2]]

    def test_rejects_bad_bucket(self):
        with pytest.raises(ConfigurationError):
            wire.bucket_partition([1], 0)

    @settings(max_examples=50, deadline=None)
    @given(sizes=st.lists(st.integers(1, 1000), min_size=1, max_size=30),
           bucket=st.integers(1, 2000))
    def test_partition_properties(self, sizes, bucket):
        partition = wire.bucket_partition(sizes, bucket)
        # Every index appears exactly once, in order.
        flat = [i for group in partition for i in group]
        assert flat == list(range(len(sizes)))
        # Every bucket except possibly the last reached the threshold.
        for group in partition[:-1]:
            assert sum(sizes[i] for i in group) >= bucket
        # Removing any group's last item would leave it under-full.
        for group in partition[:-1]:
            assert sum(sizes[i] for i in group[:-1]) < bucket


# -- simulator-side transformation ---------------------------------------------
class TestBucketWorkload:
    def bucketed(self, comm=CommMode.PS, bucket=4 * 1024 * 1024):
        cluster = ClusterConfig(num_workers=4, bandwidth_gbps=10.0)
        workload = build_workload(VGG, gpu=cluster.gpu)
        schemes = decide_schemes(workload, comm, cluster.num_workers,
                                 cluster.num_servers)
        return (workload, schemes,
                *bucket_workload(workload, schemes, bucket))

    def test_none_is_identity(self):
        workload, schemes, *_ = self.bucketed()
        same_workload, same_schemes = bucket_workload(workload, schemes, None)
        assert same_workload is workload and same_schemes is schemes

    def test_bytes_invariant_and_messages_follow_partition(self):
        workload, schemes, bucketed, _ = self.bucketed()
        assert (sum(u.param_bytes for u in bucketed.units)
                == sum(u.param_bytes for u in workload.units))
        sizes = [u.param_bytes for u in reversed(workload.units)]
        partition = wire.bucket_partition(sizes, 4 * 1024 * 1024)
        assert len(bucketed.units) == len(partition)

    def test_backward_seconds_sum_per_bucket(self):
        workload, _, bucketed, _ = self.bucketed()
        assert (pytest.approx(sum(u.backward_seconds for u in bucketed.units))
                == sum(u.backward_seconds for u in workload.units))

    def test_merged_units_carry_payload_parts(self):
        workload, _, bucketed, _ = self.bucketed()
        config = CompressionConfig.parse("topk(0.01)")
        merged = [u for u in bucketed.units if len(u.layer_names) > 1
                  and u.payload_parts is not None]
        assert merged  # vgg19 has small adjacent conv units that fuse
        for unit in merged:
            assert sum(part for part, _ in unit.payload_parts) \
                == unit.param_bytes
            # Compressed accounting = the sum over members, not a dense
            # blob priced off the merged param_bytes.
            expected = sum(
                wire.unit_wire_bytes(config, part, dims)
                for part, dims in unit.payload_parts)
            assert wire.unit_wire_bytes(config, unit.param_bytes, None,
                                        unit.payload_parts) == expected

    def test_non_bucketable_schemes_pass_through(self):
        workload, schemes, bucketed, new_schemes = self.bucketed(
            comm=CommMode.ONEBIT)
        # The onebit backend is not compressible, so nothing fuses.
        assert [u.name for u in bucketed.units] \
            == [u.name for u in workload.units]
        assert new_schemes == schemes

    def test_memoized_per_config(self):
        workload, schemes, bucketed, _ = self.bucketed()
        again, _ = bucket_workload(workload, schemes, 4 * 1024 * 1024)
        assert again is bucketed
        other, _ = bucket_workload(workload, schemes, 1024)
        assert other is not bucketed and len(other.units) > len(bucketed.units)

    @pytest.mark.parametrize("comm", [CommMode.PS, CommMode.RING])
    @pytest.mark.parametrize("bucket", [None, 1, 512 * 1024, 16 * 1024 * 1024])
    def test_traffic_invariant_under_bucketing(self, comm, bucket):
        cluster = ClusterConfig(num_workers=8, bandwidth_gbps=10.0)
        workload = build_workload(VGG, gpu=cluster.gpu)
        base = IterationSimulator(workload, cluster,
                                  coarse_system(comm)).run()
        bucketed = IterationSimulator(
            workload, cluster, coarse_system(comm, bucket_bytes=bucket)).run()
        assert bucketed.mean_traffic_gbits == pytest.approx(
            base.mean_traffic_gbits, rel=1e-12)

    def test_des_and_fluid_agree_when_bucketed(self):
        cluster = ClusterConfig(num_workers=8, bandwidth_gbps=10.0)
        workload = build_workload(VGG, gpu=cluster.gpu)
        system = coarse_system(CommMode.RING, "topk(0.01)", 4 * 1024 * 1024)
        des = IterationSimulator(workload, cluster, system).run()
        fluid = FluidSimulator(workload, cluster, system).run()
        assert des.mean_traffic_gbits == pytest.approx(
            fluid.mean_traffic_gbits, rel=1e-12)


# -- trainer-side bucketer -----------------------------------------------------
class FakeScheduler:
    def __init__(self):
        self.jobs = []

    def schedule(self, job):
        self.jobs.append(job)


class TestGradientBucketer:
    def test_jobs_run_once_in_submission_order(self):
        scheduler = FakeScheduler()
        bucketer = GradientBucketer(10, scheduler)
        ran = []
        for i in range(5):
            bucketer.add(4, lambda i=i: ran.append(i))
        bucketer.finish()
        for job in scheduler.jobs:
            job()
        assert ran == [0, 1, 2, 3, 4]
        assert bucketer.jobs_added == 5

    def test_message_count_matches_partition(self):
        sizes = [3, 9, 2, 2, 2, 8, 1]
        scheduler = FakeScheduler()
        bucketer = GradientBucketer(8, scheduler)
        for size in sizes:
            bucketer.add(size, lambda: None)
        bucketer.finish()
        assert bucketer.messages_flushed \
            == len(wire.bucket_partition(sizes, 8))
        assert len(scheduler.jobs) == bucketer.messages_flushed

    def test_non_bucketable_flushes_and_passes_through(self):
        scheduler = FakeScheduler()
        bucketer = GradientBucketer(100, scheduler)
        ran = []
        bucketer.add(4, lambda: ran.append("a"))
        bucketer.add(4, lambda: ran.append("sfb"), bucketable=False)
        bucketer.add(4, lambda: ran.append("b"))
        bucketer.finish()
        # Three messages: the flushed partial bucket, the pass-through,
        # and the final bucket -- in that order.
        assert len(scheduler.jobs) == 3
        for job in scheduler.jobs:
            job()
        assert ran == ["a", "sfb", "b"]

    def test_rejects_bad_bucket(self):
        with pytest.raises(ConfigurationError):
            GradientBucketer(0, FakeScheduler())


class TestTrainerBucketInvariance:
    @staticmethod
    def final_state(bucket_bytes, compressor="none", iterations=5):
        train_x, train_y, _, _ = make_linearly_separable(
            num_train=120, num_test=30, input_dim=16, num_classes=4, seed=1)
        shards = shard_dataset(train_x, train_y, NUM_WORKERS, seed=2)
        config = TrainingConfig(batch_size=8, learning_rate=0.05,
                                iterations=iterations, seed=5)
        trainer = DistributedTrainer(
            network_factory=lambda: build_mlp_network(
                input_dim=16, hidden_dims=(32, 16), num_classes=4, seed=21),
            num_workers=NUM_WORKERS,
            train_shards=shards,
            training=config,
            mode="hybrid",
            schedule=ScheduleMode.WFBP,
            deterministic=True,
            compressor=compressor,
            bucket_bytes=bucket_bytes,
        )
        trainer.train(iterations)
        return trainer.replica(0).get_state()

    @settings(max_examples=4, deadline=None)
    @given(bucket=st.sampled_from([1, 777, 16 * 1024, 10 ** 9]))
    def test_params_bit_identical_for_every_bucket_size(self, bucket):
        """The headline granularity property: bucketing moves no bits."""
        if not hasattr(self, "_reference"):
            type(self)._reference = self.final_state(None)
        bucketed = self.final_state(bucket)
        for layer, params in self._reference.items():
            for name, value in params.items():
                np.testing.assert_array_equal(
                    bucketed[layer][name], value,
                    err_msg=f"{layer}/{name} moved under bucket={bucket}")

    def test_bucketing_composes_with_compression(self):
        reference = self.final_state(None, compressor="topk(0.1)")
        bucketed = self.final_state(2048, compressor="topk(0.1)")
        for layer, params in reference.items():
            for name, value in params.items():
                np.testing.assert_array_equal(bucketed[layer][name], value)


# -- memo-table audit ----------------------------------------------------------
class TestSweepCacheAudit:
    def test_axis_cache_keys_on_compression_axes(self):
        """Same (model, cluster, bandwidths), different wire config -->
        different results; a stale cross-config hit would make them equal."""
        cluster = ClusterConfig(num_workers=8, bandwidth_gbps=10.0)
        bandwidths = [1.0, 10.0]
        base = coarse_system(CommMode.RING)
        variants = {
            "dense": base,
            "sparse": base.with_compression("topk(0.01)"),
            "bucketed": base.with_compression("none", 4 * 1024 * 1024),
        }
        axes = {}
        for name, system in variants.items():
            for _ in range(2):  # second call must hit the cache, unchanged
                axes.setdefault(name, []).append(
                    sweep_axis(VGG, system, cluster, bandwidths))
        for name, (first, second) in axes.items():
            np.testing.assert_array_equal(first, second)
        assert not np.array_equal(axes["dense"][0], axes["sparse"][0])
        assert not np.array_equal(axes["dense"][0], axes["bucketed"][0])

    def test_scheme_decisions_are_compressor_invariant(self):
        """Why the scheme-decision cache needs no compression key:
        ``decide_schemes`` is called on the unbucketed workload and its
        signature never sees the compressor (Algorithm 1 is
        compression-blind by design); the simulators' resolved per-unit
        schemes therefore match for every wire config."""
        cluster = ClusterConfig(num_workers=8, bandwidth_gbps=10.0)
        workload = build_workload(VGG, gpu=cluster.gpu)
        plain = IterationSimulator(workload, cluster,
                                   coarse_system(CommMode.HYBRID)).schemes
        compressed = IterationSimulator(
            workload, cluster,
            coarse_system(CommMode.HYBRID, "topk(0.01)")).schemes
        assert plain == compressed
