"""Tests for the SSP extension and parameter-server checkpointing."""

import threading
import time

import numpy as np
import pytest

from repro.comm.parameter_server import ShardedParameterServer
from repro.core.staleness import SSPClock, StalenessBoundedQueue
from repro.exceptions import CommunicationError, TrainingError
from repro.nn.optim import SGD


class TestSSPClock:
    def test_bsp_is_staleness_zero(self):
        clock = SSPClock(num_workers=2, staleness=0)
        released = []

        def fast_worker():
            clock.advance(0, timeout=5.0)
            released.append(time.monotonic())

        thread = threading.Thread(target=fast_worker)
        start = time.monotonic()
        thread.start()
        time.sleep(0.1)
        clock.advance(1, timeout=5.0)
        thread.join(timeout=5.0)
        # Worker 0 could not pass clock 1 until worker 1 reached it.
        assert released[0] - start >= 0.09

    def test_staleness_allows_running_ahead(self):
        clock = SSPClock(num_workers=2, staleness=2)
        # Worker 0 advances twice without worker 1 moving at all.
        assert clock.advance(0, timeout=1.0) == 1
        assert clock.advance(0, timeout=1.0) == 2
        assert clock.lag(0) == 2

    def test_advance_blocks_beyond_bound(self):
        clock = SSPClock(num_workers=2, staleness=1)
        clock.advance(0, timeout=1.0)
        with pytest.raises(TrainingError):
            clock.advance(0, timeout=0.05)

    def test_min_clock_and_snapshot(self):
        clock = SSPClock(num_workers=3, staleness=5)
        clock.advance(1)
        clock.advance(1)
        clock.advance(2)
        assert clock.min_clock() == 0
        assert clock.snapshot() == {0: 0, 1: 2, 2: 1}

    def test_can_proceed_reflects_bound(self):
        clock = SSPClock(num_workers=2, staleness=1)
        assert clock.can_proceed(0)
        clock.advance(0)
        assert not clock.can_proceed(0)
        clock.advance(1)
        assert clock.can_proceed(0)

    def test_invalid_arguments(self):
        with pytest.raises(TrainingError):
            SSPClock(num_workers=0)
        with pytest.raises(TrainingError):
            SSPClock(num_workers=2, staleness=-1)
        clock = SSPClock(num_workers=2)
        with pytest.raises(TrainingError):
            clock.clock(5)


class TestStalenessBoundedQueue:
    def test_read_satisfied_within_bound(self):
        queue = StalenessBoundedQueue(staleness=2)
        queue.publish(3)
        assert queue.wait_for_read(5, timeout=0.5) == 3

    def test_read_blocks_until_fresh_enough(self):
        queue = StalenessBoundedQueue(staleness=0)
        results = []

        def reader():
            results.append(queue.wait_for_read(2, timeout=5.0))

        thread = threading.Thread(target=reader)
        thread.start()
        time.sleep(0.05)
        queue.publish(2)
        thread.join(timeout=5.0)
        assert results == [2]

    def test_read_timeout(self):
        queue = StalenessBoundedQueue(staleness=0)
        with pytest.raises(TrainingError):
            queue.wait_for_read(1, timeout=0.05)

    def test_publish_is_monotonic(self):
        queue = StalenessBoundedQueue()
        queue.publish(5)
        queue.publish(3)
        assert queue.latest_version == 5

    def test_invalid_staleness(self):
        with pytest.raises(TrainingError):
            StalenessBoundedQueue(staleness=-2)


class TestParameterServerCheckpoint:
    @pytest.fixture
    def server(self):
        params = {"fc": {"weight": np.ones((4, 3), dtype=np.float32),
                         "bias": np.zeros((3,), dtype=np.float32)}}
        return ShardedParameterServer(params, num_workers=1,
                                      optimizer=SGD(learning_rate=0.5))

    def test_checkpoint_then_restore_recovers_state(self, server):
        snapshot = server.checkpoint()
        grad = {"weight": np.ones((4, 3)), "bias": np.ones(3)}
        server.push(0, "fc", grad)
        assert server.version("fc") == 1
        server.restore(snapshot)
        assert server.version("fc") == 0
        np.testing.assert_allclose(server.global_params("fc")["weight"], 1.0)

    def test_checkpoint_is_a_deep_copy(self, server):
        snapshot = server.checkpoint()
        snapshot["fc"]["weight"][:] = 99.0
        np.testing.assert_allclose(server.global_params("fc")["weight"], 1.0)

    def test_restore_preserves_version(self, server):
        server.push(0, "fc", {"weight": np.ones((4, 3)), "bias": np.zeros(3)})
        snapshot = server.checkpoint()
        server.push(0, "fc", {"weight": np.ones((4, 3)), "bias": np.zeros(3)})
        assert server.version("fc") == 2
        server.restore(snapshot)
        assert server.version("fc") == 1

    def test_restore_validates_layers_and_shapes(self, server):
        with pytest.raises(CommunicationError):
            server.restore({"nope": {"weight": np.zeros((4, 3))}})
        with pytest.raises(CommunicationError):
            server.restore({"fc": {"weight": np.zeros((2, 2))}})
        with pytest.raises(CommunicationError):
            server.restore({"fc": {"gamma": np.zeros((4, 3))}})

    def test_training_can_resume_after_restore(self, server):
        snapshot = server.checkpoint()
        grad = {"weight": np.full((4, 3), 2.0), "bias": np.zeros(3)}
        server.push(0, "fc", grad)
        server.restore(snapshot)
        # A fresh iteration (version 1 again) applies cleanly after restore.
        server.push(0, "fc", grad)
        params = server.pull(0, "fc", min_version=1)
        np.testing.assert_allclose(params["weight"], 1.0 - 0.5 * 2.0)
