"""Tests for the Table 1 cost model and Algorithm 1 (BestScheme)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.config import ClusterConfig
from repro.core.cost_model import (
    CommScheme,
    CostModel,
    adam_combined_cost,
    adam_server_cost,
    adam_worker_cost,
    ps_combined_cost,
    ps_server_cost,
    ps_worker_cost,
    sfb_worker_cost,
)
from repro.exceptions import ConfigurationError
from repro.nn.model_zoo import get_model_spec
from repro.nn.spec import LayerKind, LayerSpec


class TestTable1Formulas:
    """The worked example of Section 3.2: M=N=4096, K=32, P1=P2=8."""

    M = N = 4096
    K = 32
    P = 8

    def test_ps_worker_is_2mn(self):
        assert ps_worker_cost(self.M, self.N) == 2 * self.M * self.N

    def test_ps_worker_example_34_million(self):
        assert ps_worker_cost(self.M, self.N) == pytest.approx(34e6, rel=0.02)

    def test_ps_server_example(self):
        assert ps_server_cost(self.M, self.N, self.P, self.P) == pytest.approx(
            34e6, rel=0.02)

    def test_ps_combined_example_58_7_million(self):
        assert ps_combined_cost(self.M, self.N, self.P, self.P) == pytest.approx(
            58.7e6, rel=0.01)

    def test_sfb_example_3_7_million(self):
        assert sfb_worker_cost(self.M, self.N, self.K, self.P) == pytest.approx(
            3.7e6, rel=0.02)

    def test_adam_worker_formula(self):
        expected = self.K * (self.M + self.N) + self.M * self.N
        assert adam_worker_cost(self.M, self.N, self.K) == expected

    def test_adam_server_formula(self):
        expected = self.P * self.M * self.N + self.P * self.K * (self.M + self.N)
        assert adam_server_cost(self.M, self.N, self.K, self.P) == expected

    def test_adam_combined_formula(self):
        expected = (self.P - 1) * (self.M * self.N + self.K * self.M + self.K * self.N)
        assert adam_combined_cost(self.M, self.N, self.K, self.P) == expected

    def test_invalid_dimensions_rejected(self):
        with pytest.raises(ConfigurationError):
            ps_worker_cost(0, 10)
        with pytest.raises(ConfigurationError):
            sfb_worker_cost(10, 10, 0, 2)
        with pytest.raises(ConfigurationError):
            ps_server_cost(10, 10, 0, 1)


class TestCostModelProperties:
    @settings(max_examples=40, deadline=None)
    @given(m=st.integers(1, 8192), n=st.integers(1, 8192),
           k=st.integers(1, 512), p=st.integers(1, 64))
    def test_costs_non_negative(self, m, n, k, p):
        assert ps_worker_cost(m, n) >= 0
        assert ps_combined_cost(m, n, p, p) >= 0
        assert sfb_worker_cost(m, n, k, p) >= 0
        assert adam_combined_cost(m, n, k, p) >= 0

    @settings(max_examples=40, deadline=None)
    @given(m=st.integers(64, 8192), n=st.integers(64, 8192), k=st.integers(1, 256),
           p=st.integers(2, 64))
    def test_sfb_cost_grows_linearly_with_batch(self, m, n, k, p):
        assert sfb_worker_cost(m, n, 2 * k, p) == pytest.approx(
            2 * sfb_worker_cost(m, n, k, p))

    @settings(max_examples=40, deadline=None)
    @given(m=st.integers(64, 8192), n=st.integers(64, 8192), p=st.integers(2, 64))
    def test_ps_cost_independent_of_batch(self, m, n, p):
        # PS moves dense gradients; batch size never appears in its formula.
        assert ps_combined_cost(m, n, p, p) == ps_combined_cost(m, n, p, p)

    @settings(max_examples=40, deadline=None)
    @given(k=st.integers(1, 128), p=st.integers(2, 32))
    def test_sfb_wins_for_square_layers_when_batch_small(self, k, p):
        """For a 4096^2 layer, SFB wins whenever K(P-1)(M+N) < MN(P-1)/P * ..."""
        m = n = 4096
        sfb = sfb_worker_cost(m, n, k, p)
        ps = ps_combined_cost(m, n, p, p)
        # Analytic crossover: SFB wins iff K <= MN(P1+P2-2)/(P2*(P1-1)*(M+N)).
        crossover = m * n * (2 * p - 2) / (p * (p - 1) * (m + n))
        assert (sfb <= ps) == (k <= crossover)


class TestBestScheme:
    def make_fc(self, m, n):
        return LayerSpec(name="fc", kind=LayerKind.FC, param_count=m * n,
                         param_shape=(m, n), sf_decomposable=True, output_shape=(n,))

    def make_conv(self):
        return LayerSpec(name="conv", kind=LayerKind.CONV, param_count=1000,
                         param_shape=(10, 10, 10), output_shape=(10, 5, 5))

    def test_conv_always_ps(self, small_cluster):
        model = CostModel(small_cluster, batch_size=32)
        assert model.best_scheme(self.make_conv()) is CommScheme.PS

    def test_large_fc_small_batch_uses_sfb(self, small_cluster):
        model = CostModel(small_cluster, batch_size=32)
        assert model.best_scheme(self.make_fc(4096, 4096)) is CommScheme.SFB

    def test_thin_fc_large_batch_uses_ps(self, small_cluster):
        """GoogLeNet's 1024x1000 classifier at batch 128 reduces to PS."""
        model = CostModel(small_cluster, batch_size=128)
        assert model.best_scheme(self.make_fc(1024, 1000)) is CommScheme.PS

    def test_single_worker_never_sfb(self):
        cluster = ClusterConfig(num_workers=1)
        model = CostModel(cluster, batch_size=32)
        assert model.best_scheme(self.make_fc(4096, 4096)) is CommScheme.PS

    def test_googlenet_plan_reduces_to_ps_on_16_nodes(self):
        """Section 5.2: Poseidon reduces to PS for GoogLeNet (batch 128)."""
        spec = get_model_spec("googlenet")
        model = CostModel(ClusterConfig(num_workers=16), batch_size=128)
        for layer in spec.fc_layers():
            assert model.best_scheme(layer) is CommScheme.PS

    def test_vgg19_fc_layers_use_sfb_on_16_nodes(self):
        spec = get_model_spec("vgg19")
        model = CostModel(ClusterConfig(num_workers=16), batch_size=32)
        for layer in spec.fc_layers():
            assert model.best_scheme(layer) is CommScheme.SFB

    def test_scheme_cost_bytes_consistency(self, small_cluster):
        model = CostModel(small_cluster, batch_size=32)
        layer = self.make_fc(2048, 2048)
        params = model.scheme_cost_params(layer, CommScheme.PS)
        assert model.scheme_cost_bytes(layer, CommScheme.PS) == params * 4

    def test_onebit_cost_32x_smaller_than_ps(self, small_cluster):
        model = CostModel(small_cluster, batch_size=32)
        layer = self.make_fc(2048, 2048)
        ps = model.scheme_cost_params(layer, CommScheme.PS)
        onebit = model.scheme_cost_params(layer, CommScheme.ONEBIT)
        assert onebit == pytest.approx(ps / 32.0)

    def test_sfb_cost_rejected_for_conv(self, small_cluster):
        model = CostModel(small_cluster, batch_size=32)
        with pytest.raises(ConfigurationError):
            model.scheme_cost_params(self.make_conv(), CommScheme.SFB)

    def test_estimate_layer_has_all_strategies_for_fc(self, small_cluster):
        model = CostModel(small_cluster, batch_size=32)
        estimate = model.estimate_layer(self.make_fc(512, 512))
        as_dict = estimate.as_dict()
        assert all(value is not None for value in as_dict.values())

    def test_estimate_layer_skips_sfb_for_conv(self, small_cluster):
        model = CostModel(small_cluster, batch_size=32)
        estimate = model.estimate_layer(self.make_conv())
        assert estimate.sfb_worker is None
        assert estimate.adam_worker is None

    def test_invalid_batch_rejected(self, small_cluster):
        with pytest.raises(ConfigurationError):
            CostModel(small_cluster, batch_size=0)
