"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.config import ClusterConfig, TrainingConfig
from repro.data import make_linearly_separable, shard_dataset
from repro.nn.model_zoo import build_mlp_network, get_model_spec


@pytest.fixture(scope="session")
def vgg19_spec():
    """VGG19 model spec (cached for the whole session)."""
    return get_model_spec("vgg19")


@pytest.fixture(scope="session")
def googlenet_spec():
    """GoogLeNet model spec (cached for the whole session)."""
    return get_model_spec("googlenet")


@pytest.fixture(scope="session")
def tiny_model_spec():
    """The smallest conv+FC model in the zoo (fast to simulate repeatedly)."""
    return get_model_spec("cifar10-quick")


@pytest.fixture
def small_cluster():
    """An 8-worker, 8-shard cluster at 40 GbE."""
    return ClusterConfig(num_workers=8, bandwidth_gbps=40.0)


@pytest.fixture
def training_config():
    """Small, fast training configuration."""
    return TrainingConfig(batch_size=16, learning_rate=0.05, iterations=5, seed=0)


@pytest.fixture
def mlp_factory():
    """Factory building identical small MLP replicas."""
    def factory():
        return build_mlp_network(input_dim=24, hidden_dims=(48, 24),
                                 num_classes=5, seed=11)
    return factory


@pytest.fixture
def flat_dataset():
    """A small linearly separable dataset: (train_x, train_y, test_x, test_y)."""
    return make_linearly_separable(num_train=240, num_test=60, input_dim=24,
                                   num_classes=5, seed=2)


@pytest.fixture
def flat_shards(flat_dataset):
    """The flat dataset partitioned across 3 workers."""
    train_x, train_y, _, _ = flat_dataset
    return shard_dataset(train_x, train_y, 3, seed=4)


@pytest.fixture
def rng():
    """A deterministic numpy random generator."""
    return np.random.default_rng(1234)
