"""End-to-end integration tests tying the planning, simulation and functional
layers together the way the examples and the experiment harness use them."""

import numpy as np
import pytest

from repro import ClusterConfig, PoseidonContext, TrainingConfig
from repro.core.cost_model import CommScheme
from repro.data import make_cifar10_like, shard_dataset
from repro.engines import CAFFE_WFBP, POSEIDON_CAFFE
from repro.nn.model_zoo import build_cifar_quick_small_network, get_model_spec
from repro.parallel import DistributedTrainer
from repro.simulation import simulate_system


class TestPlanningToSimulationConsistency:
    """The planner's byte accounting and the simulator's traffic must agree."""

    def test_plan_savings_show_up_as_simulated_traffic_savings(self, vgg19_spec):
        cluster = ClusterConfig(num_workers=8)
        context = PoseidonContext(vgg19_spec, cluster, TrainingConfig(batch_size=32))
        plan_saving = context.plan.savings_fraction

        dense = simulate_system(vgg19_spec, CAFFE_WFBP, cluster)
        hybrid = simulate_system(vgg19_spec, POSEIDON_CAFFE, cluster)
        traffic_saving = 1.0 - (hybrid.mean_traffic_gbits / dense.mean_traffic_gbits)
        # Same order of magnitude of savings (the simulator adds scatter/gather
        # round-trips, so the numbers are not expected to match exactly).
        assert plan_saving > 0.5
        assert traffic_saving > 0.5
        assert abs(plan_saving - traffic_saving) < 0.25

    def test_scheme_decisions_match_between_planner_and_simulator(self, vgg19_spec):
        cluster = ClusterConfig(num_workers=16)
        context = PoseidonContext(vgg19_spec, cluster, TrainingConfig(batch_size=32))
        simulated = simulate_system(vgg19_spec, POSEIDON_CAFFE, cluster)
        for layer_name in ("fc6", "fc7", "fc8"):
            assert context.plan.scheme_for(layer_name) is CommScheme.SFB
            assert simulated.scheme_by_unit[layer_name] == "sfb"

    def test_batch_size_flips_both_layers_consistently(self, googlenet_spec):
        """GoogLeNet at batch 128: planner and simulator both choose pure PS."""
        cluster = ClusterConfig(num_workers=16)
        context = PoseidonContext(googlenet_spec, cluster,
                                  TrainingConfig(batch_size=128))
        simulated = simulate_system(googlenet_spec, POSEIDON_CAFFE, cluster)
        assert context.plan.sfb_layer_names == []
        assert "sfb" not in simulated.scheme_by_unit.values()


class TestFunctionalPipeline:
    """Dataset -> shards -> distributed training -> evaluation, end to end."""

    def test_small_cnn_distributed_training_reaches_low_error(self):
        dataset = make_cifar10_like(num_train=600, num_test=150, image_size=12,
                                    noise_scale=1.0, seed=3)
        shards = shard_dataset(dataset.train_images, dataset.train_labels, 2, seed=3)
        trainer = DistributedTrainer(
            network_factory=lambda: build_cifar_quick_small_network(seed=3,
                                                                    image_size=12),
            num_workers=2,
            train_shards=shards,
            training=TrainingConfig(batch_size=16, learning_rate=0.05,
                                    iterations=80, seed=3),
            mode="hybrid",
            test_data=(dataset.test_images, dataset.test_labels),
            eval_every=40,
        )
        history = trainer.train(80)
        assert history.losses[-1] < history.losses[0] / 2
        assert history.final_test_error < 0.5
        assert trainer.replica_states_close()

    def test_functional_byte_accounting_orders_like_cost_model(self):
        """For a wide-FC model, hybrid mode moves fewer bytes than pure PS."""
        rng = np.random.default_rng(0)
        train_x = rng.standard_normal((96, 512)).astype(np.float32)
        train_y = rng.integers(0, 10, size=96).astype(np.int64)
        shards = shard_dataset(train_x, train_y, 2, seed=0)
        from repro.nn.model_zoo import build_mlp_network

        def factory():
            return build_mlp_network(input_dim=512, hidden_dims=(512,),
                                     num_classes=10, seed=4)

        histories = {}
        for mode in ("ps", "hybrid"):
            trainer = DistributedTrainer(
                network_factory=factory, num_workers=2, train_shards=shards,
                training=TrainingConfig(batch_size=4, learning_rate=0.05,
                                        iterations=3, seed=0),
                mode=mode)
            histories[mode] = trainer.train(3)
        assert histories["hybrid"].total_bytes < histories["ps"].total_bytes
        np.testing.assert_allclose(histories["hybrid"].losses,
                                   histories["ps"].losses, atol=1e-4)


class TestCrossModelSanity:
    @pytest.mark.parametrize("model_key", ["alexnet", "resnet-50", "vgg16",
                                           "inception-v3"])
    def test_every_zoo_model_simulates(self, model_key):
        spec = get_model_spec(model_key)
        result = simulate_system(spec, POSEIDON_CAFFE,
                                 ClusterConfig(num_workers=4))
        assert 1.0 <= result.speedup <= 4.0 + 1e-6
        assert result.iteration_seconds > 0
