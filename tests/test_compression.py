"""Tests for the pluggable gradient-compression zoo.

Four layers of protection:

* the shared wire-size helper (:mod:`repro.comm.wire`): payload formulas
  for every compressor kind, the FC-only scope rule, spec parsing (and
  its rejection of malformed specs at construction time);
* compressor math (:mod:`repro.comm.compression`): top-k error feedback
  conserves gradient mass (residual = exactly the un-sent entries, a
  hypothesis property), the 1-bit compressor reproduces
  ``OneBitQuantizer`` byte-for-byte and value-for-value, PowerSGD's
  warm-started factors are deterministic, and every compressor's state
  round-trips through ``get_state``/``set_state`` -- including through a
  trainer checkpoint/restore cycle under fault injection;
* end-to-end wire-byte agreement: the trainer's measured per-layer
  ``bytes_sent``, the cost model's compression factor, and both
  simulation engines' traffic bookings all derive from the same
  ``repro.comm.wire`` formulas, pinned exactly for every (backend,
  compressor) pair;
* configuration validation: a compressor on a backend with no
  dense-gradient path (sfb, onebit, adam) and wire axes under fine
  partitioning raise ``ConfigurationError`` in the trainer and in both
  simulators.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.comm import wire
from repro.comm.backend import get_backend
from repro.comm.compression import (
    OneBitCompressor,
    PowerSGDCompressor,
    TopKCompressor,
    make_compressor,
)
from repro.comm.quantization import OneBitQuantizer
from repro.comm.wire import CompressionConfig
from repro.config import ClusterConfig, TrainingConfig
from repro.core.cost_model import CommScheme, CostModel
from repro.core.faults import CrashFault, FaultPlan
from repro.core.wfbp import ScheduleMode
from repro.data import make_linearly_separable, shard_dataset
from repro.engines.base import CommMode, Partitioning, SystemConfig
from repro.exceptions import ConfigurationError
from repro.nn.model_zoo import build_mlp_network, get_model_spec
from repro.nn.spec import LayerKind
from repro.parallel import DistributedTrainer
from repro.simulation.fluid import FluidSimulator
from repro.simulation.throughput import (
    IterationSimulator,
    validate_compression,
)
from repro.simulation.workload import build_workload

VGG = get_model_spec("vgg19")
NUM_WORKERS = 3
BATCH = 8

F32 = 4  # float32 bytes


# -- shared trainer fixture ----------------------------------------------------
@pytest.fixture
def setup():
    train_x, train_y, test_x, test_y = make_linearly_separable(
        num_train=180, num_test=60, input_dim=16, num_classes=4, seed=1)
    shards = shard_dataset(train_x, train_y, NUM_WORKERS, seed=2)
    config = TrainingConfig(batch_size=BATCH, learning_rate=0.05,
                            iterations=6, seed=5)

    def factory():
        return build_mlp_network(input_dim=16, hidden_dims=(32, 16),
                                 num_classes=4, seed=21)

    return factory, shards, config


def make_trainer(setup, mode, **kwargs):
    factory, shards, config = setup
    return DistributedTrainer(
        network_factory=factory,
        num_workers=NUM_WORKERS,
        train_shards=shards,
        training=config,
        mode=mode,
        schedule=ScheduleMode.WFBP,
        deterministic=True,
        **kwargs,
    )


def coarse_system(comm: CommMode, compressor: str = "none",
                  bucket_bytes=None) -> SystemConfig:
    return SystemConfig(
        name="probe", engine="probe", comm=comm,
        schedule=ScheduleMode.WFBP, partitioning=Partitioning.COARSE,
        overlap_pull=True, overlap_host_copy=True,
    ).with_compression(compressor, bucket_bytes)


# -- wire formulas -------------------------------------------------------------
class TestWireFormulas:
    def test_sign_payload_ceil_divides(self):
        assert wire.sign_payload_bytes(8) == 1
        assert wire.sign_payload_bytes(9) == 2
        assert wire.sign_payload_bytes(0) == 0

    def test_onebit_payload_matches_quantizer(self):
        grad = np.random.default_rng(0).standard_normal((37, 21)).astype(np.float32)
        quantized = OneBitQuantizer().quantize("w", grad)
        assert wire.onebit_payload_bytes(37, 21) == quantized.nbytes

    def test_topk_count_fraction_and_absolute(self):
        assert wire.topk_count(0.01, 1000) == 10
        assert wire.topk_count(0.0001, 1000) == 1      # floor of one entry
        assert wire.topk_count(50, 1000) == 50         # absolute count
        assert wire.topk_count(5000, 1000) == 1000     # clamped to elements
        with pytest.raises(ConfigurationError):
            wire.topk_count(0.5, 0)

    def test_topk_payload_is_index_value_pairs(self):
        assert wire.topk_payload_bytes(0.01, 100, 10) == 10 * wire.TOPK_ENTRY_BYTES

    def test_powersgd_payload_and_rank_clamp(self):
        assert wire.powersgd_rank(4, 100, 10) == 4
        assert wire.powersgd_rank(64, 100, 10) == 10   # clamped to min(m, n)
        assert wire.powersgd_payload_bytes(4, 100, 10) == (100 + 10) * 4 * F32

    def test_scope_rule_small_matrices_ship_dense(self):
        config = CompressionConfig.parse("topk(0.01)")
        assert not config.compresses(7, 9)             # 63 < 64 elements
        assert config.compresses(8, 8)
        assert config.weight_payload_bytes(7, 9) == 63 * F32

    def test_unit_wire_bytes_identity_and_dense(self):
        config = CompressionConfig.parse("topk(0.01)")
        assert wire.unit_wire_bytes(None, 1000) == 1000
        # No fc_dims: the unit is conv/bias-only and ships dense.
        assert wire.unit_wire_bytes(config, 1000) == 1000

    def test_unit_wire_bytes_fc_plus_dense_remainder(self):
        config = CompressionConfig.parse("powersgd(2)")
        m, n = 100, 50
        param_bytes = m * n * F32 + 200    # weight + 200 bytes of bias
        expected = config.weight_payload_bytes(m, n) + 200
        assert wire.unit_wire_bytes(config, param_bytes, (m, n)) == expected

    def test_unit_wire_bytes_sums_payload_parts(self):
        config = CompressionConfig.parse("topk(0.01)")
        parts = ((100 * 50 * F32, (100, 50)), (300, None))
        merged = wire.unit_wire_bytes(config, 100 * 50 * F32 + 300,
                                      fc_dims=None, payload_parts=parts)
        assert merged == (wire.unit_wire_bytes(config, 100 * 50 * F32, (100, 50))
                          + 300)

    @pytest.mark.parametrize("spec", [
        "gzip", "topk", "topk()", "topk(-1)", "topk(x)", "powersgd",
        "powersgd(0)", "powersgd(1.5)", "onebit(3)", "none(1)", "topk(0.1",
    ])
    def test_parse_rejects_malformed_specs(self, spec):
        with pytest.raises(ConfigurationError):
            CompressionConfig.parse(spec)

    def test_parse_accepts_canonical_specs(self):
        assert CompressionConfig.parse(None).is_identity
        assert CompressionConfig.parse("none").is_identity
        assert CompressionConfig.parse("onebit").kind == "onebit"
        assert CompressionConfig.parse("topk(0.01)").k == 0.01
        assert CompressionConfig.parse("powersgd(4)").rank == 4

    def test_compression_flops_zero_at_identity_and_out_of_scope(self):
        assert CompressionConfig.parse("none").compression_flops(100, 100) == 0.0
        assert CompressionConfig.parse("topk(0.1)").compression_flops(7, 9) == 0.0
        assert CompressionConfig.parse("topk(0.1)").compression_flops(10, 10) > 0.0


# -- compressor math -----------------------------------------------------------
def random_grads(seed: int, shape=(24, 16)):
    rng = np.random.default_rng(seed)
    return {
        "weight": rng.standard_normal(shape).astype(np.float32),
        "bias": rng.standard_normal(shape[1]).astype(np.float32),
    }


class TestTopKCompressor:
    def test_error_feedback_conserves_mass(self):
        compressor = TopKCompressor(CompressionConfig.parse("topk(0.1)"))
        grads = random_grads(1)
        lossy, _ = compressor.compress("fc", grads)
        residual = compressor._residuals["fc/weight"]
        # Sent + residual == the full corrected gradient, elementwise.
        np.testing.assert_allclose(lossy["weight"] + residual,
                                   grads["weight"], rtol=0, atol=1e-7)

    def test_residual_reenters_next_iteration(self):
        compressor = TopKCompressor(CompressionConfig.parse("topk(1)"))
        grads = {"weight": np.arange(64, dtype=np.float32).reshape(8, 8)}
        compressor.compress("fc", grads)   # sends entry 63, zero residual there
        # Iteration 2's corrected gradient doubles every un-sent entry, so
        # entry 62 (62 + 62 = 124) overtakes the freshly-sent entry 63.
        lossy, _ = compressor.compress("fc", grads)
        assert lossy["weight"].reshape(-1)[62] == pytest.approx(124.0)
        assert np.count_nonzero(lossy["weight"]) == 1

    def test_bias_passes_through_dense(self):
        compressor = TopKCompressor(CompressionConfig.parse("topk(0.1)"))
        grads = random_grads(2)
        lossy, nbytes = compressor.compress("fc", grads)
        np.testing.assert_array_equal(lossy["bias"], grads["bias"])
        assert nbytes == (wire.topk_payload_bytes(0.1, 24, 16)
                          + grads["bias"].nbytes)

    def test_state_round_trips(self):
        a = TopKCompressor(CompressionConfig.parse("topk(0.1)"))
        b = TopKCompressor(CompressionConfig.parse("topk(0.1)"))
        a.compress("fc", random_grads(3))
        b.set_state(a.get_state())
        lossy_a, _ = a.compress("fc", random_grads(4))
        lossy_b, _ = b.compress("fc", random_grads(4))
        np.testing.assert_array_equal(lossy_a["weight"], lossy_b["weight"])

    @settings(max_examples=20, deadline=None)
    @given(seed=st.integers(0, 10_000), k=st.sampled_from([0.01, 0.1, 0.5, 3]))
    def test_error_feedback_property(self, seed, k):
        """Residual always equals the un-sent mass of the corrected gradient."""
        compressor = TopKCompressor(CompressionConfig.parse(f"topk({k})"))
        corrected = np.zeros((12, 8), dtype=np.float32)
        for step in range(3):
            grads = random_grads(seed + step, shape=(12, 8))
            corrected = corrected + grads["weight"]
            lossy, _ = compressor.compress("fc", grads)
            sent = lossy["weight"]
            count = wire.topk_count(k, 96)
            assert int(np.count_nonzero(sent)) <= count
            residual = compressor._residuals["fc/weight"]
            np.testing.assert_allclose(sent + residual, corrected, atol=1e-5)
            corrected = residual


class TestOneBitCompressor:
    def test_matches_quantizer_bytes_and_values(self):
        compressor = OneBitCompressor(CompressionConfig.parse("onebit"))
        quantizer = OneBitQuantizer()
        for step in range(3):   # across steps, so residuals must agree too
            grads = random_grads(10 + step)
            lossy, nbytes = compressor.compress("fc", grads)
            reference = quantizer.quantize("fc/weight", grads["weight"])
            np.testing.assert_array_equal(lossy["weight"],
                                          reference.dequantize())
            assert nbytes == reference.nbytes + grads["bias"].nbytes

    def test_state_round_trips(self):
        a = OneBitCompressor(CompressionConfig.parse("onebit"))
        b = OneBitCompressor(CompressionConfig.parse("onebit"))
        a.compress("fc", random_grads(20))
        b.set_state(a.get_state())
        lossy_a, _ = a.compress("fc", random_grads(21))
        lossy_b, _ = b.compress("fc", random_grads(21))
        np.testing.assert_array_equal(lossy_a["weight"], lossy_b["weight"])


class TestPowerSGDCompressor:
    def test_lossy_is_rank_r(self):
        compressor = PowerSGDCompressor(CompressionConfig.parse("powersgd(2)"))
        lossy, nbytes = compressor.compress("fc", random_grads(30))
        assert np.linalg.matrix_rank(lossy["weight"]) <= 2
        assert nbytes == (wire.powersgd_payload_bytes(2, 24, 16)
                          + random_grads(30)["bias"].nbytes)

    def test_warm_start_is_deterministic(self):
        runs = []
        for _ in range(2):
            compressor = PowerSGDCompressor(
                CompressionConfig.parse("powersgd(2)"))
            for step in range(3):
                lossy, _ = compressor.compress("fc", random_grads(40 + step))
            runs.append(lossy["weight"])
        np.testing.assert_array_equal(runs[0], runs[1])

    def test_state_round_trips(self):
        a = PowerSGDCompressor(CompressionConfig.parse("powersgd(2)"))
        b = PowerSGDCompressor(CompressionConfig.parse("powersgd(2)"))
        a.compress("fc", random_grads(50))
        b.set_state(a.get_state())
        lossy_a, _ = a.compress("fc", random_grads(51))
        lossy_b, _ = b.compress("fc", random_grads(51))
        np.testing.assert_array_equal(lossy_a["weight"], lossy_b["weight"])


class TestMakeCompressor:
    def test_identity_returns_none(self):
        assert make_compressor(None) is None
        assert make_compressor("none") is None

    def test_spec_round_trips(self):
        for spec in ("onebit", "topk(0.01)", "powersgd(4)"):
            assert make_compressor(spec).spec == spec

    def test_rejects_unknown(self):
        with pytest.raises(ConfigurationError):
            make_compressor("gzip")


# -- configuration validation --------------------------------------------------
class TestValidation:
    @pytest.mark.parametrize("mode", ["sfb", "onebit", "adam"])
    def test_trainer_rejects_compressor_on_non_dense_backend(self, setup, mode):
        with pytest.raises(ConfigurationError):
            make_trainer(setup, mode, compressor="topk(0.1)")

    def test_trainer_rejects_bad_bucket(self, setup):
        with pytest.raises(ConfigurationError):
            make_trainer(setup, "ps", bucket_bytes=0)

    def test_backend_compressible_registry(self):
        config = CompressionConfig.parse("topk(0.1)")
        assert get_backend(CommScheme.PS).supports_compression(config)
        assert get_backend(CommScheme.RING).supports_compression(config)
        assert not get_backend(CommScheme.ONEBIT).supports_compression(config)
        assert not get_backend(CommScheme.SFB).supports_compression(config)
        # Identity is supported everywhere.
        identity = CompressionConfig.parse("none")
        assert get_backend(CommScheme.SFB).supports_compression(identity)

    def test_simulators_reject_compressor_under_fine_partitioning(self):
        fine = SystemConfig(
            name="probe", engine="probe", comm=CommMode.PS,
            schedule=ScheduleMode.WFBP, partitioning=Partitioning.FINE,
            overlap_pull=True, overlap_host_copy=True,
        ).with_compression("topk(0.1)")
        with pytest.raises(ConfigurationError):
            validate_compression(fine)
        cluster = ClusterConfig(num_workers=4, bandwidth_gbps=10.0)
        workload = build_workload(VGG, gpu=cluster.gpu)
        with pytest.raises(ConfigurationError):
            IterationSimulator(workload, cluster, fine)
        with pytest.raises(ConfigurationError):
            FluidSimulator(workload, cluster, fine)

    def test_simulators_reject_compressor_on_non_dense_backend(self):
        system = coarse_system(CommMode.SFB_ONLY, "topk(0.1)")
        with pytest.raises(ConfigurationError):
            validate_compression(system)

    def test_validate_identity_returns_none(self):
        assert validate_compression(coarse_system(CommMode.PS)) is None
        config = validate_compression(coarse_system(CommMode.PS, "topk(0.1)"))
        assert config is not None and config.kind == "topk"


# -- end-to-end wire-byte agreement --------------------------------------------
class TestTrainerWireBytes:
    """Trainer-measured bytes == the shared wire formulas, per layer."""

    @pytest.mark.parametrize("spec", ["topk(0.1)", "powersgd(2)", "onebit"])
    def test_ps_bytes_sent_match_formula(self, setup, spec):
        config = CompressionConfig.parse(spec)
        trainer = make_trainer(setup, "ps", compressor=spec)
        iterations = 4
        trainer.train(iterations)
        network = setup[0]()
        for layer in network.layers:
            if not layer.has_parameters:
                continue
            expected_per_iter = sum(
                config.weight_payload_bytes(*param.shape)
                if param.ndim == 2 and param.size >= wire.MIN_COMPRESS_ELEMENTS
                else int(param.nbytes)
                for param in layer.params.values())
            for worker in range(NUM_WORKERS):
                syncer = trainer._workers[worker].syncers[layer.name]
                assert syncer.stats.bytes_sent == iterations * expected_per_iter

    def test_ring_bytes_sent_match_formula(self, setup):
        config = CompressionConfig.parse("topk(0.1)")
        trainer = make_trainer(setup, "ring", compressor="topk(0.1)")
        iterations = 4
        trainer.train(iterations)
        network = setup[0]()
        ring_factor = 2 * (NUM_WORKERS - 1) / NUM_WORKERS
        for layer in network.layers:
            if not layer.has_parameters:
                continue
            payload = sum(
                config.weight_payload_bytes(*param.shape)
                if param.ndim == 2 and param.size >= wire.MIN_COMPRESS_ELEMENTS
                else int(param.nbytes)
                for param in layer.params.values())
            expected_per_iter = int(payload * ring_factor)
            syncer = trainer._workers[0].syncers[layer.name]
            assert syncer.stats.bytes_sent == iterations * expected_per_iter

    def test_compressed_losses_agree_across_backends(self, setup):
        """The lossy math is substrate-independent: ps == ring == hybrid."""
        losses = {}
        for mode in ("ps", "ring", "hybrid"):
            trainer = make_trainer(setup, mode, compressor="topk(0.1)")
            losses[mode] = trainer.train(4).losses
        assert losses["ps"] == losses["ring"] == losses["hybrid"]


class TestCostModelAgreement:
    """Cost-model compression factors derive from the same wire formulas."""

    def test_ps_factor_is_push_compressed_pull_dense(self):
        cluster = ClusterConfig(num_workers=8, bandwidth_gbps=10.0)
        config = CompressionConfig.parse("topk(0.01)")
        plain = CostModel(cluster, batch_size=32)
        compressed = CostModel(cluster, batch_size=32, compression="topk(0.01)")
        for layer in VGG.layers:
            if layer.kind is not LayerKind.FC:
                continue
            m, n = layer.fc_dims
            base = plain.scheme_cost_params(layer, CommScheme.PS)
            got = compressed.scheme_cost_params(layer, CommScheme.PS)
            expected = base * (1.0 + config.weight_ratio(m, n)) / 2.0
            assert got == pytest.approx(expected)

    def test_ring_factor_is_wire_ratio(self):
        cluster = ClusterConfig(num_workers=8, bandwidth_gbps=10.0)
        config = CompressionConfig.parse("powersgd(4)")
        plain = CostModel(cluster, batch_size=32)
        compressed = CostModel(cluster, batch_size=32,
                               compression="powersgd(4)")
        for layer in VGG.layers:
            if layer.kind is not LayerKind.FC:
                continue
            m, n = layer.fc_dims
            base = plain.scheme_cost_params(layer, CommScheme.RING)
            got = compressed.scheme_cost_params(layer, CommScheme.RING)
            assert got == pytest.approx(base * config.weight_ratio(m, n))

    def test_best_scheme_never_considers_compression(self):
        """Algorithm 1 routes on dense bytes; compression is orthogonal."""
        cluster = ClusterConfig(num_workers=8, bandwidth_gbps=10.0)
        plain = CostModel(cluster, batch_size=32)
        compressed = CostModel(cluster, batch_size=32, compression="topk(0.01)")
        for layer in VGG.layers:
            assert (plain.best_scheme(layer)
                    == compressed.best_scheme(layer))


class TestSimulatorAgreement:
    """DES and fluid book identical traffic for every compressor."""

    @pytest.mark.parametrize("comm", [CommMode.PS, CommMode.RING])
    @pytest.mark.parametrize("spec", ["none", "topk(0.01)", "powersgd(4)",
                                      "onebit"])
    def test_des_and_fluid_traffic_exactly_equal(self, comm, spec):
        cluster = ClusterConfig(num_workers=8, bandwidth_gbps=10.0)
        workload = build_workload(VGG, gpu=cluster.gpu)
        system = coarse_system(comm, spec)
        des = IterationSimulator(workload, cluster, system).run()
        fluid = FluidSimulator(workload, cluster, system).run()
        assert des.mean_traffic_gbits == pytest.approx(
            fluid.mean_traffic_gbits, rel=1e-12)

    def test_compression_shrinks_traffic_and_time(self):
        cluster = ClusterConfig(num_workers=8, bandwidth_gbps=10.0)
        workload = build_workload(VGG, gpu=cluster.gpu)
        dense = IterationSimulator(
            workload, cluster, coarse_system(CommMode.RING)).run()
        sparse = IterationSimulator(
            workload, cluster,
            coarse_system(CommMode.RING, "topk(0.01)")).run()
        assert sparse.mean_traffic_gbits < dense.mean_traffic_gbits / 4
        assert sparse.iteration_seconds < dense.iteration_seconds

    def test_des_traffic_matches_wire_formula(self):
        """The booked PS push bytes are exactly unit_wire_bytes per unit."""
        cluster = ClusterConfig(num_workers=4, bandwidth_gbps=10.0)
        workload = build_workload(VGG, gpu=cluster.gpu)
        config = CompressionConfig.parse("topk(0.01)")
        sim = IterationSimulator(workload, cluster,
                                 coarse_system(CommMode.PS, "topk(0.01)"))
        for unit in sim.workload.units:
            got = sim.coarse_push_bytes(unit, CommScheme.PS)
            expected = wire.unit_wire_bytes(config, unit.param_bytes,
                                            unit.fc_dims, unit.payload_parts)
            assert got == expected
            # Pulls stay dense under every pluggable compressor.
            assert sim.coarse_pull_bytes(unit, CommScheme.PS) == unit.param_bytes


# -- compressor state through checkpoint/restore -------------------------------
class TestCheckpointedCompressorState:
    def test_state_survives_crash_recovery(self, setup):
        """A crash + restore run matches an undisturbed run bit-for-bit.

        Only true because compressor state (error-feedback residuals,
        PowerSGD factors) joins the checkpoint; without it the restored
        replica would re-lose mass the residuals already carried.
        """
        baseline = make_trainer(setup, "ps", compressor="topk(0.1)")
        baseline_history = baseline.train(6)
        plan = FaultPlan(crashes=(CrashFault(worker_id=1, iteration=3),))
        faulted = make_trainer(setup, "ps", compressor="topk(0.1)",
                               fault_plan=plan, recovery="restart",
                               checkpoint_interval=2)
        faulted_history = faulted.train(6)
        assert faulted_history.losses[-1] == pytest.approx(
            baseline_history.losses[-1])
        base_state = baseline.replica(0).get_state()
        fault_state = faulted.replica(0).get_state()
        assert base_state.keys() == fault_state.keys()
        for layer, params in base_state.items():
            for name, value in params.items():
                np.testing.assert_array_equal(
                    fault_state[layer][name], value,
                    err_msg=f"{layer}/{name} diverged after recovery")

    def test_checkpoint_carries_compressor_states(self, setup):
        trainer = make_trainer(setup, "ps", compressor="powersgd(2)",
                               checkpoint_interval=2, recovery="restart",
                               fault_plan=FaultPlan())
        trainer.train(4)
        ckpt = trainer._checkpoint
        assert ckpt is not None
        assert len(ckpt.compressor_states) == NUM_WORKERS
        for state in ckpt.compressor_states:
            assert state["qs"]            # warm factors were checkpointed
            assert state["residuals"]
