"""Tests for the rack-topology network model (oversubscription).

Three layers of protection:

* a hypothesis property test pinning that ``oversubscription=1.0`` (any
  rack count) reproduces the flat model *exactly* -- same iteration time,
  same per-node traffic -- for every registered scheme;
* unit tests of the intra-/cross-rack byte-split accounting of every
  backend's topology-aware Algorithm-1 cost, against hand-derived formulas;
* end-to-end checks of the headline behaviour: cross-rack flows contend on
  the shared rack uplink, ring/hierarchical-PS overtake the flat PS under
  heavy oversubscription, and the rack-aware cost model shifts
  ``best_scheme`` accordingly.
"""

import math

import pytest
from hypothesis import given, settings, strategies as st

from repro.cluster.machine import ClusterModel
from repro.comm.backend import get_backend, hybrid_choice
from repro.config import ClusterConfig
from repro.core.cost_model import (
    CommScheme,
    CostModel,
    NetworkTopology,
    adam_combined_cost,
    ps_combined_cost,
    sfb_worker_cost,
)
from repro.core.wfbp import ScheduleMode
from repro.engines.base import CommMode, Partitioning, SystemConfig
from repro.exceptions import ConfigurationError, SimulationError
from repro.nn.spec import LayerKind, LayerSpec
from repro.sim import Environment
from repro.simulation.throughput import decide_schemes, simulate_system
from repro.simulation.workload import build_workload


def poseidon_style(comm: CommMode, name: str = "sys") -> SystemConfig:
    return SystemConfig(name=name, engine="poseidon", schedule=ScheduleMode.WFBP,
                        partitioning=Partitioning.FINE, comm=comm,
                        overlap_pull=True, overlap_host_copy=True)


ALL_COMM_MODES = (CommMode.PS, CommMode.SFB_ONLY, CommMode.HYBRID,
                  CommMode.ONEBIT, CommMode.ADAM, CommMode.RING,
                  CommMode.HIERPS)


# ---------------------------------------------------------------------------
# ClusterConfig topology fields
# ---------------------------------------------------------------------------


class TestClusterConfigTopology:
    def test_defaults_are_flat(self):
        config = ClusterConfig(num_workers=8)
        assert config.racks == 1
        assert config.oversubscription == 1.0
        assert config.is_flat_topology

    def test_racks_without_oversubscription_is_flat(self):
        config = ClusterConfig(num_workers=8, racks=4, oversubscription=1.0)
        assert config.is_flat_topology

    def test_oversubscribed_racks_are_not_flat(self):
        config = ClusterConfig(num_workers=8, racks=2, oversubscription=2.0)
        assert not config.is_flat_topology

    def test_rack_of_contiguous_blocks(self):
        config = ClusterConfig(num_workers=10, racks=3)
        assert config.nodes_per_rack == 4
        assert [config.rack_of(n) for n in range(10)] == \
            [0, 0, 0, 0, 1, 1, 1, 1, 2, 2]

    def test_rack_of_rejects_unknown_nodes(self):
        config = ClusterConfig(num_workers=4, racks=2)
        with pytest.raises(ConfigurationError):
            config.rack_of(4)
        with pytest.raises(ConfigurationError):
            config.rack_of(-1)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            ClusterConfig(num_workers=4, racks=0)
        with pytest.raises(ConfigurationError):
            ClusterConfig(num_workers=4, oversubscription=0.5)

    def test_rack_bisection_bandwidth(self):
        config = ClusterConfig(num_workers=8, bandwidth_gbps=10.0, racks=2,
                               oversubscription=4.0)
        assert config.rack_bisection_bps(4) == pytest.approx(
            config.effective_bandwidth_bps * 4 / 4.0)

    def test_with_topology_and_with_workers_compose(self):
        config = ClusterConfig(num_workers=8).with_topology(2, 4.0)
        grown = config.with_workers(16)
        assert (grown.racks, grown.oversubscription) == (2, 4.0)
        assert grown.nodes_per_rack == 8

    def test_dedicated_servers_extend_the_racks(self):
        config = ClusterConfig(num_workers=4, num_servers=2,
                               colocate_servers=False, racks=3)
        assert config.num_nodes == 6
        assert config.nodes_per_rack == 2
        assert config.rack_of(5) == 2

    def test_from_cluster_prices_the_physical_racks(self):
        # Non-colocated shards extend the racks: the cost model must use
        # the simulator's node partition (racks of 4), not ceil(P1/racks).
        cluster = ClusterConfig(num_workers=8, num_servers=8,
                                colocate_servers=False, racks=4,
                                oversubscription=4.0)
        topology = NetworkTopology.from_cluster(cluster)
        assert cluster.nodes_per_rack == 4
        assert topology.nodes_per_rack(cluster.num_workers) == 4
        # Colocated clusters are unaffected: both views coincide.
        colocated = ClusterConfig(num_workers=16, racks=4, oversubscription=4.0)
        assert NetworkTopology.from_cluster(colocated).nodes_per_rack(16) == \
            NetworkTopology(racks=4, oversubscription=4.0).nodes_per_rack(16)


# ---------------------------------------------------------------------------
# oversubscription == 1.0 reproduces the flat model exactly
# ---------------------------------------------------------------------------


class TestFlatEquivalence:
    @settings(max_examples=20, deadline=None)
    @given(
        nodes=st.integers(min_value=2, max_value=10),
        racks=st.integers(min_value=1, max_value=5),
        bandwidth=st.sampled_from([5.0, 10.0, 40.0]),
        comm=st.sampled_from(ALL_COMM_MODES),
    )
    def test_full_bisection_racks_equal_flat(self, nodes, racks, bandwidth,
                                             comm, tiny_model_spec):
        """Property: racks at oversubscription 1.0 are byte-identical to flat."""
        system = poseidon_style(comm)
        flat = ClusterConfig(num_workers=nodes, bandwidth_gbps=bandwidth)
        racked = flat.with_topology(racks=racks, oversubscription=1.0)
        result_flat = simulate_system(tiny_model_spec, system, flat)
        result_racked = simulate_system(tiny_model_spec, system, racked)
        assert result_flat.iteration_seconds == result_racked.iteration_seconds
        assert result_flat.per_node_traffic_bytes == \
            result_racked.per_node_traffic_bytes
        assert result_flat.scheme_by_unit == result_racked.scheme_by_unit

    def test_flat_cluster_models_have_no_rack_switches(self):
        env = Environment()
        model = ClusterModel(env, ClusterConfig(num_workers=8, racks=4))
        assert not model.topology_active
        assert model.rack_switches == []
        assert model.cross_rack_bytes() == 0.0

    def test_flat_topology_cost_is_bit_exact(self):
        flat_topo = NetworkTopology(racks=4, oversubscription=1.0)
        for scheme in CommScheme:
            backend = get_backend(scheme)
            base = backend.cost(1024, 1000, 16, 16, 32)
            assert backend.cost(1024, 1000, 16, 16, 32,
                                topology=flat_topo) == base
            assert backend.cost(1024, 1000, 16, 16, 32, topology=None) == base


# ---------------------------------------------------------------------------
# per-backend intra-/cross-rack byte-split accounting
# ---------------------------------------------------------------------------

#: 16 workers in 4 racks of 4, 4:1 oversubscribed.
TOPO = NetworkTopology(racks=4, oversubscription=4.0)
P, S, K, M, N = 16, 16, 32, 1024, 1000
L = TOPO.nodes_per_rack(P)  # = 4
CROSS_PEERS = (P - L) / (P - 1)  # 12 of 15 peers live outside the rack


class TestCostByteSplit:
    def test_cross_peer_fraction(self):
        assert TOPO.cross_peer_fraction(P) == pytest.approx(CROSS_PEERS)
        assert TOPO.cross_peer_fraction(1) == 0.0

    def test_ps_uplink_is_uniform_peer_split(self):
        backend = get_backend("ps")
        flat = ps_combined_cost(M, N, P, S)
        uplink = backend.rack_uplink_params(M, N, P, S, K, TOPO)
        assert uplink == pytest.approx(L * flat * CROSS_PEERS)
        assert backend.cost(M, N, P, S, K, topology=TOPO) == pytest.approx(
            max(flat, uplink * TOPO.oversubscription / L))

    def test_onebit_uplink_is_ps_over_compression(self):
        onebit = get_backend("onebit")
        ps = get_backend("ps")
        assert onebit.rack_uplink_params(M, N, P, S, K, TOPO) == pytest.approx(
            ps.rack_uplink_params(M, N, P, S, K, TOPO) / 32.0)

    def test_sfb_uplink_counts_out_of_rack_peers(self):
        backend = get_backend("sfb")
        flat = sfb_worker_cost(M, N, K, P)
        uplink = backend.rack_uplink_params(M, N, P, S, K, TOPO)
        # Every rack member broadcasts to (and hears from) the P - L peers
        # outside the rack: L * 2 K (P - L) (M + N) parameters.
        assert uplink == pytest.approx(L * 2.0 * K * (P - L) * (M + N))
        assert uplink == pytest.approx(L * flat * CROSS_PEERS)

    def test_adam_uplink_is_the_owner_racks(self):
        backend = get_backend("adam")
        uplink = backend.rack_uplink_params(M, N, P, S, K, TOPO)
        # Out-of-rack workers send factors in, full matrices come back out.
        assert uplink == pytest.approx((P - L) * (M * N + K * (M + N)))

    def test_ring_uplink_is_one_node_volume(self):
        backend = get_backend("ring")
        uplink = backend.rack_uplink_params(M, N, P, S, K, TOPO)
        # One boundary flow per direction per rack, whatever L is.
        assert uplink == pytest.approx(4.0 * M * N * (P - 1) / P)
        # So the topology cost only grows once oversubscription exceeds L.
        flat = backend.cost(M, N, P, S, K)
        assert backend.cost(M, N, P, S, K, topology=TOPO) == pytest.approx(
            flat * max(1.0, TOPO.oversubscription / L))

    def test_hierps_uplink_is_one_aggregate_per_rack(self):
        backend = get_backend("hierps")
        uplink = backend.rack_uplink_params(M, N, P, S, K, TOPO)
        num_racks = math.ceil(P / L)
        assert uplink == pytest.approx(2.0 * M * N * (num_racks - 1))

    def test_adam_flat_cost_unchanged(self):
        backend = get_backend("adam")
        assert backend.cost(M, N, P, S, K) == adam_combined_cost(M, N, K, P)

    def test_dedicated_server_racks_carry_a_premium(self):
        # Workers fill rack 0, dedicated PS shards rack 1: every PS byte
        # crosses racks, so the priced cost must exceed the flat cost.
        cluster = ClusterConfig(num_workers=4, num_servers=4,
                                colocate_servers=False, racks=2,
                                oversubscription=8.0)
        topology = NetworkTopology.from_cluster(cluster)
        assert topology.cross_peer_fraction(4) > 0.0
        backend = get_backend("ps")
        assert backend.cost(M, N, 4, 4, K, topology=topology) > \
            backend.cost(M, N, 4, 4, K)

    def test_flat_table1_cost_signature_still_works(self):
        # A backend written against the PR-4 protocol (no topology kwarg)
        # must keep working wherever the topology cannot carry a premium.
        class FlatCostBackend(get_backend("ps").__class__):
            def cost(self, m, n, num_workers, num_servers, batch_size,
                     bandwidth_bps=None):
                return ps_combined_cost(m, n, num_workers, num_servers)

        backend = FlatCostBackend()
        assert backend.wire_bytes(M, N, P, S, K) == \
            ps_combined_cost(M, N, P, S) * 4.0
        flat_model = CostModel(ClusterConfig(num_workers=16), batch_size=32)
        assert flat_model.topology is None  # flat clusters pass no topology

    @pytest.mark.parametrize("scheme", [s.value for s in CommScheme])
    def test_cost_monotone_in_oversubscription(self, scheme):
        backend = get_backend(scheme)
        costs = [
            backend.cost(M, N, P, S, K,
                         topology=NetworkTopology(racks=4, oversubscription=o))
            for o in (1.0, 2.0, 4.0, 8.0, 16.0)
        ]
        assert costs == sorted(costs)

    @pytest.mark.parametrize("scheme", [s.value for s in CommScheme])
    def test_wire_bytes_carry_the_topology(self, scheme):
        backend = get_backend(scheme)
        assert backend.wire_bytes(M, N, P, S, K, topology=TOPO) == \
            pytest.approx(backend.cost(M, N, P, S, K, topology=TOPO) * 4.0)


# ---------------------------------------------------------------------------
# rack-aware Algorithm 1
# ---------------------------------------------------------------------------


class TestRackAwareHybridChoice:
    def test_flat_choice_is_unchanged_by_flat_topology(self):
        flat_topo = NetworkTopology(racks=4, oversubscription=1.0)
        for m, n in [(256, 256), (1024, 1000), (4096, 4096), (25088, 4096)]:
            baseline = hybrid_choice(m, n, P, S, K)
            assert hybrid_choice(m, n, P, S, K, topology=flat_topo) == baseline
            assert hybrid_choice(m, n, P, S, K, topology=None) == baseline

    def test_small_fc_layer_shifts_to_ring(self):
        # VGG19's fc8 (4096 x 1000): SFB on the flat network, ring once
        # cross-rack bandwidth is 4:1 oversubscribed.
        assert hybrid_choice(4096, 1000, P, S, K) is CommScheme.SFB
        assert hybrid_choice(4096, 1000, P, S, K, topology=TOPO) is CommScheme.RING

    def test_best_scheme_shifts_with_the_cluster(self):
        fc8 = LayerSpec(name="fc8", kind=LayerKind.FC, param_count=4096 * 1000,
                        param_shape=(4096, 1000), output_shape=(1000,),
                        sf_decomposable=True)
        flat = CostModel(ClusterConfig(num_workers=16), batch_size=32)
        racked = CostModel(
            ClusterConfig(num_workers=16, racks=4, oversubscription=4.0),
            batch_size=32)
        assert flat.best_scheme(fc8) is CommScheme.SFB
        assert racked.best_scheme(fc8) is CommScheme.RING
        # scheme_cost_params carries the cross-rack premium for the loser.
        assert racked.scheme_cost_params(fc8, CommScheme.SFB) > \
            flat.scheme_cost_params(fc8, CommScheme.SFB)

    def test_decide_schemes_is_topology_aware(self, vgg19_spec):
        workload = build_workload(vgg19_spec)
        flat = decide_schemes(workload, CommMode.HYBRID, 16, 16)
        racked = decide_schemes(workload, CommMode.HYBRID, 16, 16,
                                topology=TOPO)
        assert flat["fc8"] is CommScheme.SFB
        assert racked["fc8"] is CommScheme.RING
        assert flat["fc6"] is racked["fc6"] is CommScheme.SFB


# ---------------------------------------------------------------------------
# simulator: shared rack uplink contention
# ---------------------------------------------------------------------------


def run_transfers(config, flows):
    """Run concurrent point-to-point flows; returns (per-flow seconds, model)."""
    env = Environment()
    model = ClusterModel(env, config)
    done = {}

    def flow(index, src, dst, nbytes):
        start = env.now
        yield from model.transfer(src, dst, nbytes, tag=f"flow{index}")
        done[index] = env.now - start

    for index, (src, dst, nbytes) in enumerate(flows):
        env.process(flow(index, src, dst, nbytes))
    env.run()
    assert len(done) == len(flows)
    return done, model


class TestRackContention:
    CONFIG = ClusterConfig(num_workers=8, bandwidth_gbps=10.0, racks=2,
                           oversubscription=8.0, latency_seconds=0.0)

    def test_intra_rack_flows_bypass_the_rack_switch(self):
        durations, model = run_transfers(self.CONFIG, [(0, 1, 10_000_000)])
        flat, flat_model = run_transfers(
            ClusterConfig(num_workers=8, bandwidth_gbps=10.0,
                          latency_seconds=0.0),
            [(0, 1, 10_000_000)])
        assert durations[0] == flat[0]
        assert model.cross_rack_bytes() == 0.0

    def test_cross_rack_flow_is_throttled_by_the_uplink(self):
        # 4 nodes/rack at 8:1 oversubscription: bisection = NIC / 2.
        intra, _ = run_transfers(self.CONFIG, [(0, 1, 10_000_000)])
        cross, model = run_transfers(self.CONFIG, [(0, 4, 10_000_000)])
        assert cross[0] == pytest.approx(2 * intra[0])
        assert model.cross_rack_bytes() == 10_000_000

    def test_concurrent_cross_rack_flows_share_the_uplink(self):
        # Two senders in rack 0: together they serialise through one uplink.
        flows = [(0, 4, 10_000_000), (1, 5, 10_000_000)]
        durations, model = run_transfers(self.CONFIG, flows)
        solo, _ = run_transfers(self.CONFIG, [(0, 4, 10_000_000)])
        assert max(durations.values()) == pytest.approx(2 * solo[0])
        assert model.cross_rack_bytes() == 20_000_000

    def test_concurrent_flows_in_different_racks_do_not_contend(self):
        config = ClusterConfig(num_workers=16, bandwidth_gbps=10.0, racks=4,
                               oversubscription=4.0, latency_seconds=0.0)
        solo, _ = run_transfers(config, [(0, 4, 10_000_000)])
        both, _ = run_transfers(
            config, [(0, 4, 10_000_000), (8, 12, 10_000_000)])
        assert max(both.values()) == pytest.approx(solo[0])

    def test_rack_switch_lookup_requires_topology(self):
        env = Environment()
        model = ClusterModel(env, ClusterConfig(num_workers=4))
        with pytest.raises(SimulationError):
            model.rack_switch(0)

    def test_rack_of_rejects_fabric_and_unknown_nodes(self):
        env = Environment()
        model = ClusterModel(env, self.CONFIG)
        with pytest.raises(SimulationError):
            model.rack_of(-1)  # the FABRIC sentinel belongs to no rack
        with pytest.raises(SimulationError):
            model.rack_of(len(model.machines))


# ---------------------------------------------------------------------------
# end to end: the fig_topology acceptance behaviour
# ---------------------------------------------------------------------------


class TestTopologyEndToEnd:
    def test_ring_overtakes_flat_ps_under_oversubscription(self, vgg19_spec):
        """The PR's acceptance point: ring > PS at oversubscription >= 4."""
        ps = poseidon_style(CommMode.PS, "PS")
        ring = poseidon_style(CommMode.RING, "Ring")
        cluster = ClusterConfig(num_workers=16, bandwidth_gbps=10.0, racks=4,
                                oversubscription=4.0)
        ps_result = simulate_system(vgg19_spec, ps, cluster)
        ring_result = simulate_system(vgg19_spec, ring, cluster)
        assert ring_result.throughput_images_per_sec > \
            ps_result.throughput_images_per_sec

    def test_hierps_overtakes_flat_ps_on_conv_models(self, googlenet_spec):
        ps = poseidon_style(CommMode.PS, "PS")
        hierps = poseidon_style(CommMode.HIERPS, "HierPS")
        cluster = ClusterConfig(num_workers=16, bandwidth_gbps=10.0, racks=4,
                                oversubscription=8.0)
        ps_result = simulate_system(googlenet_spec, ps, cluster)
        hier_result = simulate_system(googlenet_spec, hierps, cluster)
        assert hier_result.throughput_images_per_sec > \
            ps_result.throughput_images_per_sec

    def test_ps_degrades_monotonically_with_oversubscription(self, vgg19_spec):
        ps = poseidon_style(CommMode.PS, "PS")
        speedups = []
        for oversub in (1.0, 2.0, 4.0, 8.0):
            cluster = ClusterConfig(num_workers=16, bandwidth_gbps=10.0,
                                    racks=4, oversubscription=oversub)
            speedups.append(simulate_system(vgg19_spec, ps, cluster).speedup)
        assert speedups == sorted(speedups, reverse=True)

    def test_fig_topology_smoke(self):
        from repro.experiments import fig_topology

        result = fig_topology.run_fig_topology(
            oversubscription=(1.0, 8.0), bandwidths=(10.0,),
            models=("vgg19",), nodes=8, racks=2)
        rendering = fig_topology.render(result)
        assert "VGG19 @ 10 GbE" in rendering
        assert "Algorithm-1 choice" in rendering
        assert result.speedup("VGG19", "PS", 10.0, 8.0) < \
            result.speedup("VGG19", "PS", 10.0, 1.0)
