"""Micro-benchmarks of the substrates underneath the experiments.

These do not correspond to a paper artefact; they track the performance of
the building blocks (DES engine, numpy layers, communication substrates) so
regressions in the simulator or the functional runtime are visible.
"""

import numpy as np
import pytest

from repro.comm.parameter_server import ShardedParameterServer
from repro.comm.quantization import OneBitQuantizer
from repro.comm.sfb import SufficientFactorBroadcaster
from repro.nn.layers import Conv2D, Dense
from repro.nn.model_zoo import get_model_spec
from repro.nn.optim import SGD
from repro.nn.sufficient_factors import SufficientFactors
from repro.sim import Environment
from repro.simulation.workload import build_workload
from repro.sweep import SweepTask, run_sweep


def test_des_event_throughput(benchmark):
    """Raw event-processing rate of the discrete-event engine."""
    def run_chain():
        env = Environment()

        def proc():
            for _ in range(5_000):
                yield env.timeout(0.001)

        env.run_process(proc())
        return env.events_processed

    events = benchmark(run_chain)
    assert events >= 5_000


def test_dense_layer_forward_backward(benchmark):
    """Forward+backward of a 1024x1024 Dense layer on a 64-sample batch."""
    rng = np.random.default_rng(0)
    layer = Dense("fc", 1024, 1024, rng=rng)
    x = rng.standard_normal((64, 1024)).astype(np.float32)
    grad = rng.standard_normal((64, 1024)).astype(np.float32)

    def step():
        layer.forward(x)
        layer.backward(grad)
        return layer.grads["weight"].shape

    assert benchmark(step) == (1024, 1024)


def test_conv_layer_forward_backward(benchmark):
    """Forward+backward of a 32-channel 3x3 convolution on 16x16 images."""
    rng = np.random.default_rng(0)
    layer = Conv2D("conv", 16, 32, kernel=3, pad=1, rng=rng)
    x = rng.standard_normal((8, 16, 16, 16)).astype(np.float32)

    def step():
        out = layer.forward(x)
        layer.backward(np.ones_like(out))
        return out.shape

    assert benchmark(step) == (8, 32, 16, 16)


def test_parameter_server_push_pull(benchmark):
    """One full push/aggregate/pull cycle of a 4M-parameter layer."""
    rng = np.random.default_rng(0)
    params = {"fc": {"weight": rng.standard_normal((2048, 2048)).astype(np.float32)}}
    grad = {"weight": rng.standard_normal((2048, 2048)).astype(np.float32)}

    def cycle():
        server = ShardedParameterServer(params, num_workers=1,
                                        optimizer=SGD(learning_rate=0.01))
        server.push(0, "fc", grad)
        return server.pull(0, "fc", min_version=1)["weight"].shape

    assert benchmark(cycle) == (2048, 2048)


def test_sfb_aggregation(benchmark):
    """Aggregate 8 workers' sufficient factors for a 1024x1024 FC layer."""
    rng = np.random.default_rng(0)
    contributions = [
        (worker,
         SufficientFactors(
             u=rng.standard_normal((32, 1024)).astype(np.float32),
             v=rng.standard_normal((32, 1024)).astype(np.float32)),
         {"bias": rng.standard_normal(1024).astype(np.float32)})
        for worker in range(8)
    ]

    def aggregate():
        total, extras = SufficientFactorBroadcaster.aggregate(
            contributions, aggregation="mean")
        return total.shape

    assert benchmark(aggregate) == (1024, 1024)


def test_onebit_quantization_rate(benchmark):
    """Quantize+dequantize a 1M-element gradient."""
    rng = np.random.default_rng(0)
    grad = rng.standard_normal((1024, 1024)).astype(np.float32)
    quantizer = OneBitQuantizer()

    def cycle():
        quantized = quantizer.quantize("w", grad)
        return quantized.dequantize().shape

    assert benchmark(cycle) == (1024, 1024)


def _sweep_noop(index):
    return index


def test_sweep_dispatch_overhead(benchmark):
    """Per-config overhead of the sweep runner (serial dispatch + merge).

    256 no-op tasks isolate the machinery itself -- key checking, dispatch
    and the deterministic merge -- from any simulation work, so the number
    divided by 256 is the fixed cost the sweep adds to every config.
    """
    tasks = [SweepTask(key=("noop", index), fn=_sweep_noop, args=(index,))
             for index in range(256)]

    def sweeping():
        return len(run_sweep(tasks, jobs=1))

    assert benchmark(sweeping) == 256


@pytest.mark.parametrize("model", ["vgg19", "resnet-152"])
def test_workload_derivation(benchmark, model):
    """Spec -> simulation workload derivation time for large models."""
    spec = get_model_spec(model)
    workload = benchmark(build_workload, spec)
    assert workload.num_units > 5


def _trainer_run(policy, **fault_kwargs):
    from repro.config import TrainingConfig
    from repro.data import make_linearly_separable, shard_dataset
    from repro.nn.model_zoo import build_mlp_network
    from repro.parallel import DistributedTrainer

    train_x, train_y, _, _ = make_linearly_separable(
        num_train=96, num_test=8, input_dim=16, num_classes=4, seed=1)
    shards = shard_dataset(train_x, train_y, 3, seed=2)
    config = TrainingConfig(batch_size=8, learning_rate=0.05, iterations=4,
                            seed=5)

    def factory():
        return build_mlp_network(input_dim=16, hidden_dims=(32, 16),
                                 num_classes=4, seed=21)

    trainer = DistributedTrainer(factory, 3, shards, config, mode="ps",
                                 deterministic=True, policy=policy,
                                 **fault_kwargs)
    return trainer.train(4).final_loss


def test_trainer_iteration_bsp(benchmark):
    """4 deterministic BSP iterations, 3 workers: the barrier reference.

    Pairs with test_trainer_iteration_ssp_clock below: the two share the
    exact setup and differ only in the synchronization gate, so their
    ratio is the cost of the per-worker-clock machinery relative to the
    plain barrier path (gated < 5% in benchmarks/baseline.json).
    """
    assert benchmark(_trainer_run, "bsp") > 0


def test_trainer_iteration_ssp_clock(benchmark):
    """Same run under ssp(4): SSPClock advance + staleness gate per step."""
    assert benchmark(_trainer_run, "ssp-4") > 0


def test_trainer_iteration_nofault(benchmark):
    """Same BSP run with the fault-injection machinery armed but idle.

    An empty FaultPlan attaches the injector hooks (begin_step +
    before_sync on every layer), the heartbeat detector and the retry
    wrapper to the identical run as test_trainer_iteration_bsp, so the
    ratio of the two means is the fault-free overhead of the hooks on
    the hot path (gated < 5% in benchmarks/baseline.json).  Checkpoint
    cost is measured separately by test_trainer_checkpoint below.
    """
    from repro.core.faults import FaultPlan

    assert benchmark(_trainer_run, "bsp", fault_plan=FaultPlan()) > 0


def test_trainer_checkpoint(benchmark):
    """One full consistent-cut checkpoint of the 3-worker MLP trainer.

    Deep-copies every replica's state, per-worker optimizer / sampler
    state and the PS snapshot (including server-side momentum): the cost
    a run pays once per checkpoint_interval iterations, amortized to
    near-zero at realistic intervals.
    """
    from repro.config import TrainingConfig
    from repro.data import make_linearly_separable, shard_dataset
    from repro.nn.model_zoo import build_mlp_network
    from repro.parallel import DistributedTrainer

    train_x, train_y, _, _ = make_linearly_separable(
        num_train=96, num_test=8, input_dim=16, num_classes=4, seed=1)
    shards = shard_dataset(train_x, train_y, 3, seed=2)
    config = TrainingConfig(batch_size=8, learning_rate=0.05, iterations=4,
                            seed=5)
    trainer = DistributedTrainer(
        lambda: build_mlp_network(input_dim=16, hidden_dims=(32, 16),
                                  num_classes=4, seed=21),
        3, shards, config, mode="ps", deterministic=True,
        recovery="restart", checkpoint_interval=2)

    def checkpoint():
        trainer._take_checkpoint(0)
        return trainer._checkpoint.step

    assert checkpoint() == 0
    benchmark(checkpoint)


def test_ssp_clock_advance_rate(benchmark):
    """Raw advance()/gate throughput of the SSP clock, 4 workers round-robin.

    Round-robin order keeps every worker within one clock of the minimum,
    so no advance ever blocks: the number isolates the bookkeeping cost
    (lock + dict bump + bound check) on the trainer's per-step hot path.
    """
    from repro.core.staleness import SSPClock

    def rounds():
        clock = SSPClock(4, staleness=2, default_timeout=1.0)
        for _ in range(500):
            for worker in range(4):
                clock.advance(worker)
        return clock.min_clock()

    assert benchmark(rounds) == 500


def test_backend_dispatch(benchmark):
    """Registry resolution + Algorithm-1 cost evaluation per layer.

    The communication-backend registry sits on the per-layer hot path of
    the scheme assigner, the trainer's syncer construction and the
    simulator's flow dispatch.  One round resolves 6 backends and
    evaluates their costs for 256 layers plus 256 full hybrid choices, so
    mean_s / 1792 is the fixed cost the indirection adds per layer --
    it must stay in dict-lookup territory (sub-microsecond).
    """
    from repro.comm.backend import get_backend, hybrid_choice
    from repro.core.cost_model import CommScheme

    schemes = (CommScheme.PS, CommScheme.SFB, CommScheme.ONEBIT,
               CommScheme.ADAM, CommScheme.RING, CommScheme.HIERPS)

    def dispatch():
        total = 0.0
        for _ in range(256):
            for scheme in schemes:
                total += get_backend(scheme).cost(1024, 1024, 8, 8, 32)
            if hybrid_choice(1024, 1024, 8, 8, 32) is CommScheme.SFB:
                total += 1.0
        return total

    assert benchmark(dispatch) > 0
