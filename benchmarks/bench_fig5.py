"""Benchmark: regenerate Figure 5 (Caffe-engine scaling at 40 GbE)."""

from repro.experiments import fig5


def test_fig5_caffe_engine_scaling(benchmark, once):
    """All three Caffe-engine systems on GoogLeNet / VGG19 / VGG19-22K."""
    result = once(benchmark, fig5.run_fig5, (1, 2, 4, 8, 16, 32))
    # Shape: Poseidon near-linear, vanilla PS clearly behind on VGG19-22K.
    assert result.speedup("VGG19-22K", "Poseidon (Caffe)", 32) > 28.0
    assert result.speedup("VGG19-22K", "Caffe+PS", 32) < 20.0
    for model in ("GoogLeNet", "VGG19", "VGG19-22K"):
        assert (result.speedup(model, "Poseidon (Caffe)", 32)
                >= result.speedup(model, "Caffe+WFBP", 32) - 1e-6)
