"""Benchmark: regenerate Figure 8 (scaling under limited bandwidth)."""

from repro.experiments import fig8


def test_fig8_bandwidth_limited_scaling(benchmark, once):
    """Caffe+WFBP vs. Poseidon across the paper's bandwidth sweeps."""
    result = once(benchmark, fig8.run_fig8, (1, 2, 4, 8, 16))
    # Paper: at 10 GbE a PS-based system reaches only ~8x on 16 nodes for
    # VGG19 while Poseidon keeps scaling nearly linearly.
    assert result.speedup("VGG19", "Caffe+WFBP", 10.0, 16) < 11.0
    assert result.speedup("VGG19", "Poseidon (Caffe)", 10.0, 16) > 14.0
    # VGG19-22K shows the same, more pronounced.
    assert (result.speedup("VGG19-22K", "Poseidon (Caffe)", 10.0, 16)
            > 1.5 * result.speedup("VGG19-22K", "Caffe+WFBP", 10.0, 16))
