"""Sweep-runner benchmarks: figure-level sweep wall-clock, serial vs pool.

Part of the slow ``make bench-full`` suite (the gated micro-benchmark for
the sweep machinery itself lives in ``bench_micro.py``).  The parallel
variant's advantage scales with core count: on a single-core machine it
only measures pool overhead, on a 4-core machine the full default sweep
is expected to finish >= 2x faster than the sequential runner.
"""

import os

from repro.experiments import fig5, fig8

QUICK_NODES = (1, 4, 16)


def test_fig5_quick_sweep_serial(benchmark):
    """Figure 5 quick sweep (9 series x 3 node counts), sequential."""
    result = benchmark(fig5.run_fig5, node_counts=QUICK_NODES, jobs=1)
    assert result.curves


def test_fig5_quick_sweep_parallel(benchmark):
    """The same sweep over one worker per core."""
    jobs = os.cpu_count() or 1
    result = benchmark(fig5.run_fig5, node_counts=QUICK_NODES, jobs=jobs)
    assert result.curves


def test_fig8_quick_sweep_serial(benchmark):
    """Figure 8 quick sweep (18 bandwidth series), sequential."""
    result = benchmark(fig8.run_fig8, node_counts=QUICK_NODES, jobs=1)
    assert result.curves


def test_fig8_quick_sweep_parallel(benchmark):
    """The same sweep over one worker per core."""
    jobs = os.cpu_count() or 1
    result = benchmark(fig8.run_fig8, node_counts=QUICK_NODES, jobs=jobs)
    assert result.curves
