"""Benchmark: regenerate Figure 9 (ResNet-152 throughput + convergence)."""

from repro.experiments import fig9


def test_fig9_resnet152(benchmark, once):
    """Throughput scaling plus the statistical-performance panel."""
    result = once(benchmark, fig9.run_fig9, (1, 2, 4, 8, 16, 32))
    # Paper: 31x speedup on 32 nodes; 0.24 error within ~90 epochs.
    assert result.speedup("Poseidon (TF)", 32) > 28.0
    for nodes in (16, 32):
        epochs = result.epochs_to_target(nodes)
        assert epochs is not None and epochs <= 90
