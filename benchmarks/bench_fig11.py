"""Benchmark: regenerate Figure 11 (exact sync vs. 1-bit quantization).

This is the only benchmark backed by the *functional* runtime (real numpy
SGD on model replicas); it uses a reduced iteration count so the whole
benchmark suite stays fast.  The full-length run is produced by
``python -m repro.experiments.runner fig11``.
"""

import numpy as np

from repro.experiments import fig11


def test_fig11_exact_vs_onebit_training(benchmark, once):
    """Train CIFAR-quick (downscaled) with exact and 1-bit synchronization."""
    result = once(benchmark, fig11.run_fig11, 40)
    for label in ("Poseidon", "Poseidon-1bit"):
        losses = result.loss_curve(label)
        assert len(losses) == 40
        assert np.isfinite(losses).all()


def test_fig11_cntk_throughput_comparison(benchmark, once):
    """Section 5.3: CNTK-1bit throughput scaling sits below Poseidon's."""
    scaling = once(benchmark, fig11.cntk_scaling, (8, 16, 32))
    for nodes in (8, 16, 32):
        assert scaling["CNTK-1bit"][nodes] < scaling["Poseidon"][nodes]
