"""Event-throughput micro-benchmarks of the flow-level iteration simulator.

Each benchmark simulates one full BSP iteration of a figure-style
configuration and reports the wall-clock per simulated iteration; the
``simulated Kevents/s`` figure printed in PERFORMANCE.md is
``events_processed / mean_s``.  Two traffic patterns bound the simulator's
event graph from both sides:

* the SFB configs (VGG19 under HybComm) are dominated by the all-to-all
  sufficient-factor broadcasts of the FC layers -- the per-config event
  graph the tail-clock channels and countdown barriers collapse;
* the fine-PS configs (VGG19 under Caffe+WFBP) are dominated by the
  per-unit KV-store scatter/gather against the fabric.

The 8-node points track the constant overheads; the 32-node points are the
scaling gate (the event graph used to be quadratic in cluster size).
"""

import pytest

from repro.config import ClusterConfig
from repro.engines import CAFFE_WFBP, POSEIDON_CAFFE
from repro.nn.model_zoo import get_model_spec
from repro.simulation.throughput import IterationSimulator
from repro.simulation.workload import build_workload

VGG19 = get_model_spec("vgg19")
WORKLOAD = build_workload(VGG19)


def _simulate(system, nodes):
    cluster = ClusterConfig(num_workers=nodes, bandwidth_gbps=40.0)
    simulator = IterationSimulator(WORKLOAD, cluster, system)
    result = simulator.run()
    return result, simulator.env.events_processed


@pytest.mark.parametrize("nodes", [8, 32])
def test_flow_sim_sfb(benchmark, nodes):
    """One VGG19 iteration under HybComm (SFB-dominated all-to-all)."""
    result, events = benchmark(_simulate, POSEIDON_CAFFE, nodes)
    assert result.iteration_seconds > 0
    benchmark.extra_info["events_processed"] = events


@pytest.mark.parametrize("nodes", [8, 32])
def test_flow_sim_fine_ps(benchmark, nodes):
    """One VGG19 iteration under Caffe+WFBP (fine-grained KV scatter/gather)."""
    result, events = benchmark(_simulate, CAFFE_WFBP, nodes)
    assert result.iteration_seconds > 0
    benchmark.extra_info["events_processed"] = events
