"""Shared configuration for the benchmark harness.

Every benchmark regenerates one of the paper's tables or figures (see
DESIGN.md for the experiment index).  Simulation-backed benchmarks are cheap
enough to run at full scale; the functional-training benchmark (Figure 11)
uses a reduced iteration count.

Run with::

    pytest benchmarks/ --benchmark-only
"""

from __future__ import annotations

import pytest


def run_once(benchmark, fn, *args, **kwargs):
    """Run ``fn`` exactly once under pytest-benchmark timing.

    The experiment functions are deterministic and relatively expensive, so a
    single round gives a meaningful timing without inflating the suite.
    """
    return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)


@pytest.fixture
def once():
    """Fixture exposing :func:`run_once`."""
    return run_once
