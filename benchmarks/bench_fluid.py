"""Micro-benchmarks of the fluid-mode analytic simulator.

Two measurements bracket the fluid engine's cost:

* ``test_fluid_point`` -- one closed-form evaluation of a 1000-node
  oversubscribed cluster (the aggregate tier: class clocks + per-rack
  numpy loads), the unit of work behind every ``engine="fluid"`` sweep
  point;
* ``test_fluid_sweep_10k`` -- the headline interactive what-if: a full
  bandwidth axis for all seven registered backends on a 10k-node
  oversubscribed cluster, evaluated from a cold warm-start cache.  The
  committed baseline gates the "< 1 s wall-clock" budget this PR's
  performance target is stated against.

The DES cannot be benchmarked at these sizes at all -- a single 10k-node
iteration walk is minutes of event processing -- which is the point of the
fluid tier; ``tests/test_fluid.py`` carries the accuracy cross-validation
on DES-sized clusters instead.
"""

import pytest

from repro.config import ClusterConfig
from repro.experiments.fig_backends import backend_systems
from repro.nn.model_zoo import get_model_spec
from repro.simulation import fluid
from repro.simulation.workload import build_workload

VGG19 = get_model_spec("vgg19")
WORKLOAD = build_workload(VGG19)
SYSTEMS = backend_systems()

SWEEP_BANDWIDTHS = (1.0, 2.0, 5.0, 10.0, 20.0, 40.0, 56.0, 100.0)


def _cluster(nodes: int) -> ClusterConfig:
    return ClusterConfig(num_workers=nodes, bandwidth_gbps=40.0,
                         racks=nodes // 40, oversubscription=4.0)


def _fluid_point(nodes: int):
    cluster = _cluster(nodes)
    hybrid = SYSTEMS[2]  # HybComm: exercises the per-unit scheme mix
    return fluid.FluidSimulator(WORKLOAD, cluster, hybrid).run()


def _sweep_all_backends(nodes: int):
    fluid._AXIS_CACHE.clear()  # measure the cold path, not a warm re-query
    cluster = _cluster(nodes)
    curves = [
        fluid.sweep_axis(VGG19, system, cluster, SWEEP_BANDWIDTHS,
                         workload=WORKLOAD)
        for system in SYSTEMS
    ]
    return curves


def test_fluid_point(benchmark):
    """One 1000-node closed-form evaluation (aggregate tier)."""
    result = benchmark(_fluid_point, 1000)
    assert result.iteration_seconds > 0
    benchmark.extra_info["nodes"] = 1000


def test_fluid_sweep_10k(benchmark):
    """Cold 10k-node bandwidth sweep across all seven backends."""
    curves = benchmark(_sweep_all_backends, 10000)
    assert len(curves) == len(SYSTEMS)
    assert all(curve.shape == (len(SWEEP_BANDWIDTHS),) for curve in curves)
    # The PR's stated budget: interactive what-if means the whole sweep
    # lands in well under a second of wall-clock.  stats is None under
    # --benchmark-disable (the bench-smoke CI job), where only the
    # shape assertions above apply.
    if benchmark.stats is not None:
        assert benchmark.stats.stats.mean < 1.0
    benchmark.extra_info["points"] = len(SYSTEMS) * len(SWEEP_BANDWIDTHS)
