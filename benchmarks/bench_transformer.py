"""Benchmark: transformer building blocks and the fig_llm sweep.

Tracks the numpy attention stack (the most matmul-dense layer family in
the runnable trainer) and the end-to-end transformer figure so regressions
in either the layer kernels or the timed Algorithm-1 sweep are visible.
"""

import numpy as np

from repro.experiments import fig_llm
from repro.nn.layers import TransformerBlock


def test_transformer_block_forward_backward(benchmark):
    """Forward+backward of one 128-dim, 4-head block on a (8, 32) batch."""
    rng = np.random.default_rng(0)
    block = TransformerBlock("h0", 128, 4, rng=rng)
    x = rng.standard_normal((8, 32, 128)).astype(np.float32)

    def step():
        out = block.forward(x.copy())
        return block.backward(np.ones_like(out))

    grad = benchmark(step)
    assert grad.shape == x.shape


def test_fig_llm_quick(benchmark, once):
    """The reduced (nanogpt-only) transformer sweep, as run by --quick."""
    result = once(benchmark, fig_llm.run_fig_llm, ("nanogpt-12l",))
    assert set(result.head_schemes("nanogpt-12l")) == {"sfb"}
