"""Benchmark: regenerate Table 3 (model statistics)."""

import pytest

from repro.experiments import table3


def test_table3_model_statistics(benchmark, once):
    """Build every Table 3 model spec and compare against the paper."""
    result = once(benchmark, table3.run_table3)
    assert result.row("VGG19").params_millions == pytest.approx(143, rel=0.02)
    assert result.row("VGG19-22K").params_millions == pytest.approx(229, rel=0.02)
    assert result.row("ResNet-152").params_millions == pytest.approx(60.2, rel=0.02)
