"""Benchmark: design-choice ablations (WFBP, HybComm, partitioning, shards)."""

from repro.experiments import ablation


def test_ablation_system_variants(benchmark, once):
    """Full Poseidon vs. variants with one design choice removed."""
    result = once(benchmark, ablation.run_system_ablation, "vgg19", 16, 10.0)
    full = result.speedup("full poseidon")
    assert full >= result.speedup("no WFBP")
    assert full >= result.speedup("no HybComm (PS only)")
    assert full >= result.speedup("coarse partitioning")


def test_ablation_server_shard_count(benchmark, once):
    """More PS shards spread load and improve PS-only throughput."""
    speedups = once(benchmark, ablation.run_server_count_ablation,
                    "vgg19", 16, 10.0, (1, 4, 16))
    assert speedups[16] > speedups[1]


def test_ablation_multigpu(benchmark, once):
    """Multi-GPU-per-node scaling (Section 5.1)."""
    from repro.experiments import multigpu
    result = once(benchmark, multigpu.run_multigpu, ("googlenet",))
    assert result.speedup("GoogLeNet", 1, 4) > 3.5
