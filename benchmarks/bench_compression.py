"""Benchmarks: gradient-compressor throughput and bucketer overhead.

The compression zoo sits on the trainer's per-layer hot path, so two
things are gated here against benchmarks/baseline.json:

* compressor throughput on a 1M-element (1000x1000) float32 gradient --
  top-k's selection pass and PowerSGD's two rank-r GEMMs must stay fast
  enough that encode time cannot dominate the wire time it saves;
* the :class:`~repro.comm.bucketing.GradientBucketer`'s dispatch
  overhead -- test_trainer_iteration_bucketed shares its exact setup
  with bench_micro's test_trainer_iteration_bsp and differs only in
  routing every sync job through a bucketer, so the ratio of the two
  means is the granularity machinery's overhead (gated < 5%).
"""

import numpy as np

from repro.comm.bucketing import GradientBucketer
from repro.comm.compression import make_compressor

ELEMENTS = 1000 * 1000


def _grads(seed=0, shape=(1000, 1000)):
    rng = np.random.default_rng(seed)
    return {"weight": rng.standard_normal(shape).astype(np.float32)}


def test_topk_compression_rate(benchmark):
    """topk(0.01) on a 1M-element gradient: one selection pass + residual."""
    compressor = make_compressor("topk(0.01)")
    grads = _grads()

    def step():
        _, nbytes = compressor.compress("fc", grads)
        return nbytes

    assert benchmark(step) > 0


def test_powersgd_compression_rate(benchmark):
    """powersgd(4) on a 1M-element gradient: two GEMMs + a thin QR."""
    compressor = make_compressor("powersgd(4)")
    grads = _grads()

    def step():
        _, nbytes = compressor.compress("fc", grads)
        return nbytes

    assert benchmark(step) > 0


def test_bucketer_dispatch_rate(benchmark):
    """Raw bucketer bookkeeping: 1000 job routings into 4 MB buckets."""
    class NullScheduler:
        def schedule(self, job):
            job()

    def route():
        bucketer = GradientBucketer(4 * 1024 * 1024, NullScheduler())
        for _ in range(1000):
            bucketer.add(512 * 1024, lambda: None)
        bucketer.finish()
        return bucketer.messages_flushed

    assert benchmark(route) > 0


def test_trainer_iteration_bucketed(benchmark):
    """4 deterministic BSP iterations with a 64 KB gradient bucket.

    Pairs with bench_micro's test_trainer_iteration_bsp (identical run,
    per-layer dispatch): the ratio of the two means is the end-to-end
    overhead of routing every sync job through the GradientBucketer,
    gated < 5% in benchmarks/baseline.json.  64 KB makes the tiny MLP's
    layers actually share buckets instead of degenerating to one flush
    per layer.
    """
    from bench_micro import _trainer_run

    assert benchmark(_trainer_run, "bsp", bucket_bytes=64 * 1024) > 0
