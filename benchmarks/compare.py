#!/usr/bin/env python
"""Gate micro-benchmark results against the committed baseline.

Usage::

    PYTHONPATH=src python -m pytest benchmarks/bench_micro.py \
        --benchmark-only --benchmark-json=bench_results.json
    python benchmarks/compare.py bench_results.json

Exits non-zero if any benchmark regressed by more than the threshold
(default 25% slower than the baseline mean).  Refresh the baseline after an
intentional performance change with::

    python benchmarks/compare.py bench_results.json --update

which rewrites the ``mean_s``/``min_s`` fields of benchmarks/baseline.json
in place (the ``seed_*`` fields, recording the original pre-optimisation
implementation, are preserved).
"""

from __future__ import annotations

import argparse
import json
import os
import sys

DEFAULT_BASELINE = os.path.join(os.path.dirname(__file__), "baseline.json")


def load_results(path: str) -> dict:
    """Read a pytest-benchmark JSON file into {benchmark name: stats}."""
    with open(path) as handle:
        data = json.load(handle)
    return {bench["name"]: bench["stats"] for bench in data.get("benchmarks", [])}


def compare(results: dict, baseline: dict, threshold: float) -> int:
    """Print a comparison table; return the number of regressions."""
    known = baseline["benchmarks"]
    regressions = 0
    width = max((len(name) for name in known), default=20) + 2
    print(f"{'benchmark':{width}s} {'baseline':>12s} {'current':>12s} "
          f"{'ratio':>7s}  status")
    for name, entry in sorted(known.items()):
        stats = results.get(name)
        if stats is None:
            # A baselined benchmark that did not run is a gate failure:
            # silently-skipped benchmarks must not read as "no regression".
            print(f"{name:{width}s} {entry['mean_s']*1e3:10.3f} ms {'-':>12s} "
                  f"{'-':>7s}  MISSING (not run; renamed? refresh with --update)")
            regressions += 1
            continue
        ratio = stats["mean"] / entry["mean_s"]
        slow = ratio > 1.0 + threshold
        status = "REGRESSION" if slow else "ok"
        if slow:
            regressions += 1
        print(f"{name:{width}s} {entry['mean_s']*1e3:10.3f} ms "
              f"{stats['mean']*1e3:10.3f} ms {ratio:6.2f}x  {status}")
    new = sorted(set(results) - set(known))
    for name in new:
        print(f"{name:{width}s} {'-':>12s} {results[name]['mean']*1e3:10.3f} ms "
              f"{'-':>7s}  NEW (no baseline; run with --update)")
    return regressions


def update(results: dict, baseline: dict, baseline_path: str) -> None:
    """Refresh baseline mean/min fields (preserving seed_* history)."""
    for name, stats in results.items():
        entry = baseline["benchmarks"].setdefault(name, {})
        entry["mean_s"] = round(stats["mean"], 6)
        entry["min_s"] = round(stats["min"], 6)
        entry["stddev_s"] = round(stats["stddev"], 6)
        entry["rounds"] = stats["rounds"]
    with open(baseline_path, "w") as handle:
        json.dump(baseline, handle, indent=2)
        handle.write("\n")
    print(f"updated {baseline_path} with {len(results)} benchmark(s)")


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("results", help="pytest-benchmark JSON output file")
    parser.add_argument("--baseline", default=DEFAULT_BASELINE,
                        help="baseline file (default: benchmarks/baseline.json)")
    parser.add_argument("--threshold", type=float, default=0.25,
                        help="allowed slowdown fraction before failing "
                             "(default 0.25 = 25%%)")
    parser.add_argument("--update", action="store_true",
                        help="rewrite the baseline from these results instead "
                             "of gating against it")
    args = parser.parse_args(argv)

    try:
        results = load_results(args.results)
    except OSError as exc:
        print(f"error: cannot read results file: {exc}", file=sys.stderr)
        return 2
    try:
        with open(args.baseline) as handle:
            baseline = json.load(handle)
    except OSError as exc:
        print(f"error: cannot read baseline file: {exc}", file=sys.stderr)
        return 2

    if args.update:
        update(results, baseline, args.baseline)
        return 0

    regressions = compare(results, baseline, args.threshold)
    if regressions:
        print(f"\n{regressions} benchmark(s) regressed more than "
              f"{args.threshold:.0%} (or went missing) vs {args.baseline}")
        return 1
    print("\nall benchmarks within threshold")
    return 0


if __name__ == "__main__":
    sys.exit(main())
