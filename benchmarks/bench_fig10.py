"""Benchmark: regenerate Figure 10 (per-node communication load)."""

from repro.experiments import fig10


def test_fig10_per_node_traffic(benchmark, once):
    """Traffic balance of TF-WFBP / Adam / Poseidon for VGG19 on 8 nodes."""
    result = once(benchmark, fig10.run_fig10)
    assert result.imbalance("Adam") > 2.0
    assert result.imbalance("TF+WFBP") < 1.1
    assert result.mean_gbits("Poseidon (TF)") < result.mean_gbits("TF+WFBP")
