"""Benchmark: regenerate Figure 6 (TensorFlow-engine scaling at 40 GbE)."""

from repro.experiments import fig6


def test_fig6_tensorflow_engine_scaling(benchmark, once):
    """TF / TF+WFBP / Poseidon on Inception-V3, VGG19 and VGG19-22K."""
    result = once(benchmark, fig6.run_fig6, (1, 2, 4, 8, 16, 32))
    # Paper: Poseidon ~31.5x on Inception-V3, a ~50% improvement over TF.
    poseidon = result.speedup("Inception-V3", "Poseidon (TF)", 32)
    tf = result.speedup("Inception-V3", "TF", 32)
    assert poseidon > 28.0
    assert poseidon > 1.2 * tf
    # Paper: stock TF fails to scale VGG19-22K.
    assert result.speedup("VGG19-22K", "TF", 32) < 8.0
    assert result.speedup("VGG19-22K", "Poseidon (TF)", 32) > 28.0
