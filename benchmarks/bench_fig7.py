"""Benchmark: regenerate Figure 7 (GPU computation vs. stall on 8 nodes)."""

from repro.experiments import fig7


def test_fig7_stall_breakdown(benchmark, once):
    """Compute/stall split for TF, TF+WFBP and Poseidon on 8 nodes."""
    result = once(benchmark, fig7.run_fig7, 8)
    for model in ("Inception-V3", "VGG19", "VGG19-22K"):
        assert result.busy_fraction(model, "Poseidon (TF)") > 0.9
        assert (result.stall_fraction(model, "TF")
                >= result.stall_fraction(model, "Poseidon (TF)"))
    assert result.stall_fraction("VGG19-22K", "TF") > 0.3
