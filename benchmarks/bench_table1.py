"""Benchmark: regenerate Table 1 (analytic communication costs)."""

import pytest

from repro.experiments import table1


def test_table1_worked_example(benchmark, once):
    """Table 1 for the Section 3.2 worked example (M=N=4096, K=32, P1=P2=8)."""
    result = once(benchmark, table1.run_table1)
    assert result.row("PS").server_and_worker == pytest.approx(58.7, rel=0.01)
    assert result.row("SFB").worker == pytest.approx(3.7, rel=0.02)
    assert result.best_scheme.value == "sfb"


def test_table1_cluster_size_sweep(benchmark, once):
    """Cost-model sweep over cluster sizes 2..64."""
    sweep = once(benchmark, table1.sweep_cluster_sizes)
    assert set(sweep) == {2, 4, 8, 16, 32, 64}


def test_table1_crossover_search(benchmark, once):
    """Batch-size crossover search for the 4096x4096 layer."""
    crossover = once(benchmark, table1.crossover_batch_size, 4096, 4096, 8, 8)
    assert 256 < crossover <= 1024
