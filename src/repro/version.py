"""Version of the Poseidon reproduction library."""

__version__ = "1.0.0"
