"""Cluster and training configuration objects.

These dataclasses describe the experimental setup of the paper: a cluster of
single-GPU machines connected by Ethernet of configurable bandwidth, where
every machine acts as a worker and (usually) also hosts a shard of the
parameter server, exactly as in the paper's testbed ("every node also holding
1/8 of parameters as a PS shard", Section 2.2).
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass, field, replace
from typing import Optional

from repro import units
from repro.exceptions import ConfigurationError


class BandwidthPreset(float, enum.Enum):
    """Ethernet ratings used in the paper's evaluation (values in Gb/s)."""

    GBE_1 = 1.0
    GBE_2 = 2.0
    GBE_5 = 5.0
    GBE_10 = 10.0
    GBE_20 = 20.0
    GBE_30 = 30.0
    GBE_40 = 40.0

    @property
    def bits_per_second(self) -> float:
        """Bandwidth in bits per second."""
        return units.gbe(self.value)


@dataclass(frozen=True)
class GpuModel:
    """A simple throughput model of a GPU.

    The simulator converts per-layer FLOP counts to compute time using
    ``effective_flops``; calibration against the paper's reported single-node
    images/second happens per model (see
    :mod:`repro.simulation.workload`), so the absolute value here only
    matters for uncalibrated models.

    Attributes:
        name: marketing name of the card.
        effective_flops: sustained single-precision FLOP/s for DL kernels.
        memory_bytes: device memory, used only for sanity checks on batch size.
        pcie_bandwidth_bps: host-to-device copy bandwidth (bits/s); the paper
            notes DRAM<->GPU copies are a minor overhead that Poseidon also
            overlaps.
    """

    name: str = "TITAN X"
    effective_flops: float = 6.0 * units.TFLOPS
    memory_bytes: float = 12 * units.GB
    pcie_bandwidth_bps: float = 100 * units.GBIT

    def compute_seconds(self, flops: float) -> float:
        """Time to execute ``flops`` floating point operations."""
        if flops < 0:
            raise ConfigurationError(f"flops must be non-negative, got {flops}")
        return flops / self.effective_flops


#: The GPU used throughout the paper's evaluation.
TITAN_X = GpuModel()

#: The K80 GPUs of the AWS p2.8xlarge multi-GPU experiment (Section 5.1);
#: lower throughput than Titan X, which the paper notes makes the
#: communication burden less severe.
TESLA_K80 = GpuModel(
    name="Tesla K80 (half)",
    effective_flops=2.8 * units.TFLOPS,
    memory_bytes=12 * units.GB,
)


@dataclass(frozen=True)
class ClusterConfig:
    """Describes a GPU cluster for both the simulator and the cost model.

    The default network is *flat* (full bisection): every node can talk to
    every other node at the full NIC rate, which is the paper's testbed
    assumption.  Setting ``racks > 1`` together with ``oversubscription >
    1`` models a rack-oversubscribed datacenter network instead: nodes are
    grouped into ``racks`` contiguous-id racks, intra-rack traffic still
    moves at NIC rate, but all traffic leaving (or entering) a rack shares
    that rack's aggregate uplink, whose bandwidth is
    ``node_bandwidth * nodes_per_rack / oversubscription``.

    Example -- a flat 8-node cluster versus the same nodes in two racks
    with 4:1 oversubscription:

        >>> flat = ClusterConfig(num_workers=8, bandwidth_gbps=10.0)
        >>> flat.is_flat_topology
        True
        >>> racked = flat.with_topology(racks=2, oversubscription=4.0)
        >>> racked.is_flat_topology, racked.nodes_per_rack
        (False, 4)
        >>> racked.rack_of(0), racked.rack_of(5)
        (0, 1)
        >>> # Each rack's shared uplink carries 4 nodes at 1/4 the bandwidth:
        >>> racked.rack_bisection_bps(4) == racked.effective_bandwidth_bps
        True

    Attributes:
        num_workers: number of worker nodes (``P1`` in the paper).
        num_servers: number of parameter-server shards (``P2``).  In the
            paper's testbed every worker node also hosts a PS shard, so the
            default mirrors ``num_workers``.
        bandwidth_gbps: per-node Ethernet bandwidth in Gb/s (full duplex).
        gpus_per_node: number of GPUs on each worker node.
        gpu: throughput model of each GPU.
        colocate_servers: whether PS shards live on worker nodes (sharing
            their NIC) or on dedicated machines.
        kv_pair_bytes: size of a KV-store pair; Poseidon uses a "fixed small
            size (e.g. 2MB)" to spread parameters evenly across shards.
        latency_seconds: per-message network latency added to every transfer.
        network_efficiency: fraction of the NIC line rate achievable as
            application goodput (TCP/IP framing, kernel overheads,
            incast pressure during bulk-synchronous scatter/gather).  The
            default 0.55 is calibrated so the simulated Caffe+WFBP point for
            VGG19-22K on 32 nodes matches the paper's reported 21.5x; every
            other number in the evaluation emerges from the model.
        racks: number of top-of-rack switches the nodes are spread over
            (contiguous node-id blocks).  ``1`` (the default) keeps the
            paper's flat full-bisection network.
        oversubscription: ratio of a rack's aggregate NIC demand to its
            uplink capacity (the datacenter "oversubscription factor").
            ``1.0`` (the default) means full bisection -- the rack uplink
            can never be a bottleneck, so the network behaves exactly like
            the flat model.
    """

    num_workers: int
    num_servers: Optional[int] = None
    bandwidth_gbps: float = BandwidthPreset.GBE_40.value
    gpus_per_node: int = 1
    gpu: GpuModel = field(default_factory=lambda: TITAN_X)
    colocate_servers: bool = True
    kv_pair_bytes: int = 2 * units.MB
    latency_seconds: float = 50 * units.US
    network_efficiency: float = 0.55
    racks: int = 1
    oversubscription: float = 1.0

    def __post_init__(self) -> None:
        if self.num_workers < 1:
            raise ConfigurationError(
                f"num_workers must be >= 1, got {self.num_workers}"
            )
        if self.num_servers is None:
            object.__setattr__(self, "num_servers", self.num_workers)
        if self.num_servers < 1:
            raise ConfigurationError(
                f"num_servers must be >= 1, got {self.num_servers}"
            )
        if self.bandwidth_gbps <= 0:
            raise ConfigurationError(
                f"bandwidth_gbps must be positive, got {self.bandwidth_gbps}"
            )
        if self.gpus_per_node < 1:
            raise ConfigurationError(
                f"gpus_per_node must be >= 1, got {self.gpus_per_node}"
            )
        if self.kv_pair_bytes <= 0:
            raise ConfigurationError(
                f"kv_pair_bytes must be positive, got {self.kv_pair_bytes}"
            )
        if not 0.0 < self.network_efficiency <= 1.0:
            raise ConfigurationError(
                f"network_efficiency must be in (0, 1], got {self.network_efficiency}"
            )
        if self.racks < 1:
            raise ConfigurationError(f"racks must be >= 1, got {self.racks}")
        if self.oversubscription < 1.0:
            raise ConfigurationError(
                f"oversubscription must be >= 1.0, got {self.oversubscription}"
            )

    @property
    def bandwidth_bps(self) -> float:
        """Per-node NIC line rate in bits per second."""
        return units.gbe(self.bandwidth_gbps)

    @property
    def effective_bandwidth_bps(self) -> float:
        """Achievable application goodput per NIC direction in bits per second."""
        return self.bandwidth_bps * self.network_efficiency

    @property
    def total_gpus(self) -> int:
        """Total number of GPUs across the cluster."""
        return self.num_workers * self.gpus_per_node

    # -- rack topology ---------------------------------------------------------
    @property
    def num_nodes(self) -> int:
        """Total machine count: workers plus dedicated server nodes."""
        if self.colocate_servers:
            return self.num_workers
        return self.num_workers + self.num_servers

    @property
    def is_flat_topology(self) -> bool:
        """Whether the network is indistinguishable from full bisection.

        True for a single rack and for ``oversubscription == 1.0`` (a fully
        provisioned rack uplink never throttles its members, so the rack
        structure carries no performance signal either way).
        """
        return self.racks <= 1 or self.oversubscription <= 1.0

    @property
    def nodes_per_rack(self) -> int:
        """Nodes under one top-of-rack switch (the last rack may be smaller)."""
        return math.ceil(self.num_nodes / self.racks)

    def rack_of(self, node_id: int) -> int:
        """Rack index of a node (nodes fill racks in contiguous id blocks).

        Raises:
            ConfigurationError: if ``node_id`` is not a cluster node.
        """
        if not 0 <= node_id < self.num_nodes:
            raise ConfigurationError(
                f"node id {node_id} out of range [0, {self.num_nodes})"
            )
        return node_id // self.nodes_per_rack

    def rack_bisection_bps(self, rack_nodes: int) -> float:
        """Aggregate uplink goodput (bits/s) of a rack hosting ``rack_nodes``.

        The rack's members could collectively inject ``rack_nodes *
        effective_bandwidth_bps``; the oversubscribed uplink provides
        ``1/oversubscription`` of that.
        """
        if rack_nodes < 1:
            raise ConfigurationError(
                f"rack_nodes must be >= 1, got {rack_nodes}"
            )
        return self.effective_bandwidth_bps * rack_nodes / self.oversubscription

    def with_workers(self, num_workers: int) -> "ClusterConfig":
        """Return a copy with a different worker count (servers follow if colocated)."""
        num_servers = num_workers if self.colocate_servers else self.num_servers
        return replace(self, num_workers=num_workers, num_servers=num_servers)

    def with_bandwidth(self, bandwidth_gbps: float) -> "ClusterConfig":
        """Return a copy with a different per-node bandwidth."""
        return replace(self, bandwidth_gbps=bandwidth_gbps)

    def with_topology(self, racks: int,
                      oversubscription: float) -> "ClusterConfig":
        """Return a copy with a different rack topology."""
        return replace(self, racks=racks, oversubscription=oversubscription)


@dataclass(frozen=True)
class TrainingConfig:
    """Hyper-parameters of a (possibly distributed) SGD run.

    Attributes:
        batch_size: per-worker mini-batch size (``K`` in the paper's cost
            model).
        learning_rate: SGD step size.
        momentum: classical momentum coefficient.
        weight_decay: L2 regularisation strength.
        iterations: number of training iterations to run.
        seed: base RNG seed; workers derive their own seeds from it.
    """

    batch_size: int = 32
    learning_rate: float = 0.01
    momentum: float = 0.0
    weight_decay: float = 0.0
    iterations: int = 100
    seed: int = 0

    def __post_init__(self) -> None:
        if self.batch_size < 1:
            raise ConfigurationError(f"batch_size must be >= 1, got {self.batch_size}")
        if self.learning_rate <= 0:
            raise ConfigurationError(
                f"learning_rate must be positive, got {self.learning_rate}"
            )
        if not 0.0 <= self.momentum < 1.0:
            raise ConfigurationError(
                f"momentum must be in [0, 1), got {self.momentum}"
            )
        if self.iterations < 0:
            raise ConfigurationError(
                f"iterations must be non-negative, got {self.iterations}"
            )
