"""Unit helpers used throughout the library.

All internal quantities use SI base units: **bytes** for data sizes,
**seconds** for durations, **bits per second** for bandwidth and **FLOP/s**
for compute throughput.  The helpers below exist so that call sites can be
written in the units the paper uses (GbE, GB, ms, TFLOPS) without sprinkling
magic constants around.
"""

from __future__ import annotations

# Data sizes -----------------------------------------------------------------
KB = 1024
MB = 1024 * KB
GB = 1024 * MB

#: Size of a single-precision float, the datatype used for all parameters and
#: gradients in the paper's evaluation.
FLOAT32_BYTES = 4

# Bandwidth ------------------------------------------------------------------
KBIT = 1_000
MBIT = 1_000 * KBIT
GBIT = 1_000 * MBIT

# Compute --------------------------------------------------------------------
GFLOPS = 1e9
TFLOPS = 1e12

# Time -----------------------------------------------------------------------
MS = 1e-3
US = 1e-6


def gbe(gigabits_per_second: float) -> float:
    """Convert an Ethernet rating in Gb/s to bits per second."""
    return gigabits_per_second * GBIT


def bits_to_bytes(bits: float) -> float:
    """Convert a quantity of bits to bytes."""
    return bits / 8.0


def bytes_to_bits(num_bytes: float) -> float:
    """Convert a quantity of bytes to bits."""
    return num_bytes * 8.0


def params_to_bytes(num_params: float, dtype_bytes: int = FLOAT32_BYTES) -> float:
    """Size in bytes of ``num_params`` parameters of the given element width."""
    return num_params * dtype_bytes


def transfer_seconds(num_bytes: float, bandwidth_bps: float) -> float:
    """Time to push ``num_bytes`` through a link of ``bandwidth_bps``.

    Raises:
        ValueError: if the bandwidth is not strictly positive.
    """
    if bandwidth_bps <= 0:
        raise ValueError(f"bandwidth must be positive, got {bandwidth_bps}")
    return bytes_to_bits(num_bytes) / bandwidth_bps


def human_bytes(num_bytes: float) -> str:
    """Render a byte count using binary prefixes, e.g. ``'2.0 MiB'``."""
    value = float(num_bytes)
    for unit in ("B", "KiB", "MiB", "GiB", "TiB"):
        if abs(value) < 1024.0 or unit == "TiB":
            return f"{value:.1f} {unit}"
        value /= 1024.0
    return f"{value:.1f} TiB"


def human_seconds(seconds: float) -> str:
    """Render a duration with an adaptive unit, e.g. ``'1.3 ms'``.

    The unit is chosen by magnitude so negative durations (e.g. a time
    delta) render symmetrically: ``human_seconds(-0.5) == '-500.0 ms'``,
    not ``'-500000.0 us'``.
    """
    magnitude = abs(seconds)
    if magnitude < 1e-3:
        return f"{seconds * 1e6:.1f} us"
    if magnitude < 1.0:
        return f"{seconds * 1e3:.1f} ms"
    if magnitude < 120.0:
        return f"{seconds:.2f} s"
    return f"{seconds / 60.0:.1f} min"
