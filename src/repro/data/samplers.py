"""Mini-batch samplers."""

from __future__ import annotations

from typing import Iterator, Optional

import numpy as np

from repro.exceptions import ConfigurationError


class BatchSampler:
    """Cycles through a data partition in shuffled mini-batches.

    The sampler reshuffles at the start of every epoch and keeps yielding
    batches indefinitely, which matches how the iterative-convergent training
    loop of Eq. (1) consumes data.
    """

    def __init__(self, num_samples: int, batch_size: int, seed: int = 0,
                 drop_last: bool = True):
        if num_samples < 1:
            raise ConfigurationError(f"num_samples must be >= 1, got {num_samples}")
        if batch_size < 1:
            raise ConfigurationError(f"batch_size must be >= 1, got {batch_size}")
        if drop_last and batch_size > num_samples:
            raise ConfigurationError(
                f"batch_size {batch_size} exceeds partition size {num_samples}"
            )
        self.num_samples = int(num_samples)
        self.batch_size = int(batch_size)
        self.drop_last = bool(drop_last)
        self._rng = np.random.default_rng(seed)
        self._order = np.arange(self.num_samples)
        self._cursor = self.num_samples  # force a shuffle on first use
        self.epoch = 0

    def next_batch(self) -> np.ndarray:
        """Return the indices of the next mini-batch."""
        if self._cursor + self.batch_size > self.num_samples:
            remainder = self.num_samples - self._cursor
            if not self.drop_last and remainder > 0:
                batch = self._order[self._cursor:]
                self._cursor = self.num_samples
                return batch
            self._rng.shuffle(self._order)
            self._cursor = 0
            self.epoch += 1
        batch = self._order[self._cursor:self._cursor + self.batch_size]
        self._cursor += self.batch_size
        return batch

    def batches(self, count: int) -> Iterator[np.ndarray]:
        """Yield ``count`` consecutive mini-batches."""
        for _ in range(count):
            yield self.next_batch()

    def get_state(self) -> dict:
        """Snapshot the full sampling state (for exact crash recovery)."""
        return {
            "rng": self._rng.bit_generator.state,
            "order": self._order.copy(),
            "cursor": self._cursor,
            "epoch": self.epoch,
        }

    def set_state(self, state: dict) -> None:
        """Restore from a :meth:`get_state` snapshot; replay is bit-exact."""
        self._rng.bit_generator.state = state["rng"]
        self._order = np.array(state["order"], copy=True)
        self._cursor = int(state["cursor"])
        self.epoch = int(state["epoch"])
