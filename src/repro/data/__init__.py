"""Synthetic datasets and data-parallel partitioning.

The paper trains on CIFAR-10, ILSVRC12 and ImageNet22K.  None of those are
available offline, so this package generates deterministic synthetic
classification datasets with matching shapes and class counts (downscaled
spatially where noted).  Convergence *comparisons* between exact and
approximate synchronization (Figure 11) depend on optimization dynamics, not
on natural image statistics, so the substitution preserves the relevant
behaviour; see DESIGN.md.
"""

from repro.data.datasets import (
    DatasetSpec,
    SyntheticImageDataset,
    make_cifar10_like,
    make_ilsvrc12_like,
    make_imagenet22k_like,
    make_linearly_separable,
)
from repro.data.partition import partition_indices, shard_dataset
from repro.data.samplers import BatchSampler

__all__ = [
    "DatasetSpec",
    "SyntheticImageDataset",
    "make_cifar10_like",
    "make_ilsvrc12_like",
    "make_imagenet22k_like",
    "make_linearly_separable",
    "partition_indices",
    "shard_dataset",
    "BatchSampler",
]
