"""Deterministic synthetic image-classification datasets.

Each dataset is a class-conditional Gaussian mixture rendered as images: a
per-class template pattern plus noise.  This gives a learnable but non-trivial
problem -- a small CNN reaches high accuracy within a few hundred iterations,
while a randomly-initialised one sits at chance level -- which is what the
convergence experiments need.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np

from repro.exceptions import ConfigurationError


@dataclass(frozen=True)
class DatasetSpec:
    """Shape metadata of a dataset used for planning and documentation.

    Attributes:
        name: dataset name as used in the paper.
        num_train: number of training images.
        num_test: number of validation/test images.
        image_shape: per-sample shape ``(channels, height, width)``.
        num_classes: number of target classes.
    """

    name: str
    num_train: int
    num_test: int
    image_shape: Tuple[int, int, int]
    num_classes: int


#: Shape metadata of the paper's datasets (Section 5, "Dataset and Models").
CIFAR10_SPEC = DatasetSpec("CIFAR-10", 50_000, 10_000, (3, 32, 32), 10)
ILSVRC12_SPEC = DatasetSpec("ILSVRC12", 1_281_167, 50_000, (3, 224, 224), 1_000)
IMAGENET22K_SPEC = DatasetSpec("ImageNet22K", 14_197_087, 0, (3, 224, 224), 21_841)


class SyntheticImageDataset:
    """A deterministic synthetic stand-in for an image-classification dataset.

    Samples are generated as ``template[class] + noise`` where templates are
    smooth random patterns.  Generation is fully determined by the seed, so
    every worker (and every test) sees the same data.
    """

    def __init__(self, name: str, num_train: int, num_test: int,
                 image_shape: Tuple[int, int, int], num_classes: int,
                 noise_scale: float = 0.8, seed: int = 0):
        if num_train < 1:
            raise ConfigurationError(f"num_train must be >= 1, got {num_train}")
        if num_classes < 2:
            raise ConfigurationError(f"num_classes must be >= 2, got {num_classes}")
        self.spec = DatasetSpec(name, num_train, num_test, tuple(image_shape), num_classes)
        self.noise_scale = float(noise_scale)
        self.seed = int(seed)
        rng = np.random.default_rng(seed)
        self._templates = self._make_templates(rng)
        self.train_images, self.train_labels = self._generate(
            rng, num_train)
        if num_test > 0:
            self.test_images, self.test_labels = self._generate(rng, num_test)
        else:
            self.test_images = np.empty((0, *image_shape), dtype=np.float32)
            self.test_labels = np.empty((0,), dtype=np.int64)

    # -- generation --------------------------------------------------------------
    def _make_templates(self, rng: np.random.Generator) -> np.ndarray:
        channels, height, width = self.spec.image_shape
        coarse = rng.standard_normal(
            (self.spec.num_classes, channels, max(height // 4, 1), max(width // 4, 1))
        )
        # Upsample coarse patterns so templates are smooth (more image-like
        # than white noise, and easier for small convolutions to pick up).
        templates = np.repeat(np.repeat(coarse, 4, axis=2), 4, axis=3)
        templates = templates[:, :, :height, :width]
        if templates.shape[2] < height or templates.shape[3] < width:
            pad_h = height - templates.shape[2]
            pad_w = width - templates.shape[3]
            templates = np.pad(
                templates, ((0, 0), (0, 0), (0, pad_h), (0, pad_w)), mode="edge"
            )
        return templates.astype(np.float32)

    def _generate(self, rng: np.random.Generator, count: int
                  ) -> Tuple[np.ndarray, np.ndarray]:
        labels = rng.integers(0, self.spec.num_classes, size=count)
        noise = rng.standard_normal((count, *self.spec.image_shape)).astype(np.float32)
        images = self._templates[labels] + self.noise_scale * noise
        return images.astype(np.float32), labels.astype(np.int64)

    # -- convenience ----------------------------------------------------------------
    @property
    def num_train(self) -> int:
        """Number of training samples actually materialised."""
        return int(self.train_images.shape[0])

    @property
    def num_classes(self) -> int:
        """Number of target classes."""
        return self.spec.num_classes

    def train_batch(self, indices: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        """Gather a training batch by index."""
        return self.train_images[indices], self.train_labels[indices]


def make_cifar10_like(num_train: int = 2_000, num_test: int = 500,
                      image_size: int = 32, noise_scale: float = 0.8,
                      seed: int = 0) -> SyntheticImageDataset:
    """A CIFAR-10-shaped synthetic dataset (10 classes, 3x32x32 by default).

    The default sample count is far below the real 50K because the functional
    trainer runs on CPU; the class structure is what matters for the
    convergence comparisons.
    """
    return SyntheticImageDataset(
        name="synthetic-CIFAR-10",
        num_train=num_train,
        num_test=num_test,
        image_shape=(3, image_size, image_size),
        num_classes=10,
        noise_scale=noise_scale,
        seed=seed,
    )


def make_ilsvrc12_like(num_train: int = 512, num_test: int = 128, image_size: int = 32,
                       num_classes: int = 100, seed: int = 0) -> SyntheticImageDataset:
    """A heavily downscaled ILSVRC12 stand-in (default 100 classes, 32x32)."""
    return SyntheticImageDataset(
        name="synthetic-ILSVRC12",
        num_train=num_train,
        num_test=num_test,
        image_shape=(3, image_size, image_size),
        num_classes=num_classes,
        seed=seed,
    )


def make_imagenet22k_like(num_train: int = 512, num_test: int = 0, image_size: int = 32,
                          num_classes: int = 1_000, seed: int = 0) -> SyntheticImageDataset:
    """A downscaled ImageNet22K stand-in (many classes, small images)."""
    return SyntheticImageDataset(
        name="synthetic-ImageNet22K",
        num_train=num_train,
        num_test=num_test,
        image_shape=(3, image_size, image_size),
        num_classes=num_classes,
        seed=seed,
    )


def make_linearly_separable(num_train: int = 1_024, num_test: int = 256,
                            input_dim: int = 64, num_classes: int = 10,
                            margin: float = 2.0, seed: int = 0
                            ) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """A flat-feature classification problem for MLP-based unit tests.

    Returns:
        ``(train_x, train_y, test_x, test_y)`` arrays.
    """
    rng = np.random.default_rng(seed)
    centroids = rng.standard_normal((num_classes, input_dim)) * margin
    train_y = rng.integers(0, num_classes, size=num_train)
    test_y = rng.integers(0, num_classes, size=num_test)
    train_x = centroids[train_y] + rng.standard_normal((num_train, input_dim))
    test_x = centroids[test_y] + rng.standard_normal((num_test, input_dim))
    return (
        train_x.astype(np.float32),
        train_y.astype(np.int64),
        test_x.astype(np.float32),
        test_y.astype(np.int64),
    )
