"""Data-parallel dataset partitioning.

Data parallelism (Section 2.1) partitions the training data across the
worker machines; every worker draws its mini-batches from its own partition.
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np

from repro.exceptions import ConfigurationError


def partition_indices(num_samples: int, num_workers: int, seed: int = 0,
                      shuffle: bool = True) -> List[np.ndarray]:
    """Split ``range(num_samples)`` into ``num_workers`` near-equal partitions.

    Partition sizes differ by at most one sample; each index appears exactly
    once across all partitions.

    Raises:
        ConfigurationError: if there are fewer samples than workers.
    """
    if num_workers < 1:
        raise ConfigurationError(f"num_workers must be >= 1, got {num_workers}")
    if num_samples < num_workers:
        raise ConfigurationError(
            f"cannot partition {num_samples} samples across {num_workers} workers"
        )
    indices = np.arange(num_samples)
    if shuffle:
        rng = np.random.default_rng(seed)
        rng.shuffle(indices)
    return [partition.copy() for partition in np.array_split(indices, num_workers)]


def shard_dataset(images: np.ndarray, labels: np.ndarray, num_workers: int,
                  seed: int = 0) -> List[Tuple[np.ndarray, np.ndarray]]:
    """Materialise per-worker ``(images, labels)`` shards."""
    if images.shape[0] != labels.shape[0]:
        raise ConfigurationError(
            f"images and labels disagree on sample count: "
            f"{images.shape[0]} vs {labels.shape[0]}"
        )
    partitions = partition_indices(images.shape[0], num_workers, seed=seed)
    return [(images[part], labels[part]) for part in partitions]
