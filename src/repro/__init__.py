"""Poseidon reproduction library.

This package reproduces the system described in *"Poseidon: An Efficient
Communication Architecture for Distributed Deep Learning on GPU Clusters"*
(Zhang et al., USENIX ATC 2017).

The library is organised in layers, bottom-up:

* :mod:`repro.nn` -- a numpy neural-network substrate plus a model zoo whose
  per-layer specifications match the networks evaluated in the paper.
* :mod:`repro.data` -- synthetic stand-ins for the paper's datasets.
* :mod:`repro.sim` -- a small process-based discrete-event simulation engine.
* :mod:`repro.cluster` -- GPU machines, NICs and links built on :mod:`repro.sim`.
* :mod:`repro.comm` -- communication substrates: parameter server,
  sufficient-factor broadcasting, the Adam strategy and 1-bit quantization.
* :mod:`repro.core` -- Poseidon itself: coordinator, cost model, KV store,
  syncers, wait-free backpropagation and hybrid communication.
* :mod:`repro.engines` -- Caffe-like and TensorFlow-like engine behaviour.
* :mod:`repro.parallel` -- a functional (threaded, real numpy math)
  data-parallel training runtime.
* :mod:`repro.simulation` -- throughput/traffic/convergence simulation used
  by the experiment harness.
* :mod:`repro.experiments` -- one module per table/figure of the paper.
"""

from repro.version import __version__
from repro.config import (
    BandwidthPreset,
    ClusterConfig,
    GpuModel,
    TrainingConfig,
)
from repro.core.poseidon import PoseidonContext, CommunicationPlan
from repro.core.cost_model import CommScheme

__all__ = [
    "__version__",
    "BandwidthPreset",
    "ClusterConfig",
    "GpuModel",
    "TrainingConfig",
    "PoseidonContext",
    "CommunicationPlan",
    "CommScheme",
]
