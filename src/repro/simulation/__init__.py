"""Throughput, traffic and convergence simulation.

This package turns a model architecture + cluster configuration + system
descriptor into the quantities the paper's evaluation reports:

* :mod:`repro.simulation.workload` -- derive a per-layer compute/communication
  workload from a :class:`~repro.nn.spec.ModelSpec`, calibrated against the
  paper's single-node throughput.
* :mod:`repro.simulation.throughput` -- the flow-level discrete-event
  simulation of one training iteration: GPU compute, per-layer
  synchronization under PS/SFB/Adam/1-bit with or without WFBP, per-node
  traffic and GPU stall accounting.
* :mod:`repro.simulation.fluid` -- the fluid-mode analytic engine: the same
  per-iteration quantity as the DES computed in closed form (plus vectorized
  axis sweeps), for interactive what-if at 1k-10k nodes.
* :mod:`repro.simulation.speedup` -- scaling sweeps (speedup vs. nodes,
  bandwidth sweeps).
* :mod:`repro.simulation.convergence` -- statistical-performance models for
  the ResNet-152 experiment (Figure 9b).
"""

from repro.simulation.workload import IterationWorkload, SyncUnit, build_workload
from repro.simulation.throughput import SimulationResult, simulate_system
from repro.simulation.fluid import (
    ENGINES,
    FLUID_NODE_THRESHOLD,
    FluidSimulator,
    resolve_engine,
    simulate_fluid,
    sweep_axis,
    use_engine,
)
from repro.simulation.speedup import (
    ScalingCurve,
    bandwidth_sweep,
    scaling_curve,
    single_node_reference_seconds,
)
from repro.simulation.convergence import (
    ConvergenceCurve,
    epochs_to_error,
    resnet152_error_curve,
)

__all__ = [
    "IterationWorkload",
    "SyncUnit",
    "build_workload",
    "SimulationResult",
    "simulate_system",
    "ENGINES",
    "FLUID_NODE_THRESHOLD",
    "FluidSimulator",
    "resolve_engine",
    "simulate_fluid",
    "sweep_axis",
    "use_engine",
    "ScalingCurve",
    "scaling_curve",
    "bandwidth_sweep",
    "single_node_reference_seconds",
    "ConvergenceCurve",
    "epochs_to_error",
    "resnet152_error_curve",
]
