"""Statistical-performance models (Figure 9b).

The paper's Figure 9 shows that Poseidon-trained ResNet-152 reaches the
reported 0.24 top-1 error in under 90 epochs on 16 and 32 nodes, i.e. the
synchronous training preserves per-epoch convergence while throughput scales.
Training a 60M-parameter ResNet on ImageNet is far outside what a CPU-only
reproduction can do, so -- per the substitution rule -- this module provides
a calibrated parametric learning-curve model: error as a function of epoch
and effective (global) batch size, with the mild large-batch degradation
reported in the literature the paper cites [3, 7].  The *shape* comparisons
(same error targets reached within the same epoch budget across 8/16/32
nodes; wall-clock time scaling with throughput) are what the Figure 9
experiment checks.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

from repro.exceptions import ConfigurationError

#: Final top-1 error the paper reports for ResNet-152 (Figure 9b).
RESNET152_FINAL_ERROR = 0.24

#: Error of an untrained 1000-way classifier.
_INITIAL_ERROR = 0.999

#: Per-GPU batch size of the ResNet-152 experiment (Table 3).
_PER_GPU_BATCH = 32

#: Reference effective batch size: the paper calls 32 x 8 "a standard setting".
_REFERENCE_EFFECTIVE_BATCH = 256


@dataclass
class ConvergenceCurve:
    """Top-1 error as a function of training epoch."""

    label: str
    epochs: List[float] = field(default_factory=list)
    errors: List[float] = field(default_factory=list)

    def error_at(self, epoch: float) -> float:
        """Error at (or interpolated near) a given epoch."""
        if not self.epochs:
            raise ConfigurationError("empty convergence curve")
        best_index = min(range(len(self.epochs)),
                         key=lambda i: abs(self.epochs[i] - epoch))
        return self.errors[best_index]

    def epochs_to_reach(self, target_error: float) -> Optional[float]:
        """First epoch at which the curve dips below ``target_error``."""
        for epoch, error in zip(self.epochs, self.errors):
            if error <= target_error:
                return epoch
        return None

    @property
    def final_error(self) -> float:
        """Error at the end of the simulated schedule."""
        return self.errors[-1] if self.errors else float("nan")


def _error_model(epoch: float, effective_batch: int) -> float:
    """Parametric top-1 error curve for ResNet-152-style ImageNet training.

    The curve is an exponential decay toward the final error with two
    step-wise learning-rate drops (the standard 30/60-epoch schedule), plus a
    small penalty growing logarithmically with the effective batch size
    beyond the 256-sample reference -- large effective batches converge
    slightly slower per epoch, which is why the paper keeps clusters at
    "medium scale" (Section 5, Metrics).
    """
    if epoch < 0:
        raise ConfigurationError(f"epoch must be >= 0, got {epoch}")
    if effective_batch < 1:
        raise ConfigurationError(
            f"effective_batch must be >= 1, got {effective_batch}")
    batch_penalty = 0.003 * max(
        0.0, math.log2(effective_batch / _REFERENCE_EFFECTIVE_BATCH))
    floor = RESNET152_FINAL_ERROR + batch_penalty
    # Three-phase decay mimicking step learning-rate drops at epochs 30 / 60.
    decay = 0.06
    progress = _INITIAL_ERROR * math.exp(-decay * epoch)
    if epoch >= 30:
        progress *= 0.55
    if epoch >= 60:
        progress *= 0.7
    return float(min(_INITIAL_ERROR, floor + progress))


def resnet152_error_curve(num_nodes: int, epochs: int = 120,
                          per_gpu_batch: int = _PER_GPU_BATCH,
                          points_per_epoch: int = 1) -> ConvergenceCurve:
    """Top-1 error vs. epoch for synchronous training on ``num_nodes`` nodes."""
    if num_nodes < 1:
        raise ConfigurationError(f"num_nodes must be >= 1, got {num_nodes}")
    if epochs < 1:
        raise ConfigurationError(f"epochs must be >= 1, got {epochs}")
    effective_batch = num_nodes * per_gpu_batch
    curve = ConvergenceCurve(label=f"{num_nodes} nodes")
    steps = epochs * points_per_epoch
    for step in range(steps + 1):
        epoch = step / points_per_epoch
        curve.epochs.append(epoch)
        curve.errors.append(_error_model(epoch, effective_batch))
    return curve


def epochs_to_error(num_nodes: int, target_error: float = 0.25,
                    max_epochs: int = 150) -> Optional[float]:
    """Epochs needed to reach ``target_error`` on ``num_nodes`` nodes."""
    curve = resnet152_error_curve(num_nodes, epochs=max_epochs, points_per_epoch=2)
    return curve.epochs_to_reach(target_error)


def time_to_error_hours(num_nodes: int, iteration_seconds: float,
                        samples_per_epoch: int = 1_281_167,
                        per_gpu_batch: int = _PER_GPU_BATCH,
                        target_error: float = 0.25) -> Optional[float]:
    """Wall-clock hours to reach a target error given a simulated iteration time.

    Combines the convergence model (epochs to target) with the throughput
    simulation (seconds per iteration) -- the "time to accuracy" framing of
    Figure 9.
    """
    epochs = epochs_to_error(num_nodes, target_error=target_error)
    if epochs is None:
        return None
    iterations_per_epoch = samples_per_epoch / (num_nodes * per_gpu_batch)
    total_seconds = epochs * iterations_per_epoch * iteration_seconds
    return total_seconds / 3600.0


def compare_convergence(node_counts: Sequence[int], epochs: int = 120
                        ) -> List[Tuple[int, ConvergenceCurve]]:
    """Convergence curves for several cluster sizes (the Figure 9b panel)."""
    return [(nodes, resnet152_error_curve(nodes, epochs=epochs))
            for nodes in node_counts]
