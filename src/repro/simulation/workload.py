"""Derive a simulation workload from a model specification.

A :class:`SyncUnit` is the granularity at which the simulator schedules
computation and communication: usually one parameter layer, but adjacent
small non-factorisable layers (e.g. the conv/BN stacks of ResNet) are merged
into a single unit, mirroring how Poseidon's KV store batches small tensors
into 2 MB pairs.  Fully-connected layers are never merged because HybComm
may route them differently.

Compute times are calibrated so that the single-node iteration time matches
the paper's reported single-node images/second for that model; the per-unit
split then follows the layers' FLOP counts.  This keeps the ratio of
computation to communication -- the quantity Poseidon's design targets --
faithful to the paper's Titan X testbed without needing the hardware.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import cached_property
from typing import Dict, List, Optional, Tuple

from repro import units
from repro.config import GpuModel, TITAN_X
from repro.exceptions import ConfigurationError
from repro.nn.spec import LayerKind, ModelSpec

#: Units smaller than this are merged with their neighbours (unless they are
#: FC layers).  2 MB matches Poseidon's KV pair size.
DEFAULT_COARSEN_BYTES = 2 * units.MB


@dataclass(frozen=True)
class SyncUnit:
    """One schedulable unit of parameters.

    Attributes:
        name: representative name (first merged layer).
        param_bytes: dense size of the unit's parameters/gradients.
        sf_eligible: whether the unit is a single FC layer whose gradient can
            be sent as sufficient factors.
        fc_dims: the ``(M, N)`` shape for SF-eligible units, else ``None``.
        backward_seconds: GPU time between the previous unit's gradient and
            this unit's gradient becoming available (the unit's own backward
            pass plus any parameter-free layers above it).
        layer_names: all model layers folded into this unit.
        payload_parts: per-member ``(param_bytes, fc_dims)`` of a merged
            gradient *bucket* (:func:`repro.comm.bucketing.bucket_workload`),
            so compressed wire accounting stays exact member by member.
            ``None`` (the default, and every non-bucketed unit) prices the
            unit from its own ``param_bytes``/``fc_dims``.
    """

    name: str
    param_bytes: int
    sf_eligible: bool
    fc_dims: Optional[Tuple[int, int]]
    backward_seconds: float
    layer_names: Tuple[str, ...]
    payload_parts: Optional[Tuple[Tuple[int, Optional[Tuple[int, int]]], ...]] = None

    def sufficient_factor_bytes(self, batch_size: int) -> int:
        """Bytes of the unit's gradient encoded as sufficient factors.

        Raises:
            ConfigurationError: if the unit is not SF-eligible.
        """
        if not self.sf_eligible or self.fc_dims is None:
            raise ConfigurationError(f"unit {self.name!r} is not SF-eligible")
        m, n = self.fc_dims
        return int(batch_size * (m + n) * units.FLOAT32_BYTES)

    def chunk_bytes(self, parts: int) -> float:
        """Bytes of one of ``parts`` equal slices of the unit's gradient.

        Chunked collectives (e.g. ring all-reduce) move the gradient in
        ``parts`` slices; fractional bytes are kept so the slices always
        sum exactly to ``param_bytes``.

        Raises:
            ConfigurationError: on a non-positive part count.
        """
        if parts < 1:
            raise ConfigurationError(f"parts must be >= 1, got {parts}")
        return self.param_bytes / parts


@dataclass(frozen=True)
class IterationWorkload:
    """Everything the simulator needs to know about one training iteration.

    Attributes:
        model_name: the model this workload was derived from.
        batch_size: per-GPU batch size.
        forward_seconds: GPU time of the forward pass.
        tail_backward_seconds: backward time of layers below the lowest
            parameter unit (runs at the end of backprop, gates nothing).
        units: sync units in *forward* order (bottom of the network first);
            the backward pass visits them in reverse.
        single_node_seconds: calibrated single-node iteration time (pure
            computation, no communication).
        total_param_bytes: dense size of the whole model.
    """

    model_name: str
    batch_size: int
    forward_seconds: float
    tail_backward_seconds: float
    units: Tuple[SyncUnit, ...]
    single_node_seconds: float
    total_param_bytes: int

    @property
    def backward_seconds(self) -> float:
        """Total backward-pass time (all units plus the tail)."""
        return sum(unit.backward_seconds for unit in self.units) + self.tail_backward_seconds

    @property
    def compute_seconds(self) -> float:
        """Total GPU compute time of one iteration."""
        return self.forward_seconds + self.backward_seconds

    @property
    def num_units(self) -> int:
        """Number of sync units."""
        return len(self.units)

    @cached_property
    def _units_by_name(self) -> Dict[str, SyncUnit]:
        # cached_property stores via the instance __dict__, which bypasses
        # the frozen-dataclass setattr guard; equality/hash ignore it.
        return {unit.name: unit for unit in self.units}

    def unit_by_name(self, name: str) -> SyncUnit:
        """Look up a unit by its representative name."""
        try:
            return self._units_by_name[name]
        except KeyError:
            raise KeyError(f"workload has no unit named {name!r}") from None


#: Memoized workloads keyed by the full derivation input.  A workload only
#: depends on (model, batch, gpu, coarsen threshold) -- not on bandwidth or
#: cluster size -- so every point of a figure sweep shares one instance
#: (the dataclass is frozen; nothing downstream mutates it).
_WORKLOAD_CACHE: Dict[Tuple[ModelSpec, int, GpuModel, int], IterationWorkload] = {}


def build_workload(model: ModelSpec, batch_size: Optional[int] = None,
                   gpu: GpuModel = TITAN_X,
                   coarsen_bytes: int = DEFAULT_COARSEN_BYTES) -> IterationWorkload:
    """Build (or fetch the memoized) simulation workload for ``model``.

    Args:
        model: architecture specification.
        batch_size: per-GPU batch size; defaults to the model's Table 3 value.
        gpu: GPU throughput model, used only when the paper reports no
            single-node throughput for this model.
        coarsen_bytes: merge threshold for small adjacent non-FC units.
    """
    batch = int(batch_size) if batch_size is not None else model.default_batch_size
    if batch < 1:
        raise ConfigurationError(f"batch_size must be >= 1, got {batch}")
    key = (model, batch, gpu, coarsen_bytes)
    workload = _WORKLOAD_CACHE.get(key)
    if workload is None:
        workload = _derive_workload(model, batch, gpu, coarsen_bytes)
        _WORKLOAD_CACHE[key] = workload
    return workload


def _derive_workload(model: ModelSpec, batch: int, gpu: GpuModel,
                     coarsen_bytes: int) -> IterationWorkload:
    """Derive a workload from scratch (the uncached body of ``build_workload``)."""
    flops_per_sample = model.flops_per_sample
    if model.reference_images_per_sec:
        total_compute = batch / model.reference_images_per_sec
    else:
        total_compute = batch * flops_per_sample / gpu.effective_flops
    seconds_per_flop = (
        total_compute / (batch * flops_per_sample) if flops_per_sample > 0 else 0.0
    )

    def layer_backward_seconds(flops_backward: float) -> float:
        return batch * flops_backward * seconds_per_flop

    forward_seconds = batch * model.flops_forward * seconds_per_flop

    # Walk layers from the top of the network down, attributing parameter-free
    # backward work to the parameter layer whose gradient it delays.
    raw_units: List[SyncUnit] = []
    pending_seconds = 0.0
    for layer in reversed(model.layers):
        if layer.has_parameters:
            backward = layer_backward_seconds(layer.flops_backward) + pending_seconds
            pending_seconds = 0.0
            fc_dims = layer.fc_dims if layer.kind is LayerKind.FC else None
            raw_units.append(
                SyncUnit(
                    name=layer.name,
                    param_bytes=layer.param_bytes,
                    sf_eligible=layer.sf_decomposable,
                    fc_dims=fc_dims,
                    backward_seconds=backward,
                    layer_names=(layer.name,),
                )
            )
        else:
            pending_seconds += layer_backward_seconds(layer.flops_backward)
    tail_backward_seconds = pending_seconds
    raw_units.reverse()  # back to forward order

    units_merged = _coarsen(raw_units, coarsen_bytes)
    return IterationWorkload(
        model_name=model.name,
        batch_size=batch,
        forward_seconds=forward_seconds,
        tail_backward_seconds=tail_backward_seconds,
        units=tuple(units_merged),
        single_node_seconds=total_compute,
        total_param_bytes=model.total_param_bytes,
    )


def _coarsen(units_in_forward_order: List[SyncUnit], coarsen_bytes: int) -> List[SyncUnit]:
    """Merge runs of small non-FC units into single units.

    Merging preserves total bytes and total backward time; the merged unit's
    gradient becomes available when the *lowest* merged layer's backward pass
    finishes, which is what folding their backward times into one unit models.
    """
    if coarsen_bytes <= 0:
        return list(units_in_forward_order)
    merged: List[SyncUnit] = []
    accumulator: Optional[SyncUnit] = None
    for unit in units_in_forward_order:
        mergeable = not unit.sf_eligible and unit.param_bytes < coarsen_bytes
        if not mergeable:
            if accumulator is not None:
                merged.append(accumulator)
                accumulator = None
            merged.append(unit)
            continue
        if accumulator is None:
            accumulator = unit
            continue
        combined_bytes = accumulator.param_bytes + unit.param_bytes
        accumulator = SyncUnit(
            name=accumulator.name,
            param_bytes=combined_bytes,
            sf_eligible=False,
            fc_dims=None,
            backward_seconds=accumulator.backward_seconds + unit.backward_seconds,
            layer_names=accumulator.layer_names + unit.layer_names,
        )
        if combined_bytes >= coarsen_bytes:
            merged.append(accumulator)
            accumulator = None
    if accumulator is not None:
        merged.append(accumulator)
    return merged
