"""Scaling sweeps: speedup vs. node count and vs. bandwidth.

These helpers drive :func:`repro.simulation.throughput.simulate_system`
across the node counts and bandwidths of Figures 5, 6, 8 and 9(a) and
package the results as :class:`ScalingCurve` objects the experiment modules
and benchmarks render.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.config import ClusterConfig
from repro.engines.base import SystemConfig
from repro.nn.spec import ModelSpec
from repro.simulation.throughput import SimulationResult, simulate_system
from repro.simulation.workload import IterationWorkload, build_workload

#: Node counts used by the paper's scaling figures.
DEFAULT_NODE_COUNTS = (1, 2, 4, 8, 16, 32)


@dataclass
class ScalingCurve:
    """Speedup of one system on one model across cluster sizes."""

    model_name: str
    system_name: str
    bandwidth_gbps: float
    node_counts: List[int] = field(default_factory=list)
    speedups: List[float] = field(default_factory=list)
    results: List[SimulationResult] = field(default_factory=list)

    def speedup_at(self, nodes: int) -> float:
        """Speedup at a specific cluster size.

        Raises:
            KeyError: if that size was not simulated.
        """
        try:
            return self.speedups[self.node_counts.index(nodes)]
        except ValueError as exc:
            raise KeyError(f"no result for {nodes} nodes") from exc

    @property
    def final_speedup(self) -> float:
        """Speedup at the largest simulated cluster size."""
        return self.speedups[-1] if self.speedups else 0.0

    def scaling_efficiency(self, nodes: Optional[int] = None) -> float:
        """Speedup divided by node count (1.0 = perfectly linear)."""
        nodes = nodes if nodes is not None else (
            self.node_counts[-1] if self.node_counts else 1)
        return self.speedup_at(nodes) / nodes


def single_node_reference_seconds(model: ModelSpec,
                                  batch_size: Optional[int] = None) -> float:
    """Calibrated single-node iteration time of the unmodified engine."""
    workload = build_workload(model, batch_size=batch_size)
    return workload.single_node_seconds


def scaling_curve(model: ModelSpec, system: SystemConfig,
                  node_counts: Sequence[int] = DEFAULT_NODE_COUNTS,
                  bandwidth_gbps: float = 40.0,
                  batch_size: Optional[int] = None,
                  base_cluster: Optional[ClusterConfig] = None) -> ScalingCurve:
    """Simulate ``system`` training ``model`` across ``node_counts``."""
    workload = build_workload(model, batch_size=batch_size)
    curve = ScalingCurve(
        model_name=model.name,
        system_name=system.name,
        bandwidth_gbps=bandwidth_gbps,
    )
    for nodes in node_counts:
        if base_cluster is not None:
            cluster = base_cluster.with_workers(nodes).with_bandwidth(bandwidth_gbps)
        else:
            cluster = ClusterConfig(num_workers=nodes, bandwidth_gbps=bandwidth_gbps)
        result = simulate_system(model, system, cluster, workload=workload)
        curve.node_counts.append(nodes)
        curve.speedups.append(result.speedup)
        curve.results.append(result)
    return curve


def bandwidth_sweep(model: ModelSpec, system: SystemConfig,
                    bandwidths_gbps: Sequence[float],
                    node_counts: Sequence[int] = (1, 2, 4, 8, 16),
                    batch_size: Optional[int] = None) -> Dict[float, ScalingCurve]:
    """Scaling curves of one system at several Ethernet bandwidths (Figure 8)."""
    return {
        bandwidth: scaling_curve(
            model, system, node_counts=node_counts,
            bandwidth_gbps=bandwidth, batch_size=batch_size)
        for bandwidth in bandwidths_gbps
    }


def compare_systems(model: ModelSpec, systems: Sequence[SystemConfig],
                    node_counts: Sequence[int] = DEFAULT_NODE_COUNTS,
                    bandwidth_gbps: float = 40.0,
                    batch_size: Optional[int] = None) -> Dict[str, ScalingCurve]:
    """Scaling curves for several systems on the same model (Figures 5/6)."""
    return {
        system.name: scaling_curve(
            model, system, node_counts=node_counts,
            bandwidth_gbps=bandwidth_gbps, batch_size=batch_size)
        for system in systems
    }
