"""Scaling sweeps: speedup vs. node count and vs. bandwidth.

These helpers drive :func:`repro.simulation.throughput.simulate_system`
across the node counts and bandwidths of Figures 5, 6, 8 and 9(a) and
package the results as :class:`ScalingCurve` objects the experiment modules
and benchmarks render.

Every sweep point is independent, so all the entry points below enumerate
their configurations as :class:`repro.sweep.SweepTask` objects and execute
them through :func:`repro.sweep.run_sweep` -- serially by default, or over
a process pool when a ``jobs`` argument (or the runner's ``--jobs`` flag)
asks for one.  Results are merged by config key, so the curves are
identical whichever way the sweep ran.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Hashable, List, Mapping, Optional, Sequence, Tuple

from repro.config import ClusterConfig
from repro.engines.base import SystemConfig
from repro.nn.spec import ModelSpec
from repro.simulation.fluid import resolve_engine, session_engine
from repro.simulation.throughput import SimulationResult, simulate_system
from repro.simulation.workload import IterationWorkload, build_workload
from repro.sweep import SweepTask, run_sweep

#: Node counts used by the paper's scaling figures.
DEFAULT_NODE_COUNTS = (1, 2, 4, 8, 16, 32)


@dataclass
class ScalingCurve:
    """Speedup of one system on one model across cluster sizes."""

    model_name: str
    system_name: str
    bandwidth_gbps: float
    node_counts: List[int] = field(default_factory=list)
    speedups: List[float] = field(default_factory=list)
    results: List[SimulationResult] = field(default_factory=list)

    def speedup_at(self, nodes: int) -> float:
        """Speedup at a specific cluster size.

        Raises:
            KeyError: if that size was not simulated.
        """
        try:
            return self.speedups[self.node_counts.index(nodes)]
        except ValueError as exc:
            raise KeyError(f"no result for {nodes} nodes") from exc

    @property
    def final_speedup(self) -> float:
        """Speedup at the largest simulated cluster size."""
        return self.speedups[-1] if self.speedups else 0.0

    def scaling_efficiency(self, nodes: Optional[int] = None) -> float:
        """Speedup divided by node count (1.0 = perfectly linear)."""
        nodes = nodes if nodes is not None else (
            self.node_counts[-1] if self.node_counts else 1)
        return self.speedup_at(nodes) / nodes


def single_node_reference_seconds(model: ModelSpec,
                                  batch_size: Optional[int] = None) -> float:
    """Calibrated single-node iteration time of the unmodified engine."""
    workload = build_workload(model, batch_size=batch_size)
    return workload.single_node_seconds


def simulate_point(model: ModelSpec, system: SystemConfig, nodes: int,
                   bandwidth_gbps: float = 40.0,
                   batch_size: Optional[int] = None,
                   base_cluster: Optional[ClusterConfig] = None,
                   workload: Optional[IterationWorkload] = None,
                   engine: Optional[str] = None) -> SimulationResult:
    """Simulate one sweep point (module-level, hence picklable)."""
    if base_cluster is not None:
        cluster = base_cluster.with_workers(nodes).with_bandwidth(bandwidth_gbps)
    else:
        cluster = ClusterConfig(num_workers=nodes, bandwidth_gbps=bandwidth_gbps)
    return simulate_system(model, system, cluster, batch_size=batch_size,
                           workload=workload, engine=engine)


def point_key(model: ModelSpec, system: SystemConfig, bandwidth_gbps: float,
              nodes: int) -> Tuple[str, str, float, int]:
    """Canonical sweep key of one (model, system, bandwidth, nodes) config."""
    return (model.name, system.name, float(bandwidth_gbps), int(nodes))


def curve_tasks(model: ModelSpec, system: SystemConfig,
                node_counts: Sequence[int],
                bandwidth_gbps: float = 40.0,
                batch_size: Optional[int] = None,
                base_cluster: Optional[ClusterConfig] = None,
                engine: Optional[str] = None) -> List[SweepTask]:
    """Enumerate one scaling curve as independent sweep tasks.

    The iteration workload only depends on (model, batch size, GPU), so it
    is derived once here -- :func:`build_workload` memoizes by exactly that
    key, so repeated curves (e.g. one per bandwidth in Figure 8) share one
    instance -- and shipped with every task instead of being rebuilt per
    sweep point.  Scheme decisions are likewise memoized per
    (workload, comm mode, cluster shape) inside the simulator, so a
    bandwidth sweep re-derives neither.
    """
    gpu_source = base_cluster if base_cluster is not None else ClusterConfig(
        num_workers=1)
    workload = build_workload(model, batch_size=batch_size,
                              gpu=gpu_source.gpu)
    # Bake the session default in at enumeration time: sweep tasks may run
    # in worker processes where a use_engine() context would not be active.
    engine = session_engine() if engine is None else engine
    for nodes in node_counts:
        resolve_engine(engine, int(nodes))  # validate the name eagerly
    return [
        SweepTask(
            key=point_key(model, system, bandwidth_gbps, nodes),
            fn=simulate_point,
            args=(model, system, int(nodes)),
            kwargs={"bandwidth_gbps": bandwidth_gbps,
                    "batch_size": batch_size,
                    "base_cluster": base_cluster,
                    "workload": workload,
                    "engine": engine},
        )
        for nodes in node_counts
    ]


def curve_from_results(model: ModelSpec, system: SystemConfig,
                       node_counts: Sequence[int], bandwidth_gbps: float,
                       results: Mapping[Hashable, SimulationResult]
                       ) -> ScalingCurve:
    """Assemble a :class:`ScalingCurve` from merged sweep results."""
    curve = ScalingCurve(
        model_name=model.name,
        system_name=system.name,
        bandwidth_gbps=bandwidth_gbps,
    )
    for nodes in node_counts:
        result = results[point_key(model, system, bandwidth_gbps, nodes)]
        curve.node_counts.append(int(nodes))
        curve.speedups.append(result.speedup)
        curve.results.append(result)
    return curve


def scaling_curve(model: ModelSpec, system: SystemConfig,
                  node_counts: Sequence[int] = DEFAULT_NODE_COUNTS,
                  bandwidth_gbps: float = 40.0,
                  batch_size: Optional[int] = None,
                  base_cluster: Optional[ClusterConfig] = None,
                  jobs: Optional[int] = None,
                  engine: Optional[str] = None) -> ScalingCurve:
    """Simulate ``system`` training ``model`` across ``node_counts``."""
    tasks = curve_tasks(model, system, node_counts,
                        bandwidth_gbps=bandwidth_gbps, batch_size=batch_size,
                        base_cluster=base_cluster, engine=engine)
    results = run_sweep(tasks, jobs=jobs)
    return curve_from_results(model, system, node_counts, bandwidth_gbps,
                              results)


def bandwidth_sweep(model: ModelSpec, system: SystemConfig,
                    bandwidths_gbps: Sequence[float],
                    node_counts: Sequence[int] = (1, 2, 4, 8, 16),
                    batch_size: Optional[int] = None,
                    jobs: Optional[int] = None,
                    engine: Optional[str] = None) -> Dict[float, ScalingCurve]:
    """Scaling curves of one system at several Ethernet bandwidths (Figure 8).

    All (bandwidth, nodes) configurations run in a single flat sweep.
    """
    tasks = [
        task
        for bandwidth in bandwidths_gbps
        for task in curve_tasks(model, system, node_counts,
                                bandwidth_gbps=bandwidth,
                                batch_size=batch_size, engine=engine)
    ]
    results = run_sweep(tasks, jobs=jobs)
    return {
        bandwidth: curve_from_results(model, system, node_counts, bandwidth,
                                      results)
        for bandwidth in bandwidths_gbps
    }


def compare_systems(model: ModelSpec, systems: Sequence[SystemConfig],
                    node_counts: Sequence[int] = DEFAULT_NODE_COUNTS,
                    bandwidth_gbps: float = 40.0,
                    batch_size: Optional[int] = None,
                    jobs: Optional[int] = None,
                    engine: Optional[str] = None) -> Dict[str, ScalingCurve]:
    """Scaling curves for several systems on the same model (Figures 5/6).

    All (system, nodes) configurations run in a single flat sweep.
    """
    tasks = [
        task
        for system in systems
        for task in curve_tasks(model, system, node_counts,
                                bandwidth_gbps=bandwidth_gbps,
                                batch_size=batch_size, engine=engine)
    ]
    results = run_sweep(tasks, jobs=jobs)
    return {
        system.name: curve_from_results(model, system, node_counts,
                                        bandwidth_gbps, results)
        for system in systems
    }
