"""Flow-level simulation of one distributed training iteration.

The simulator places one worker per node (plus, optionally, colocated PS
shards), runs every worker's GPU through forward and per-unit backward
computation, and launches each unit's synchronization according to the
system descriptor: immediately after the unit's backward pass (WFBP) or only
after the full backward pass (sequential).  The transfer pattern of each
unit's scheme comes from its registered communication backend's
:class:`~repro.comm.backend.FlowPlan` -- fine-grained balanced KV store or
coarse per-tensor PS (optionally 1-bit quantized), sufficient-factor
broadcasting, Adam's SF-push/matrix-pull, chunked ring all-reduce,
rack-hierarchical PS, or any newly registered scheme.  The iteration ends
when every worker holds every unit's fresh parameters (BSP).

Network contention is modelled at each node's full-duplex NIC: uplink and
downlink are FIFO channels of the configured bandwidth.  Scatter/gather
traffic of the fine-grained KV store, which is spread uniformly over all
shards, is modelled as aggregate flows against the switching fabric (see
:mod:`repro.cluster.machine`), while per-destination traffic (coarse
placement, Adam, SFB) uses point-to-point flows so that hotspots emerge
naturally.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Tuple

from repro import units
from repro.cluster.machine import ClusterModel
from repro.comm.backend import (
    ONEBIT_COMPRESSION,
    get_backend,
    hybrid_choice,
    registry_generation,
)
from repro.comm.wire import (
    CompressionConfig,
    unit_compression_flops,
    unit_wire_bytes,
)
from repro.config import ClusterConfig
from repro.core.cost_model import CommScheme, NetworkTopology
from repro.core.faults import fault_overhead_factor
from repro.core.wfbp import ScheduleMode
from repro.engines.base import CommMode, Partitioning, SystemConfig
from repro.exceptions import ConfigurationError, SimulationError
from repro.nn.spec import ModelSpec
from repro.sim import Environment, Event
from repro.simulation.workload import IterationWorkload, SyncUnit, build_workload

__all__ = ["ONEBIT_COMPRESSION", "SimulationResult", "IterationSimulator",
           "decide_schemes", "simulate_system"]


@dataclass
class SimulationResult:
    """Outcome of simulating one system on one cluster configuration."""

    model_name: str
    system_name: str
    num_workers: int
    bandwidth_gbps: float
    batch_size: int
    iteration_seconds: float
    single_node_seconds: float
    compute_seconds: float
    throughput_images_per_sec: float = 0.0
    speedup: float = 0.0
    gpu_busy_fraction: float = 0.0
    per_node_traffic_bytes: List[float] = field(default_factory=list)
    scheme_by_unit: Dict[str, str] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.iteration_seconds <= 0:
            raise SimulationError("iteration time must be positive")
        cluster_images = self.num_workers * self.batch_size
        self.throughput_images_per_sec = cluster_images / self.iteration_seconds
        single_node_throughput = self.batch_size / self.single_node_seconds
        self.speedup = self.throughput_images_per_sec / single_node_throughput
        if self.gpu_busy_fraction == 0.0:
            self.gpu_busy_fraction = min(
                1.0, self.compute_seconds / self.iteration_seconds)

    @property
    def gpu_stall_fraction(self) -> float:
        """Fraction of the iteration the GPU spends waiting (Figure 7)."""
        return max(0.0, 1.0 - self.gpu_busy_fraction)

    @property
    def mean_traffic_gbits(self) -> float:
        """Mean per-node traffic per iteration in gigabits (Figure 10)."""
        if not self.per_node_traffic_bytes:
            return 0.0
        mean_bytes = sum(self.per_node_traffic_bytes) / len(self.per_node_traffic_bytes)
        return units.bytes_to_bits(mean_bytes) / units.GBIT

    @property
    def max_traffic_gbits(self) -> float:
        """Largest per-node traffic per iteration in gigabits."""
        if not self.per_node_traffic_bytes:
            return 0.0
        return units.bytes_to_bits(max(self.per_node_traffic_bytes)) / units.GBIT


class _UnitSyncState:
    """Shared per-unit synchronization bookkeeping for one iteration.

    The per-worker ``send_done`` event map of the historical implementation
    (every worker joined it with a freshly built N-element ``all_of``) is
    collapsed into one :class:`~repro.sim.CountdownEvent`: each worker
    arrives once its send completes, and the barrier fires during the same
    dispatch in which the last worker's ``send_done`` would have.
    """

    __slots__ = ("send_started", "_send_started_fired", "all_sent",
                 "aggregated", "scatter_done", "extra")

    def __init__(self, env: Environment, num_workers: int):
        self.send_started: Event = env.event()
        self._send_started_fired = False
        self.all_sent = env.countdown(num_workers)
        self.aggregated: Event = env.event()
        self.scatter_done: Optional[Event] = None
        #: Backend-specific synchronization state (e.g. the ring's per-step
        #: barriers or the hierarchical tree's per-rack countdowns), keyed
        #: by the owning flow plan.
        self.extra: Dict[str, object] = {}

    def mark_send_started(self) -> None:
        if not self._send_started_fired:
            self.send_started.succeed()
            self._send_started_fired = True


#: Sync-round horizon of the relaxed-policy DES path (see ``_run_policy``).
_POLICY_WINDOWS = 8


class _RoundView:
    """Per-round facade over an :class:`IterationSimulator`.

    The relaxed-policy path simulates several consecutive rounds in one DES
    environment; flow plans are round-agnostic (they address shared state
    through ``sim.unit_state`` / ``sim.backward_done``), so each round hands
    them a view that resolves those two accessors to round-local state and
    delegates everything else to the real simulator.
    """

    __slots__ = ("_sim", "round_index", "_round_unit_state",
                 "_round_backward_done")

    def __init__(self, sim: "IterationSimulator", round_index: int):
        self._sim = sim
        self.round_index = round_index
        self._round_unit_state: Dict[str, _UnitSyncState] = {}
        self._round_backward_done: Dict[int, Event] = {}

    def unit_state(self, unit: SyncUnit) -> _UnitSyncState:
        return self._round_unit_state[unit.name]

    def backward_done(self, worker: int) -> Event:
        return self._round_backward_done[worker]

    def __getattr__(self, name: str):
        return getattr(self._sim, name)


#: Memoized scheme assignments: Algorithm 1 only looks at the workload's
#: units, the comm mode and the cluster shape, none of which vary across the
#: bandwidth/node sweep points of one figure, so the decision table is shared
#: (read-only) between simulator instances.
_SCHEME_CACHE: Dict[Tuple, Dict[str, CommScheme]] = {}


def _decide_scheme(unit: SyncUnit, comm: CommMode, batch_size: int,
                   num_workers: int, num_servers: int,
                   topology: Optional[NetworkTopology]) -> CommScheme:
    """Choose the communication scheme of one unit (Algorithm 1 for HYBRID)."""
    if comm is CommMode.HYBRID:
        if unit.sf_eligible and unit.fc_dims is not None:
            m, n = unit.fc_dims
            return hybrid_choice(m, n, num_workers, num_servers, batch_size,
                                 sf_eligible=True, topology=topology)
        return CommScheme.PS
    backend = get_backend(comm.value)
    if backend.requires_factorization and not unit.sf_eligible:
        return CommScheme.PS
    return backend.scheme


def decide_schemes(workload: IterationWorkload, comm: CommMode,
                   num_workers: int, num_servers: int,
                   topology: Optional[NetworkTopology] = None
                   ) -> Dict[str, CommScheme]:
    """Per-unit scheme assignment, memoized by (workload, comm, cluster shape).

    With a non-flat ``topology`` the HYBRID decisions become rack-aware
    (cross-rack premiums plus the topology-candidate collectives); a flat
    or absent topology reproduces the paper's Algorithm-1 table.  The key
    includes the backend-registry generation so a backend registered after
    a sweep warmed the cache is not silently ignored.  The returned dict
    is shared between callers and must not be mutated.
    """
    key = (workload, comm, num_workers, num_servers, topology,
           registry_generation())
    schemes = _SCHEME_CACHE.get(key)
    if schemes is None:
        schemes = {
            unit.name: _decide_scheme(unit, comm, workload.batch_size,
                                      num_workers, num_servers, topology)
            for unit in workload.units
        }
        _SCHEME_CACHE[key] = schemes
    return schemes


#: Comm modes whose dense-gradient paths accept a pluggable compressor.
_COMPRESSIBLE_MODES = (CommMode.PS, CommMode.RING, CommMode.HYBRID)


def validate_compression(system: SystemConfig) -> Optional[CompressionConfig]:
    """Parse and validate a system's compression/bucketing axes.

    Returns the parsed config (``None`` at the identity).  Both engines
    call this from their constructors so a misconfiguration -- a
    compressor on a backend without a dense-gradient path, or wire axes
    combined with fine-grained KV partitioning (whose 2 MB pairs already
    fix the granularity and slice tensors across shards) -- fails fast
    and identically everywhere.

    Raises:
        ConfigurationError: on an invalid combination.
    """
    config = CompressionConfig.parse(system.compressor)
    wire_axes_active = (not config.is_identity
                       or system.bucket_bytes is not None)
    if wire_axes_active and system.partitioning is not Partitioning.COARSE:
        raise ConfigurationError(
            f"system {system.name!r}: compressor/bucket_bytes require coarse "
            f"partitioning; fine-grained KV pairs fix the wire granularity")
    if not config.is_identity and system.comm not in _COMPRESSIBLE_MODES:
        raise ConfigurationError(
            f"system {system.name!r}: comm mode {system.comm.value!r} has no "
            f"dense-gradient path for compressor {system.compressor!r} "
            f"(supported modes: "
            f"{', '.join(m.value for m in _COMPRESSIBLE_MODES)})")
    if system.bucket_bytes is not None and system.bucket_bytes < 1:
        raise ConfigurationError(
            f"bucket_bytes must be >= 1, got {system.bucket_bytes}")
    return None if config.is_identity else config


class IterationSimulator:
    """Simulates one BSP iteration of one system on one cluster."""

    def __init__(self, workload: IterationWorkload, cluster: ClusterConfig,
                 system: SystemConfig):
        self.workload = workload
        self.cluster_config = cluster
        self.system = system
        self.env = Environment()
        self.cluster = ClusterModel(self.env, cluster)
        self.num_workers = cluster.num_workers
        self.num_servers = cluster.num_servers
        self.server_nodes = self.cluster.server_ids
        self.compression_config = validate_compression(system)
        topology = NetworkTopology.from_cluster(cluster)
        schemes: Dict[str, CommScheme] = decide_schemes(
            workload, system.comm, self.num_workers, self.num_servers,
            topology=None if topology.is_flat else topology)
        if system.bucket_bytes is not None:
            # Bucketed wire granularity: fuse consecutive same-scheme runs
            # of dense-gradient units (lazy import: bucketing imports this
            # module's workload types via repro.simulation.workload only,
            # but keep the dependency one-directional at import time).
            from repro.comm.bucketing import bucket_workload
            self.workload, schemes = bucket_workload(
                workload, schemes, system.bucket_bytes)
        self.schemes = schemes
        self.coarse_owner: Dict[str, int] = self._assign_coarse_owners()
        self._unit_state: Dict[str, _UnitSyncState] = {}
        self._backward_done: Dict[int, Event] = {}
        self._iteration_seconds: Optional[float] = None

    # -- scheme / placement decisions ---------------------------------------------
    def _assign_coarse_owners(self) -> Dict[str, int]:
        owners: Dict[str, int] = {}
        for index, unit in enumerate(self.workload.units):
            owners[unit.name] = self.server_nodes[index % len(self.server_nodes)]
        return owners

    # -- flow-plan interface --------------------------------------------------------
    # The per-scheme transfer patterns live in each backend's FlowPlan
    # (:mod:`repro.comm.backend`); plans drive the simulation through the
    # accessors below.
    def unit_state(self, unit: SyncUnit) -> "_UnitSyncState":
        """Shared synchronization state of one unit for this iteration."""
        return self._unit_state[unit.name]

    def backward_done(self, worker: int) -> Event:
        """Event fired when ``worker`` finishes its whole backward pass."""
        return self._backward_done[worker]

    # -- byte budgets ---------------------------------------------------------------
    def compression(self, scheme: CommScheme) -> float:
        """Payload shrink factor of a scheme's dense transfers."""
        return get_backend(scheme).compression

    def unit_compression(self, scheme: CommScheme
                         ) -> Optional[CompressionConfig]:
        """The active compressor for units of ``scheme`` (None if dense).

        The configured compressor applies only to backends with a dense
        gradient path (``compressible``); in a HYBRID workload the SFB
        units keep their factor payloads while the PS units compress.
        """
        config = self.compression_config
        if config is None or not get_backend(scheme).compressible:
            return None
        return config

    def coarse_push_bytes(self, unit: SyncUnit, scheme: CommScheme) -> float:
        """Bytes one worker pushes for a coarse unit (compressed if active)."""
        config = self.unit_compression(scheme)
        if config is not None:
            return float(unit_wire_bytes(config, unit.param_bytes,
                                         unit.fc_dims, unit.payload_parts))
        return unit.param_bytes / self.compression(scheme)

    def coarse_pull_bytes(self, unit: SyncUnit, scheme: CommScheme) -> float:
        """Bytes one worker pulls back for a coarse unit (always dense)."""
        return unit.param_bytes / self.compression(scheme)

    def ring_chunk_bytes(self, unit: SyncUnit, scheme: CommScheme) -> float:
        """Bytes of one ring step's chunk (1/P of the wire payload)."""
        config = self.unit_compression(scheme)
        if config is not None:
            payload = unit_wire_bytes(config, unit.param_bytes,
                                      unit.fc_dims, unit.payload_parts)
            return payload / self.num_workers
        return unit.chunk_bytes(self.num_workers)

    def compression_seconds(self, unit: SyncUnit, scheme: CommScheme) -> float:
        """GPU seconds the active compressor spends encoding one unit."""
        config = self.unit_compression(scheme)
        if config is None:
            return 0.0
        flops = unit_compression_flops(config, unit.fc_dims,
                                       unit.payload_parts)
        return self.cluster_config.gpu.compute_seconds(flops)

    def fine_push_bytes(self, unit: SyncUnit, scheme: CommScheme) -> float:
        """Bytes a worker sends towards the sharded KV store (remote shards only)."""
        remote_shards = self.num_servers - (1 if self.cluster_config.colocate_servers else 0)
        fraction = remote_shards / self.num_servers
        return unit.param_bytes * fraction / self.compression(scheme)

    def fine_server_bytes(self, unit: SyncUnit, scheme: CommScheme) -> float:
        """Bytes one server shard receives (and later re-sends) for this unit."""
        remote_workers = self.num_workers - (1 if self.cluster_config.colocate_servers else 0)
        return (unit.param_bytes * remote_workers / self.num_servers
                / self.compression(scheme))

    # -- simulation ------------------------------------------------------------------
    def run(self) -> SimulationResult:
        """Simulate the system and return per-iteration statistics.

        Under the default execution semantics (``staleness == 0`` and
        ``sync_period == 1``) this runs the single-iteration BSP simulation
        unchanged.  Relaxed policies (SSP, async, local SGD) instead
        simulate several consecutive rounds in one environment -- workers
        advance their own clocks, gated only by the policy's staleness
        bound -- and report amortized per-iteration figures.
        """
        if self._iteration_seconds is not None:
            raise SimulationError("IterationSimulator instances are single-use")
        if self.system.staleness == 0 and self.system.sync_period == 1:
            result = self._run_bsp()
        else:
            result = self._run_policy()
        # Crash/recovery events are modelled by their expected cost: the
        # Young--Daly checkpoint/rework factor scales the iteration time
        # (identical closed form in the fluid engine, so the two engines
        # agree on this axis by construction).  1.0 at the defaults.
        factor = fault_overhead_factor(
            self.system.mtbf_seconds,
            self.system.checkpoint_interval_seconds,
            self.system.checkpoint_cost_seconds)
        if factor != 1.0:
            self._iteration_seconds = result.iteration_seconds * factor
            result = replace(result,
                             iteration_seconds=self._iteration_seconds)
        return result

    def _compute_scale(self, worker: int, round_index: int = 0) -> float:
        """Straggler compute multiplier of one worker in one round.

        ``ceil(straggler_fraction * P)`` workers run ``straggler_factor``x
        slower; the slow set rotates with the round index so that over a
        multi-round (relaxed-policy) simulation every worker stalls the
        same share of rounds -- which is what lets SSP and async schedules
        mask stragglers that stall a BSP barrier every iteration.
        """
        fraction = self.system.straggler_fraction
        factor = self.system.straggler_factor
        if fraction <= 0.0 or factor == 1.0:
            return 1.0
        slow_count = math.ceil(fraction * self.num_workers)
        if (worker - round_index) % self.num_workers < slow_count:
            return factor
        return 1.0

    def _run_bsp(self) -> SimulationResult:
        """Simulate one globally synchronous (BSP) iteration."""
        for unit in self.workload.units:
            self._unit_state[unit.name] = _UnitSyncState(self.env, self.num_workers)
        for worker in range(self.num_workers):
            self._backward_done[worker] = self.env.event()

        worker_processes = [
            self.env.process(self._worker_process(worker))
            for worker in range(self.num_workers)
        ]
        # Server-side helpers, where the scheme's flow plan asks for them
        # (fine-grained PS-style gather/apply/scatter; coarse aggregation is
        # driven from the per-worker send processes).
        for unit in self.workload.units:
            scheme = self.schemes[unit.name]
            plan = get_backend(scheme).flow_plan
            if plan.needs_server_process(self, unit, scheme):
                self.env.process(plan.server_process(self, unit, scheme))

        self.env.run()
        for process in worker_processes:
            if process.ok is False:
                raise process.value
        iteration_seconds = max(process.value for process in worker_processes)
        self._iteration_seconds = iteration_seconds

        busy = [machine.gpu.busy_seconds for machine in
                (self.cluster.machine(w) for w in range(self.num_workers))]
        gpu_busy_fraction = (sum(busy) / len(busy)) / iteration_seconds if busy else 0.0
        traffic = [
            self.cluster.machine(node).nic.traffic.total_bytes
            for node in sorted(self.cluster.machines)
        ]
        return SimulationResult(
            model_name=self.workload.model_name,
            system_name=self.system.name,
            num_workers=self.num_workers,
            bandwidth_gbps=self.cluster_config.bandwidth_gbps,
            batch_size=self.workload.batch_size,
            iteration_seconds=iteration_seconds,
            single_node_seconds=self.workload.single_node_seconds,
            compute_seconds=self.workload.compute_seconds,
            gpu_busy_fraction=min(1.0, gpu_busy_fraction),
            per_node_traffic_bytes=traffic,
            scheme_by_unit={name: scheme.value for name, scheme in self.schemes.items()},
        )

    def _run_policy(self) -> SimulationResult:
        """Simulate a multi-round relaxed-consistency (SSP/async/local SGD) run.

        ``rounds`` consecutive training steps share one DES environment.
        Communication happens only on sync rounds (every ``sync_period``-th
        step); a worker entering step ``r`` waits -- unless fully async --
        until its sync of the latest sync round at or before ``r - 1 -
        staleness`` has completed, which is exactly the SSP bound: no
        worker computes on state more than ``staleness`` clocks behind the
        slowest sync it depends on.  Reported figures (iteration time,
        per-node traffic) are the makespan and byte totals amortized over
        the simulated rounds, so local SGD's wire volume scales as ``1/H``
        and SSP's pipelining of communication under later rounds' compute
        shows up as reduced per-iteration time.
        """
        staleness = self.system.staleness
        period = self.system.sync_period
        # Enough rounds to reach pipeline steady state.  The horizon is the
        # SAME for every relaxed policy (only the gate strength differs):
        # with per-policy horizons the warmup/drain rounds would amortize
        # differently and mask the staleness effect, breaking the expected
        # monotone throughput-vs-staleness ordering.  It must exceed the
        # deepest staleness bound swept, so bounded policies with a larger
        # ``s`` are gated on strictly fewer rounds.
        windows = (max(_POLICY_WINDOWS, staleness + 2)
                   if staleness is not None else _POLICY_WINDOWS)
        rounds = period * windows
        sync_rounds = [r for r in range(rounds) if (r + 1) % period == 0]
        views: Dict[int, _RoundView] = {}
        for r in sync_rounds:
            view = _RoundView(self, r)
            for unit in self.workload.units:
                view._round_unit_state[unit.name] = _UnitSyncState(
                    self.env, self.num_workers)
            for worker in range(self.num_workers):
                view._round_backward_done[worker] = self.env.event()
            views[r] = view
        self._sync_done = {
            (worker, r): self.env.countdown(self.workload.num_units)
            for worker in range(self.num_workers) for r in sync_rounds
        }

        worker_processes = [
            self.env.process(self._policy_worker_process(
                worker, rounds, sync_rounds, views))
            for worker in range(self.num_workers)
        ]
        for r in sync_rounds:
            for unit in self.workload.units:
                scheme = self.schemes[unit.name]
                plan = get_backend(scheme).flow_plan
                if plan.needs_server_process(self, unit, scheme):
                    self.env.process(plan.server_process(views[r], unit, scheme))

        self.env.run()
        for process in worker_processes:
            if process.ok is False:
                raise process.value
        makespan = max(process.value for process in worker_processes)
        iteration_seconds = makespan / rounds
        self._iteration_seconds = iteration_seconds

        busy = [machine.gpu.busy_seconds for machine in
                (self.cluster.machine(w) for w in range(self.num_workers))]
        gpu_busy_fraction = (sum(busy) / len(busy)) / makespan if busy else 0.0
        traffic = [
            self.cluster.machine(node).nic.traffic.total_bytes / rounds
            for node in sorted(self.cluster.machines)
        ]
        return SimulationResult(
            model_name=self.workload.model_name,
            system_name=self.system.name,
            num_workers=self.num_workers,
            bandwidth_gbps=self.cluster_config.bandwidth_gbps,
            batch_size=self.workload.batch_size,
            iteration_seconds=iteration_seconds,
            single_node_seconds=self.workload.single_node_seconds,
            compute_seconds=self.workload.compute_seconds,
            gpu_busy_fraction=min(1.0, gpu_busy_fraction),
            per_node_traffic_bytes=traffic,
            scheme_by_unit={name: scheme.value for name, scheme in self.schemes.items()},
        )

    # -- worker side --------------------------------------------------------------------
    def _worker_process(self, worker: int):
        machine = self.cluster.machine(worker)
        gpu = machine.gpu
        start = self.env.now
        scale = self._compute_scale(worker)
        # One countdown barrier joins every unit's sync process (a failing
        # sync fails the barrier, and with it this worker).
        sync_barrier = self.env.countdown(self.workload.num_units)

        if not self.system.overlap_host_copy:
            staging_seconds = units.transfer_seconds(
                2 * self.workload.total_param_bytes,
                self.system.host_copy_bandwidth_bps,
            )
            yield from gpu.compute(staging_seconds * scale)

        yield from gpu.compute(self.workload.forward_seconds * scale)

        pending_sequential = []
        for unit in reversed(self.workload.units):
            yield from gpu.compute(unit.backward_seconds * scale)
            if self.system.schedule is ScheduleMode.WFBP:
                sync_barrier.arrive_on(
                    self.env.process(self._unit_sync(worker, unit)))
            else:
                pending_sequential.append(unit)
        if self.workload.tail_backward_seconds > 0:
            yield from gpu.compute(self.workload.tail_backward_seconds * scale)
        self._backward_done[worker].succeed()

        for unit in pending_sequential:
            sync_barrier.arrive_on(
                self.env.process(self._unit_sync(worker, unit)))

        if self.num_workers > 1:
            yield sync_barrier
        return self.env.now - start

    def _policy_worker_process(self, worker: int, rounds: int,
                               sync_rounds: List[int],
                               views: Dict[int, "_RoundView"]):
        machine = self.cluster.machine(worker)
        gpu = machine.gpu
        start = self.env.now
        staleness = self.system.staleness
        for r in range(rounds):
            # SSP staleness gate: before computing round r, the sync of the
            # latest sync round at or before r - 1 - s must have landed.
            # Fully asynchronous workers (staleness None) never wait.
            if self.num_workers > 1 and staleness is not None:
                horizon = r - 1 - staleness
                gate = None
                for g in reversed(sync_rounds):
                    if g <= horizon:
                        gate = g
                        break
                if gate is not None:
                    yield self._sync_done[(worker, gate)]

            scale = self._compute_scale(worker, round_index=r)
            if not self.system.overlap_host_copy:
                staging_seconds = units.transfer_seconds(
                    2 * self.workload.total_param_bytes,
                    self.system.host_copy_bandwidth_bps,
                )
                yield from gpu.compute(staging_seconds * scale)
            yield from gpu.compute(self.workload.forward_seconds * scale)

            is_sync = (r + 1) % self.system.sync_period == 0
            view = views.get(r)
            sync_barrier = self._sync_done[(worker, r)] if is_sync else None
            pending_sequential = []
            for unit in reversed(self.workload.units):
                yield from gpu.compute(unit.backward_seconds * scale)
                if not is_sync:
                    continue
                if self.system.schedule is ScheduleMode.WFBP:
                    sync_barrier.arrive_on(self.env.process(
                        self._unit_sync(worker, unit, view=view)))
                else:
                    pending_sequential.append(unit)
            if self.workload.tail_backward_seconds > 0:
                yield from gpu.compute(self.workload.tail_backward_seconds * scale)
            if is_sync:
                view._round_backward_done[worker].succeed()
                for unit in pending_sequential:
                    sync_barrier.arrive_on(self.env.process(
                        self._unit_sync(worker, unit, view=view)))
        # Drain: the makespan must cover the final sync round's traffic,
        # otherwise relaxed policies would report communication as free.
        if self.num_workers > 1 and sync_rounds:
            yield self._sync_done[(worker, sync_rounds[-1])]
        return self.env.now - start

    def _unit_sync(self, worker: int, unit: SyncUnit,
                   view: Optional["_RoundView"] = None):
        """Synchronize one unit at one worker under its assigned scheme."""
        if self.num_workers == 1:
            return
        if self.cluster_config.gpus_per_node > 1:
            # Local multi-GPU reduction onto the leader GPU over PCIe before
            # anything touches the network (Section 5.1, multi-GPU setting).
            local_bytes = unit.param_bytes * (self.cluster_config.gpus_per_node - 1)
            yield self.env.timeout(units.transfer_seconds(
                local_bytes, self.cluster_config.gpu.pcie_bandwidth_bps))
        scheme = self.schemes[unit.name]
        encode_seconds = self.compression_seconds(unit, scheme)
        if encode_seconds > 0.0:
            # The compressor's encode pass delays the unit's send; modelled
            # as a plain delay (not GPU occupancy) because production
            # stacks run it on side streams/CPU without stalling backprop.
            yield self.env.timeout(encode_seconds)
        plan = get_backend(scheme).flow_plan
        yield from plan.worker_sync(self if view is None else view,
                                    worker, unit, scheme)


def simulate_system(model: ModelSpec, system: SystemConfig, cluster: ClusterConfig,
                    batch_size: Optional[int] = None,
                    workload: Optional[IterationWorkload] = None,
                    engine: Optional[str] = None) -> SimulationResult:
    """Simulate one iteration of ``system`` training ``model`` on ``cluster``.

    ``engine`` selects the evaluation strategy: ``"des"`` (the event-driven
    simulator, the default), ``"fluid"`` (the closed-form analytic engine
    of :mod:`repro.simulation.fluid`), or ``"auto"`` (fluid at or above
    ``fluid.FLUID_NODE_THRESHOLD`` workers, DES below).  ``None`` defers to
    the session default (:func:`repro.simulation.fluid.use_engine`).

    Raises:
        ConfigurationError: on an unrecognised engine name.
    """
    # Imported lazily: fluid imports this module for decide_schemes and
    # the result type.
    from repro.simulation import fluid as fluid_mod

    resolved = fluid_mod.resolve_engine(engine, cluster.num_workers)
    workload = workload or build_workload(model, batch_size=batch_size,
                                          gpu=cluster.gpu)
    if resolved == "fluid":
        return fluid_mod.FluidSimulator(workload, cluster, system).run()
    simulator = IterationSimulator(workload, cluster, system)
    return simulator.run()
