"""Fluid-mode analytic simulator: closed-form iteration times, no event loop.

The discrete-event simulator in :mod:`repro.simulation.throughput` walks one
event graph per (model, system, bandwidth, nodes, oversubscription) point,
which keeps a 10k-node sweep in minutes territory.  This module computes the
same per-iteration quantity by *replaying the DES booking arithmetic
directly*: every flow primitive of :mod:`repro.cluster.machine` collapses to
busy-tail bookkeeping (PR 3's tail-clock channels), so the iteration time is
a deterministic composition of ``max``/``+`` over per-NIC and per-rack-wire
busy intervals -- pure arithmetic over the :class:`IterationWorkload` unit
list, anchored at each unit's backward-done time (WFBP) exactly like the
event-driven model.

Two fidelity tiers share one phase structure:

* **detail** (``num_workers`` <= :data:`DETAIL_NODE_MAX`): per-node tail
  clocks, with single-source fans and SFB broadcast convoys chained copy by
  copy through a time-ordered phase heap so concurrent units interleave on
  shared channels in DES request order.  On flat topologies this reproduces
  the DES to float precision; under rack oversubscription the channels'
  FIFO/head-of-line coupling is approximated by work-conserving fluid
  shares (see PERFORMANCE.md for the measured envelope).
* **aggregate** (above :data:`DETAIL_NODE_MAX`): node-symmetric class
  clocks and per-rack wire loads, O(units x racks) per point and entirely
  numpy-vectorizable, which is what makes interactive 1k-10k-node what-if
  sweeps possible.  :func:`sweep_axis` evaluates a whole bandwidth axis in
  one pass by carrying every clock as a vector over the axis, warm-starting
  from cached per-unit byte terms (:func:`repro.comm.backend.fluid_terms`).

Engine selection is shared with the figure/sweep layers through
:func:`resolve_engine`: ``"des"`` (default, byte-identical reports),
``"fluid"``, or ``"auto"`` -- fluid at or above
:data:`FLUID_NODE_THRESHOLD` workers, the exact DES below it, which is also
where the fluid approximation under oversubscription is weakest.
"""

from __future__ import annotations

import heapq
import math
from contextlib import contextmanager
from typing import Callable, Dict, Iterator, List, Optional, Sequence, Tuple

import numpy as np

from repro import units
from repro.comm.backend import fluid_terms, get_backend
from repro.comm.wire import unit_compression_flops, unit_wire_bytes
from repro.config import ClusterConfig
from repro.core.cost_model import CommScheme, NetworkTopology
from repro.core.faults import fault_overhead_factor, straggler_excess_seconds
from repro.core.wfbp import ScheduleMode
from repro.engines.base import Partitioning, SystemConfig
from repro.exceptions import ConfigurationError
from repro.nn.spec import ModelSpec
from repro.simulation.workload import IterationWorkload, SyncUnit, build_workload

__all__ = [
    "ENGINES",
    "FLUID_NODE_THRESHOLD",
    "DETAIL_NODE_MAX",
    "FluidSimulator",
    "resolve_engine",
    "session_engine",
    "simulate_fluid",
    "sweep_axis",
    "use_engine",
]

#: Recognised values of the ``engine`` parameter across the public API.
ENGINES: Tuple[str, ...] = ("des", "fluid", "auto")

#: ``engine="auto"`` switches from the exact DES to the fluid engine at
#: this many workers: below it the DES is fast and the fluid approximation
#: of FIFO rack contention is at its weakest; above it the DES walk is the
#: bottleneck and the fluid tiers take over.
FLUID_NODE_THRESHOLD: int = 64

#: Largest cluster the per-node detail tier replays (the SFB convoy replay
#: is O(N^2) copies per unit); beyond it the aggregate tier's symmetric
#: class clocks are used.
DETAIL_NODE_MAX: int = 128

_SESSION_ENGINE: str = "des"


def session_engine() -> str:
    """The engine used when call sites pass ``engine=None``."""
    return _SESSION_ENGINE


@contextmanager
def use_engine(engine: str) -> Iterator[None]:
    """Temporarily change the session default engine (runner ``--engine``)."""
    global _SESSION_ENGINE
    if engine not in ENGINES:
        raise ConfigurationError(
            f"unknown engine {engine!r}; expected one of {ENGINES}")
    previous = _SESSION_ENGINE
    _SESSION_ENGINE = engine
    try:
        yield
    finally:
        _SESSION_ENGINE = previous


def resolve_engine(engine: Optional[str], num_workers: int) -> str:
    """Resolve an ``engine`` argument to ``"des"`` or ``"fluid"``.

    ``None`` defers to the session default (``"des"`` unless a
    :func:`use_engine` context is active); ``"auto"`` picks fluid at or
    above :data:`FLUID_NODE_THRESHOLD` workers and the DES below it.

    Raises:
        ConfigurationError: on any unrecognised engine name.
    """
    engine = session_engine() if engine is None else engine
    if engine not in ENGINES:
        raise ConfigurationError(
            f"unknown engine {engine!r}; expected one of {ENGINES}")
    if engine == "auto":
        return "fluid" if num_workers >= FLUID_NODE_THRESHOLD else "des"
    return engine


class FluidSimulator:
    """Closed-form replay of one BSP training iteration.

    Mirrors :class:`~repro.simulation.throughput.IterationSimulator`'s
    contract (same workload/cluster/system inputs, same
    :class:`~repro.simulation.throughput.SimulationResult` output) without
    instantiating an event loop.

    Args:
        workload: per-layer compute/communication workload.
        cluster: cluster shape; ``racks``/``oversubscription`` select the
            topology-aware path exactly as in the DES.
        system: system descriptor (schedule, partitioning, comm mode).
        mode: ``"auto"`` (detail up to :data:`DETAIL_NODE_MAX`, aggregate
            beyond), or force ``"detail"``/``"aggregate"`` -- the latter is
            how the two tiers are cross-validated against each other.
        background_jobs: number of *additional* identical jobs contending
            for the same rack uplinks (multi-job what-if mode): every rack
            wire hold is stretched by ``1 + background_jobs`` -- symmetric
            fluid sharing of the uplink aggregate -- while NIC-level terms
            stay per-job (jobs run on disjoint nodes).
    """

    def __init__(self, workload: IterationWorkload, cluster: ClusterConfig,
                 system: SystemConfig, mode: str = "auto",
                 background_jobs: int = 0):
        if mode not in ("auto", "detail", "aggregate"):
            raise ConfigurationError(
                f"unknown fluid mode {mode!r}; "
                "expected 'auto', 'detail' or 'aggregate'")
        # Local import: throughput imports this module lazily for engine
        # dispatch, so the reverse import must happen at call time too.
        from repro.simulation.throughput import (
            decide_schemes,
            validate_compression,
        )

        self.workload = workload
        self.cluster_config = cluster
        self.system = system
        self.compression_config = validate_compression(system)
        self.num_workers = cluster.num_workers
        self.num_servers = cluster.num_servers
        self.lam = cluster.latency_seconds
        self.topo = not cluster.is_flat_topology
        self.jobs_factor = 1 + max(0, int(background_jobs))
        if self.topo:
            # Rack uplink aggregate = node_bw * members / oversubscription;
            # kept as a ratio so axis sweeps that swap bandwidth_bps see the
            # uplink scale with it (rack_bw is a property).
            members = min(cluster.nodes_per_rack, self.num_workers)
            self._rack_scale = members / cluster.oversubscription
            self.nracks = cluster.racks
        else:
            self._rack_scale = float("inf")
            self.nracks = 1
        topology = NetworkTopology.from_cluster(cluster)
        self.schemes = decide_schemes(
            workload, system.comm, self.num_workers, self.num_servers,
            topology=None if topology.is_flat else topology)
        if system.bucket_bytes is not None:
            from repro.comm.bucketing import bucket_workload
            self.workload, self.schemes = bucket_workload(
                workload, self.schemes, system.bucket_bytes)
        if cluster.colocate_servers:
            self.server_nodes = [s % self.num_workers
                                 for s in range(self.num_servers)]
        else:
            self.server_nodes = list(range(
                self.num_workers, self.num_workers + self.num_servers))
        detail = self.num_workers <= DETAIL_NODE_MAX
        self.detail = detail if mode == "auto" else (mode == "detail")
        self.bandwidth_bps = cluster.effective_bandwidth_bps

    # -- shared arithmetic ---------------------------------------------------
    @property
    def rack_bw(self):
        """Aggregate rack-uplink goodput at the current (axis) bandwidth."""
        if not self.topo:
            return float("inf")
        return self.bandwidth_bps * self._rack_scale

    def _tn(self, nbytes):
        """NIC-rate transfer time of one flow (matches the DES's tn)."""
        return units.bytes_to_bits(nbytes) / self.bandwidth_bps + self.lam

    def _tfs(self, nbytes):
        """Cross-rack flow service time: the slower of NIC and rack wire."""
        if not self.topo:
            return self._tn(nbytes)
        bw = np.minimum(self.bandwidth_bps, self.rack_bw)
        return units.bytes_to_bits(nbytes) / bw + self.lam

    def _wire(self, nbytes):
        """Rack-switch wire hold; multi-job contention stretches it."""
        return (units.bytes_to_bits(nbytes) / self.rack_bw) * self.jobs_factor

    def _rack_of(self, node: int) -> int:
        return self.cluster_config.rack_of(node) if self.topo else 0

    def _rack_members(self, rack: int) -> int:
        first = rack * self.cluster_config.nodes_per_rack
        return max(0, min(self.cluster_config.nodes_per_rack,
                          self.num_workers - first))

    def _cross_fraction(self, node: int) -> float:
        if not self.topo or self.num_workers <= 1:
            return 0.0
        members = self._rack_members(self._rack_of(node))
        return (self.num_workers - members) / (self.num_workers - 1)

    def _compression(self, scheme: CommScheme) -> float:
        return get_backend(scheme).compression

    def _unit_compression(self, scheme: CommScheme):
        """The active compressor config for units of ``scheme`` (or None)."""
        config = self.compression_config
        if config is None or not get_backend(scheme).compressible:
            return None
        return config

    def _compression_seconds(self, unit: SyncUnit,
                             scheme: CommScheme) -> float:
        """Modelled encode time delaying one unit's sync readiness."""
        config = self._unit_compression(scheme)
        if config is None:
            return 0.0
        flops = unit_compression_flops(config, unit.fc_dims,
                                       unit.payload_parts)
        return self.cluster_config.gpu.compute_seconds(flops)

    # -- result assembly -----------------------------------------------------
    def run(self):
        """Compute the iteration and wrap it like the DES does."""
        from repro.simulation.throughput import SimulationResult

        iteration_seconds = float(self.iteration_seconds())
        traffic = self._per_node_traffic()
        return SimulationResult(
            model_name=self.workload.model_name,
            system_name=self.system.name,
            num_workers=self.num_workers,
            bandwidth_gbps=self.cluster_config.bandwidth_gbps,
            batch_size=self.workload.batch_size,
            iteration_seconds=iteration_seconds,
            single_node_seconds=self.workload.single_node_seconds,
            compute_seconds=self.workload.compute_seconds,
            gpu_busy_fraction=min(
                1.0, self.workload.compute_seconds / iteration_seconds),
            per_node_traffic_bytes=traffic,
            scheme_by_unit={name: scheme.value
                            for name, scheme in self.schemes.items()},
        )

    def _per_node_traffic(self) -> List[float]:
        """Analytic sent+received bytes per node (Figure 10 accounting)."""
        n, s = self.num_workers, self.num_servers
        if n <= 1:
            return [0.0] * n
        totals = [0.0] * n
        batch = self.workload.batch_size
        for idx, unit in enumerate(self.workload.units):
            scheme = self.schemes[unit.name]
            terms = fluid_terms(scheme, unit, batch, n, s,
                                fine=self.system.partitioning is Partitioning.FINE,
                                colocated=self.cluster_config.colocate_servers,
                                compression=self.compression_config)
            owner = self.server_nodes[idx % len(self.server_nodes)]
            for node in range(n):
                totals[node] += terms.symmetric_bytes
            totals[owner] += terms.owner_bytes
        if self.system.sync_period > 1:
            # Local SGD syncs every H-th round: per-iteration wire volume
            # amortizes to 1/H of the BSP figure.
            totals = [t / self.system.sync_period for t in totals]
        return totals

    def iteration_seconds(self, bandwidth_bps=None):
        """Length of one BSP iteration; the core closed-form evaluation.

        ``bandwidth_bps`` may be a numpy array (an entire sweep axis): every
        busy clock is then carried as a vector over the axis and the result
        has the same shape.  Axis evaluation requires the aggregate tier
        (per-copy chaining orders events per axis element).
        """
        if bandwidth_bps is not None:
            self.bandwidth_bps = bandwidth_bps
            if np.ndim(bandwidth_bps) > 0 and self.detail:
                raise ConfigurationError(
                    "vectorized axis evaluation requires the aggregate tier")
        w = self.workload
        compute_end = (w.forward_seconds
                       + sum(u.backward_seconds for u in w.units)
                       + w.tail_backward_seconds)
        if self.num_workers <= 1:
            return self._apply_faults(compute_end, compute_end)
        self._compute_end = compute_end
        self._events: List[Tuple[float, int, Callable]] = []
        self._seq = 0
        self._completions: List = []
        seq_mode = self.system.schedule is not ScheduleMode.WFBP
        self._init_clocks()
        t = w.forward_seconds
        order = list(reversed(w.units))
        num_units = len(w.units)
        for idx_rev, unit in enumerate(order):
            t += unit.backward_seconds
            ready = compute_end if seq_mode else t
            idx = num_units - 1 - idx_rev
            scheme = self.schemes[unit.name]
            encode = self._compression_seconds(unit, scheme)
            if encode > 0.0:
                # The compressor's encode pass delays the send, exactly
                # like the DES's pre-dispatch timeout.
                ready = ready + encode
            owner = self.server_nodes[idx % len(self.server_nodes)]
            self._at(ready, self._head_phase(unit, scheme, owner))
        while self._events:
            when, _seq, fn = heapq.heappop(self._events)
            fn(when)
        result = compute_end
        for completion in self._completions:
            result = np.maximum(result, completion)
        return self._apply_faults(self._apply_policy(result, compute_end),
                                  compute_end)

    def _apply_policy(self, total, compute):
        """Rescale one BSP iteration for the system's execution semantics.

        Under the defaults (``staleness == 0``, ``sync_period == 1``) the
        BSP figure passes through untouched (byte-identical sweeps).  For
        relaxed policies the transform works on the *exposed* (non-hidden)
        communication time per round:

        - local SGD amortizes the sync over ``sync_period`` rounds, so the
          exposed share shrinks by ``1/H``;
        - SSP hides the remaining exposure under up to ``staleness``
          subsequent compute rounds;
        - fully asynchronous execution (``staleness is None``) is the
          staleness limit: per-round time is the larger of compute and the
          NIC-serialized exposure.

        Every relaxed figure is floored at the exposed time itself -- the
        NIC must still serialize the sync bytes, however deep the
        pipeline -- which also makes throughput monotone in the staleness
        bound and continuous at ``s == 0``.
        """
        staleness = self.system.staleness
        period = self.system.sync_period
        if staleness == 0 and period == 1:
            return total
        exposed = (total - compute) / period
        if staleness is None:
            return np.maximum(compute, exposed)
        hidden = compute + np.maximum(0.0, exposed - staleness * compute)
        return np.maximum(hidden, exposed)

    def _apply_faults(self, total, compute):
        """Add the closed-form fault environment on top of one iteration.

        Under the defaults (no stragglers, no MTBF, no checkpointing) the
        figure passes through untouched -- byte-identical sweeps.
        Otherwise two effects stack:

        - the expected straggler excess per iteration
          (:func:`repro.core.faults.straggler_excess_seconds`): a barrier
          pays the slowest worker's full excess, async only the mean, and
          ssp(s) interpolates between them;
        - the checkpoint/restart expected-overhead factor
          (:func:`repro.core.faults.fault_overhead_factor`), evaluated at
          the configured interval or its Young--Daly optimum.
        """
        system = self.system
        if (system.straggler_fraction == 0.0
                and system.straggler_factor == 1.0
                and system.mtbf_seconds is None
                and system.checkpoint_interval_seconds is None
                and system.checkpoint_cost_seconds == 0.0):
            return total
        excess = straggler_excess_seconds(
            compute, system.straggler_fraction, system.straggler_factor,
            self.num_workers,
            staleness=(0 if system.staleness is None else system.staleness),
            is_async=system.staleness is None)
        factor = fault_overhead_factor(
            system.mtbf_seconds, system.checkpoint_interval_seconds,
            system.checkpoint_cost_seconds)
        return (total + excess) * factor

    # -- phase heap ----------------------------------------------------------
    # Phases are booked at their DES request times (push at the unit's
    # ready, pull at all_sent/aggregated, ...) so bookings from different
    # units land on the shared busy clocks in the same order the
    # event-driven simulator issues them.  With a vector axis, ordering
    # uses the first axis element; the booking arithmetic itself stays
    # exact per element (ordering is bandwidth-invariant for the unit
    # structures the workloads produce).
    def _at(self, when, fn: Callable) -> None:
        key = float(np.asarray(when).flat[0])
        heapq.heappush(self._events, (key, self._seq, _TimedPhase(when, fn)))
        self._seq += 1

    def _head_phase(self, unit: SyncUnit, scheme: CommScheme, owner: int):
        def fire(call):
            finish = self._completions.append
            if scheme is CommScheme.SFB:
                self._sync_sfb(unit, call, finish)
            elif scheme is CommScheme.RING:
                finish(self._sync_ring(unit, call))
            elif scheme is CommScheme.ADAM:
                sf = unit.sufficient_factor_bytes(self.workload.batch_size)
                self._sync_owner_fan(unit, call, owner, sf,
                                     unit.param_bytes, finish)
            elif scheme is CommScheme.HIERPS:
                self._sync_hierps(unit, call, owner, scheme, finish)
            elif self.system.partitioning is Partitioning.FINE:
                self._sync_ps_fine(unit, call, scheme, finish)
            else:
                dense = unit.param_bytes / self._compression(scheme)
                config = self._unit_compression(scheme)
                push = (unit_wire_bytes(config, unit.param_bytes,
                                        unit.fc_dims, unit.payload_parts)
                        if config is not None else dense)
                self._sync_owner_fan(unit, call, owner, push, dense, finish)
        return fire

    def _pull_call(self, all_sent):
        if self.system.overlap_pull:
            return all_sent
        return np.maximum(all_sent, self._compute_end)

    # -- clock state ---------------------------------------------------------
    def _init_clocks(self) -> None:
        if self.detail:
            self.up = [0.0] * self.num_workers
            self.down = [0.0] * self.num_workers
        else:
            # Node-symmetric class clocks: one up/down pair stands in for
            # the (statistically identical) worker NICs.
            zero = np.zeros_like(np.asarray(self.bandwidth_bps, dtype=float))
            self.up = [zero + 0.0]
            self.down = [zero + 0.0]
        zero = 0.0 if self.detail else np.zeros_like(
            np.asarray(self.bandwidth_bps, dtype=float))
        self.rku = [zero + 0.0 for _ in range(self.nracks)]
        self.rkd = [zero + 0.0 for _ in range(self.nracks)]
        self.ring_clock = zero + 0.0

    # ========================================================================
    # detail tier: per-node replay of the DES bookings
    # ========================================================================
    def _flow(self, src: int, dst: int, nbytes: float, call):
        """Point-to-point transfer between two nodes; returns its finish."""
        if src == dst or nbytes <= 0:
            return call
        if not self.topo or self._rack_of(src) == self._rack_of(dst):
            t = np.maximum(np.maximum(call, self.up[src]), self.down[dst])
            fin = t + self._tn(nbytes)
            self.up[src] = fin
            self.down[dst] = fin
            return fin
        rs, rd = self._rack_of(src), self._rack_of(dst)
        fs = self._tfs(nbytes)
        wr = self._wire(nbytes)
        # Source-side coupling: the DES acquires nic.up < rack.up <
        # rack.down < nic.down holding earlier channels while queueing at
        # later ones; the source NIC and the rack wires form the dominant
        # head-of-line chain, while the receiver downlink drains as an
        # independent work-conserving share.
        t = np.maximum(np.maximum(call, self.up[src]),
                       np.maximum(self.rku[rs], self.rkd[rd]))
        self.up[src] = t + fs
        self.rku[rs] = t + wr
        self.rkd[rd] = t + wr
        td = np.maximum(t, self.down[dst])
        self.down[dst] = td + fs
        return np.maximum(t + wr, td + fs)

    def _fabric_out(self, node: int, nbytes: float, call):
        """node -> fabric flow (fine-PS push against the KV store)."""
        cross = nbytes * self._cross_fraction(node)
        if cross <= 0.0:
            t = np.maximum(call, self.up[node])
            fin = t + self._tn(nbytes)
            self.up[node] = fin
            return fin
        rack = self._rack_of(node)
        t = np.maximum(np.maximum(call, self.up[node]), self.rku[rack])
        self.up[node] = t + self._tn(nbytes)
        self.rku[rack] = t + self._wire(cross)
        return t + np.maximum(self._tn(nbytes), self._wire(cross))

    def _fabric_in(self, node: int, nbytes: float, call):
        """fabric -> node flow (fine-PS pull)."""
        cross = nbytes * self._cross_fraction(node)
        if cross <= 0.0:
            t = np.maximum(call, self.down[node])
            fin = t + self._tn(nbytes)
            self.down[node] = fin
            return fin
        rack = self._rack_of(node)
        t = np.maximum(np.maximum(call, self.down[node]), self.rkd[rack])
        self.down[node] = t + self._tn(nbytes)
        self.rkd[rack] = t + self._wire(cross)
        return t + np.maximum(self._tn(nbytes), self._wire(cross))

    def _fabric_fan(self, nodes: Sequence[int], nbytes: float, call,
                    outbound: bool):
        """Independent (nic, rack-wire) bookings; returns the last finish."""
        nic = self.up if outbound else self.down
        rkc = self.rku if outbound else self.rkd
        fin = call
        for node in nodes:
            t = np.maximum(call, nic[node])
            nic[node] = t + self._tn(nbytes)
            fin = np.maximum(fin, nic[node])
            cross = nbytes * self._cross_fraction(node)
            if cross > 0.0:
                rack = self._rack_of(node)
                tr = np.maximum(call, rkc[rack])
                rkc[rack] = tr + self._wire(cross)
                fin = np.maximum(fin, rkc[rack])
        return fin

    def _chain_fan(self, src: int, dsts: Sequence[int], nbytes: float, call,
                   on_done: Callable, copy_done: Optional[Callable] = None):
        """Single-source fan with copies chained at the uplink's release.

        Each copy books its rack/receiver channels at the time the source
        NIC actually frees for it (its DES request time), so concurrent
        fans from different units interleave on shared channels instead of
        one fan's bookings ratcheting the busy tails past the other's.
        """
        if not dsts:
            on_done(call)
            return
        state = [call]

        def step(i: int):
            def fire(when):
                fin = self._flow(src, dsts[i], nbytes, when)
                state[0] = np.maximum(state[0], fin)
                if copy_done is not None:
                    copy_done(dsts[i], fin)
                if i + 1 < len(dsts):
                    self._at(np.maximum(when, self.up[src]), step(i + 1))
                else:
                    on_done(state[0])
            return fire

        self._at(call, step(0))

    # -- per-scheme replays (detail) -----------------------------------------
    def _sync_ps_fine(self, unit: SyncUnit, ready, scheme: CommScheme,
                      finish: Callable):
        if not self.detail:
            return self._agg_ps_fine(unit, ready, scheme, finish)
        c = self._compression(scheme)
        colocated = 1 if self.cluster_config.colocate_servers else 0
        push = unit.param_bytes * (self.num_servers - colocated) \
            / self.num_servers / c
        server = unit.param_bytes * (self.num_workers - colocated) \
            / self.num_servers / c
        all_sent = ready
        for worker in range(self.num_workers):
            all_sent = np.maximum(
                all_sent, self._fabric_out(worker, push, ready))
        gather = self._fabric_fan(self.server_nodes, server, ready,
                                  outbound=False)
        aggregated = np.maximum(all_sent, gather)

        def tail_phase(call):
            scatter = self._fabric_fan(self.server_nodes, server, call,
                                       outbound=True)
            pull = call
            for worker in range(self.num_workers):
                pull = np.maximum(pull, self._fabric_in(worker, push, call))
            finish(np.maximum(pull, scatter))

        self._at(self._pull_call(aggregated), tail_phase)

    def _sync_owner_fan(self, unit: SyncUnit, ready, owner: int,
                        push_bytes: float, pull_bytes: float,
                        finish: Callable):
        """Adam / coarse PS: everyone pushes to the owner, then pulls."""
        if not self.detail:
            return self._agg_owner_fan(unit, ready, owner, push_bytes,
                                       pull_bytes, finish)
        all_sent = ready
        for worker in range(self.num_workers):
            if worker != owner:
                all_sent = np.maximum(
                    all_sent, self._flow(worker, owner, push_bytes, ready))
        dsts = [w for w in range(self.num_workers) if w != owner]
        self._chain_fan(owner, dsts, pull_bytes, self._pull_call(all_sent),
                        finish)

    def _sync_sfb(self, unit: SyncUnit, ready, finish: Callable):
        """SFB all-to-all broadcast convoy, chained copy by copy."""
        if not self.detail:
            return self._agg_sfb(unit, ready, finish)
        sf = unit.sufficient_factor_bytes(self.workload.batch_size)
        tn = self._tn(sf)
        fs = self._tfs(sf)
        wr = self._wire(sf)
        n = self.num_workers
        pending = [n, ready]

        def sender_done(fin):
            pending[0] -= 1
            pending[1] = np.maximum(pending[1], fin)
            if pending[0] == 0:
                finish(pending[1])

        def step(s: int, peers: Sequence[int], i: int):
            def fire(when):
                if i == 0:
                    # batch uplink hold: queue behind the sender's prior
                    # holds (the DES broadcast claims the uplink once for
                    # the whole batch)
                    when = np.maximum(when, self.up[s])
                dst = peers[i]
                if self.topo and self._rack_of(s) != self._rack_of(dst):
                    rs, rd = self._rack_of(s), self._rack_of(dst)
                    tr = np.maximum(when,
                                    np.maximum(self.rku[rs], self.rkd[rd]))
                    self.rku[rs] = tr + wr
                    self.rkd[rd] = tr + wr
                    td = np.maximum(tr, self.down[dst])
                    self.down[dst] = td + fs
                    fin = np.maximum(tr + wr, td + fs)
                else:
                    t = np.maximum(when, self.down[dst])
                    fin = t + tn
                    self.down[dst] = fin
                if i + 1 < len(peers):
                    self._at(fin, step(s, peers, i + 1))
                else:
                    self.up[s] = fin  # batch uplink hold ends
                    sender_done(fin)
            return fire

        for s in range(n):
            peers = [p for p in range(n) if p != s]
            self._at(np.maximum(ready, self.up[s]), step(s, peers, 0))

    def _sync_ring(self, unit: SyncUnit, ready):
        """Chunked ring all-reduce: a full-cluster barrier per unit."""
        n = self.num_workers
        config = self._unit_compression(CommScheme.RING)
        if config is not None:
            chunk = unit_wire_bytes(config, unit.param_bytes, unit.fc_dims,
                                    unit.payload_parts) / n
        else:
            chunk = unit.chunk_bytes(n)
        step = self._tfs(chunk)
        start = np.maximum(ready, self.ring_clock)
        for clock in self.up:
            start = np.maximum(start, clock)
        for clock in self.down:
            start = np.maximum(start, clock)
        done = start + 2 * (n - 1) * step
        self.ring_clock = done
        for i in range(len(self.up)):
            self.up[i] = done
            self.down[i] = done
        if self.topo:
            for r in range(self.nracks):
                self.rku[r] = np.maximum(self.rku[r], done)
                self.rkd[r] = np.maximum(self.rkd[r], done)
        return done

    def _hier_racks(self) -> List[List[int]]:
        if self.topo:
            rack_size = self.cluster_config.nodes_per_rack
        else:
            from repro.comm.hierarchical import DEFAULT_RACK_SIZE
            rack_size = DEFAULT_RACK_SIZE
        count = math.ceil(self.num_workers / rack_size)
        return [list(range(r * rack_size,
                           min((r + 1) * rack_size, self.num_workers)))
                for r in range(count)]

    def _sync_hierps(self, unit: SyncUnit, ready, owner: int,
                     scheme: CommScheme, finish: Callable):
        """Rack-local aggregation, leader forward, root distribute."""
        if not self.detail:
            return self._agg_hierps(unit, ready, owner, scheme, finish)
        dense = unit.param_bytes / self._compression(scheme)
        racks = self._hier_racks()
        rack_done = []
        for members in racks:
            leader = members[0]
            done = ready
            for member in members[1:]:
                done = np.maximum(done,
                                  self._flow(member, leader, dense, ready))
            rack_done.append(done)
        pending = [len(racks), ready]

        def forward_phase(members: List[int]):
            def fire(call):
                fin = self._flow(members[0], owner, dense, call)
                pending[0] -= 1
                pending[1] = np.maximum(pending[1], fin)
                if pending[0] == 0:
                    self._at(self._pull_call(pending[1]), distribute_phase)
            return fire

        def distribute_phase(call):
            done = [call, len(racks)]

            def rack_finished(fin):
                done[0] = np.maximum(done[0], fin)
                done[1] -= 1
                if done[1] == 0:
                    finish(done[0])

            def bcast_phase(members: List[int]):
                def fire(when):
                    leader = members[0]
                    # the leader's uplink holds the batch; copies sequential
                    cur = np.maximum(when, self.up[leader])
                    for member in members[1:]:
                        start = np.maximum(cur, self.down[member])
                        cur = start + self._tn(dense)
                        self.down[member] = cur
                    self.up[leader] = np.maximum(self.up[leader], cur)
                    rack_finished(cur)
                return fire

            def pull_done(leader: int, fin):
                members = racks[leaders.index(leader)]
                if len(members) > 1:
                    self._at(fin, bcast_phase(members))
                else:
                    rack_finished(fin)

            leaders = [m[0] for m in racks]
            self._chain_fan(owner, leaders, dense, call,
                            on_done=lambda fin: None, copy_done=pull_done)

        for members, done in zip(racks, rack_done):
            self._at(done, forward_phase(members))

    # ========================================================================
    # aggregate tier: node-symmetric class clocks, O(units x racks)
    # ========================================================================
    # Conventions: self.up[0]/self.down[0] are the worker-class NIC clocks;
    # rack wires keep per-rack clocks (numpy-friendly).  Owners are
    # round-robin over the server nodes, so with units << workers (always
    # true at 1k+ nodes) every unit's owner NIC starts from the class
    # clock -- the same approximation the cross-tier tests quantify.
    def _rack_profile(self) -> List[Tuple[int, float]]:
        """(members, cross_fraction) of each rack."""
        out = []
        for rack in range(self.nracks):
            members = self._rack_members(rack)
            cross = ((self.num_workers - members) / (self.num_workers - 1)
                     if self.topo and self.num_workers > 1 else 0.0)
            out.append((members, cross))
        return out

    def _agg_ps_fine(self, unit: SyncUnit, ready, scheme: CommScheme,
                     finish: Callable):
        c = self._compression(scheme)
        colocated = 1 if self.cluster_config.colocate_servers else 0
        push = unit.param_bytes * (self.num_servers - colocated) \
            / self.num_servers / c
        server = unit.param_bytes * (self.num_workers - colocated) \
            / self.num_servers / c
        profile = self._rack_profile()

        def fabric(direction_nic: int, nbytes: float, call, outbound: bool):
            nic = self.up if outbound else self.down
            fin = nic[0] = np.maximum(call, nic[0]) + self._tn(nbytes)
            rkc = self.rku if outbound else self.rkd
            for rack, (members, cross) in enumerate(profile):
                if cross > 0.0 and members > 0:
                    rkc[rack] = (np.maximum(call, rkc[rack])
                                 + members * self._wire(nbytes * cross))
                    fin = np.maximum(fin, rkc[rack])
            return fin

        all_sent = fabric(0, push, ready, outbound=True)
        gather = fabric(0, server, ready, outbound=False)
        aggregated = np.maximum(all_sent, gather)

        def tail_phase(call):
            scatter = fabric(0, server, call, outbound=True)
            pull = fabric(0, push, call, outbound=False)
            finish(np.maximum(pull, scatter))

        self._at(self._pull_call(aggregated), tail_phase)

    def _agg_owner_fan(self, unit: SyncUnit, ready, owner: int,
                       push_bytes: float, pull_bytes: float,
                       finish: Callable):
        n = self.num_workers
        m_owner = self._rack_members(self._rack_of(owner)) if self.topo else n
        intra, cross = m_owner - 1, n - m_owner
        # Push: every worker sends once; the owner's downlink drains the
        # fan FIFO (intra at NIC rate, cross at the slower of NIC/wire).
        self.up[0] = np.maximum(ready, self.up[0]) + self._tn(push_bytes)
        drain = (np.maximum(ready, self.down[0])
                 + intra * self._tn(push_bytes)
                 + cross * self._tfs(push_bytes))
        all_sent = np.maximum(self.up[0], drain)
        if self.topo and cross:
            o_rack = self._rack_of(owner)
            per_src = self._wire(push_bytes)
            for rack, (members, _cf) in enumerate(self._rack_profile()):
                if rack == o_rack or members == 0:
                    continue
                self.rku[rack] = (np.maximum(ready, self.rku[rack])
                                  + members * per_src)
                all_sent = np.maximum(all_sent, self.rku[rack])
            self.rkd[o_rack] = (np.maximum(ready, self.rkd[o_rack])
                                + cross * self._wire(push_bytes))
            all_sent = np.maximum(all_sent, self.rkd[o_rack])

        def tail_phase(call):
            # Pull: the owner's uplink serializes the fan; every worker
            # receives one copy.
            fan = (np.maximum(call, self.up[0])
                   + intra * self._tn(pull_bytes)
                   + cross * self._tfs(pull_bytes))
            self.down[0] = np.maximum(call, self.down[0]) \
                + self._tn(pull_bytes)
            fin = np.maximum(fan, self.down[0])
            if self.topo and cross:
                o_rack = self._rack_of(owner)
                self.rku[o_rack] = (np.maximum(call, self.rku[o_rack])
                                    + cross * self._wire(pull_bytes))
                fin = np.maximum(fin, self.rku[o_rack])
                for rack, (members, _cf) in enumerate(self._rack_profile()):
                    if rack == o_rack or members == 0:
                        continue
                    self.rkd[rack] = (np.maximum(call, self.rkd[rack])
                                      + members * self._wire(pull_bytes))
                    fin = np.maximum(fin, self.rkd[rack])
            finish(fin)

        self._at(self._pull_call(all_sent), tail_phase)

    def _agg_sfb(self, unit: SyncUnit, ready, finish: Callable):
        sf = unit.sufficient_factor_bytes(self.workload.batch_size)
        n = self.num_workers
        slot = self._tn(sf)
        members = self._rack_members(0) if self.topo else n
        intra, cross = members - 1, n - members
        drain = intra * slot + cross * self._tfs(sf)
        # Symmetric convoy: every NIC sends N-1 and receives N-1 copies;
        # from an idle network the exact flat finish is (2N-3) slots
        # (pipeline fill of N-2 plus one receiver's full drain).
        start = np.maximum(ready, np.maximum(self.up[0], self.down[0]))
        fin = start + (n - 2) * slot + drain
        self.up[0] = np.maximum(ready, self.up[0]) + drain
        self.down[0] = np.maximum(ready, self.down[0]) + drain
        if self.topo and cross:
            # The broadcast convoys sweep the racks in sender order, so the
            # per-copy max-coupling of (source rack up, dest rack down)
            # ratchets every rack-wire clock to the global maximum: cross
            # copies serialize globally, not per rack pair.  Book the whole
            # unit's cross traffic on one lockstep clock.
            lock = np.maximum(ready, self.rku[0])
            for rack in range(self.nracks):
                lock = np.maximum(lock,
                                  np.maximum(self.rku[rack], self.rkd[rack]))
            lock = lock + n * cross * self._wire(sf)
            for rack in range(self.nracks):
                self.rku[rack] = lock
                self.rkd[rack] = lock
            fin = np.maximum(fin, lock + self._tfs(sf))
        finish(fin)

    def _agg_hierps(self, unit: SyncUnit, ready, owner: int,
                    scheme: CommScheme, finish: Callable):
        dense = unit.param_bytes / self._compression(scheme)
        racks = self._hier_racks()
        nracks = len(racks)
        members = len(racks[0])
        forward_t = self._tfs(dense) if self.topo else self._tn(dense)
        # Rack-local aggregation onto each leader's downlink.
        rack_done = (np.maximum(ready, self.down[0])
                     + (members - 1) * self._tn(dense))
        # Leaders forward to the root, serialized on the root's downlink.
        root_done = rack_done + max(0, nracks - 1) * forward_t
        if self.topo and nracks > 1:
            o_rack = self._rack_of(owner)
            for rack in range(self.nracks):
                if rack == o_rack:
                    self.rkd[rack] = (np.maximum(rack_done, self.rkd[rack])
                                      + (nracks - 1) * self._wire(dense))
                    root_done = np.maximum(root_done, self.rkd[rack])
                else:
                    self.rku[rack] = (np.maximum(rack_done, self.rku[rack])
                                      + self._wire(dense))
                    root_done = np.maximum(root_done, self.rku[rack])
        self.down[0] = root_done

        def distribute_phase(call):
            # Root fans to the leaders (serialized on its uplink), each
            # leader then broadcasts inside its rack.
            dist = np.maximum(call, self.up[0]) \
                + max(0, nracks - 1) * forward_t
            fin = dist + (members - 1) * self._tn(dense)
            self.up[0] = fin
            self.down[0] = np.maximum(self.down[0], fin)
            if self.topo and nracks > 1:
                o_rack = self._rack_of(owner)
                for rack in range(self.nracks):
                    if rack == o_rack:
                        self.rku[rack] = (np.maximum(call, self.rku[rack])
                                          + (nracks - 1) * self._wire(dense))
                        fin = np.maximum(fin, self.rku[rack])
                    else:
                        self.rkd[rack] = (np.maximum(call, self.rkd[rack])
                                          + self._wire(dense))
                        fin = np.maximum(fin, self.rkd[rack])
            finish(fin)

        self._at(self._pull_call(root_done), distribute_phase)


class _TimedPhase:
    """Phase callback carrying its (possibly vector) firing time.

    The heap orders by a scalar key; the stored time preserves the full
    axis vector so vectorized bookings stay exact per element.
    """

    __slots__ = ("when", "fn")

    def __init__(self, when, fn: Callable):
        self.when = when
        self.fn = fn

    def __call__(self, _key: float) -> None:
        self.fn(self.when)


def simulate_fluid(model: ModelSpec, system: SystemConfig,
                   cluster: ClusterConfig,
                   batch_size: Optional[int] = None,
                   workload: Optional[IterationWorkload] = None,
                   background_jobs: int = 0):
    """Fluid-engine counterpart of :func:`repro.simulation.simulate_system`."""
    workload = workload or build_workload(model, batch_size=batch_size,
                                          gpu=cluster.gpu)
    return FluidSimulator(workload, cluster, system,
                          background_jobs=background_jobs).run()


# -- vectorized axis sweeps --------------------------------------------------
_AXIS_CACHE: Dict[Tuple, FluidSimulator] = {}


def sweep_axis(model: ModelSpec, system: SystemConfig,
               cluster: ClusterConfig,
               bandwidths_gbps: Sequence[float],
               batch_size: Optional[int] = None,
               workload: Optional[IterationWorkload] = None,
               background_jobs: int = 0) -> np.ndarray:
    """Iteration seconds across a whole bandwidth axis in one fluid pass.

    The entire axis is evaluated as numpy array ops over the precomputed
    per-unit byte terms: every busy clock is a vector over the axis, so
    adjacent sweep points share all structure derivation.  Repeat calls
    with the same (workload, system, cluster shape) reuse the simulator's
    warm state -- scheme decisions, rack profile and byte terms survive a
    change of axis, so incremental what-if re-evaluation only pays the
    numpy arithmetic.

    Returns:
        ``np.ndarray`` of iteration seconds, same length as the axis.
    """
    workload = workload or build_workload(model, batch_size=batch_size,
                                          gpu=cluster.gpu)
    # The key must include every topology field the evaluation depends on
    # (racks, oversubscription) alongside the cluster shape -- the same
    # contract as throughput._SCHEME_CACHE -- or a warm cache would replay
    # a flat cluster's state for an oversubscribed one.  The wire axes
    # (compressor, bucket size) change the byte terms and the unit
    # structure, so they are key fields too: without them a warm sweep
    # would serve one compressor's results for another.
    key = (workload, system.name, system.comm, cluster.num_workers,
           cluster.num_servers, cluster.racks, cluster.oversubscription,
           int(background_jobs), system.staleness, system.sync_period,
           system.straggler_fraction, system.straggler_factor,
           system.mtbf_seconds, system.checkpoint_interval_seconds,
           system.checkpoint_cost_seconds,
           system.compressor, system.bucket_bytes)
    simulator = _AXIS_CACHE.get(key)
    if simulator is None:
        simulator = FluidSimulator(workload, cluster, system,
                                   mode="aggregate",
                                   background_jobs=background_jobs)
        _AXIS_CACHE[key] = simulator
    axis = np.asarray([
        cluster.with_bandwidth(bw).effective_bandwidth_bps
        for bw in bandwidths_gbps
    ], dtype=float)
    return np.asarray(simulator.iteration_seconds(bandwidth_bps=axis))
