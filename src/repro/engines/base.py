"""System behaviour descriptors consumed by the throughput simulator."""

from __future__ import annotations

import enum
from dataclasses import dataclass, replace
from typing import Optional

from repro import units
from repro.core.wfbp import ScheduleMode


class Partitioning(str, enum.Enum):
    """How parameters are spread over PS shards."""

    #: Poseidon's KV store: fixed-size (2 MB) pairs balanced across shards.
    FINE = "fine"
    #: Stock distributed TensorFlow: one whole tensor per shard.
    COARSE = "coarse"


class CommMode(str, enum.Enum):
    """Which synchronization scheme(s) a system uses."""

    #: Dense gradients through the parameter server for every layer.
    PS = "ps"
    #: Poseidon's HybComm: per-layer choice between PS and SFB (Algorithm 1).
    HYBRID = "hybrid"
    #: Sufficient factors pushed to the owning shard, full matrices pulled
    #: back (Project Adam, Section 5.3).
    ADAM = "adam"
    #: 1-bit quantized gradients through the PS (CNTK baseline).
    ONEBIT = "onebit"
    #: Force SFB for every factorisable layer (ablation).
    SFB_ONLY = "sfb"
    #: Chunked bandwidth-optimal ring all-reduce (server-free).
    RING = "ring"
    #: Rack-local aggregation feeding a root PS shard.
    HIERPS = "hierps"


@dataclass(frozen=True)
class SystemConfig:
    """Complete description of one evaluated system.

    Attributes:
        name: label used in figures and result tables.
        engine: ``"caffe"`` or ``"tensorflow"`` (cosmetic; behaviour is fully
            captured by the remaining fields).
        schedule: WFBP (overlap communication with backprop) or sequential.
        partitioning: fine-grained KV pairs or coarse per-tensor placement.
        comm: communication scheme selection.
        overlap_pull: whether receiving updated parameters overlaps with the
            backward pass (false for stock TF, which fetches at the start of
            the next iteration, and for the vanilla Caffe+PS baseline).
        overlap_host_copy: whether DRAM<->GPU staging copies are overlapped
            with computation (false only for the vanilla Caffe+PS baseline,
            which is why its single-node throughput is below plain Caffe).
        host_copy_bandwidth_bps: effective bandwidth of non-overlapped
            staging copies.
        staleness: execution-semantics axis: SSP staleness bound ``s``
            (0 = BSP, the default for every paper configuration); ``None``
            means fully asynchronous (no bound at all).
        sync_period: local-SGD period ``H`` -- sync traffic every H-th
            iteration (1 = per-iteration sync, the default).
        straggler_fraction: fraction of workers running slow each
            iteration (quantized to whole workers: ``ceil(f*P)/P``); 0
            (the default) models a healthy cluster.
        straggler_factor: compute slowdown multiplier of a straggling
            worker (1.0 = no slowdown).
        mtbf_seconds: cluster mean-time-between-failures driving the
            checkpoint/restart overhead model; ``None`` (default) means
            failures never happen.
        checkpoint_interval_seconds: seconds between checkpoints; ``None``
            picks the Young--Daly optimum ``sqrt(2*C*M)`` when an MTBF is
            set.
        checkpoint_cost_seconds: seconds one checkpoint costs (``C``).
        compressor: gradient compressor spec for the dense-gradient
            backends (``"none"``, ``"onebit"``, ``"topk(k)"``,
            ``"powersgd(r)"``); parsed by
            :meth:`repro.comm.wire.CompressionConfig.parse`.
        bucket_bytes: wire granularity -- fuse consecutive same-scheme
            dense-gradient units into buckets of this many bytes
            (:func:`repro.comm.bucketing.bucket_workload`); ``None`` (the
            default) keeps per-layer messages.
    """

    name: str
    engine: str
    schedule: ScheduleMode
    partitioning: Partitioning
    comm: CommMode
    overlap_pull: bool = True
    overlap_host_copy: bool = True
    host_copy_bandwidth_bps: float = 16 * units.GBIT
    staleness: Optional[int] = 0
    sync_period: int = 1
    straggler_fraction: float = 0.0
    straggler_factor: float = 1.0
    mtbf_seconds: Optional[float] = None
    checkpoint_interval_seconds: Optional[float] = None
    checkpoint_cost_seconds: float = 0.0
    compressor: str = "none"
    bucket_bytes: Optional[int] = None

    def renamed(self, name: str) -> "SystemConfig":
        """Copy of this system under a different display name."""
        return replace(self, name=name)

    def with_comm(self, comm: CommMode) -> "SystemConfig":
        """Copy of this system using a different communication scheme."""
        return replace(self, comm=comm)

    def with_schedule(self, schedule: ScheduleMode) -> "SystemConfig":
        """Copy of this system using a different synchronization schedule."""
        return replace(self, schedule=schedule)

    def with_partitioning(self, partitioning: Partitioning) -> "SystemConfig":
        """Copy of this system using a different PS partitioning."""
        return replace(self, partitioning=partitioning)

    def with_policy(self, policy) -> "SystemConfig":
        """Copy of this system under a :class:`repro.core.policy.SyncPolicy`.

        Maps the policy onto the simulator's two execution-semantics axes:
        ``bsp`` -> (0, 1), ``ssp(s)`` -> (s, 1), ``async`` -> (None, 1) and
        ``local_sgd(H)`` -> (0, H).  Accepts a policy object or any spec
        string :meth:`SyncPolicy.parse` understands.
        """
        from repro.core.policy import SyncPolicy

        parsed = SyncPolicy.parse(policy)
        return replace(self, staleness=parsed.bound,
                       sync_period=parsed.sync_period)

    def with_faults(self, straggler_fraction: float = 0.0,
                    straggler_factor: float = 1.0,
                    mtbf_seconds: Optional[float] = None,
                    checkpoint_interval_seconds: Optional[float] = None,
                    checkpoint_cost_seconds: float = 0.0) -> "SystemConfig":
        """Copy of this system under a fault environment.

        The axes feed both engines: the DES injects per-worker compute
        slowdowns and the fluid engine uses the closed-form straggler and
        Young--Daly checkpoint models of :mod:`repro.core.faults`.
        """
        return replace(self, straggler_fraction=straggler_fraction,
                       straggler_factor=straggler_factor,
                       mtbf_seconds=mtbf_seconds,
                       checkpoint_interval_seconds=checkpoint_interval_seconds,
                       checkpoint_cost_seconds=checkpoint_cost_seconds)

    def with_compression(self, compressor: str = "none",
                         bucket_bytes: Optional[int] = None) -> "SystemConfig":
        """Copy of this system under a wire-compression configuration.

        Both axes are orthogonal to the scheme choice: the compressor
        shrinks what dense-gradient backends put on the wire, the bucket
        size changes how many messages carry it.
        """
        return replace(self, compressor=compressor, bucket_bytes=bucket_bytes)
