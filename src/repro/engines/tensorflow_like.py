"""TensorFlow-engine systems (Figures 6, 7, 10) and the other baselines.

* ``TF`` -- stock distributed TensorFlow: coarse per-tensor parameter
  placement (a big tensor lands on one PS task and bottlenecks its NIC) and
  parameter fetches at the beginning of each iteration that do not overlap
  with the previous iteration's computation (Section 5.1).
* ``TF+WFBP`` -- TensorFlow parallelised through Poseidon's client library:
  fine-grained KV partitioning and WFBP, but dense PS communication only.
* ``Poseidon (TF)`` -- the full system with HybComm.
* ``Adam`` -- the Project Adam communication strategy implemented inside
  Poseidon for the Figure 10 comparison.
* ``CNTK-1bit`` -- 1-bit quantized gradients (Section 5.3).
"""

from __future__ import annotations

from typing import Dict

from repro.core.wfbp import ScheduleMode
from repro.engines.base import CommMode, Partitioning, SystemConfig

TF = SystemConfig(
    name="TF",
    engine="tensorflow",
    schedule=ScheduleMode.WFBP,
    partitioning=Partitioning.COARSE,
    comm=CommMode.PS,
    overlap_pull=False,
    overlap_host_copy=True,
)

TF_WFBP = SystemConfig(
    name="TF+WFBP",
    engine="tensorflow",
    schedule=ScheduleMode.WFBP,
    partitioning=Partitioning.FINE,
    comm=CommMode.PS,
    overlap_pull=True,
    overlap_host_copy=True,
)

POSEIDON_TF = SystemConfig(
    name="Poseidon (TF)",
    engine="tensorflow",
    schedule=ScheduleMode.WFBP,
    partitioning=Partitioning.FINE,
    comm=CommMode.HYBRID,
    overlap_pull=True,
    overlap_host_copy=True,
)

ADAM_TF = SystemConfig(
    name="Adam",
    engine="tensorflow",
    schedule=ScheduleMode.WFBP,
    partitioning=Partitioning.COARSE,
    comm=CommMode.ADAM,
    overlap_pull=True,
    overlap_host_copy=True,
)

CNTK_1BIT = SystemConfig(
    name="CNTK-1bit",
    engine="cntk",
    schedule=ScheduleMode.SEQUENTIAL,
    partitioning=Partitioning.FINE,
    comm=CommMode.ONEBIT,
    overlap_pull=True,
    # CNTK's 1-bit SGD quantizes (and keeps the error-feedback residual) on
    # the host, so gradients are staged through DRAM without overlap.
    overlap_host_copy=False,
)


def tensorflow_systems() -> Dict[str, SystemConfig]:
    """The three TensorFlow-engine systems of Figure 6, keyed by display name."""
    return {
        TF.name: TF,
        TF_WFBP.name: TF_WFBP,
        POSEIDON_TF.name: POSEIDON_TF,
    }
