"""Caffe-engine systems (Figure 5 and Figure 8).

* ``Caffe+PS`` -- a vanilla parameter-server parallelisation: communication
  happens sequentially after the backward pass and host/device staging
  copies are not overlapped, which is why its single-node throughput is
  already below plain Caffe (213 vs. 257 img/s for GoogLeNet in Section 5.1).
* ``Caffe+WFBP`` -- Poseidon's client library with wait-free backpropagation
  but HybComm disabled (everything goes through the fine-grained PS).
* ``Poseidon (Caffe)`` -- the full system: WFBP plus hybrid communication.
"""

from __future__ import annotations

from typing import Dict

from repro import units
from repro.core.wfbp import ScheduleMode
from repro.engines.base import CommMode, Partitioning, SystemConfig

#: Effective bandwidth of the non-overlapped DRAM<->GPU staging copies of the
#: vanilla PS baseline.  Chosen so that single-node Caffe+PS lands near the
#: paper's reported 213 / 21.3 / 18.5 img/s for GoogLeNet / VGG19 / VGG19-22K.
_STAGING_BANDWIDTH_BPS = 16 * units.GBIT

CAFFE_PS = SystemConfig(
    name="Caffe+PS",
    engine="caffe",
    schedule=ScheduleMode.SEQUENTIAL,
    partitioning=Partitioning.FINE,
    comm=CommMode.PS,
    overlap_pull=False,
    overlap_host_copy=False,
    host_copy_bandwidth_bps=_STAGING_BANDWIDTH_BPS,
)

CAFFE_WFBP = SystemConfig(
    name="Caffe+WFBP",
    engine="caffe",
    schedule=ScheduleMode.WFBP,
    partitioning=Partitioning.FINE,
    comm=CommMode.PS,
    overlap_pull=True,
    overlap_host_copy=True,
)

POSEIDON_CAFFE = SystemConfig(
    name="Poseidon (Caffe)",
    engine="caffe",
    schedule=ScheduleMode.WFBP,
    partitioning=Partitioning.FINE,
    comm=CommMode.HYBRID,
    overlap_pull=True,
    overlap_host_copy=True,
)


def caffe_systems() -> Dict[str, SystemConfig]:
    """The three Caffe-engine systems of Figure 5, keyed by display name."""
    return {
        CAFFE_PS.name: CAFFE_PS,
        CAFFE_WFBP.name: CAFFE_WFBP,
        POSEIDON_CAFFE.name: POSEIDON_CAFFE,
    }
