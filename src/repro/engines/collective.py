"""Collective-communication systems enabled by the pluggable backend layer.

These are not systems the paper evaluates; they exist to answer the natural
follow-up question Poseidon's cost model raises: how do the PS/SFB/hybrid
schemes compare against a bandwidth-optimal ring all-reduce and against a
rack-aggregating hierarchical parameter server on the same cluster model?
Both ride Poseidon's client library (WFBP scheduling, overlapped pulls);
only the communication scheme differs.
"""

from __future__ import annotations

from repro.core.wfbp import ScheduleMode
from repro.engines.base import CommMode, Partitioning, SystemConfig

RING_ALLREDUCE = SystemConfig(
    name="Ring-AllReduce",
    engine="poseidon",
    schedule=ScheduleMode.WFBP,
    partitioning=Partitioning.FINE,  # no PS traffic; partitioning is moot
    comm=CommMode.RING,
    overlap_pull=True,
    overlap_host_copy=True,
)

HIERARCHICAL_PS = SystemConfig(
    name="Hierarchical-PS",
    engine="poseidon",
    schedule=ScheduleMode.WFBP,
    partitioning=Partitioning.FINE,
    comm=CommMode.HIERPS,
    overlap_pull=True,
    overlap_host_copy=True,
)
