"""Engine and system behaviour descriptors.

The paper evaluates Poseidon plugged into two computation engines (Caffe and
TensorFlow) and compares against several baseline *systems* built from the
same ingredients: how parameters are partitioned across PS shards
(fine-grained KV pairs vs. coarse per-tensor placement), whether layer
synchronization overlaps with backpropagation (WFBP vs. sequential), whether
the parameter pull overlaps with computation, which communication scheme is
used, and whether host/device memory copies are overlapped.

Each such combination is a :class:`~repro.engines.base.SystemConfig`; the
presets below are the exact systems named in Figures 5-11.
"""

from repro.engines.base import CommMode, Partitioning, SystemConfig
from repro.engines.caffe_like import (
    CAFFE_PS,
    CAFFE_WFBP,
    POSEIDON_CAFFE,
    caffe_systems,
)
from repro.engines.collective import HIERARCHICAL_PS, RING_ALLREDUCE
from repro.engines.tensorflow_like import (
    ADAM_TF,
    CNTK_1BIT,
    POSEIDON_TF,
    TF,
    TF_WFBP,
    tensorflow_systems,
)

__all__ = [
    "SystemConfig",
    "CommMode",
    "Partitioning",
    "CAFFE_PS",
    "CAFFE_WFBP",
    "POSEIDON_CAFFE",
    "caffe_systems",
    "TF",
    "TF_WFBP",
    "POSEIDON_TF",
    "ADAM_TF",
    "CNTK_1BIT",
    "tensorflow_systems",
    "RING_ALLREDUCE",
    "HIERARCHICAL_PS",
]
