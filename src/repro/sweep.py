"""Process-parallel execution of independent simulation configs.

Every figure of the paper's evaluation is a sweep over independent
(model, system, nodes, bandwidth) configurations, each of which runs a
self-contained discrete-event simulation.  This module provides the
engine underneath :mod:`repro.experiments.sweep`: a sweep is a list of
:class:`SweepTask` objects -- a hashable config key plus a picklable
callable spec -- executed either serially or over a
:class:`~concurrent.futures.ProcessPoolExecutor`, with results merged
back **by config key in task order** so the output is byte-identical
regardless of worker count or completion order.

Determinism contract:

* Task keys must be unique within a sweep (:func:`run_sweep` raises on
  duplicates rather than silently overwriting a result).
* The returned mapping iterates in the order tasks were submitted, never
  in completion order.
* A task failure raises the original exception in the caller for both
  the serial and the parallel path.

The module-level default worker count is ``1`` (serial) so library
callers are unaffected unless they, or the experiment runner's
``--jobs`` flag, opt in via :func:`set_default_jobs` / :func:`use_jobs`.

Tasks should ship (or memoize) their config-independent derivations: the
simulation layers cache workload derivation by (model, batch, gpu,
coarsen) and scheme decisions by (workload, comm, cluster shape), and
those caches are per-process, so both the serial path and every pool
worker pay each derivation at most once per sweep.
"""

from __future__ import annotations

import multiprocessing
import os
from concurrent.futures import BrokenExecutor, ProcessPoolExecutor
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Hashable, Iterator, List, Optional, Sequence, Tuple

from repro.logging_util import get_logger

LOGGER = get_logger(__name__)

#: Module-level default for ``jobs=None`` call sites (1 = serial).
_DEFAULT_JOBS: int = 1


@dataclass(frozen=True)
class SweepTask:
    """One independent configuration of a sweep.

    A task is a *description* -- nothing runs until :func:`run_sweep`
    executes it (possibly in a worker process, hence the picklability
    requirement on ``fn``):

        >>> from repro.sweep import SweepTask
        >>> task = SweepTask(key=("pow", 10), fn=pow, args=(2, 10))
        >>> task.run()
        1024

    Attributes:
        key: hashable identifier of the configuration; results are merged
            by this key, so it must be unique within one sweep.
        fn: a picklable (module-level) callable computing the result.
        args: positional arguments for ``fn``.
        kwargs: keyword arguments for ``fn``.
    """

    key: Hashable
    fn: Callable[..., Any]
    args: Tuple[Any, ...] = ()
    kwargs: Dict[str, Any] = field(default_factory=dict)

    def run(self) -> Any:
        """Execute the task in the current process."""
        return self.fn(*self.args, **self.kwargs)


def _execute_task(task: SweepTask) -> Tuple[Hashable, Any]:
    """Worker-side entry point: run one task and tag the result with its key."""
    return task.key, task.run()


def default_jobs() -> int:
    """The worker count used when ``jobs`` is not given explicitly."""
    return _DEFAULT_JOBS


def set_default_jobs(jobs: Optional[int]) -> None:
    """Set the module-level default worker count.

    ``None`` or a non-positive value selects one worker per CPU core.
    """
    global _DEFAULT_JOBS
    _DEFAULT_JOBS = resolve_jobs(jobs if jobs is not None else 0)


@contextmanager
def use_jobs(jobs: Optional[int]) -> Iterator[int]:
    """Temporarily set the default worker count (restored on exit).

    The experiment runner wraps a whole report generation in this so one
    ``--jobs`` flag reaches every nested sweep:

        >>> from repro.sweep import default_jobs, use_jobs
        >>> with use_jobs(4):
        ...     default_jobs()
        4
        >>> default_jobs()
        1
    """
    global _DEFAULT_JOBS
    previous = _DEFAULT_JOBS
    set_default_jobs(jobs)
    try:
        yield _DEFAULT_JOBS
    finally:
        _DEFAULT_JOBS = previous


def resolve_jobs(jobs: Optional[int]) -> int:
    """Normalise a ``jobs`` argument to a concrete worker count.

    ``None`` defers to the module default; ``0`` or negative values select
    one worker per CPU core.
    """
    if jobs is None:
        return _DEFAULT_JOBS
    if jobs <= 0:
        return os.cpu_count() or 1
    return int(jobs)


def _check_unique_keys(tasks: Sequence[SweepTask]) -> None:
    seen = set()
    for task in tasks:
        if task.key in seen:
            raise ValueError(f"duplicate sweep key {task.key!r}; results would "
                             f"be merged ambiguously")
        seen.add(task.key)


def _run_serial(tasks: Sequence[SweepTask]) -> Dict[Hashable, Any]:
    return {task.key: task.run() for task in tasks}


def _pool_context():
    """Prefer fork (cheap, inherits loaded modules); fall back to the default."""
    try:
        return multiprocessing.get_context("fork")
    except ValueError:  # pragma: no cover - non-POSIX platforms
        return None


class _PoolUnavailable(Exception):
    """Internal: the pool itself (not a task) failed; fall back to serial."""


def _run_pool(tasks: Sequence[SweepTask], jobs: int) -> Dict[Hashable, Any]:
    """Execute over a process pool; results keyed, then re-ordered by task order.

    Task exceptions propagate as themselves; only failures of the pool
    machinery (creation, submission, broken workers) raise
    :class:`_PoolUnavailable` so the caller can distinguish them from a
    task legitimately raising e.g. an ``OSError``.
    """
    workers = min(jobs, len(tasks))
    try:
        pool = ProcessPoolExecutor(max_workers=workers,
                                   mp_context=_pool_context())
    except (OSError, ImportError) as exc:
        raise _PoolUnavailable(str(exc)) from exc
    with pool:
        try:
            futures = [pool.submit(_execute_task, task) for task in tasks]
        except (OSError, RuntimeError) as exc:
            raise _PoolUnavailable(str(exc)) from exc
        by_key: Dict[Hashable, Any] = {}
        for future in futures:
            try:
                key, result = future.result()
            except BrokenExecutor as exc:
                raise _PoolUnavailable(str(exc)) from exc
            by_key[key] = result
    # Merge deterministically: iterate submitted task order, not completion
    # order, so the caller sees the same mapping the serial path produces.
    return {task.key: by_key[task.key] for task in tasks}


def run_sweep(tasks: Sequence[SweepTask],
              jobs: Optional[int] = None) -> Dict[Hashable, Any]:
    """Execute every task and return ``{task.key: result}`` in task order.

    The determinism contract: the result mapping is identical whatever
    ``jobs`` is -- same keys, same values, same iteration order --

        >>> from repro.sweep import SweepTask, run_sweep
        >>> tasks = [SweepTask(key=n, fn=pow, args=(2, n)) for n in (3, 5, 8)]
        >>> run_sweep(tasks)
        {3: 8, 5: 32, 8: 256}
        >>> run_sweep(tasks, jobs=4) == run_sweep(tasks, jobs=1)
        True

    Args:
        tasks: the sweep's configurations; keys must be unique.
        jobs: worker processes; ``None`` defers to the module default
            (serial unless changed), non-positive means one per CPU core.
            With ``jobs == 1``, a single task, or an unavailable process
            pool, tasks run serially in-process.

    Raises:
        ValueError: on duplicate task keys.
        Exception: the first task failure, re-raised in the caller.
    """
    tasks = list(tasks)
    _check_unique_keys(tasks)
    if not tasks:
        return {}
    jobs = resolve_jobs(jobs)
    if jobs == 1 or len(tasks) == 1:
        return _run_serial(tasks)
    try:
        return _run_pool(tasks, jobs)
    except _PoolUnavailable as exc:
        # Sandboxes without /dev/shm or fork support land here; the sweep
        # result is identical either way, only slower.  A task raising its
        # own exception is NOT caught: it propagates directly per the
        # module contract.
        LOGGER.warning("process pool unavailable (%s); running %d sweep "
                       "tasks serially", exc, len(tasks))
        return _run_serial(tasks)


__all__ = [
    "SweepTask",
    "default_jobs",
    "resolve_jobs",
    "run_sweep",
    "set_default_jobs",
    "use_jobs",
]
