"""Fine-grained KV-store partitioning of model parameters.

Poseidon "sets the size of a KV pair to a fixed small size (e.g., 2MB), so
as to partition and distribute model parameters to server nodes as equally
as possible, reducing the risk of Ethernet bottleneck" (Section 4.1).  This
module implements exactly that: parameters of every layer are chopped into
chunks of at most ``kv_pair_bytes`` and the chunks are spread across the
server shards so that per-shard byte counts are balanced.

The contrast case -- TensorFlow's coarse per-tensor placement, where a whole
layer (e.g. VGG19's 400 MB ``fc6`` weight) lands on one server -- is also
provided, because the paper's Figure 7/10 analysis hinges on the difference.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from repro import units
from repro.exceptions import PartitionError
from repro.nn.spec import LayerSpec, ModelSpec


@dataclass(frozen=True)
class KVPair:
    """One key-value chunk of a layer's parameters.

    Attributes:
        key: unique identifier, ``"<layer>/<chunk index>"``.
        layer: name of the layer the chunk belongs to.
        nbytes: chunk size in bytes.
        shard: index of the server shard holding the chunk.
    """

    key: str
    layer: str
    nbytes: int
    shard: int


@dataclass
class KVStorePartition:
    """The assignment of every KV pair to a server shard."""

    pairs: List[KVPair]
    num_shards: int
    kv_pair_bytes: int

    # -- lookups -------------------------------------------------------------
    def pairs_for_layer(self, layer: str) -> List[KVPair]:
        """All chunks of one layer."""
        return [pair for pair in self.pairs if pair.layer == layer]

    def layer_bytes_per_shard(self, layer: str) -> Dict[int, int]:
        """Bytes of ``layer`` held by each shard (shards with zero omitted)."""
        result: Dict[int, int] = {}
        for pair in self.pairs_for_layer(layer):
            result[pair.shard] = result.get(pair.shard, 0) + pair.nbytes
        return result

    def shard_bytes(self) -> Dict[int, int]:
        """Total bytes held by each shard."""
        result = {shard: 0 for shard in range(self.num_shards)}
        for pair in self.pairs:
            result[pair.shard] += pair.nbytes
        return result

    @property
    def total_bytes(self) -> int:
        """Total parameter bytes across all shards."""
        return sum(pair.nbytes for pair in self.pairs)

    def imbalance(self) -> float:
        """Max shard load divided by mean shard load (1.0 = perfectly even)."""
        loads = list(self.shard_bytes().values())
        mean = sum(loads) / len(loads) if loads else 0.0
        if mean == 0:
            return 1.0
        return max(loads) / mean

    def summary(self) -> str:
        """Human-readable balance summary."""
        loads = self.shard_bytes()
        lines = [
            f"KV store partition: {len(self.pairs)} pairs, {self.num_shards} shards, "
            f"pair size <= {units.human_bytes(self.kv_pair_bytes)}, "
            f"imbalance {self.imbalance():.3f}"
        ]
        for shard, load in sorted(loads.items()):
            lines.append(f"  shard {shard:3d}: {units.human_bytes(load)}")
        return "\n".join(lines)


def partition_fine_grained(model: ModelSpec, num_shards: int,
                           kv_pair_bytes: int = 2 * units.MB) -> KVStorePartition:
    """Poseidon's partitioning: fixed-size KV pairs, balanced across shards.

    Chunks are assigned greedily to the currently least-loaded shard, which
    for equal-size chunks is equivalent to round-robin and keeps the maximum
    load within one chunk of the mean.

    Raises:
        PartitionError: on invalid shard count or pair size.
    """
    _validate(num_shards, kv_pair_bytes)
    loads = [0] * num_shards
    pairs: List[KVPair] = []
    for layer in model.parameter_layers():
        remaining = layer.param_bytes
        chunk_index = 0
        while remaining > 0:
            size = min(kv_pair_bytes, remaining)
            shard = min(range(num_shards), key=lambda s: loads[s])
            pairs.append(
                KVPair(
                    key=f"{layer.name}/{chunk_index}",
                    layer=layer.name,
                    nbytes=size,
                    shard=shard,
                )
            )
            loads[shard] += size
            remaining -= size
            chunk_index += 1
    return KVStorePartition(pairs=pairs, num_shards=num_shards,
                            kv_pair_bytes=kv_pair_bytes)


def partition_coarse_grained(model: ModelSpec, num_shards: int) -> KVStorePartition:
    """TensorFlow-style placement: one whole tensor (layer) per shard.

    Layers are placed round-robin in definition order, which mirrors how
    stock distributed TensorFlow assigns variables to parameter-server tasks
    and reproduces the hotspot the paper observes for large FC tensors.
    """
    _validate(num_shards, 1)
    pairs: List[KVPair] = []
    for index, layer in enumerate(model.parameter_layers()):
        shard = index % num_shards
        pairs.append(
            KVPair(
                key=f"{layer.name}/0",
                layer=layer.name,
                nbytes=layer.param_bytes,
                shard=shard,
            )
        )
    return KVStorePartition(pairs=pairs, num_shards=num_shards,
                            kv_pair_bytes=max((p.nbytes for p in pairs), default=0))


def chunk_layer(layer: LayerSpec, kv_pair_bytes: int = 2 * units.MB
                ) -> List[Tuple[str, int]]:
    """Split one layer into ``(key, nbytes)`` chunks of at most the pair size."""
    if kv_pair_bytes <= 0:
        raise PartitionError(f"kv_pair_bytes must be positive, got {kv_pair_bytes}")
    chunks: List[Tuple[str, int]] = []
    remaining = layer.param_bytes
    index = 0
    while remaining > 0:
        size = min(kv_pair_bytes, remaining)
        chunks.append((f"{layer.name}/{index}", size))
        remaining -= size
        index += 1
    return chunks


def _validate(num_shards: int, kv_pair_bytes: int) -> None:
    if num_shards < 1:
        raise PartitionError(f"num_shards must be >= 1, got {num_shards}")
    if kv_pair_bytes < 1:
        raise PartitionError(f"kv_pair_bytes must be >= 1, got {kv_pair_bytes}")
