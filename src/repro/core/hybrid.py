"""HybComm: the hybrid communication planner.

HybComm "takes into account these factors [layer type/shape/size, batch
size, cluster size] and allows to dynamically adjust the communication
method for different parts of a model -- it always chooses the best method
from available ones whenever it results in fewer communication overheads"
(Section 3.2).

The planner produces one :class:`SyncDecision` per parameter layer: the
chosen scheme, the per-node byte cost under both candidate schemes, and the
saving.  The plan is static for a fixed cluster/batch configuration (the
network structure is "predefined and fixed throughout training"), but a new
plan can be computed at any time if the cluster changes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro import units
from repro.core.coordinator import Coordinator
from repro.core.cost_model import CommScheme
from repro.nn.spec import LayerSpec


@dataclass(frozen=True)
class SyncDecision:
    """The planner's decision for one parameter layer.

    Attributes:
        layer: layer name.
        scheme: the scheme HybComm selected.
        ps_bytes: bytes a combined server/worker node would move under PS.
        sfb_bytes: same under SFB (``None`` when SFB does not apply).
        layer_param_bytes: dense size of the layer's parameters.
    """

    layer: str
    scheme: CommScheme
    ps_bytes: float
    sfb_bytes: Optional[float]
    layer_param_bytes: int

    @property
    def chosen_bytes(self) -> float:
        """Bytes moved per node under the chosen scheme."""
        if self.scheme is CommScheme.SFB and self.sfb_bytes is not None:
            return self.sfb_bytes
        return self.ps_bytes

    @property
    def savings_bytes(self) -> float:
        """Bytes saved relative to always using the parameter server."""
        return max(0.0, self.ps_bytes - self.chosen_bytes)


class HybridCommPlanner:
    """Computes per-layer scheme assignments from the coordinator's cost model."""

    def __init__(self, coordinator: Coordinator):
        self.coordinator = coordinator

    def decide_layer(self, layer: LayerSpec, force_scheme: Optional[CommScheme] = None
                     ) -> SyncDecision:
        """Decision for a single layer (optionally forcing a scheme)."""
        cost_model = self.coordinator.cost_model
        ps_bytes = cost_model.scheme_cost_bytes(layer, CommScheme.PS)
        sfb_bytes = (
            cost_model.scheme_cost_bytes(layer, CommScheme.SFB)
            if layer.sf_decomposable else None
        )
        scheme = force_scheme or self.coordinator.best_scheme(layer)
        return SyncDecision(
            layer=layer.name,
            scheme=scheme,
            ps_bytes=ps_bytes,
            sfb_bytes=sfb_bytes,
            layer_param_bytes=layer.param_bytes,
        )

    def plan(self, force_scheme: Optional[CommScheme] = None) -> List[SyncDecision]:
        """Decisions for every parameter layer of the model.

        Args:
            force_scheme: bypass Algorithm 1 and force every layer onto one
                scheme (used by the always-PS / always-SFB ablations).
        """
        decisions = []
        for layer in self.coordinator.model.parameter_layers():
            forced = force_scheme
            if forced is CommScheme.SFB and not layer.sf_decomposable:
                forced = CommScheme.PS
            decisions.append(self.decide_layer(layer, force_scheme=forced))
        return decisions

    # -- aggregate views -----------------------------------------------------------
    def bytes_per_iteration(self, decisions: Optional[List[SyncDecision]] = None
                            ) -> Dict[str, float]:
        """Total per-node bytes per iteration under the plan vs. pure PS."""
        decisions = decisions if decisions is not None else self.plan()
        hybrid_total = sum(decision.chosen_bytes for decision in decisions)
        ps_total = sum(decision.ps_bytes for decision in decisions)
        return {
            "hybrid_bytes": hybrid_total,
            "ps_bytes": ps_total,
            "savings_bytes": ps_total - hybrid_total,
            "savings_fraction": (
                (ps_total - hybrid_total) / ps_total if ps_total else 0.0
            ),
        }

    def summary(self, decisions: Optional[List[SyncDecision]] = None) -> str:
        """Readable per-layer plan, largest layers first."""
        decisions = decisions if decisions is not None else self.plan()
        ordered = sorted(decisions, key=lambda d: d.layer_param_bytes, reverse=True)
        lines = ["HybComm plan (largest layers first):"]
        for decision in ordered[:20]:
            sfb_txt = (
                units.human_bytes(decision.sfb_bytes)
                if decision.sfb_bytes is not None else "n/a"
            )
            lines.append(
                f"  {decision.layer:<28s} -> {decision.scheme.value:<4s}  "
                f"ps={units.human_bytes(decision.ps_bytes):>10s}  "
                f"sfb={sfb_txt:>10s}"
            )
        if len(ordered) > 20:
            lines.append(f"  ... and {len(ordered) - 20} smaller layers")
        totals = self.bytes_per_iteration(decisions)
        lines.append(
            f"  total per node: {units.human_bytes(totals['hybrid_bytes'])} "
            f"(pure PS {units.human_bytes(totals['ps_bytes'])}, "
            f"saving {totals['savings_fraction'] * 100:.1f}%)"
        )
        return "\n".join(lines)
