"""Poseidon core: the paper's primary contribution.

* :mod:`repro.core.cost_model` -- the analytic communication-cost model of
  Table 1 and the :class:`CommScheme` vocabulary.
* :mod:`repro.core.kvstore` -- fine-grained (2 MB) KV-pair partitioning of
  model parameters across server shards.
* :mod:`repro.core.coordinator` -- the coordinator with its information book
  and the ``BestScheme`` selection of Algorithm 1.
* :mod:`repro.core.hybrid` -- the HybComm planner that assigns a scheme to
  every layer.
* :mod:`repro.core.wfbp` -- wait-free backpropagation scheduling.
* :mod:`repro.core.syncer` -- per-layer syncers (Send / Receive / Move).
* :mod:`repro.core.consistency` -- bulk-synchronous consistency management.
* :mod:`repro.core.poseidon` -- :class:`PoseidonContext`, the top-level API.
"""

from repro.core.cost_model import CommScheme, CostModel
from repro.core.coordinator import Coordinator
from repro.core.hybrid import HybridCommPlanner, SyncDecision
from repro.core.kvstore import KVPair, KVStorePartition
from repro.core.poseidon import CommunicationPlan, PoseidonContext
from repro.core.wfbp import ScheduleMode, WFBPScheduler
from repro.core.consistency import BSPController
from repro.core.staleness import SSPClock, StalenessBoundedQueue

__all__ = [
    "SSPClock",
    "StalenessBoundedQueue",
    "CommScheme",
    "CostModel",
    "Coordinator",
    "HybridCommPlanner",
    "SyncDecision",
    "KVPair",
    "KVStorePartition",
    "CommunicationPlan",
    "PoseidonContext",
    "ScheduleMode",
    "WFBPScheduler",
    "BSPController",
]
