"""Deterministic fault injection and the analytic fault model.

The paper's KV store "will regularly checkpoint current parameter state";
this module supplies the other half of that story: a way to *exercise* the
recovery path deterministically.  A :class:`FaultPlan` is a frozen, seeded
schedule of worker crashes, multiplicative slowdowns (stragglers) and
transient push/pull failures.  The trainer consults it through a
:class:`FaultInjector` at two fixed points -- the top of every worker step
and immediately before every layer sync -- so a chaos run under
``deterministic=True`` is bit-reproducible: the same plan and seed always
crash the same worker at the same iteration and the recovered parameters
are a pure function of the plan.

Three design rules keep injection orthogonal to numerics:

- **fail before send**: transient faults fire *before* the syncer touches
  any substrate, so a retry replays the identical bytes and cannot change
  the aggregate;
- **crash at step start**: a crash fires before the worker samples a batch
  or pushes anything for that iteration, so the dead worker contributed
  nothing that survivors would have to unwind;
- **slowdowns are wall-clock only**: a straggler sleeps, it never computes
  differently, so parameters are unaffected by construction.

The module also hosts the closed-form fault model shared by both
simulation engines: the Young--Daly optimal checkpoint interval and the
first-order expected-overhead factor, plus the straggler-excess model that
maps a (fraction, factor) straggler distribution and a consistency policy
to expected exposed seconds per iteration.
"""

from __future__ import annotations

import math
import threading
import time
from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Optional, Set, Tuple

import numpy as np

from repro.exceptions import ConfigurationError, WorkerFailure
from repro.exceptions import TransientFault as TransientFaultError

__all__ = [
    "CrashFault",
    "SlowdownFault",
    "PushPullFault",
    "FaultPlan",
    "FaultInjector",
    "FailureDetector",
    "young_daly_interval",
    "fault_overhead_factor",
    "effective_straggler_fraction",
    "straggler_excess_seconds",
]


@dataclass(frozen=True)
class CrashFault:
    """Worker ``worker_id`` dies at the start of iteration ``iteration``."""

    worker_id: int
    iteration: int


@dataclass(frozen=True)
class SlowdownFault:
    """Worker runs ``factor`` x slower for ``duration`` iterations.

    Realized as a wall-clock sleep proportional to ``factor - 1`` at the
    start of each affected step; purely temporal, never numerical.
    """

    worker_id: int
    start_iteration: int
    duration: int = 1
    factor: float = 2.0

    def covers(self, iteration: int) -> bool:
        """Whether this slowdown is active at ``iteration``."""
        return (self.start_iteration <= iteration
                < self.start_iteration + self.duration)


@dataclass(frozen=True)
class PushPullFault:
    """``failures`` consecutive transient sync failures for one layer sync.

    Models a lossy link: the first ``failures`` attempts of the affected
    worker's syncs at ``iteration`` raise a retryable
    :class:`~repro.exceptions.TransientFault` before any bytes move.
    """

    worker_id: int
    iteration: int
    failures: int = 1


@dataclass(frozen=True)
class FaultPlan:
    """A frozen, seeded schedule of faults for one training run.

    Build one explicitly from fault tuples, or sample one with
    :meth:`random`.  An empty plan (the default) is the documented
    zero-cost no-op: the trainer skips every injection hook when
    ``plan.is_empty``.
    """

    crashes: Tuple[CrashFault, ...] = ()
    slowdowns: Tuple[SlowdownFault, ...] = ()
    transients: Tuple[PushPullFault, ...] = ()
    seed: int = 0
    #: Seconds of sleep per unit of (factor - 1) per slowed step.  Kept
    #: tiny so chaos tests stay fast; the *analytic* model uses the real
    #: factor, this only shapes observable wall-clock in the live trainer.
    slowdown_unit_seconds: float = 0.002

    @property
    def is_empty(self) -> bool:
        """True when no fault is scheduled (hooks become no-ops)."""
        return not (self.crashes or self.slowdowns or self.transients)

    def crash_iteration(self, worker_id: int) -> Optional[int]:
        """First iteration at which ``worker_id`` is scheduled to crash."""
        its = [c.iteration for c in self.crashes if c.worker_id == worker_id]
        return min(its) if its else None

    def slow_factor(self, worker_id: int, iteration: int) -> float:
        """Combined slowdown factor for a worker step (1.0 = full speed)."""
        factor = 1.0
        for slow in self.slowdowns:
            if slow.worker_id == worker_id and slow.covers(iteration):
                factor *= slow.factor
        return factor

    def transient_failures(self, worker_id: int, iteration: int) -> int:
        """Scheduled consecutive sync failures for (worker, iteration)."""
        return sum(t.failures for t in self.transients
                   if t.worker_id == worker_id and t.iteration == iteration)

    @classmethod
    def random(cls, seed: int, num_workers: int, iterations: int,
               crash_probability: float = 0.3,
               straggler_probability: float = 0.3,
               transient_probability: float = 0.3,
               max_transient_failures: int = 2,
               slowdown_factor: float = 3.0) -> "FaultPlan":
        """Sample a reproducible plan from a seed.

        At most one crash is scheduled (at a uniformly random worker and
        iteration >= 1) so a single checkpoint/restart cycle covers it;
        slowdowns and transients are sampled independently per worker.
        """
        if num_workers < 1 or iterations < 1:
            raise ConfigurationError(
                "FaultPlan.random needs >= 1 worker and iteration, got "
                f"{num_workers} workers x {iterations} iterations")
        rng = np.random.default_rng(seed)
        crashes: List[CrashFault] = []
        if iterations > 1 and rng.random() < crash_probability:
            crashes.append(CrashFault(
                worker_id=int(rng.integers(num_workers)),
                iteration=int(rng.integers(1, iterations))))
        slowdowns: List[SlowdownFault] = []
        transients: List[PushPullFault] = []
        for worker in range(num_workers):
            if rng.random() < straggler_probability:
                start = int(rng.integers(iterations))
                slowdowns.append(SlowdownFault(
                    worker_id=worker, start_iteration=start,
                    duration=int(rng.integers(1, iterations - start + 1)),
                    factor=slowdown_factor))
            if rng.random() < transient_probability:
                transients.append(PushPullFault(
                    worker_id=worker,
                    iteration=int(rng.integers(iterations)),
                    failures=int(rng.integers(1, max_transient_failures + 1))))
        return cls(crashes=tuple(crashes), slowdowns=tuple(slowdowns),
                   transients=tuple(transients), seed=seed)


class FaultInjector:
    """Mutable realization of a :class:`FaultPlan` across restarts.

    Crashes and transient failures fire exactly once per scheduled event:
    the consumed state survives a restart-from-checkpoint, so the replayed
    iterations run fault-free and the run converges instead of re-dying at
    the same step forever.  (Because faults have no numerical side
    effects, replaying them or not cannot change parameters.)
    """

    def __init__(self, plan: FaultPlan):
        self.plan = plan
        self._lock = threading.Lock()
        self._fired_crashes: Set[int] = set()
        self._transients_left: Dict[Tuple[int, int], int] = {
            (t.worker_id, t.iteration): 0 for t in plan.transients}
        for t in plan.transients:
            self._transients_left[(t.worker_id, t.iteration)] += t.failures

    def begin_step(self, worker_id: int, iteration: int) -> None:
        """Injection hook at the top of a worker step.

        Raises :class:`WorkerFailure` for an unfired scheduled crash and
        sleeps for any active slowdown.  Called before the worker samples
        its batch, so a crashing worker contributes nothing this step.
        """
        for crash in self.plan.crashes:
            if crash.worker_id == worker_id and crash.iteration == iteration:
                with self._lock:
                    if worker_id in self._fired_crashes:
                        continue
                    self._fired_crashes.add(worker_id)
                raise WorkerFailure(
                    f"injected crash: worker {worker_id} died at iteration "
                    f"{iteration}", worker_id=worker_id, iteration=iteration)
        factor = self.plan.slow_factor(worker_id, iteration)
        if factor > 1.0:
            time.sleep(self.plan.slowdown_unit_seconds * (factor - 1.0))

    def before_sync(self, worker_id: int, iteration: int) -> None:
        """Injection hook immediately before a layer sync (fail-before-send).

        Consumes one scheduled transient failure, if any remain for this
        (worker, iteration), and raises the retryable
        :class:`~repro.exceptions.TransientFault`.
        """
        key = (worker_id, iteration)
        with self._lock:
            left = self._transients_left.get(key, 0)
            if left <= 0:
                return
            self._transients_left[key] = left - 1
        raise TransientFaultError(
            f"injected transient sync failure: worker {worker_id} at "
            f"iteration {iteration} ({left - 1} more scheduled)",
            worker_id=worker_id, iteration=iteration)


class FailureDetector:
    """Heartbeat/lease board plus the abort fan-out registry.

    Workers ``beat`` at every step; when a failure is detected (a raised
    :class:`WorkerFailure`, or a lease expiry observed by a supervisor)
    the detector marks the worker dead and aborts every registered sync
    primitive so blocked peers raise instead of hanging until timeout.
    Registered primitives implement ``abort(exc)`` and ``clear_abort()``.
    """

    def __init__(self, num_workers: int, lease_seconds: float = 30.0):
        self.num_workers = num_workers
        self.lease_seconds = lease_seconds
        self._lock = threading.Lock()
        self._last_beat: Dict[int, float] = {}
        self._last_step: Dict[int, int] = {}
        self._dead: Set[int] = set()
        self._abortables: List[object] = []

    def register(self, primitive: object) -> None:
        """Register a primitive exposing abort(exc)/clear_abort()."""
        with self._lock:
            if primitive not in self._abortables:
                self._abortables.append(primitive)

    def beat(self, worker_id: int, step: int) -> None:
        """Record a heartbeat (called at the top of every worker step)."""
        with self._lock:
            self._last_beat[worker_id] = time.monotonic()
            self._last_step[worker_id] = step

    def is_dead(self, worker_id: int) -> bool:
        """Whether the worker has been declared dead."""
        with self._lock:
            return worker_id in self._dead

    def dead_workers(self) -> FrozenSet[int]:
        """The set of workers declared dead so far."""
        with self._lock:
            return frozenset(self._dead)

    def expired_leases(self, now: Optional[float] = None) -> List[int]:
        """Workers whose lease has lapsed (no beat within the lease)."""
        now = time.monotonic() if now is None else now
        with self._lock:
            return [worker for worker, beat in self._last_beat.items()
                    if worker not in self._dead
                    and now - beat > self.lease_seconds]

    def mark_dead(self, worker_id: int, exc: BaseException) -> bool:
        """Declare a worker dead and abort all registered primitives.

        Returns False if the worker was already declared dead (the abort
        fan-out runs only once per failure).
        """
        with self._lock:
            if worker_id in self._dead:
                return False
            self._dead.add(worker_id)
            abortables = list(self._abortables)
        for primitive in abortables:
            primitive.abort(exc)
        return True

    def revive_all(self) -> None:
        """Clear dead set and aborts (restart-from-checkpoint recovery)."""
        with self._lock:
            self._dead.clear()
            self._last_beat.clear()
            self._last_step.clear()
            abortables = list(self._abortables)
        for primitive in abortables:
            primitive.clear_abort()


# ---------------------------------------------------------------------------
# Closed-form fault model (shared by the DES and fluid engines)
# ---------------------------------------------------------------------------

def young_daly_interval(checkpoint_cost_seconds: float,
                        mtbf_seconds: float) -> float:
    """Young--Daly first-order optimal checkpoint interval sqrt(2*C*M).

    Minimizes expected waste (checkpoint overhead C/I plus expected
    rework I/2 per failure) for checkpoint cost ``C`` and exponential
    failures with mean-time-between-failures ``M``.
    """
    if checkpoint_cost_seconds <= 0.0:
        return math.inf
    if mtbf_seconds <= 0.0:
        raise ConfigurationError(
            f"MTBF must be positive, got {mtbf_seconds}")
    return math.sqrt(2.0 * checkpoint_cost_seconds * mtbf_seconds)


def fault_overhead_factor(mtbf_seconds: Optional[float],
                          checkpoint_interval_seconds: Optional[float],
                          checkpoint_cost_seconds: float,
                          restart_cost_seconds: float = 0.0) -> float:
    """First-order expected slowdown factor of checkpoint/restart running.

    ``1 + C/I + (I/2 + R)/M``: pay a checkpoint ``C`` every interval
    ``I``, and per failure (rate ``1/M``) lose half an interval of rework
    plus the restart cost ``R``.  ``I=None`` picks the Young--Daly
    optimum; ``M=None`` (no failures) still pays ``C/I`` if an interval
    was explicitly configured, and returns exactly 1.0 otherwise.
    """
    if checkpoint_cost_seconds < 0.0 or restart_cost_seconds < 0.0:
        raise ConfigurationError("checkpoint/restart costs must be >= 0")
    if mtbf_seconds is None:
        if checkpoint_interval_seconds and checkpoint_cost_seconds > 0.0:
            return 1.0 + checkpoint_cost_seconds / checkpoint_interval_seconds
        return 1.0
    if mtbf_seconds <= 0.0:
        raise ConfigurationError(f"MTBF must be positive, got {mtbf_seconds}")
    interval = checkpoint_interval_seconds
    if interval is None:
        interval = young_daly_interval(checkpoint_cost_seconds, mtbf_seconds)
    if interval <= 0.0:
        raise ConfigurationError(
            f"checkpoint interval must be positive, got {interval}")
    factor = 1.0 + (restart_cost_seconds / mtbf_seconds)
    if math.isfinite(interval):
        factor += checkpoint_cost_seconds / interval
        factor += interval / (2.0 * mtbf_seconds)
    return factor


def effective_straggler_fraction(fraction: float, num_workers: int) -> float:
    """Quantize a straggler fraction to whole workers: ceil(f*P)/P.

    Any positive fraction slows at least one worker, matching the DES
    (which can only slow an integer number of workers) so the two engines
    agree by construction on small clusters.
    """
    if not 0.0 <= fraction <= 1.0:
        raise ConfigurationError(
            f"straggler fraction must be in [0, 1], got {fraction}")
    if fraction == 0.0 or num_workers <= 0:
        return 0.0
    return math.ceil(fraction * num_workers) / num_workers


def straggler_excess_seconds(compute_seconds: float, fraction: float,
                             factor: float, num_workers: int,
                             staleness: int = 0,
                             is_async: bool = False) -> float:
    """Expected extra seconds per iteration a straggler set costs.

    With a fraction ``f`` of workers slowed by ``factor`` x:

    - a barrier (BSP, and local SGD's sync rounds amortized per step)
      pays the slowest worker's full excess ``(factor-1)*compute``;
    - fully asynchronous execution pays only the *mean* excess
      ``f*(factor-1)*compute`` (each worker proceeds at its own rate);
    - ssp(s) interpolates: ``mean + (max-mean)/(1+s)``, continuous with
      BSP at s=0 and approaching async as the bound loosens, because a
      straggler only stalls peers once it falls ``s`` clocks behind.
    """
    if factor < 1.0:
        raise ConfigurationError(
            f"straggler factor must be >= 1.0, got {factor}")
    eff = effective_straggler_fraction(fraction, num_workers)
    if eff == 0.0 or factor == 1.0 or compute_seconds <= 0.0:
        return 0.0
    excess_max = (factor - 1.0) * compute_seconds
    excess_mean = eff * excess_max
    if is_async:
        return excess_mean
    if staleness < 0:
        raise ConfigurationError(f"staleness must be >= 0, got {staleness}")
    return excess_mean + (excess_max - excess_mean) / (1.0 + staleness)
