"""Bulk-synchronous-parallel (BSP) consistency management.

Poseidon "implements the bulk synchronous consistency (BSP) model as
follows.  The client library maintains a binary vector C with length the
number of syncers and values reset to zeros at the start of each iteration.
A syncer will set its corresponding entry in C as 1 when its job finishes,
and the client starts the next iteration when all entries are 1" (Section
4.1).  The KV store counts updates per KV pair and broadcasts when the count
equals the number of workers (that half lives in
:class:`~repro.comm.parameter_server.ShardedParameterServer`).

:class:`BSPController` is the client-side half used by the functional
trainer; it is thread-safe because syncer jobs complete on worker-local
thread pools.  The barrier is a condition-variable generation barrier
rather than :class:`threading.Barrier` so that fault tolerance can reach
it: the party count shrinks when a dead worker is dropped
(:meth:`remove_worker`), a supervisor can :meth:`abort` it to wake blocked
survivors immediately instead of letting them time out, and the last
arriver can run a callback while every other worker is still parked inside
the barrier -- a consistent cut, which is exactly when the trainer
snapshots a checkpoint.
"""

from __future__ import annotations

import threading
from typing import Callable, Dict, List, Optional, Sequence, Set

from repro.exceptions import SyncTimeout, TrainingError, WorkerFailure


class BSPController:
    """Per-worker sync-completion vector plus a cross-worker barrier."""

    def __init__(self, num_workers: int, syncer_names: Sequence[str]):
        if num_workers < 1:
            raise TrainingError(f"num_workers must be >= 1, got {num_workers}")
        if not syncer_names:
            raise TrainingError("BSPController needs at least one syncer name")
        self.num_workers = int(num_workers)
        self.syncer_names: List[str] = list(syncer_names)
        self._vectors: List[Dict[str, bool]] = [
            {name: False for name in self.syncer_names} for _ in range(self.num_workers)
        ]
        self._locks = [threading.Lock() for _ in range(self.num_workers)]
        self._events = [threading.Event() for _ in range(self.num_workers)]
        # Generation barrier state: _parties shrinks as workers are removed.
        self._barrier_lock = threading.Lock()
        self._barrier_cond = threading.Condition(self._barrier_lock)
        self._parties = self.num_workers
        self._arrived = 0
        self._generation = 0
        self._removed: Set[int] = set()
        self._abort_reason: Optional[BaseException] = None
        #: Callback the last arriver runs inside the barrier (all other
        #: workers parked): the trainer's checkpoint hook.  Exceptions
        #: propagate to the last arriver only.
        self.on_release: Optional[Callable[[], None]] = None
        self.iterations_completed = 0

    # -- per-worker sync vector -----------------------------------------------------
    def reset_worker(self, worker_id: int) -> None:
        """Zero the worker's completion vector at the start of an iteration."""
        with self._locks[worker_id]:
            for name in self.syncer_names:
                self._vectors[worker_id][name] = False
            self._events[worker_id].clear()

    def mark_done(self, worker_id: int, syncer_name: str) -> None:
        """Record that one syncer finished its job for this iteration.

        Raises:
            TrainingError: if the syncer name is unknown.
        """
        if syncer_name not in self._vectors[worker_id]:
            raise TrainingError(f"unknown syncer {syncer_name!r}")
        with self._locks[worker_id]:
            self._vectors[worker_id][syncer_name] = True
            if all(self._vectors[worker_id].values()):
                self._events[worker_id].set()

    def pending(self, worker_id: int) -> List[str]:
        """Names of syncers that have not completed yet for this worker."""
        with self._locks[worker_id]:
            return [name for name, done in self._vectors[worker_id].items() if not done]

    def wait_worker(self, worker_id: int, timeout: Optional[float] = 60.0) -> None:
        """Block until every syncer of this worker finished the iteration.

        Raises:
            SyncTimeout: on timeout, listing the stuck syncers.
        """
        if not self._events[worker_id].wait(timeout=timeout):
            raise SyncTimeout(
                f"worker {worker_id} timed out waiting for syncers: "
                f"{self.pending(worker_id)}"
            )

    # -- global barrier -------------------------------------------------------------
    def barrier(self, worker_id: int, timeout: Optional[float] = 60.0) -> None:
        """Cross-worker iteration barrier (the bulk-synchronous step boundary).

        The last arriver runs :attr:`on_release` (if set) while all other
        parties are still blocked, then releases the generation.  Raises
        :class:`SyncTimeout` on timeout and :class:`WorkerFailure` if the
        barrier was aborted or this worker was removed.
        """
        with self._barrier_cond:
            if self._abort_reason is not None:
                raise self._wrap_abort(worker_id)
            if worker_id in self._removed:
                raise WorkerFailure(
                    f"worker {worker_id} reached the BSP barrier after being "
                    f"dropped", worker_id=worker_id, cascade=True)
            self._arrived += 1
            generation = self._generation
            if self._arrived >= self._parties:
                self._release_locked()
                return
            deadline = (None if timeout is None
                        else threading.TIMEOUT_MAX if timeout < 0
                        else timeout)
            released = self._barrier_cond.wait_for(
                lambda: (self._generation != generation
                         or self._abort_reason is not None),
                timeout=deadline)
            if self._abort_reason is not None and self._generation == generation:
                raise self._wrap_abort(worker_id)
            if not released:
                self._arrived = max(0, self._arrived - 1)
                raise SyncTimeout(
                    f"BSP barrier timed out at worker {worker_id} "
                    f"({self._arrived}/{self._parties} arrived)")

    def _release_locked(self) -> None:
        """Release the current generation (caller holds the barrier lock)."""
        callback = self.on_release
        error: Optional[BaseException] = None
        if callback is not None:
            try:
                callback()
            except BaseException as exc:  # surfaced at the last arriver
                error = exc
        self.iterations_completed += 1
        self._generation += 1
        self._arrived = 0
        self._barrier_cond.notify_all()
        if error is not None:
            raise error

    # -- fault-tolerance hooks ------------------------------------------------------
    def remove_worker(self, worker_id: int) -> None:
        """Drop a dead worker from the barrier (drop-dead-worker mode).

        Shrinks the party count; if the survivors have already all
        arrived, the generation is released immediately so nobody waits
        for the ghost.
        """
        with self._barrier_cond:
            if worker_id in self._removed:
                return
            self._removed.add(worker_id)
            self._parties -= 1
            if self._parties < 1:
                raise TrainingError("cannot drop the last remaining worker")
            if self._arrived >= self._parties:
                self._release_locked()

    def abort(self, exc: BaseException) -> None:
        """Wake every blocked barrier waiter with a failure."""
        with self._barrier_cond:
            self._abort_reason = exc
            self._barrier_cond.notify_all()

    def clear_abort(self) -> None:
        """Re-arm the barrier after recovery handled the abort."""
        with self._barrier_cond:
            self._abort_reason = None

    def reset(self) -> None:
        """Restore full membership and a clean generation (restart mode)."""
        with self._barrier_cond:
            self._abort_reason = None
            self._removed.clear()
            self._parties = self.num_workers
            self._arrived = 0
            self._generation += 1
            self._barrier_cond.notify_all()
        for worker_id in range(self.num_workers):
            with self._locks[worker_id]:
                for name in self.syncer_names:
                    self._vectors[worker_id][name] = False
                self._events[worker_id].clear()

    def _wrap_abort(self, worker_id: int) -> BaseException:
        reason = self._abort_reason
        if isinstance(reason, WorkerFailure):
            return WorkerFailure(
                f"BSP barrier aborted at worker {worker_id}: {reason}",
                worker_id=reason.worker_id, iteration=reason.iteration,
                cascade=True)
        return TrainingError(
            f"BSP barrier aborted at worker {worker_id}: {reason}")
