"""Bulk-synchronous-parallel (BSP) consistency management.

Poseidon "implements the bulk synchronous consistency (BSP) model as
follows.  The client library maintains a binary vector C with length the
number of syncers and values reset to zeros at the start of each iteration.
A syncer will set its corresponding entry in C as 1 when its job finishes,
and the client starts the next iteration when all entries are 1" (Section
4.1).  The KV store counts updates per KV pair and broadcasts when the count
equals the number of workers (that half lives in
:class:`~repro.comm.parameter_server.ShardedParameterServer`).

:class:`BSPController` is the client-side half used by the functional
trainer; it is thread-safe because syncer jobs complete on worker-local
thread pools.
"""

from __future__ import annotations

import threading
from typing import Dict, List, Optional, Sequence

from repro.exceptions import TrainingError


class BSPController:
    """Per-worker sync-completion vector plus a cross-worker barrier."""

    def __init__(self, num_workers: int, syncer_names: Sequence[str]):
        if num_workers < 1:
            raise TrainingError(f"num_workers must be >= 1, got {num_workers}")
        if not syncer_names:
            raise TrainingError("BSPController needs at least one syncer name")
        self.num_workers = int(num_workers)
        self.syncer_names: List[str] = list(syncer_names)
        self._vectors: List[Dict[str, bool]] = [
            {name: False for name in self.syncer_names} for _ in range(self.num_workers)
        ]
        self._locks = [threading.Lock() for _ in range(self.num_workers)]
        self._events = [threading.Event() for _ in range(self.num_workers)]
        self._barrier = threading.Barrier(self.num_workers)
        self.iterations_completed = 0

    # -- per-worker sync vector -----------------------------------------------------
    def reset_worker(self, worker_id: int) -> None:
        """Zero the worker's completion vector at the start of an iteration."""
        with self._locks[worker_id]:
            for name in self.syncer_names:
                self._vectors[worker_id][name] = False
            self._events[worker_id].clear()

    def mark_done(self, worker_id: int, syncer_name: str) -> None:
        """Record that one syncer finished its job for this iteration.

        Raises:
            TrainingError: if the syncer name is unknown.
        """
        if syncer_name not in self._vectors[worker_id]:
            raise TrainingError(f"unknown syncer {syncer_name!r}")
        with self._locks[worker_id]:
            self._vectors[worker_id][syncer_name] = True
            if all(self._vectors[worker_id].values()):
                self._events[worker_id].set()

    def pending(self, worker_id: int) -> List[str]:
        """Names of syncers that have not completed yet for this worker."""
        with self._locks[worker_id]:
            return [name for name, done in self._vectors[worker_id].items() if not done]

    def wait_worker(self, worker_id: int, timeout: Optional[float] = 60.0) -> None:
        """Block until every syncer of this worker finished the iteration.

        Raises:
            TrainingError: on timeout, listing the stuck syncers.
        """
        if not self._events[worker_id].wait(timeout=timeout):
            raise TrainingError(
                f"worker {worker_id} timed out waiting for syncers: "
                f"{self.pending(worker_id)}"
            )

    # -- global barrier -------------------------------------------------------------
    def barrier(self, worker_id: int, timeout: Optional[float] = 60.0) -> None:
        """Cross-worker iteration barrier (the bulk-synchronous step boundary)."""
        try:
            index = self._barrier.wait(timeout=timeout)
        except threading.BrokenBarrierError as exc:
            raise TrainingError(
                f"BSP barrier broken while worker {worker_id} was waiting"
            ) from exc
        if index == 0:
            self.iterations_completed += 1
