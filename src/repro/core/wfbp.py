"""Wait-free backpropagation (WFBP) scheduling.

WFBP overlaps communication with computation by starting a layer's
synchronization "once its gradients are generated after [its backward
pass]", instead of waiting for the whole backward pass to finish (Section
3.1, Algorithm 2).  Two pieces live here:

* :class:`ScheduleMode` -- the vocabulary shared by the functional trainer
  and the throughput simulator (overlapped vs. sequential synchronization).
* :class:`WFBPScheduler` -- the client library's thread pool: syncer jobs
  are scheduled onto it as each layer's backward pass completes, and the
  trainer waits for all of them before starting the next iteration
  (``wait_until(sync_count == net.num_layers)`` in Algorithm 2).
"""

from __future__ import annotations

import enum
from concurrent.futures import Future, ThreadPoolExecutor
from concurrent.futures import TimeoutError as FutureTimeoutError
from typing import Any, Callable, List, Optional

from repro.exceptions import SyncTimeout, TrainingError, WorkerFailure


class ScheduleMode(str, enum.Enum):
    """When layer synchronization may start relative to computation."""

    #: Synchronize layer ``l`` as soon as its backward pass finishes
    #: (Poseidon's wait-free backpropagation).
    WFBP = "wfbp"
    #: Synchronize only after the full backward pass (the vanilla PS baseline).
    SEQUENTIAL = "sequential"


class WFBPScheduler:
    """A per-worker pool of synchronization threads.

    In WFBP mode, jobs run on a :class:`ThreadPoolExecutor` so that the
    caller (the worker's compute loop) can keep executing backward passes of
    lower layers while upper layers synchronize.  In sequential mode jobs are
    deferred and executed in submission order when :meth:`wait_all` is called,
    which reproduces the "communication waits for computation" baseline.
    """

    def __init__(self, mode: ScheduleMode = ScheduleMode.WFBP, num_threads: int = 4):
        if num_threads < 1:
            raise TrainingError(f"num_threads must be >= 1, got {num_threads}")
        self.mode = ScheduleMode(mode)
        self.num_threads = int(num_threads)
        self._executor: Optional[ThreadPoolExecutor] = None
        if self.mode is ScheduleMode.WFBP:
            self._executor = ThreadPoolExecutor(
                max_workers=self.num_threads, thread_name_prefix="poseidon-sync"
            )
        self._futures: List[Future] = []
        self._deferred: List[Callable[[], Any]] = []
        self.jobs_scheduled = 0

    def schedule(self, job: Callable[[], Any]) -> Optional[Future]:
        """Queue one syncer job (Algorithm 2, line 7).

        Returns the future in WFBP mode, ``None`` in sequential mode (the job
        has merely been deferred).
        """
        self.jobs_scheduled += 1
        if self.mode is ScheduleMode.WFBP:
            assert self._executor is not None
            future = self._executor.submit(job)
            self._futures.append(future)
            return future
        self._deferred.append(job)
        return None

    def wait_all(self, timeout: Optional[float] = 120.0) -> List[Any]:
        """Block until every scheduled job has finished; returns their results.

        Raises:
            WorkerFailure: unwrapped, if a job observed a worker failure
                (recovery dispatches on the typed exception).
            SyncTimeout: if a job did not finish within ``timeout`` (a
                suspected dead peer) or timed out internally.
            TrainingError: if a job raised any other exception, with the
                original chained.
        """
        results: List[Any] = []
        if self.mode is ScheduleMode.SEQUENTIAL:
            deferred, self._deferred = self._deferred, []
            for job in deferred:
                results.append(job())
            return results
        futures, self._futures = self._futures, []
        for future in futures:
            try:
                results.append(future.result(timeout=timeout))
            except (WorkerFailure, SyncTimeout):
                # Typed failures carry recovery-relevant identity; the
                # trainer's supervision logic dispatches on them directly.
                raise
            except FutureTimeoutError as exc:
                raise SyncTimeout(
                    f"syncer job did not finish within {timeout}s "
                    f"(suspected dead peer)") from exc
            except Exception as exc:  # noqa: BLE001 - rethrown with context
                raise TrainingError(f"syncer job failed: {exc}") from exc
        return results

    def shutdown(self) -> None:
        """Stop the thread pool (idempotent)."""
        if self._executor is not None:
            self._executor.shutdown(wait=True)
            self._executor = None

    def __enter__(self) -> "WFBPScheduler":
        return self

    def __exit__(self, *_exc_info: Any) -> None:
        self.shutdown()


class DeterministicScheduler(WFBPScheduler):
    """A WFBP pool whose jobs run (and complete) in submission order.

    Communication still overlaps with the backward pass -- jobs execute on
    a pool thread while the compute thread keeps going -- but the pool has
    exactly one thread, so syncer jobs of one worker neither interleave nor
    reorder: the completion-drain order of :meth:`wait_all` is the
    submission order every run.  Combined with worker-id-ordered reductions
    in the aggregation substrates (``ordered=True`` on
    :class:`~repro.comm.parameter_server.ShardedParameterServer` /
    :class:`~repro.comm.adam.AdamSFServer`), this makes the threaded
    trainer bit-reproducible run-to-run.
    """

    def __init__(self) -> None:
        super().__init__(mode=ScheduleMode.WFBP, num_threads=1)
