"""Top-level Poseidon API.

:class:`PoseidonContext` is what a user of the library instantiates: given a
model architecture, a cluster description and training hyper-parameters, it
wires up the coordinator, the KV-store partition and the HybComm planner,
and exposes the resulting :class:`CommunicationPlan`.  Both the throughput
simulator and the functional distributed trainer consume this plan, exactly
as Caffe/TensorFlow consume Poseidon's client library in the paper.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro import units
from repro.config import ClusterConfig, TrainingConfig
from repro.core.coordinator import Coordinator
from repro.core.cost_model import CommScheme
from repro.core.hybrid import HybridCommPlanner, SyncDecision
from repro.core.kvstore import KVStorePartition
from repro.nn.spec import ModelSpec


@dataclass(frozen=True)
class CommunicationPlan:
    """The static synchronization plan for one model on one cluster.

    Attributes:
        model_name: the planned model.
        decisions: one :class:`SyncDecision` per parameter layer.
        assignments: layer name -> chosen scheme (a convenience view).
        hybrid_bytes_per_node: per-node bytes per iteration under the plan.
        ps_bytes_per_node: per-node bytes per iteration under pure PS.
    """

    model_name: str
    decisions: List[SyncDecision]
    assignments: Dict[str, CommScheme]
    hybrid_bytes_per_node: float
    ps_bytes_per_node: float

    @property
    def savings_fraction(self) -> float:
        """Fraction of PS traffic eliminated by hybrid communication."""
        if self.ps_bytes_per_node == 0:
            return 0.0
        return 1.0 - self.hybrid_bytes_per_node / self.ps_bytes_per_node

    @property
    def sfb_layer_names(self) -> List[str]:
        """Layers the plan synchronizes via sufficient-factor broadcasting."""
        return [name for name, scheme in self.assignments.items()
                if scheme is CommScheme.SFB]

    def scheme_for(self, layer_name: str) -> CommScheme:
        """Scheme assigned to ``layer_name``.

        Raises:
            KeyError: if the plan has no such layer.
        """
        return self.assignments[layer_name]


class PoseidonContext:
    """Poseidon's planning facade for one (model, cluster, training) triple."""

    def __init__(self, model: ModelSpec, cluster: ClusterConfig,
                 training: Optional[TrainingConfig] = None,
                 fine_grained: bool = True,
                 hybrid_enabled: bool = True):
        self.model = model
        self.cluster = cluster
        self.training = training or TrainingConfig(
            batch_size=model.default_batch_size)
        self.fine_grained = bool(fine_grained)
        self.hybrid_enabled = bool(hybrid_enabled)
        self.coordinator = Coordinator(
            model, cluster, self.training, fine_grained=fine_grained)
        self.planner = HybridCommPlanner(self.coordinator)
        self._plan: Optional[CommunicationPlan] = None

    # -- planning -------------------------------------------------------------
    @property
    def plan(self) -> CommunicationPlan:
        """The (lazily computed, cached) communication plan."""
        if self._plan is None:
            self._plan = self.build_plan()
        return self._plan

    def build_plan(self, force_scheme: Optional[CommScheme] = None
                   ) -> CommunicationPlan:
        """Compute a plan, optionally forcing every layer onto one scheme."""
        if force_scheme is None and not self.hybrid_enabled:
            force_scheme = CommScheme.PS
        decisions = self.planner.plan(force_scheme=force_scheme)
        totals = self.planner.bytes_per_iteration(decisions)
        return CommunicationPlan(
            model_name=self.model.name,
            decisions=decisions,
            assignments={d.layer: d.scheme for d in decisions},
            hybrid_bytes_per_node=totals["hybrid_bytes"],
            ps_bytes_per_node=totals["ps_bytes"],
        )

    def best_scheme(self, layer_name: str) -> CommScheme:
        """Algorithm 1 for a single layer (the coordinator's ``BestScheme``)."""
        return self.coordinator.best_scheme(layer_name)

    @property
    def kv_partition(self) -> KVStorePartition:
        """The fine- (or coarse-) grained KV partition for this cluster."""
        return self.coordinator.partition

    # -- reporting ---------------------------------------------------------------
    def bytes_per_iteration(self, scheme: Optional[CommScheme] = None) -> float:
        """Per-node communication bytes per iteration.

        Args:
            scheme: ``None`` for the hybrid plan, otherwise force a scheme.
        """
        if scheme is None:
            return self.plan.hybrid_bytes_per_node
        decisions = self.planner.plan(force_scheme=scheme)
        return sum(decision.chosen_bytes for decision in decisions)

    def describe(self) -> str:
        """Multi-line human-readable description of the context and plan."""
        plan = self.plan
        lines = [
            f"Poseidon plan for {self.model.name} on {self.cluster.num_workers} workers "
            f"/ {self.cluster.num_servers} server shards "
            f"({self.cluster.bandwidth_gbps:g} GbE, batch {self.training.batch_size})",
            f"  parameters: {self.model.total_params / 1e6:.1f}M "
            f"({self.model.fc_param_fraction * 100:.0f}% in FC layers)",
            f"  SFB layers: {', '.join(plan.sfb_layer_names) or '(none)'}",
            f"  per-node traffic/iteration: "
            f"{units.human_bytes(plan.hybrid_bytes_per_node)} hybrid vs "
            f"{units.human_bytes(plan.ps_bytes_per_node)} pure PS "
            f"({plan.savings_fraction * 100:.1f}% saved)",
            f"  KV partition imbalance: {self.kv_partition.imbalance():.3f}",
        ]
        return "\n".join(lines)
