"""The analytic communication-cost model of Table 1.

For an ``M x N`` fully-connected layer synchronized across ``P1`` worker
nodes and ``P2`` server shards with per-worker batch size ``K``, Table 1
gives the number of *parameters* (float values) a node must transmit plus
receive in one iteration under three strategies:

=============  =======================  =========================  ==============================
Strategy       Server node              Worker node                Server & worker node
=============  =======================  =========================  ==============================
PS             ``2 P1 M N / P2``        ``2 M N``                  ``2 M N (P1 + P2 - 2) / P2``
SFB            (no servers)             ``2 K (P1 - 1)(M + N)``    (same as worker)
Adam (max)     ``P1 M N + P1 K (M+N)``  ``K (M + N) + M N``        ``(P1-1)(M N + K M + K N)``
=============  =======================  =========================  ==============================

``BestScheme`` (Algorithm 1) chooses SFB for an FC layer exactly when its
worker-side SFB cost is at most the PS cost of a combined server/worker
node; everything else goes through the parameter server.
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass
from typing import Dict, Optional

from repro import units
from repro.config import ClusterConfig
from repro.core.policy import SyncPolicy
from repro.exceptions import ConfigurationError
from repro.nn.spec import LayerKind, LayerSpec


class CommScheme(str, enum.Enum):
    """Communication strategies Poseidon can assign to a layer.

    Members are the *vocabulary*; behaviour lives in the corresponding
    :class:`repro.comm.backend.CommBackend` registered under each value.
    """

    PS = "ps"
    SFB = "sfb"
    ADAM = "adam"
    ONEBIT = "onebit"
    RING = "ring"
    HIERPS = "hierps"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


@dataclass(frozen=True)
class NetworkTopology:
    """Rack shape of the network as the analytic cost model sees it.

    Table 1 prices every transmitted parameter equally, which assumes full
    bisection.  On a rack-oversubscribed network a parameter that crosses
    the rack boundary competes for ``1/oversubscription`` of the bandwidth
    its rack's members could inject, so the topology-aware cost of a scheme
    is ``max(flat_cost, rack_uplink_params * oversubscription / L)`` --
    whichever is slower of the busiest NIC and the busiest rack uplink
    (``L`` = nodes per rack; dividing by ``L`` converts the rack-aggregate
    volume into the same per-node-bandwidth time units as Table 1).

    A flat topology (one rack, or ``oversubscription == 1``) makes the
    uplink term a no-op, reproducing Table 1 exactly.

    Attributes:
        racks: number of top-of-rack switches.
        oversubscription: the rack uplink's oversubscription factor.
        rack_size: explicit nodes-per-rack override.  Set by
            :meth:`from_cluster` so the cost model prices exactly the
            rack partition the simulator builds -- they differ when PS
            shards live on dedicated (non-colocated) nodes, which share
            the racks with the workers.  ``None`` derives the size from
            ``racks`` and the worker count alone.
        num_nodes: total node count (workers plus dedicated servers).
            Set by :meth:`from_cluster`; used by
            :meth:`cross_peer_fraction` so traffic towards dedicated
            server racks is priced as cross-rack.  ``None`` assumes the
            colocated testbed (nodes == workers).
    """

    racks: int = 1
    oversubscription: float = 1.0
    rack_size: Optional[int] = None
    num_nodes: Optional[int] = None

    def __post_init__(self) -> None:
        if self.racks < 1:
            raise ConfigurationError(f"racks must be >= 1, got {self.racks}")
        if self.oversubscription < 1.0:
            raise ConfigurationError(
                f"oversubscription must be >= 1.0, got {self.oversubscription}"
            )
        if self.rack_size is not None and self.rack_size < 1:
            raise ConfigurationError(
                f"rack_size must be >= 1, got {self.rack_size}")
        if self.num_nodes is not None and self.num_nodes < 1:
            raise ConfigurationError(
                f"num_nodes must be >= 1, got {self.num_nodes}")

    @classmethod
    def from_cluster(cls, cluster: ClusterConfig) -> "NetworkTopology":
        """The topology of a :class:`~repro.config.ClusterConfig`.

        Captures the cluster's *physical* rack size and node count, so
        worker-count-based cost queries agree with the simulator's node
        partition even when dedicated server nodes extend the racks.
        """
        return cls(racks=cluster.racks,
                   oversubscription=cluster.oversubscription,
                   rack_size=cluster.nodes_per_rack,
                   num_nodes=cluster.num_nodes)

    @property
    def is_flat(self) -> bool:
        """Whether the topology is cost-equivalent to full bisection."""
        return self.racks <= 1 or self.oversubscription <= 1.0

    def nodes_per_rack(self, num_workers: int) -> int:
        """Workers under one top-of-rack switch (contiguous-id blocks)."""
        if num_workers < 1:
            raise ConfigurationError(
                f"num_workers must be >= 1, got {num_workers}")
        if self.rack_size is not None:
            return self.rack_size
        return math.ceil(num_workers / self.racks)

    def num_racks(self, num_workers: int) -> int:
        """Occupied racks (at most ``racks``; fewer for small clusters)."""
        return math.ceil(num_workers / self.nodes_per_rack(num_workers))

    def cross_peer_fraction(self, num_workers: int) -> float:
        """Fraction of a node's peers that live outside its rack.

        The byte split used by schemes whose traffic is spread uniformly
        over peers (PS shards, SFB broadcasts, Adam owners): of the
        ``N - 1`` remote endpoints, ``L - 1`` share the rack.  ``N`` is
        the *node* population -- for colocated clusters that equals the
        worker count, but dedicated server nodes (:attr:`num_nodes` set
        by :meth:`from_cluster`) extend it, so traffic towards racks
        full of PS shards is priced as cross-rack just like the
        simulator routes it.
        """
        total = self.num_nodes if self.num_nodes is not None else num_workers
        if total <= 1 or num_workers < 1:
            return 0.0
        local = min(self.nodes_per_rack(num_workers), total)
        return (total - local) / (total - 1)


@dataclass(frozen=True)
class LayerCostEstimate:
    """Parameter-count cost estimates of one layer under every strategy.

    All values count float parameters transmitted+received per iteration,
    matching the units of Table 1.  ``None`` marks strategies that do not
    apply (SFB/Adam on non-FC layers).
    """

    layer: str
    ps_worker: float
    ps_server: float
    ps_server_and_worker: float
    sfb_worker: Optional[float]
    adam_server_max: Optional[float]
    adam_worker: Optional[float]
    adam_server_and_worker: Optional[float]

    def as_dict(self) -> Dict[str, Optional[float]]:
        """Dictionary view used by the Table 1 experiment renderer."""
        return {
            "ps_worker": self.ps_worker,
            "ps_server": self.ps_server,
            "ps_server_and_worker": self.ps_server_and_worker,
            "sfb_worker": self.sfb_worker,
            "adam_server_max": self.adam_server_max,
            "adam_worker": self.adam_worker,
            "adam_server_and_worker": self.adam_server_and_worker,
        }


# -- raw Table 1 formulas (parameter counts) -------------------------------------


def ps_worker_cost(m: int, n: int) -> float:
    """PS cost at a pure worker node: push the gradient, pull the parameters."""
    _validate_dims(m, n)
    return 2.0 * m * n


def ps_server_cost(m: int, n: int, num_workers: int, num_servers: int) -> float:
    """PS cost at a pure server node holding ``1/P2`` of the layer."""
    _validate_dims(m, n)
    _validate_cluster(num_workers, num_servers)
    return 2.0 * num_workers * m * n / num_servers


def ps_combined_cost(m: int, n: int, num_workers: int, num_servers: int) -> float:
    """PS cost at a node that is both a worker and a server shard."""
    _validate_dims(m, n)
    _validate_cluster(num_workers, num_servers)
    return 2.0 * m * n * (num_workers + num_servers - 2) / num_servers


def sfb_worker_cost(m: int, n: int, batch_size: int, num_workers: int) -> float:
    """SFB cost at a worker: broadcast own factors, receive everyone else's."""
    _validate_dims(m, n)
    if batch_size < 1:
        raise ConfigurationError(f"batch_size must be >= 1, got {batch_size}")
    if num_workers < 1:
        raise ConfigurationError(f"num_workers must be >= 1, got {num_workers}")
    return 2.0 * batch_size * (num_workers - 1) * (m + n)


def adam_server_cost(m: int, n: int, batch_size: int, num_workers: int) -> float:
    """Adam cost at the server shard owning the layer (the hotspot)."""
    _validate_dims(m, n)
    return num_workers * m * n + num_workers * batch_size * (m + n)


def adam_worker_cost(m: int, n: int, batch_size: int) -> float:
    """Adam cost at a worker: push factors, pull the full matrix."""
    _validate_dims(m, n)
    return batch_size * (m + n) + m * n


def adam_combined_cost(m: int, n: int, batch_size: int, num_workers: int) -> float:
    """Adam cost at a node that is both the owning server and a worker."""
    _validate_dims(m, n)
    return (num_workers - 1) * (m * n + batch_size * m + batch_size * n)


def _validate_dims(m: int, n: int) -> None:
    if m < 1 or n < 1:
        raise ConfigurationError(f"matrix dims must be >= 1, got {m}x{n}")


def _validate_cluster(num_workers: int, num_servers: int) -> None:
    if num_workers < 1 or num_servers < 1:
        raise ConfigurationError(
            f"cluster sizes must be >= 1, got P1={num_workers} P2={num_servers}"
        )


# -- model-level cost interface ---------------------------------------------------


class CostModel:
    """Evaluates Table 1 for concrete layers and cluster configurations.

    The cluster's rack topology is threaded into every backend cost query,
    so on an oversubscribed cluster :meth:`best_scheme` and
    :meth:`scheme_cost_params` automatically price cross-rack bytes at a
    premium (and Algorithm 1's candidate set grows by the topology-aware
    collectives); on the default flat cluster they reproduce Table 1
    exactly.
    """

    def __init__(self, cluster: ClusterConfig, batch_size: int,
                 policy=None, compression=None):
        if batch_size < 1:
            raise ConfigurationError(f"batch_size must be >= 1, got {batch_size}")
        self.cluster = cluster
        self.batch_size = int(batch_size)
        # Imported lazily for symmetry with the backend imports below
        # (repro.comm.wire itself has no circular dependency on us).
        from repro.comm.wire import CompressionConfig

        #: Pluggable-compressor spec the byte queries reflect.  Scheme
        #: *choice* (Algorithm 1 / :meth:`best_scheme`) never considers it
        #: -- compression is orthogonal to the routing decision -- but
        #: :meth:`scheme_cost_params` scales each compressible backend's
        #: cost by its :meth:`~repro.comm.backend.CommBackend.compression_cost_factor`.
        parsed = CompressionConfig.parse(compression)
        self.compression: Optional[CompressionConfig] = (
            None if parsed.is_identity else parsed)
        #: Execution semantics the costs are amortized under.  Per-iteration
        #: comm terms scale by the policy's effective sync frequency (1/H
        #: for local SGD), so scheme rankings and byte budgets reflect what
        #: actually crosses the wire per training step.  The default (BSP)
        #: reproduces Table 1 exactly.
        self.policy: SyncPolicy = SyncPolicy.parse(policy)
        # None on flat clusters (the convention decide_schemes also uses):
        # backends are only handed a topology that actually carries a
        # premium, so Table-1-signature cost models keep working anywhere
        # the topology cannot matter.
        topology = NetworkTopology.from_cluster(cluster)
        self.topology: Optional[NetworkTopology] = (
            None if topology.is_flat else topology)

    def _sync_frequency(self, policy) -> float:
        """Effective syncs per iteration of ``policy`` (or the model's own)."""
        resolved = self.policy if policy is None else SyncPolicy.parse(policy)
        return resolved.sync_frequency

    # -- per-layer ------------------------------------------------------------
    def estimate_layer(self, layer: LayerSpec,
                       policy=None) -> LayerCostEstimate:
        """Cost estimates (parameter counts) of one layer under all strategies.

        ``policy`` overrides the model's execution semantics for this query;
        local SGD scales every term by its ``1/H`` sync frequency.
        """
        p1 = self.cluster.num_workers
        p2 = self.cluster.num_servers
        k = self.batch_size
        freq = self._sync_frequency(policy)
        if layer.kind is LayerKind.FC:
            m, n = layer.fc_dims
        else:
            # Non-FC layers are treated as an indecomposable parameter blob;
            # only the dense PS path applies.  Model it as a 1 x P matrix so
            # that the PS formulas stay exact (2 * params per worker, etc.).
            m, n = 1, max(layer.param_count, 1)
        estimate = LayerCostEstimate(
            layer=layer.name,
            ps_worker=freq * ps_worker_cost(m, n),
            ps_server=freq * ps_server_cost(m, n, p1, p2),
            ps_server_and_worker=freq * ps_combined_cost(m, n, p1, p2),
            sfb_worker=(
                freq * sfb_worker_cost(m, n, k, p1)
                if layer.sf_decomposable else None
            ),
            adam_server_max=(
                freq * adam_server_cost(m, n, k, p1)
                if layer.sf_decomposable else None
            ),
            adam_worker=(
                freq * adam_worker_cost(m, n, k)
                if layer.sf_decomposable else None
            ),
            adam_server_and_worker=(
                freq * adam_combined_cost(m, n, k, p1)
                if layer.sf_decomposable else None
            ),
        )
        return estimate

    def best_scheme(self, layer: LayerSpec, policy=None) -> CommScheme:
        """Algorithm 1: the cheapest hybrid-candidate backend for ``layer``.

        On a rack-oversubscribed cluster the comparison is topology-aware:
        costs carry the cross-rack premium and the topology-candidate
        backends (ring all-reduce, hierarchical PS) join the choice.

        The sync-frequency factor of ``policy`` multiplies every candidate
        alike, so the ranking itself is policy-invariant; the parameter is
        accepted for interface symmetry with the cost queries.
        """
        del policy  # uniform scale: cannot change the argmin
        # Imported lazily: repro.comm.backend depends on this module's
        # Table-1 formulas, so a module-level import would be circular.
        from repro.comm.backend import hybrid_choice

        if not layer.sf_decomposable or layer.kind is not LayerKind.FC:
            return CommScheme.PS
        m, n = layer.fc_dims
        return hybrid_choice(m, n, self.cluster.num_workers,
                             self.cluster.num_servers, self.batch_size,
                             sf_eligible=True, topology=self.topology)

    # -- timed Algorithm 1 -------------------------------------------------------
    def scheme_seconds(self, layer: LayerSpec, scheme: CommScheme,
                       policy=None) -> float:
        """Estimated seconds a combined node spends synchronizing ``layer``.

        The timed refinement of Table 1: wire bytes at the cluster's
        effective bandwidth, plus per-message latency on the scheme's
        critical path (:meth:`~repro.comm.backend.CommBackend.latency_messages`),
        plus scheme compute overhead at the cluster's GPU
        (:meth:`~repro.comm.backend.CommBackend.extra_flops` -- the
        outer-product reconstruction factor schemes pay).  Unlike the
        volumetric costs this depends on bandwidth: as the network speeds
        up, the fixed latency and reconstruction terms dominate and the
        cheapest scheme can flip.
        """
        from repro.comm.backend import get_backend

        backend = get_backend(scheme)
        wire_seconds = (self.scheme_cost_bytes(layer, scheme, policy=policy)
                        / (self.cluster.effective_bandwidth_bps / 8.0))
        p1 = self.cluster.num_workers
        p2 = self.cluster.num_servers
        if layer.kind is LayerKind.FC:
            m, n = layer.fc_dims
        else:
            m, n = 1, max(layer.param_count, 1)
        freq = self._sync_frequency(policy)
        latency_seconds = (backend.latency_messages(p1, p2)
                           * self.cluster.latency_seconds)
        compute_seconds = self.cluster.gpu.compute_seconds(
            backend.extra_flops(m, n, p1, p2, self.batch_size))
        return wire_seconds + freq * (latency_seconds + compute_seconds)

    def best_scheme_timed(self, layer: LayerSpec, policy=None) -> CommScheme:
        """Algorithm 1 with a clock: cheapest candidate by :meth:`scheme_seconds`.

        :meth:`best_scheme` compares transmitted parameter *counts*, so its
        choice is bandwidth-invariant.  This variant compares estimated
        wall time instead, which adds two bandwidth-dependent effects: at
        high bandwidth SFB's ``P1 - 1`` per-peer broadcast setups and its
        gradient-reconstruction matmuls stop amortizing, pushing
        near-crossover layers (a transformer's ``C x C`` attention output
        projection) back to PS, while strongly factor-favoured layers (a
        GPT vocabulary head) stay SFB at any swept bandwidth.  Candidate
        set and tie-breaking mirror :func:`~repro.comm.backend.hybrid_choice`.
        """
        from repro.comm.backend import hybrid_candidates, topology_candidates

        if not layer.sf_decomposable or layer.kind is not LayerKind.FC:
            return CommScheme.PS
        candidates = hybrid_candidates()
        if self.topology is not None:
            candidates += topology_candidates()
        best: Optional[tuple] = None
        for backend in candidates:
            if backend.requires_factorization and self.cluster.num_workers <= 1:
                continue
            seconds = self.scheme_seconds(layer, backend.scheme, policy=policy)
            key = (seconds, backend.hybrid_rank)
            if best is None or key < best[0]:
                best = (key, backend.scheme)
        if best is None:
            raise ConfigurationError("no hybrid-candidate backend is registered")
        return best[1]

    # -- bytes-on-the-wire helpers ----------------------------------------------
    def scheme_cost_params(self, layer: LayerSpec, scheme: CommScheme,
                           policy=None) -> float:
        """Parameter count a combined server/worker node moves for ``layer``.

        Topology-aware: on an oversubscribed cluster the value includes the
        scheme's cross-rack premium (see :class:`NetworkTopology`).  Under a
        local-SGD ``policy`` the per-iteration amount shrinks by the sync
        frequency ``1/H``.
        """
        from repro.comm.backend import get_backend

        backend = get_backend(scheme)
        if backend.requires_factorization and not layer.sf_decomposable:
            raise ConfigurationError(
                f"layer {layer.name!r} is not SF-decomposable; "
                f"{scheme} does not apply"
            )
        is_fc = layer.kind is LayerKind.FC
        if is_fc:
            m, n = layer.fc_dims
        else:
            m, n = 1, max(layer.param_count, 1)
        freq = self._sync_frequency(policy)
        # The compressor only touches FC weight matrices (the shared scope
        # rule of repro.comm.wire); conv/bias blobs ship dense everywhere.
        factor = (backend.compression_cost_factor(self.compression, m, n)
                  if is_fc and self.compression is not None else 1.0)
        if self.topology is None:
            return freq * factor * backend.cost(
                m, n, self.cluster.num_workers, self.cluster.num_servers,
                self.batch_size)
        return freq * factor * backend.cost(
            m, n, self.cluster.num_workers, self.cluster.num_servers,
            self.batch_size, topology=self.topology)

    def scheme_cost_bytes(self, layer: LayerSpec, scheme: CommScheme,
                          policy=None) -> float:
        """Same as :meth:`scheme_cost_params` but in bytes."""
        return (self.scheme_cost_params(layer, scheme, policy=policy)
                * units.FLOAT32_BYTES)
