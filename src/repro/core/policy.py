"""Execution-semantics policies: BSP, SSP, async, and local SGD.

The trainer historically ended every iteration at a BSP barrier -- the
synchronous corner of the consistency space.  A :class:`SyncPolicy` names a
point on the full axis:

``bsp``
    Bulk-synchronous: all workers rendezvous every iteration (the default,
    and the only mode before this module existed).
``ssp(s)``
    Stale-synchronous parallel with bound ``s``: a worker may run ahead of
    the slowest worker by at most ``s`` iterations (``s = 0`` degenerates to
    BSP).  Backed by :class:`repro.core.staleness.SSPClock`.
``async``
    Fully asynchronous push/pull: no inter-worker gate at all; the
    parameter server applies each worker's update as it arrives.
``local_sgd(H)``
    Local SGD with period ``H``: workers take ``H`` purely local optimizer
    steps, then average parameters across the cluster (``H = 1``
    degenerates to BSP).  Wire traffic drops by ``H``x.

Policies are immutable and hashable so they can key caches and ride inside
frozen configs.  ``SyncPolicy.parse`` accepts the compact string forms used
by CLIs and experiment tables: ``"bsp"``, ``"ssp"``/``"ssp(2)"``,
``"async"``, ``"local_sgd(4)"``/``"local-4"``.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Optional, Tuple, Union

from repro.exceptions import ConfigurationError

#: Recognised policy kinds, in presentation order.
POLICY_KINDS: Tuple[str, ...] = ("bsp", "ssp", "async", "local_sgd")

_PAREN = re.compile(r"^(?P<kind>[a-z_]+)\((?P<arg>\d+)\)$")
_DASH = re.compile(r"^(?P<kind>[a-z_]+)-(?P<arg>\d+)$")


@dataclass(frozen=True)
class SyncPolicy:
    """One point on the execution-semantics axis.

    Attributes:
        kind: one of :data:`POLICY_KINDS`.
        staleness: SSP bound ``s`` (meaningful for ``ssp``; 0 otherwise).
        sync_period: local-SGD period ``H`` (meaningful for ``local_sgd``;
            1 otherwise).
    """

    kind: str = "bsp"
    staleness: int = 0
    sync_period: int = 1

    def __post_init__(self) -> None:
        if self.kind not in POLICY_KINDS:
            raise ConfigurationError(
                f"unknown sync policy kind {self.kind!r}; "
                f"expected one of {POLICY_KINDS}")
        if self.staleness < 0:
            raise ConfigurationError(
                f"staleness must be >= 0, got {self.staleness}")
        if self.sync_period < 1:
            raise ConfigurationError(
                f"sync_period must be >= 1, got {self.sync_period}")
        if self.kind != "ssp" and self.staleness:
            raise ConfigurationError(
                f"staleness={self.staleness} only applies to ssp policies")
        if self.kind != "local_sgd" and self.sync_period != 1:
            raise ConfigurationError(
                f"sync_period={self.sync_period} only applies to local_sgd")

    @classmethod
    def parse(cls, spec: Union["SyncPolicy", str, None]) -> "SyncPolicy":
        """Coerce a policy spec into a :class:`SyncPolicy`.

        Accepts an existing policy (returned unchanged), ``None`` (BSP), or
        a string: ``"bsp"``, ``"ssp"`` (s=1), ``"ssp(2)"``, ``"ssp-2"``,
        ``"async"``, ``"local_sgd(4)"``, ``"local_sgd-4"``, ``"local-4"``.
        """
        if spec is None:
            return BSP
        if isinstance(spec, cls):
            return spec
        if not isinstance(spec, str):
            raise ConfigurationError(
                f"cannot parse sync policy from {type(spec).__name__}")
        text = spec.strip().lower()
        match = _PAREN.match(text) or _DASH.match(text)
        kind, arg = (match.group("kind"), int(match.group("arg"))) if match \
            else (text, None)
        if kind == "local":  # shorthand used in figure labels
            kind = "local_sgd"
        if kind == "bsp":
            if arg not in (None, 0):
                raise ConfigurationError(f"bsp takes no argument: {spec!r}")
            return BSP
        if kind == "ssp":
            return cls(kind="ssp", staleness=1 if arg is None else arg)
        if kind == "async":
            if arg is not None:
                raise ConfigurationError(f"async takes no argument: {spec!r}")
            return cls(kind="async")
        if kind == "local_sgd":
            return cls(kind="local_sgd", sync_period=1 if arg is None else arg)
        raise ConfigurationError(
            f"unknown sync policy {spec!r}; expected one of {POLICY_KINDS}")

    # -- derived properties ------------------------------------------------

    @property
    def is_bsp_equivalent(self) -> bool:
        """True when the policy degenerates to BSP semantics.

        ``ssp(0)`` (nobody may run ahead) and ``local_sgd(1)`` (average
        after every step) rendezvous every iteration exactly as BSP does.
        Degenerate policies route through the unchanged BSP execution path
        so they stay bit-identical to it by construction.
        """
        if self.kind == "bsp":
            return True
        if self.kind == "ssp" and self.staleness == 0:
            return True
        if self.kind == "local_sgd" and self.sync_period == 1:
            return True
        return False

    @property
    def averages_parameters(self) -> bool:
        """True when sync rounds average parameters instead of gradients."""
        return self.kind == "local_sgd" and self.sync_period > 1

    @property
    def relaxed_consistency(self) -> bool:
        """True when workers may observe stale parameters (ssp s>0, async).

        Relaxed policies need a parameter server that applies each push as
        it arrives (``updates_per_version=1``) and pulls that do not wait
        for the current iteration's version.
        """
        if self.kind == "async":
            return True
        return self.kind == "ssp" and self.staleness > 0

    @property
    def bound(self) -> Optional[int]:
        """Staleness bound enforced between workers (None = unbounded)."""
        if self.kind == "async":
            return None
        if self.kind == "ssp":
            return self.staleness
        return 0

    @property
    def sync_frequency(self) -> float:
        """Fraction of iterations that put sync traffic on the wire.

        Local SGD communicates every ``H``-th iteration (1/H); every other
        policy communicates each iteration (frequency 1.0 -- SSP and async
        change *when* a worker may proceed, not how often bytes move).
        """
        if self.kind == "local_sgd":
            return 1.0 / self.sync_period
        return 1.0

    def ready(self, worker_clock: int, min_clock: int) -> bool:
        """Gate: may a worker at ``worker_clock`` start its next iteration?

        The SSP invariant -- no worker runs more than ``bound`` iterations
        ahead of the slowest (``min_clock``).  BSP is the ``bound = 0``
        case; async never blocks.
        """
        if self.bound is None:
            return True
        return worker_clock - min_clock <= self.bound

    def __str__(self) -> str:
        if self.kind == "ssp":
            return f"ssp({self.staleness})"
        if self.kind == "local_sgd":
            return f"local_sgd({self.sync_period})"
        return self.kind


#: The default policy: bulk-synchronous parallel.
BSP = SyncPolicy()
