"""Bounded-staleness (SSP) consistency.

The paper focuses on bulk-synchronous execution but notes that "Poseidon's
design can easily be applied to asynchronous or bounded-asynchronous
consistency models [12, 8]" (Section 1).  This module provides that
extension point: a Stale Synchronous Parallel clock in the style of
SSPTable/Bösen — every worker advances its own clock after each iteration,
and a worker may run ahead of the slowest worker by at most ``staleness``
clocks before it must wait.

With ``staleness = 0`` the controller degenerates to BSP (every worker waits
for every other worker at every clock), which is the configuration all
paper experiments use; larger bounds trade gradient freshness for straggler
tolerance.
"""

from __future__ import annotations

import threading
from typing import Dict, List, Optional

from repro.exceptions import TrainingError


class SSPClock:
    """A stale-synchronous-parallel clock shared by all workers."""

    def __init__(self, num_workers: int, staleness: int = 0):
        if num_workers < 1:
            raise TrainingError(f"num_workers must be >= 1, got {num_workers}")
        if staleness < 0:
            raise TrainingError(f"staleness must be >= 0, got {staleness}")
        self.num_workers = int(num_workers)
        self.staleness = int(staleness)
        self._clocks: List[int] = [0] * self.num_workers
        self._condition = threading.Condition()

    # -- inspection ---------------------------------------------------------------
    def clock(self, worker_id: int) -> int:
        """Current clock of one worker."""
        self._check_worker(worker_id)
        with self._condition:
            return self._clocks[worker_id]

    def min_clock(self) -> int:
        """Clock of the slowest worker (the 'global' clock)."""
        with self._condition:
            return min(self._clocks)

    def lag(self, worker_id: int) -> int:
        """How far ahead of the slowest worker this worker currently is."""
        self._check_worker(worker_id)
        with self._condition:
            return self._clocks[worker_id] - min(self._clocks)

    def snapshot(self) -> Dict[int, int]:
        """Copy of every worker's clock."""
        with self._condition:
            return dict(enumerate(self._clocks))

    # -- protocol -------------------------------------------------------------------
    def advance(self, worker_id: int, timeout: Optional[float] = 60.0) -> int:
        """Finish one iteration: bump the worker's clock, then enforce the bound.

        Blocks while the worker is more than ``staleness`` clocks ahead of the
        slowest worker.  Returns the worker's new clock value.

        Raises:
            TrainingError: if the wait exceeds ``timeout`` (straggler guard).
        """
        self._check_worker(worker_id)
        with self._condition:
            self._clocks[worker_id] += 1
            new_clock = self._clocks[worker_id]
            self._condition.notify_all()

            def _within_bound() -> bool:
                return new_clock - min(self._clocks) <= self.staleness

            if not self._condition.wait_for(_within_bound, timeout=timeout):
                raise TrainingError(
                    f"worker {worker_id} blocked at clock {new_clock}: slowest "
                    f"worker is at {min(self._clocks)} with staleness bound "
                    f"{self.staleness}"
                )
        return new_clock

    def can_proceed(self, worker_id: int) -> bool:
        """Whether the worker could start its next iteration without blocking."""
        self._check_worker(worker_id)
        with self._condition:
            return (self._clocks[worker_id] + 1 - min(self._clocks)) <= self.staleness \
                or self._clocks[worker_id] == min(self._clocks)

    def _check_worker(self, worker_id: int) -> None:
        if not 0 <= worker_id < self.num_workers:
            raise TrainingError(
                f"worker_id {worker_id} out of range [0, {self.num_workers})"
            )


class StalenessBoundedQueue:
    """Per-layer update buffer with bounded version staleness.

    A lightweight companion to :class:`SSPClock` for asynchronous parameter
    serving: readers may observe parameters that are at most ``staleness``
    versions behind the newest applied update, mirroring how an SSP parameter
    server answers reads.
    """

    def __init__(self, staleness: int = 0):
        if staleness < 0:
            raise TrainingError(f"staleness must be >= 0, got {staleness}")
        self.staleness = int(staleness)
        self._latest_version = 0
        self._condition = threading.Condition()

    @property
    def latest_version(self) -> int:
        """Version of the most recent applied update."""
        with self._condition:
            return self._latest_version

    def publish(self, version: int) -> None:
        """Record that ``version`` has been applied to the global parameters."""
        with self._condition:
            if version > self._latest_version:
                self._latest_version = version
                self._condition.notify_all()

    def wait_for_read(self, requested_version: int,
                      timeout: Optional[float] = 60.0) -> int:
        """Block until a read at ``requested_version`` satisfies the bound.

        Returns the version the read will observe (the newest available).

        Raises:
            TrainingError: on timeout.
        """
        with self._condition:
            def _fresh_enough() -> bool:
                return self._latest_version >= requested_version - self.staleness

            if not self._condition.wait_for(_fresh_enough, timeout=timeout):
                raise TrainingError(
                    f"read at version {requested_version} timed out; newest "
                    f"applied update is {self._latest_version} with staleness "
                    f"bound {self.staleness}"
                )
            return self._latest_version
