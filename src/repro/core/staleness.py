"""Bounded-staleness (SSP) consistency.

The paper focuses on bulk-synchronous execution but notes that "Poseidon's
design can easily be applied to asynchronous or bounded-asynchronous
consistency models [12, 8]" (Section 1).  This module provides that
extension point: a Stale Synchronous Parallel clock in the style of
SSPTable/Bösen — every worker advances its own clock after each iteration,
and a worker may run ahead of the slowest worker by at most ``staleness``
clocks before it must wait.

With ``staleness = 0`` the controller degenerates to BSP (every worker waits
for every other worker at every clock), which is the configuration all
paper experiments use; larger bounds trade gradient freshness for straggler
tolerance.
"""

from __future__ import annotations

import threading
from typing import Dict, List, Optional

from repro.exceptions import SyncTimeout, TrainingError, WorkerFailure

#: Sentinel distinguishing "no timeout given" from an explicit ``None``
#: (= wait forever) in :meth:`SSPClock.advance`.
_USE_DEFAULT: Optional[float] = object()  # type: ignore[assignment]


class SSPClock:
    """A stale-synchronous-parallel clock shared by all workers.

    Args:
        num_workers: workers sharing the clock.
        staleness: SSP bound ``s``; ``None`` disables the bound entirely
            (fully asynchronous -- ``advance`` never blocks).
        default_timeout: straggler guard used by :meth:`advance` when the
            caller passes no explicit timeout.  The trainer plumbs its
            ``sync_timeout`` here so a slow worker fails with the same
            deadline as every other wait in the system (historically this
            was hardcoded to 60 s regardless of the trainer setting).
    """

    def __init__(self, num_workers: int, staleness: Optional[int] = 0,
                 default_timeout: Optional[float] = 60.0):
        if num_workers < 1:
            raise TrainingError(f"num_workers must be >= 1, got {num_workers}")
        if staleness is not None and staleness < 0:
            raise TrainingError(f"staleness must be >= 0, got {staleness}")
        self.num_workers = int(num_workers)
        self.staleness = None if staleness is None else int(staleness)
        self.default_timeout = default_timeout
        self._clocks: List[int] = [0] * self.num_workers
        self._condition = threading.Condition()
        self._removed: set = set()
        self._abort_reason: Optional[BaseException] = None

    # -- inspection ---------------------------------------------------------------
    def clock(self, worker_id: int) -> int:
        """Current clock of one worker."""
        self._check_worker(worker_id)
        with self._condition:
            return self._clocks[worker_id]

    def min_clock(self) -> int:
        """Clock of the slowest live worker (the 'global' clock)."""
        with self._condition:
            return self._min_locked()

    def lag(self, worker_id: int) -> int:
        """How far ahead of the slowest worker this worker currently is."""
        self._check_worker(worker_id)
        with self._condition:
            return self._clocks[worker_id] - self._min_locked()

    def snapshot(self) -> Dict[int, int]:
        """Copy of every worker's clock."""
        with self._condition:
            return dict(enumerate(self._clocks))

    # -- protocol -------------------------------------------------------------------
    def advance(self, worker_id: int,
                timeout: Optional[float] = _USE_DEFAULT) -> int:
        """Finish one iteration: bump the worker's clock, then enforce the bound.

        Blocks while the worker is more than ``staleness`` clocks ahead of the
        slowest worker (never, when the bound is ``None``).  Returns the
        worker's new clock value.

        Args:
            timeout: straggler guard; omitted, the clock's
                ``default_timeout`` applies (``None`` waits forever).

        Raises:
            TrainingError: if the wait exceeds the timeout.
        """
        self._check_worker(worker_id)
        if timeout is _USE_DEFAULT:
            timeout = self.default_timeout
        with self._condition:
            if self._abort_reason is not None:
                raise self._wrap_abort(worker_id)
            self._clocks[worker_id] += 1
            new_clock = self._clocks[worker_id]
            self._condition.notify_all()
            if self.staleness is None:
                return new_clock

            def _within_bound() -> bool:
                return (self._abort_reason is not None
                        or new_clock - self._min_locked() <= self.staleness)

            if not self._condition.wait_for(_within_bound, timeout=timeout):
                raise SyncTimeout(
                    f"worker {worker_id} blocked at clock {new_clock}: slowest "
                    f"worker is at {self._min_locked()} with staleness bound "
                    f"{self.staleness}"
                )
            if self._abort_reason is not None:
                raise self._wrap_abort(worker_id)
        return new_clock

    def can_proceed(self, worker_id: int) -> bool:
        """Whether the worker could start its next iteration without blocking."""
        self._check_worker(worker_id)
        if self.staleness is None:
            return True
        with self._condition:
            minimum = self._min_locked()
            return (self._clocks[worker_id] + 1 - minimum) <= self.staleness \
                or self._clocks[worker_id] == minimum

    # -- fault-tolerance hooks -------------------------------------------------------
    def remove_worker(self, worker_id: int) -> None:
        """Exclude a dead worker from the staleness bound (drop mode).

        The dead worker's frozen clock no longer counts toward the
        minimum, so survivors never stall waiting for a ghost.
        """
        self._check_worker(worker_id)
        with self._condition:
            self._removed.add(worker_id)
            if len(self._removed) >= self.num_workers:
                raise TrainingError("cannot drop the last remaining worker")
            self._condition.notify_all()

    def abort(self, exc: BaseException) -> None:
        """Wake every blocked ``advance`` with a failure."""
        with self._condition:
            self._abort_reason = exc
            self._condition.notify_all()

    def clear_abort(self) -> None:
        """Re-arm the clock after recovery handled the abort."""
        with self._condition:
            self._abort_reason = None

    def restore(self, clocks: Dict[int, int]) -> None:
        """Restore clocks from a :meth:`snapshot` (restart recovery)."""
        with self._condition:
            for worker_id, value in clocks.items():
                self._check_worker(worker_id)
                self._clocks[worker_id] = int(value)
            self._removed.clear()
            self._abort_reason = None
            self._condition.notify_all()

    def _min_locked(self) -> int:
        if not self._removed:
            return min(self._clocks)
        live = [clock for worker, clock in enumerate(self._clocks)
                if worker not in self._removed]
        return min(live) if live else min(self._clocks)

    def _wrap_abort(self, worker_id: int) -> BaseException:
        reason = self._abort_reason
        if isinstance(reason, WorkerFailure):
            return WorkerFailure(
                f"SSP clock aborted at worker {worker_id}: {reason}",
                worker_id=reason.worker_id, iteration=reason.iteration,
                cascade=True)
        return TrainingError(f"SSP clock aborted at worker {worker_id}: {reason}")

    def _check_worker(self, worker_id: int) -> None:
        if not 0 <= worker_id < self.num_workers:
            raise TrainingError(
                f"worker_id {worker_id} out of range [0, {self.num_workers})"
            )


class StalenessBoundedQueue:
    """Per-layer update buffer with bounded version staleness.

    A lightweight companion to :class:`SSPClock` for asynchronous parameter
    serving: readers may observe parameters that are at most ``staleness``
    versions behind the newest applied update, mirroring how an SSP parameter
    server answers reads.
    """

    def __init__(self, staleness: int = 0):
        if staleness < 0:
            raise TrainingError(f"staleness must be >= 0, got {staleness}")
        self.staleness = int(staleness)
        self._latest_version = 0
        self._condition = threading.Condition()

    @property
    def latest_version(self) -> int:
        """Version of the most recent applied update."""
        with self._condition:
            return self._latest_version

    def publish(self, version: int) -> None:
        """Record that ``version`` has been applied to the global parameters."""
        with self._condition:
            if version > self._latest_version:
                self._latest_version = version
                self._condition.notify_all()

    def wait_for_read(self, requested_version: int,
                      timeout: Optional[float] = 60.0) -> int:
        """Block until a read at ``requested_version`` satisfies the bound.

        Returns the version the read will observe (the newest available).

        Raises:
            TrainingError: on timeout.
        """
        with self._condition:
            def _fresh_enough() -> bool:
                return self._latest_version >= requested_version - self.staleness

            if not self._condition.wait_for(_fresh_enough, timeout=timeout):
                raise SyncTimeout(
                    f"read at version {requested_version} timed out; newest "
                    f"applied update is {self._latest_version} with staleness "
                    f"bound {self.staleness}"
                )
            return self._latest_version
