"""Bounded-staleness (SSP) consistency.

The paper focuses on bulk-synchronous execution but notes that "Poseidon's
design can easily be applied to asynchronous or bounded-asynchronous
consistency models [12, 8]" (Section 1).  This module provides that
extension point: a Stale Synchronous Parallel clock in the style of
SSPTable/Bösen — every worker advances its own clock after each iteration,
and a worker may run ahead of the slowest worker by at most ``staleness``
clocks before it must wait.

With ``staleness = 0`` the controller degenerates to BSP (every worker waits
for every other worker at every clock), which is the configuration all
paper experiments use; larger bounds trade gradient freshness for straggler
tolerance.
"""

from __future__ import annotations

import threading
from typing import Dict, List, Optional

from repro.exceptions import TrainingError

#: Sentinel distinguishing "no timeout given" from an explicit ``None``
#: (= wait forever) in :meth:`SSPClock.advance`.
_USE_DEFAULT: Optional[float] = object()  # type: ignore[assignment]


class SSPClock:
    """A stale-synchronous-parallel clock shared by all workers.

    Args:
        num_workers: workers sharing the clock.
        staleness: SSP bound ``s``; ``None`` disables the bound entirely
            (fully asynchronous -- ``advance`` never blocks).
        default_timeout: straggler guard used by :meth:`advance` when the
            caller passes no explicit timeout.  The trainer plumbs its
            ``sync_timeout`` here so a slow worker fails with the same
            deadline as every other wait in the system (historically this
            was hardcoded to 60 s regardless of the trainer setting).
    """

    def __init__(self, num_workers: int, staleness: Optional[int] = 0,
                 default_timeout: Optional[float] = 60.0):
        if num_workers < 1:
            raise TrainingError(f"num_workers must be >= 1, got {num_workers}")
        if staleness is not None and staleness < 0:
            raise TrainingError(f"staleness must be >= 0, got {staleness}")
        self.num_workers = int(num_workers)
        self.staleness = None if staleness is None else int(staleness)
        self.default_timeout = default_timeout
        self._clocks: List[int] = [0] * self.num_workers
        self._condition = threading.Condition()

    # -- inspection ---------------------------------------------------------------
    def clock(self, worker_id: int) -> int:
        """Current clock of one worker."""
        self._check_worker(worker_id)
        with self._condition:
            return self._clocks[worker_id]

    def min_clock(self) -> int:
        """Clock of the slowest worker (the 'global' clock)."""
        with self._condition:
            return min(self._clocks)

    def lag(self, worker_id: int) -> int:
        """How far ahead of the slowest worker this worker currently is."""
        self._check_worker(worker_id)
        with self._condition:
            return self._clocks[worker_id] - min(self._clocks)

    def snapshot(self) -> Dict[int, int]:
        """Copy of every worker's clock."""
        with self._condition:
            return dict(enumerate(self._clocks))

    # -- protocol -------------------------------------------------------------------
    def advance(self, worker_id: int,
                timeout: Optional[float] = _USE_DEFAULT) -> int:
        """Finish one iteration: bump the worker's clock, then enforce the bound.

        Blocks while the worker is more than ``staleness`` clocks ahead of the
        slowest worker (never, when the bound is ``None``).  Returns the
        worker's new clock value.

        Args:
            timeout: straggler guard; omitted, the clock's
                ``default_timeout`` applies (``None`` waits forever).

        Raises:
            TrainingError: if the wait exceeds the timeout.
        """
        self._check_worker(worker_id)
        if timeout is _USE_DEFAULT:
            timeout = self.default_timeout
        with self._condition:
            self._clocks[worker_id] += 1
            new_clock = self._clocks[worker_id]
            self._condition.notify_all()
            if self.staleness is None:
                return new_clock

            def _within_bound() -> bool:
                return new_clock - min(self._clocks) <= self.staleness

            if not self._condition.wait_for(_within_bound, timeout=timeout):
                raise TrainingError(
                    f"worker {worker_id} blocked at clock {new_clock}: slowest "
                    f"worker is at {min(self._clocks)} with staleness bound "
                    f"{self.staleness}"
                )
        return new_clock

    def can_proceed(self, worker_id: int) -> bool:
        """Whether the worker could start its next iteration without blocking."""
        self._check_worker(worker_id)
        if self.staleness is None:
            return True
        with self._condition:
            return (self._clocks[worker_id] + 1 - min(self._clocks)) <= self.staleness \
                or self._clocks[worker_id] == min(self._clocks)

    def _check_worker(self, worker_id: int) -> None:
        if not 0 <= worker_id < self.num_workers:
            raise TrainingError(
                f"worker_id {worker_id} out of range [0, {self.num_workers})"
            )


class StalenessBoundedQueue:
    """Per-layer update buffer with bounded version staleness.

    A lightweight companion to :class:`SSPClock` for asynchronous parameter
    serving: readers may observe parameters that are at most ``staleness``
    versions behind the newest applied update, mirroring how an SSP parameter
    server answers reads.
    """

    def __init__(self, staleness: int = 0):
        if staleness < 0:
            raise TrainingError(f"staleness must be >= 0, got {staleness}")
        self.staleness = int(staleness)
        self._latest_version = 0
        self._condition = threading.Condition()

    @property
    def latest_version(self) -> int:
        """Version of the most recent applied update."""
        with self._condition:
            return self._latest_version

    def publish(self, version: int) -> None:
        """Record that ``version`` has been applied to the global parameters."""
        with self._condition:
            if version > self._latest_version:
                self._latest_version = version
                self._condition.notify_all()

    def wait_for_read(self, requested_version: int,
                      timeout: Optional[float] = 60.0) -> int:
        """Block until a read at ``requested_version`` satisfies the bound.

        Returns the version the read will observe (the newest available).

        Raises:
            TrainingError: on timeout.
        """
        with self._condition:
            def _fresh_enough() -> bool:
                return self._latest_version >= requested_version - self.staleness

            if not self._condition.wait_for(_fresh_enough, timeout=timeout):
                raise TrainingError(
                    f"read at version {requested_version} timed out; newest "
                    f"applied update is {self._latest_version} with staleness "
                    f"bound {self.staleness}"
                )
            return self._latest_version
