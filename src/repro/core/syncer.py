"""Per-layer syncers.

"The client library will create a syncer for each NN layer during network
assembling (so that each layer one-to-one maps to one syncer), accounting
for its parameter synchronization" (Section 4.1).  A syncer owns the
layer's communication: it moves gradients out of the layer (``Move``),
ships them using the scheme the coordinator selected (``Send``), waits for
the synchronized result (``Receive``) and installs it back into the layer
(``Move`` again) -- the exact sequence of Algorithm 2's ``SYNC`` function.

The functional syncers below operate on real numpy layers and the
functional substrates in :mod:`repro.comm`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

import numpy as np

from repro.comm.adam import AdamSFServer
from repro.comm.averaging import ParameterAverager
from repro.comm.parameter_server import ShardedParameterServer
from repro.comm.quantization import OneBitQuantizer, dequantize_dict, quantized_nbytes
from repro.comm.sfb import SufficientFactorBroadcaster
from repro.core.cost_model import CommScheme
from repro.core.policy import BSP, SyncPolicy
from repro.exceptions import TrainingError
from repro.nn.layers.base import Layer
from repro.nn.layers.dense import Dense
from repro.nn.optim import SGD
from repro.nn.sufficient_factors import factorize_dense_gradient


@dataclass
class SyncStats:
    """Byte counters accumulated by one syncer."""

    bytes_sent: int = 0
    bytes_received: int = 0
    syncs: int = 0

    @property
    def total(self) -> int:
        """Total bytes in both directions."""
        return self.bytes_sent + self.bytes_received


class Syncer:
    """Synchronizes one layer's parameters under a fixed scheme."""

    def __init__(self, worker_id: int, layer: Layer, scheme: CommScheme,
                 ps: Optional[ShardedParameterServer] = None,
                 sfb: Optional[SufficientFactorBroadcaster] = None,
                 adam: Optional[AdamSFServer] = None,
                 local_optimizer: Optional[SGD] = None,
                 quantizer: Optional[OneBitQuantizer] = None,
                 compressor=None,
                 aggregation: str = "mean",
                 policy: Optional[SyncPolicy] = None,
                 sync_timeout: Optional[float] = 30.0):
        self.worker_id = int(worker_id)
        self.layer = layer
        self.scheme = CommScheme(scheme)
        self.ps = ps
        self.sfb = sfb
        self.adam = adam
        self.local_optimizer = local_optimizer
        self.quantizer = quantizer
        #: Optional pluggable :class:`repro.comm.compression.Compressor`;
        #: when set on a dense-gradient scheme the push travels lossy at
        #: the compressed wire size while the pull stays dense.
        self.compressor = compressor
        self.aggregation = aggregation
        self.policy = BSP if policy is None else policy
        #: Deadline for every blocking wait on this syncer's sync path; the
        #: trainer plumbs its ``sync_timeout`` here so a dead peer fails
        #: the run with :class:`~repro.exceptions.SyncTimeout` instead of
        #: hanging on a substrate's historical hardcoded default.
        self.sync_timeout = sync_timeout
        self.stats = SyncStats()
        self._staged_grads: Optional[Dict[str, np.ndarray]] = None
        self._validate_backends()

    def ready(self, worker_clock: int, min_clock: int) -> bool:
        """Staleness gate: may this worker start its next iteration?

        Delegates to the policy's SSP invariant -- a worker at
        ``worker_clock`` may proceed only while it leads the slowest worker
        (``min_clock``) by at most the policy's staleness bound.  BSP is the
        bound-0 case; async always answers True.
        """
        return self.policy.ready(worker_clock, min_clock)

    def _pull_min_version(self, iteration: int) -> int:
        """Server version a pull must wait for under the current policy.

        BSP-like policies demand the version that includes every worker's
        ``iteration`` contribution.  Relaxed-consistency policies
        (ssp(s>0), async) apply each push on arrival, so the puller's own
        update is already in whatever version is current -- no wait.
        """
        if self.policy.relaxed_consistency:
            return 0
        return iteration + 1

    def _validate_backends(self) -> None:
        if self.scheme in (CommScheme.PS, CommScheme.ONEBIT) and self.ps is None:
            raise TrainingError(
                f"syncer for {self.layer.name!r}: scheme {self.scheme} needs a parameter server"
            )
        if self.scheme is CommScheme.ONEBIT and self.quantizer is None:
            raise TrainingError(
                f"syncer for {self.layer.name!r}: 1-bit scheme needs a quantizer"
            )
        if self.scheme is CommScheme.SFB:
            if self.sfb is None or self.local_optimizer is None:
                raise TrainingError(
                    f"syncer for {self.layer.name!r}: SFB needs a broadcaster and a local optimizer"
                )
            if not isinstance(self.layer, Dense):
                raise TrainingError(
                    f"syncer for {self.layer.name!r}: SFB applies only to Dense layers"
                )
        if self.scheme is CommScheme.ADAM:
            if self.adam is None:
                raise TrainingError(
                    f"syncer for {self.layer.name!r}: Adam scheme needs an AdamSFServer"
                )
            if not isinstance(self.layer, Dense):
                raise TrainingError(
                    f"syncer for {self.layer.name!r}: Adam scheme applies only to Dense layers"
                )

    # -- paper API ----------------------------------------------------------------
    def move_out(self) -> Dict[str, np.ndarray]:
        """``Move(GPU2CPU)``: stage the layer's gradients for communication."""
        self._staged_grads = self.layer.get_grads()
        return self._staged_grads

    def send_and_receive(self, iteration: int) -> SyncStats:
        """``Send`` then ``Receive`` then ``Move(CPU2GPU)`` for one iteration.

        Blocks until the layer's parameters reflect every worker's
        contribution for ``iteration`` (BSP).
        """
        if self._staged_grads is None:
            self.move_out()
        self._scheme_handler()(iteration)
        self._staged_grads = None
        self.stats.syncs += 1
        return self.stats

    def sync(self, iteration: int) -> SyncStats:
        """Full syncer job: Move out, Send, Receive, Move in (Algorithm 2)."""
        self.move_out()
        return self.send_and_receive(iteration)

    def _scheme_handler(self):
        """The bound method implementing this syncer's scheme.

        Backends whose schemes are not implemented by this class provide a
        subclass overriding this hook (and ``_validate_backends``), e.g.
        :class:`repro.comm.ring.RingSyncer`.
        """
        try:
            if self.scheme is CommScheme.PS and self.compressor is not None:
                return self._sync_compressed
            return {
                CommScheme.PS: self._sync_ps,
                CommScheme.ONEBIT: self._sync_onebit,
                CommScheme.SFB: self._sync_sfb,
                CommScheme.ADAM: self._sync_adam,
            }[self.scheme]
        except KeyError:
            raise TrainingError(
                f"scheme {self.scheme} has no functional handler in Syncer; "
                f"its backend must supply a Syncer subclass via make_syncer"
            ) from None

    # -- scheme implementations ------------------------------------------------------
    def _sync_ps(self, iteration: int) -> None:
        assert self.ps is not None and self._staged_grads is not None
        sent = self.ps.push(self.worker_id, self.layer.name, self._staged_grads)
        # copy=False: set_params copies into the layer, so all workers can
        # share the server's per-version read-only snapshot.
        params = self.ps.pull(self.worker_id, self.layer.name,
                              min_version=self._pull_min_version(iteration),
                              timeout=self.sync_timeout, copy=False)
        self.layer.set_params(params)
        self.stats.bytes_sent += sent
        self.stats.bytes_received += sum(int(p.nbytes) for p in params.values())

    def _sync_compressed(self, iteration: int) -> None:
        """PS sync with a pluggable compressor: lossy push, dense pull."""
        assert self.ps is not None and self.compressor is not None
        assert self._staged_grads is not None
        lossy_grads, wire_bytes = self.compressor.compress(
            self.layer.name, self._staged_grads)
        self.ps.push(self.worker_id, self.layer.name, lossy_grads,
                     nbytes=wire_bytes)
        params = self.ps.pull(self.worker_id, self.layer.name,
                              min_version=self._pull_min_version(iteration),
                              timeout=self.sync_timeout, copy=False)
        self.layer.set_params(params)
        self.stats.bytes_sent += wire_bytes
        self.stats.bytes_received += sum(int(p.nbytes) for p in params.values())

    def _sync_onebit(self, iteration: int) -> None:
        assert self.ps is not None and self.quantizer is not None
        assert self._staged_grads is not None
        quantized, dense = self.quantizer.quantize_dict(
            self.layer.name, self._staged_grads)
        wire_bytes = quantized_nbytes(quantized, dense)
        lossy_grads = dequantize_dict(quantized, dense)
        self.ps.push(self.worker_id, self.layer.name, lossy_grads, nbytes=wire_bytes)
        params = self.ps.pull(self.worker_id, self.layer.name,
                              min_version=self._pull_min_version(iteration),
                              timeout=self.sync_timeout, copy=False)
        self.layer.set_params(params)
        self.stats.bytes_sent += wire_bytes
        self.stats.bytes_received += sum(int(p.nbytes) for p in params.values())

    def _sync_sfb(self, iteration: int) -> None:
        assert self.sfb is not None and self.local_optimizer is not None
        dense_layer = self.layer
        assert isinstance(dense_layer, Dense)
        u, v = dense_layer.sufficient_factors()
        factors = factorize_dense_gradient(u, v)
        extras = {"bias": dense_layer.grads["bias"]}
        sent = self.sfb.publish(self.worker_id, self.layer.name, iteration, factors,
                                extras=extras)
        contributions = self.sfb.collect(self.worker_id, self.layer.name,
                                         iteration, timeout=self.sync_timeout)
        weight_grad, extra_grads = self.sfb.aggregate(
            contributions, aggregation=self.aggregation)
        self.local_optimizer.apply(
            f"{self.layer.name}/weight", dense_layer.params["weight"], weight_grad)
        if "bias" in extra_grads:
            self.local_optimizer.apply(
                f"{self.layer.name}/bias", dense_layer.params["bias"], extra_grads["bias"])
        received = sum(
            factors.nbytes + sum(int(val.nbytes) for val in extras_dict.values())
            for wid, factors, extras_dict in contributions if wid != self.worker_id
        )
        self.stats.bytes_sent += sent
        self.stats.bytes_received += received

    def _sync_adam(self, iteration: int) -> None:
        assert self.adam is not None
        dense_layer = self.layer
        assert isinstance(dense_layer, Dense)
        u, v = dense_layer.sufficient_factors()
        factors = factorize_dense_gradient(u, v)
        extras = {"bias": dense_layer.grads["bias"]}
        sent = self.adam.push_factors(self.worker_id, self.layer.name, factors,
                                      extras=extras)
        params = self.adam.pull_matrix(self.worker_id, self.layer.name,
                                       min_version=iteration + 1,
                                       timeout=self.sync_timeout)
        self.layer.set_params(params)
        self.stats.bytes_sent += sent
        self.stats.bytes_received += sum(int(p.nbytes) for p in params.values())


class LocalSGDSyncer(Syncer):
    """Local SGD over any substrate: local steps, periodic parameter averaging.

    Every iteration applies the layer's gradients with the worker-local
    optimizer (no communication at all); every ``H``-th iteration the
    workers rendezvous on a :class:`~repro.comm.averaging.ParameterAverager`
    and replace their parameters with the cluster mean.  Wire traffic is
    therefore ``1/H`` of per-iteration gradient sync -- the byte counters
    only move on averaging rounds.

    The ``scheme`` is kept for reporting: it names the substrate whose
    backend built this syncer (parameter averaging is substrate-agnostic,
    so any backend can host it).
    """

    def __init__(self, worker_id: int, layer: Layer, scheme: CommScheme,
                 averager: ParameterAverager, local_optimizer: SGD,
                 policy: SyncPolicy,
                 sync_timeout: Optional[float] = 60.0):
        self.averager = averager
        super().__init__(worker_id, layer, scheme,
                         local_optimizer=local_optimizer, policy=policy,
                         sync_timeout=sync_timeout)

    def _validate_backends(self) -> None:
        if self.averager is None:
            raise TrainingError(
                f"syncer for {self.layer.name!r}: local SGD needs a "
                f"parameter averager")
        if self.local_optimizer is None:
            raise TrainingError(
                f"syncer for {self.layer.name!r}: local SGD needs a "
                f"worker-local optimizer")
        if self.policy.kind != "local_sgd":
            raise TrainingError(
                f"syncer for {self.layer.name!r}: LocalSGDSyncer requires a "
                f"local_sgd policy, got {self.policy}")

    def _scheme_handler(self):
        return self._sync_local

    def _sync_local(self, iteration: int) -> None:
        assert self._staged_grads is not None
        for key, grad in self._staged_grads.items():
            self.local_optimizer.apply(
                f"{self.layer.name}/{key}", self.layer.params[key], grad)
        period = self.policy.sync_period
        if (iteration + 1) % period != 0:
            return
        round_index = (iteration + 1) // period - 1
        deposit_bytes = sum(int(p.nbytes) for p in self.layer.params.values())
        # The averager buffers by reference; this worker blocks inside
        # average() until the mean exists, so the live arrays are safe.
        mean = self.averager.average(self.worker_id, self.layer.name,
                                     round_index, self.layer.params,
                                     timeout=self.sync_timeout)
        self.layer.set_params(mean)
        self.stats.bytes_sent += deposit_bytes
        self.stats.bytes_received += sum(int(p.nbytes) for p in mean.values())
