"""The coordinator.

"To setup distributed training, the client program first instantiates
Poseidon by creating a coordinator within its process.  Coordinators will
first collect necessary information, including the cluster information
(e.g., the number of workers and server nodes ...) and the model
architecture ... the coordinator will initialize the KV stores and the
client library" (Section 4.1).

The coordinator owns the *information book* -- a key/value view of the
cluster and model configuration queried through :meth:`Coordinator.query` --
and exposes :meth:`best_scheme` (Algorithm 1) through the cost model.
"""

from __future__ import annotations

from typing import Any, Dict, List, Sequence, Union

from repro.config import ClusterConfig, TrainingConfig
from repro.core.cost_model import CommScheme, CostModel
from repro.core.kvstore import KVStorePartition, partition_coarse_grained, partition_fine_grained
from repro.exceptions import ConfigurationError
from repro.nn.spec import LayerKind, LayerSpec, ModelSpec


class Coordinator:
    """Holds model + cluster configuration and answers planning queries."""

    def __init__(self, model: ModelSpec, cluster: ClusterConfig,
                 training: TrainingConfig, fine_grained: bool = True):
        self.model = model
        self.cluster = cluster
        self.training = training
        self.fine_grained = bool(fine_grained)
        self.cost_model = CostModel(cluster, training.batch_size)
        self._partition: KVStorePartition = (
            partition_fine_grained(model, cluster.num_servers, cluster.kv_pair_bytes)
            if fine_grained
            else partition_coarse_grained(model, cluster.num_servers)
        )
        self._information_book: Dict[str, Any] = self._build_information_book()

    # -- information book ------------------------------------------------------
    def _build_information_book(self) -> Dict[str, Any]:
        book: Dict[str, Any] = {
            "n_worker": self.cluster.num_workers,
            "n_server": self.cluster.num_servers,
            "batchsize": self.training.batch_size,
            "bandwidth_gbps": self.cluster.bandwidth_gbps,
            "kv_pair_bytes": self.cluster.kv_pair_bytes,
            "model_name": self.model.name,
            "num_layers": self.model.num_layers,
            "total_params": self.model.total_params,
        }
        for layer in self.model.layers:
            book[f"layer:{layer.name}:type"] = layer.kind.value
            book[f"layer:{layer.name}:params"] = layer.param_count
            if layer.kind is LayerKind.FC:
                m, n = layer.fc_dims
                book[f"layer:{layer.name}:width"] = m
                book[f"layer:{layer.name}:height"] = n
        return book

    def query(self, *properties: str) -> Union[Any, List[Any]]:
        """Look up one or more entries of the information book.

        Mirrors the paper's ``Query`` API (Table 2).  A single property
        returns a scalar; multiple properties return a list in order.

        Raises:
            KeyError: if a property is unknown.
        """
        if not properties:
            raise ConfigurationError("query() needs at least one property name")
        values = []
        for name in properties:
            if name not in self._information_book:
                raise KeyError(f"information book has no entry {name!r}")
            values.append(self._information_book[name])
        return values[0] if len(values) == 1 else values

    def update_information(self, key: str, value: Any) -> None:
        """Insert or overwrite an information-book entry (kept in sync
        across nodes in the real system; a plain dict write here)."""
        self._information_book[key] = value

    # -- planning ---------------------------------------------------------------
    @property
    def partition(self) -> KVStorePartition:
        """The KV-store partition the coordinator computed at start-up."""
        return self._partition

    def layer(self, name: str) -> LayerSpec:
        """Resolve a layer by name."""
        return self.model.layer(name)

    def best_scheme(self, layer: Union[str, LayerSpec]) -> CommScheme:
        """Algorithm 1: the cheapest communication method for ``layer``."""
        spec = self.model.layer(layer) if isinstance(layer, str) else layer
        return self.cost_model.best_scheme(spec)

    def scheme_assignments(self) -> Dict[str, CommScheme]:
        """Best scheme for every parameter layer of the model."""
        return {
            layer.name: self.best_scheme(layer)
            for layer in self.model.parameter_layers()
        }

    def sfb_layers(self) -> Sequence[LayerSpec]:
        """Parameter layers that Algorithm 1 assigns to SFB."""
        return tuple(
            layer for layer in self.model.parameter_layers()
            if self.best_scheme(layer) is CommScheme.SFB
        )
