"""A small process-based discrete-event simulation (DES) engine.

This is the substrate the cluster/network simulator is built on.  The design
follows the classic process-interaction style (as popularised by SimPy):
simulation *processes* are Python generators that ``yield`` events --
timeouts, resource requests, other processes -- and are resumed when those
events fire.  Only the features the cluster model needs are implemented:

* :class:`Environment` -- the event loop and simulated clock.
* :class:`Event`, :class:`Timeout`, :class:`Process`, :class:`AllOf`,
  :class:`AnyOf` -- the events processes wait on.
* :class:`Resource` -- a FIFO server with fixed capacity (GPUs, NIC links).
* :class:`Store` -- an unbounded FIFO queue of items (message mailboxes).
"""

from repro.sim.core import (
    AllOf,
    AnyOf,
    Environment,
    Event,
    Interrupt,
    Process,
    Timeout,
)
from repro.sim.resources import Request, Resource, Store

__all__ = [
    "Environment",
    "Event",
    "Timeout",
    "Process",
    "AllOf",
    "AnyOf",
    "Interrupt",
    "Resource",
    "Request",
    "Store",
]
