"""A small process-based discrete-event simulation (DES) engine.

This is the substrate the cluster/network simulator is built on.  The design
follows the classic process-interaction style (as popularised by SimPy):
simulation *processes* are Python generators that ``yield`` events --
timeouts, resource requests, other processes -- and are resumed when those
events fire.  Only the features the cluster model needs are implemented:

* :class:`Environment` -- the event loop and simulated clock.
* :class:`Event`, :class:`Timeout`, :class:`Process`, :class:`AllOf`,
  :class:`AnyOf` -- the events processes wait on.
* :class:`CountdownEvent` -- a counter-based barrier: the O(1)-per-arrival
  replacement for ``all_of`` over homogeneous fan-ins.
* :class:`Resource` -- a FIFO server with fixed integer capacity (kept as
  the general-purpose primitive and the reference the tail-clock channels
  are property-tested against).
* :class:`TailChannel` -- a capacity-1 FIFO link on a busy-until clock
  (NIC directions); uncontended holds are pure arithmetic.
* :class:`Store` -- an unbounded FIFO queue of items (message mailboxes).
"""

from repro.sim.core import (
    AllOf,
    AnyOf,
    CountdownEvent,
    Environment,
    Event,
    Interrupt,
    Process,
    Timeout,
)
from repro.sim.resources import Request, Resource, Store, TailChannel

__all__ = [
    "Environment",
    "Event",
    "Timeout",
    "Process",
    "AllOf",
    "AnyOf",
    "CountdownEvent",
    "Interrupt",
    "Resource",
    "Request",
    "Store",
    "TailChannel",
]
