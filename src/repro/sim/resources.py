"""Shared resources for the discrete-event engine: FIFO servers and stores."""

from __future__ import annotations

from collections import deque
from typing import Any, Deque, List, Optional

from repro.exceptions import SimulationError
from repro.sim.core import Environment, Event


class Request(Event):
    """A pending claim on a :class:`Resource` slot.

    The request event fires when the resource grants the slot.  The holder
    must eventually call :meth:`Resource.release` with this request.
    """

    def __init__(self, resource: "Resource"):
        super().__init__(resource.env)
        self.resource = resource


class Resource:
    """A FIFO resource with fixed integer capacity.

    Used to model exclusive devices: a GPU executes one kernel sequence at a
    time, a NIC direction carries one transfer at a time (FIFO serialisation
    of a link is equivalent, in total completion time, to fair sharing when
    the link is the bottleneck, and keeps the simulation deterministic).
    """

    def __init__(self, env: Environment, capacity: int = 1, name: str = ""):
        if capacity < 1:
            raise SimulationError(f"resource capacity must be >= 1, got {capacity}")
        self.env = env
        self.capacity = int(capacity)
        self.name = name
        self.users: List[Request] = []
        self.queue: Deque[Request] = deque()
        # Utilisation accounting.
        self.busy_time = 0.0
        self._busy_since: Optional[float] = None

    # -- bookkeeping -----------------------------------------------------------
    def _update_busy(self) -> None:
        if self.users and self._busy_since is None:
            self._busy_since = self.env.now
        elif not self.users and self._busy_since is not None:
            self.busy_time += self.env.now - self._busy_since
            self._busy_since = None

    def utilization(self, horizon: Optional[float] = None) -> float:
        """Fraction of time the resource was busy up to ``horizon`` (or now)."""
        horizon = self.env.now if horizon is None else horizon
        busy = self.busy_time
        if self._busy_since is not None:
            busy += max(0.0, min(self.env.now, horizon) - self._busy_since)
        return busy / horizon if horizon > 0 else 0.0

    # -- protocol ----------------------------------------------------------------
    def request(self) -> Request:
        """Ask for a slot; the returned event fires once the slot is granted."""
        request = Request(self)
        if len(self.users) < self.capacity:
            self.users.append(request)
            self._update_busy()
            request.succeed()
        else:
            self.queue.append(request)
        return request

    def release(self, request: Request) -> None:
        """Return a previously granted slot.

        Raises:
            SimulationError: if the request does not hold a slot.
        """
        if request in self.users:
            self.users.remove(request)
        elif request in self.queue:
            self.queue.remove(request)
            return
        else:
            raise SimulationError("release() of a request that holds no slot")
        while self.queue and len(self.users) < self.capacity:
            nxt = self.queue.popleft()
            self.users.append(nxt)
            nxt.succeed()
        self._update_busy()

    def occupy(self, duration: float):
        """Process helper: request, hold for ``duration`` seconds, release."""
        request = self.request()
        yield request
        try:
            yield self.env.timeout(duration)
        finally:
            self.release(request)


class Store:
    """An unbounded FIFO queue of items with blocking ``get``."""

    def __init__(self, env: Environment, name: str = ""):
        self.env = env
        self.name = name
        self.items: Deque[Any] = deque()
        self._getters: Deque[Event] = deque()

    def put(self, item: Any) -> Event:
        """Deposit an item; returns an already-fired event for uniformity."""
        event = Event(self.env)
        if self._getters:
            getter = self._getters.popleft()
            getter.succeed(item)
        else:
            self.items.append(item)
        event.succeed()
        return event

    def get(self) -> Event:
        """Event that fires with the next item (immediately if one is queued)."""
        event = Event(self.env)
        if self.items:
            event.succeed(self.items.popleft())
        else:
            self._getters.append(event)
        return event

    def __len__(self) -> int:
        return len(self.items)
