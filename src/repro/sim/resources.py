"""Shared resources for the discrete-event engine: FIFO servers and stores."""

from __future__ import annotations

from collections import deque
from typing import Any, Deque, Generator, List, Optional

from repro.exceptions import SimulationError
from repro.sim.core import Environment, Event


class Request(Event):
    """A pending claim on a :class:`Resource` slot.

    The request event fires when the resource grants the slot.  The holder
    must eventually call :meth:`Resource.release` with this request.
    """

    def __init__(self, resource: "Resource"):
        super().__init__(resource.env)
        self.resource = resource


class Resource:
    """A FIFO resource with fixed integer capacity.

    Used to model exclusive devices: a GPU executes one kernel sequence at a
    time, a NIC direction carries one transfer at a time (FIFO serialisation
    of a link is equivalent, in total completion time, to fair sharing when
    the link is the bottleneck, and keeps the simulation deterministic).
    """

    def __init__(self, env: Environment, capacity: int = 1, name: str = ""):
        if capacity < 1:
            raise SimulationError(f"resource capacity must be >= 1, got {capacity}")
        self.env = env
        self.capacity = int(capacity)
        self.name = name
        self.users: List[Request] = []
        self.queue: Deque[Request] = deque()
        # Utilisation accounting.
        self.busy_time = 0.0
        self._busy_since: Optional[float] = None

    # -- bookkeeping -----------------------------------------------------------
    def _update_busy(self) -> None:
        if self.users and self._busy_since is None:
            self._busy_since = self.env.now
        elif not self.users and self._busy_since is not None:
            self.busy_time += self.env.now - self._busy_since
            self._busy_since = None

    def utilization(self, horizon: Optional[float] = None) -> float:
        """Fraction of time the resource was busy up to ``horizon`` (or now)."""
        horizon = self.env.now if horizon is None else horizon
        busy = self.busy_time
        if self._busy_since is not None:
            busy += max(0.0, min(self.env.now, horizon) - self._busy_since)
        return busy / horizon if horizon > 0 else 0.0

    # -- protocol ----------------------------------------------------------------
    def request(self) -> Request:
        """Ask for a slot; the returned event fires once the slot is granted."""
        request = Request(self)
        if len(self.users) < self.capacity:
            self.users.append(request)
            self._update_busy()
            request.succeed()
        else:
            self.queue.append(request)
        return request

    def release(self, request: Request) -> None:
        """Return a previously granted slot.

        Raises:
            SimulationError: if the request does not hold a slot.
        """
        if request in self.users:
            self.users.remove(request)
        elif request in self.queue:
            self.queue.remove(request)
            return
        else:
            raise SimulationError("release() of a request that holds no slot")
        while self.queue and len(self.users) < self.capacity:
            nxt = self.queue.popleft()
            self.users.append(nxt)
            nxt.succeed()
        self._update_busy()

    def occupy(self, duration: float):
        """Process helper: request, hold for ``duration`` seconds, release."""
        request = self.request()
        yield request
        try:
            yield self.env.timeout(duration)
        finally:
            self.release(request)


class TailChannel:
    """A capacity-1 FIFO link modelled by a busy-until ("tail") clock.

    Time-equivalent to a capacity-1 :class:`Resource` that every holder
    occupies for its transfer duration, but without the per-hold
    request/grant/release event round-trip:

    * the channel's schedule is summarised by ``tail`` -- the simulated
      time its last booked hold frees it -- so an uncontended hold is pure
      arithmetic (``start = max(now, tail)``), no event at all;
    * a holder whose finish time is not yet known (e.g. a transfer granted
      the sender's uplink while still queued at the receiver's downlink)
      keeps the channel *open* by publishing an untriggered release event;
      later acquirers chain on it FIFO, and the holder resolves it with
      :meth:`~repro.sim.core.Event.succeed_at` once the finish is known, so
      every waiter wakes exactly when the channel frees up.

    The channel is *resolved* when no hold is open (``_release`` is absent
    or already triggered); only then is ``tail`` meaningful.  FIFO order is
    by acquisition call, which is exactly the order :class:`Resource`
    grants queued requests.
    """

    __slots__ = ("env", "name", "tail", "_release", "_entry", "_entry_tail")

    def __init__(self, env: Environment, name: str = ""):
        self.env = env
        self.name = name
        self.tail = 0.0
        self._release: Optional[Event] = None
        # The queue entry (timeout or release event) known to dispatch
        # exactly at ``tail``, if any: a waiter that must act at the grant
        # anchors its wake on it, so same-instant grants on different
        # channels keep the holders' dispatch order (the order the
        # resource-based model granted them in).
        self._entry: Optional[Event] = None
        self._entry_tail = -1.0

    def note_entry(self, entry: Event, time: float) -> None:
        """Record the queue entry that dispatches at ``time`` (== new tail)."""
        self._entry = entry
        self._entry_tail = time

    def grant_anchor(self) -> Optional[Event]:
        """The pending entry dispatching exactly at ``tail``, if known."""
        entry = self._entry
        if entry is not None and not entry.processed and self._entry_tail == self.tail:
            return entry
        return None

    @property
    def resolved(self) -> bool:
        """Whether the channel's schedule is fully described by ``tail``."""
        release = self._release
        return release is None or release.triggered

    def book(self, duration: float) -> float:
        """Book an uncontended hold analytically; returns its finish time.

        Only legal while the channel is :attr:`resolved`; the hold starts
        at ``max(now, tail)`` -- the same grant a FIFO resource would give
        -- and the channel's tail advances to the returned finish time.
        """
        if duration < 0:
            raise SimulationError(f"negative hold duration: {duration}")
        if not self.resolved:
            raise SimulationError(
                f"channel {self.name!r} has an open hold; book() needs a "
                f"resolved tail")
        start = self.tail
        now = self.env._now
        if start < now:
            start = now
        finish = start + duration
        self.tail = finish
        return finish

    def request(self) -> Generator:
        """Process helper: wait for the channel, FIFO; returns the release event.

        The caller owns the channel from the moment this generator returns
        and must eventually call :meth:`release` with the returned event
        and the hold's finish time.
        """
        mine = Event(self.env)
        previous = self._release
        self._release = mine
        if previous is not None and not previous.triggered:
            yield previous
        else:
            if self.tail > self.env._now:
                anchor = self.grant_anchor()
                if anchor is not None:
                    yield anchor
                else:
                    yield self.env.timeout_at(self.tail)
        return mine

    def release(self, release_event: Event, finish: Optional[float] = None) -> None:
        """Resolve a hold acquired via :meth:`request` (finish defaults to now)."""
        if finish is None:
            finish = self.env._now
        self.tail = finish
        release_event.succeed_at(finish)
        self.note_entry(release_event, finish)

    def occupy(self, duration: float) -> Generator:
        """Process helper: hold the channel for ``duration`` seconds (FIFO)."""
        if duration < 0:
            raise SimulationError(f"negative hold duration: {duration}")
        if self.resolved:
            finish = self.book(duration)
            yield self.env.timeout_at(finish)
        else:
            mine = yield from self.request()
            finish = self.env._now + duration
            self.release(mine, finish)
            # The scheduled release entry doubles as this holder's wake-up.
            yield mine


class Store:
    """An unbounded FIFO queue of items with blocking ``get``."""

    def __init__(self, env: Environment, name: str = ""):
        self.env = env
        self.name = name
        self.items: Deque[Any] = deque()
        self._getters: Deque[Event] = deque()

    def put(self, item: Any) -> Event:
        """Deposit an item; returns an already-fired event for uniformity."""
        event = Event(self.env)
        if self._getters:
            getter = self._getters.popleft()
            getter.succeed(item)
        else:
            self.items.append(item)
        event.succeed()
        return event

    def get(self) -> Event:
        """Event that fires with the next item (immediately if one is queued)."""
        event = Event(self.env)
        if self.items:
            event.succeed(self.items.popleft())
        else:
            self._getters.append(event)
        return event

    def __len__(self) -> int:
        return len(self.items)
