"""Core of the discrete-event engine: environment, events and processes."""

from __future__ import annotations

import heapq
from typing import Any, Callable, Generator, Iterable, List, Optional, Tuple

from repro.exceptions import SimulationError


class Interrupt(Exception):
    """Raised inside a process that another process interrupted."""

    def __init__(self, cause: Any = None):
        super().__init__(cause)
        self.cause = cause


class Event:
    """A one-shot occurrence that processes can wait on.

    An event is *triggered* when :meth:`succeed` (or :meth:`fail`) is called;
    its callbacks run when the environment pops it from the queue, at which
    point it is *processed*.
    """

    def __init__(self, env: "Environment"):
        self.env = env
        self.callbacks: List[Callable[["Event"], None]] = []
        self.value: Any = None
        self.ok: Optional[bool] = None
        self.triggered = False
        self.processed = False

    def succeed(self, value: Any = None) -> "Event":
        """Mark the event successful and schedule its callbacks."""
        if self.triggered:
            raise SimulationError(f"{self!r} has already been triggered")
        self.triggered = True
        self.ok = True
        self.value = value
        self.env.schedule(self)
        return self

    def fail(self, exception: BaseException) -> "Event":
        """Mark the event failed; waiting processes will see the exception."""
        if self.triggered:
            raise SimulationError(f"{self!r} has already been triggered")
        if not isinstance(exception, BaseException):
            raise SimulationError(f"fail() expects an exception, got {exception!r}")
        self.triggered = True
        self.ok = False
        self.value = exception
        self.env.schedule(self)
        return self

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "processed" if self.processed else (
            "triggered" if self.triggered else "pending")
        return f"<{type(self).__name__} {state} at t={self.env.now:.6f}>"


class Timeout(Event):
    """An event that fires after a fixed simulated delay."""

    def __init__(self, env: "Environment", delay: float, value: Any = None):
        if delay < 0:
            raise SimulationError(f"negative timeout delay: {delay}")
        super().__init__(env)
        self.delay = delay
        self.triggered = True
        self.ok = True
        self.value = value
        env.schedule(self, delay=delay)


class Process(Event):
    """A running simulation process wrapping a generator.

    The process is itself an event that succeeds with the generator's return
    value, so processes can wait for each other by yielding the process
    object.
    """

    def __init__(self, env: "Environment", generator: Generator):
        if not hasattr(generator, "send"):
            raise SimulationError(
                f"Process expects a generator, got {type(generator).__name__}"
            )
        super().__init__(env)
        self._generator = generator
        self._target: Optional[Event] = None
        self._interrupts: List[Interrupt] = []
        # Kick the process off at the current simulation time.
        bootstrap = Event(env)
        bootstrap.triggered = True
        bootstrap.ok = True
        env.schedule(bootstrap)
        bootstrap.callbacks.append(self._resume)

    @property
    def is_alive(self) -> bool:
        """Whether the process has not yet terminated."""
        return not self.triggered

    def interrupt(self, cause: Any = None) -> None:
        """Throw an :class:`Interrupt` into the process at the current time."""
        if self.triggered:
            raise SimulationError("cannot interrupt a terminated process")
        self._interrupts.append(Interrupt(cause))
        wakeup = Event(self.env)
        wakeup.triggered = True
        wakeup.ok = True
        self.env.schedule(wakeup)
        wakeup.callbacks.append(self._resume)

    def _resume(self, event: Event) -> None:
        if self.triggered:
            return
        # Detach from the event we were waiting on (relevant for interrupts).
        if self._target is not None and self._resume in self._target.callbacks:
            self._target.callbacks.remove(self._resume)
        self._target = None
        try:
            if self._interrupts:
                next_event = self._generator.throw(self._interrupts.pop(0))
            elif event.ok is False:
                next_event = self._generator.throw(event.value)
            else:
                next_event = self._generator.send(event.value)
        except StopIteration as stop:
            self.succeed(stop.value)
            return
        except Interrupt as interrupt:
            self.fail(interrupt)
            return
        except BaseException as exc:  # surface process crashes to the caller
            self.fail(exc)
            return
        if not isinstance(next_event, Event):
            self._generator.close()
            self.fail(SimulationError(f"process yielded a non-event: {next_event!r}"))
            return
        self._target = next_event
        if next_event.processed:
            # The event already fired; resume immediately (at the same time).
            immediate = Event(self.env)
            immediate.triggered = True
            immediate.ok = next_event.ok
            immediate.value = next_event.value
            self.env.schedule(immediate)
            immediate.callbacks.append(self._resume)
        else:
            next_event.callbacks.append(self._resume)


class AllOf(Event):
    """Fires when every one of the given events has fired successfully."""

    def __init__(self, env: "Environment", events: Iterable[Event]):
        super().__init__(env)
        self._pending = 0
        self._events = list(events)
        for event in self._events:
            if event.processed:
                continue
            self._pending += 1
            event.callbacks.append(self._on_event)
        if self._pending == 0:
            self.succeed([e.value for e in self._events])

    def _on_event(self, event: Event) -> None:
        if self.triggered:
            return
        if event.ok is False:
            self.fail(event.value)
            return
        self._pending -= 1
        if self._pending == 0:
            self.succeed([e.value for e in self._events])


class AnyOf(Event):
    """Fires as soon as any one of the given events fires."""

    def __init__(self, env: "Environment", events: Iterable[Event]):
        super().__init__(env)
        self._events = list(events)
        fired = [e for e in self._events if e.processed]
        if fired:
            self.succeed(fired[0].value)
            return
        for event in self._events:
            event.callbacks.append(self._on_event)

    def _on_event(self, event: Event) -> None:
        if self.triggered:
            return
        if event.ok is False:
            self.fail(event.value)
        else:
            self.succeed(event.value)


class Environment:
    """The simulated clock and event queue."""

    def __init__(self, initial_time: float = 0.0):
        self._now = float(initial_time)
        self._queue: List[Tuple[float, int, Event]] = []
        self._sequence = 0
        self.events_processed = 0

    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    # -- event construction -----------------------------------------------------
    def event(self) -> Event:
        """Create an untriggered event."""
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        """Create an event that fires ``delay`` seconds from now."""
        return Timeout(self, delay, value)

    def process(self, generator: Generator) -> Process:
        """Start a new process from a generator."""
        return Process(self, generator)

    def all_of(self, events: Iterable[Event]) -> AllOf:
        """Event that fires when all of ``events`` have fired."""
        return AllOf(self, events)

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        """Event that fires when any of ``events`` has fired."""
        return AnyOf(self, events)

    # -- scheduling ----------------------------------------------------------------
    def schedule(self, event: Event, delay: float = 0.0) -> None:
        """Insert a triggered event into the queue ``delay`` seconds from now."""
        if delay < 0:
            raise SimulationError(f"cannot schedule into the past (delay={delay})")
        heapq.heappush(self._queue, (self._now + delay, self._sequence, event))
        self._sequence += 1

    def step(self) -> None:
        """Process the next event in the queue.

        Raises:
            SimulationError: if the queue is empty.
        """
        if not self._queue:
            raise SimulationError("no scheduled events left to process")
        time, _, event = heapq.heappop(self._queue)
        if time < self._now:
            raise SimulationError(
                f"event scheduled in the past: {time} < {self._now}"
            )
        self._now = time
        event.processed = True
        callbacks, event.callbacks = event.callbacks, []
        for callback in callbacks:
            callback(event)
        self.events_processed += 1

    def run(self, until: Optional[float] = None) -> None:
        """Run until the queue drains or the clock passes ``until`` seconds.

        Any process that raised an exception fails silently unless something
        was waiting on it; :meth:`run_process` is the safer entry point for
        a single root process.
        """
        while self._queue:
            next_time = self._queue[0][0]
            if until is not None and next_time > until:
                self._now = until
                return
            self.step()

    def run_process(self, generator: Generator, until: Optional[float] = None) -> Any:
        """Run a root process to completion and return (or raise) its result."""
        process = self.process(generator)
        self.run(until=until)
        if not process.triggered:
            raise SimulationError(
                "root process did not finish before the simulation ended"
            )
        if process.ok is False:
            raise process.value
        return process.value
