"""Core of the discrete-event engine: environment, events and processes.

The engine is the substrate of every figure sweep, so the event loop and the
process-resume path are written allocation-consciously:

* all event classes carry ``__slots__`` (no per-instance ``__dict__``);
* waiters are invoked as ``callback(ok, value)``; the first waiter lives in
  a dedicated ``_waiter`` slot, so the common one-waiter event never
  allocates a callback list, and a :class:`Process` registers *itself* as
  the waiter so no bound method is materialised per wait;
* process bookkeeping (bootstrap, interrupt delivery, resuming after an
  already-processed event) schedules bound-method thunks directly on the
  heap instead of allocating throwaway :class:`Event` objects;
* the earliest pending queue entry is held in a front register, so the
  dominant schedule-next/pop-next cycle of chained timeouts never touches
  the heap;
* :meth:`Environment.run` inlines the whole timeout->process resume cycle,
  making ``yield env.timeout(...)`` cost one :class:`Timeout` allocation,
  one heap-entry tuple, and one generator resume per step.

Determinism is unchanged relative to the historical event-based
implementation: every queue entry -- event or thunk -- consumes one tick of
the same monotonically increasing sequence counter, so the relative order
of same-time occurrences is identical.
"""

from __future__ import annotations

import gc
import heapq
from typing import Any, Callable, Generator, Iterable, List, Optional, Tuple

from repro.exceptions import SimulationError

#: Signature of an event waiter: called with ``(ok, value)`` when the event
#: is processed.  (A :class:`Process` registers itself instead of a bound
#: method; the dispatcher special-cases it.)
Waiter = Callable[[Optional[bool], Any], None]

#: Sentinel marking "the generator did not yield a new event" in the inlined
#: resume path (``None`` is a legal -- if invalid -- yield value).
_NO_EVENT = object()


class Interrupt(Exception):
    """Raised inside a process that another process interrupted."""

    def __init__(self, cause: Any = None):
        super().__init__(cause)
        self.cause = cause


class Event:
    """A one-shot occurrence that processes can wait on.

    An event is *triggered* when :meth:`succeed` (or :meth:`fail`) is called;
    its waiters run when the environment pops it from the queue, at which
    point it is *processed*.
    """

    __slots__ = ("env", "_waiter", "_waiters", "value", "ok",
                 "triggered", "processed")

    def __init__(self, env: "Environment"):
        self.env = env
        self._waiter: Any = None
        self._waiters: Optional[List[Any]] = None
        self.value: Any = None
        self.ok: Optional[bool] = None
        self.triggered = False
        self.processed = False

    def add_waiter(self, waiter: Any) -> None:
        """Register a waiter to run when this event is processed.

        A waiter is either a ``callback(ok, value)`` callable or a
        :class:`Process` (which is resumed with the outcome).  Waiters run
        in registration order.  Registering on an already *processed* event
        is a no-op (the waiter would never fire); callers that may race with
        processing should check :attr:`processed` first and handle the fired
        case themselves.
        """
        if self._waiter is None and self._waiters is None:
            self._waiter = waiter
        elif self._waiters is None:
            self._waiters = [waiter]
        else:
            self._waiters.append(waiter)

    def remove_waiter(self, waiter: Any) -> None:
        """Unregister a waiter previously passed to :meth:`add_waiter`."""
        if self._waiter is waiter:
            self._waiter = None
        elif self._waiters is not None:
            try:
                self._waiters.remove(waiter)
            except ValueError:
                pass

    def succeed(self, value: Any = None) -> "Event":
        """Mark the event successful and schedule its waiters."""
        if self.triggered:
            raise SimulationError(f"{self!r} has already been triggered")
        self.triggered = True
        self.ok = True
        self.value = value
        self.env.schedule(self)
        return self

    def succeed_at(self, time: float, value: Any = None) -> "Event":
        """Mark the event successful now, but process its waiters at ``time``.

        A deferred trigger: the event is committed (``triggered`` flips
        immediately, so double-triggering still raises) but its waiters run
        when the simulated clock reaches ``time``.  This is what lets a
        tail-clock channel publish "I free up at ``time``" as a single
        queue entry instead of holding a process open until then.

        Raises:
            SimulationError: if ``time`` lies in the past.
        """
        env = self.env
        if time < env._now:
            raise SimulationError(
                f"cannot succeed_at into the past: {time} < {env._now}")
        if self.triggered:
            raise SimulationError(f"{self!r} has already been triggered")
        self.triggered = True
        self.ok = True
        self.value = value
        # Push the absolute time, not now + delta: the caller's ``time`` is
        # typically an analytically derived finish instant that must land on
        # the queue bit-exactly (now + (time - now) can be off by one ulp).
        env._push((time, env._sequence, self))
        env._sequence += 1
        return self

    def fail(self, exception: BaseException) -> "Event":
        """Mark the event failed; waiting processes will see the exception."""
        if self.triggered:
            raise SimulationError(f"{self!r} has already been triggered")
        if not isinstance(exception, BaseException):
            raise SimulationError(f"fail() expects an exception, got {exception!r}")
        self.triggered = True
        self.ok = False
        self.value = exception
        self.env.schedule(self)
        return self

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "processed" if self.processed else (
            "triggered" if self.triggered else "pending")
        return f"<{type(self).__name__} {state} at t={self.env.now:.6f}>"


class Timeout(Event):
    """An event that fires after a fixed simulated delay."""

    __slots__ = ("delay",)

    # A timeout is born triggered and successful, and neither flag ever
    # changes afterwards: shadow the parent slots with class constants so
    # construction skips two attribute stores.  (succeed()/fail() still
    # raise "already triggered" -- they read the flag before writing it.)
    triggered = True
    ok = True

    def __init__(self, env: "Environment", delay: float, value: Any = None):
        if delay < 0:
            raise SimulationError(f"negative timeout delay: {delay}")
        # Inlined Event.__init__ (minus the shadowed constants).
        self.env = env
        self._waiter = None
        self._waiters = None
        self.value = value
        self.processed = False
        self.delay = delay
        env._push((env._now + delay, env._sequence, self))
        env._sequence += 1


class Process(Event):
    """A running simulation process wrapping a generator.

    The process is itself an event that succeeds with the generator's return
    value, so processes can wait for each other by yielding the process
    object.
    """

    __slots__ = ("_generator", "_target", "_interrupts", "_send", "_throw")

    def __init__(self, env: "Environment", generator: Generator):
        if not hasattr(generator, "send"):
            raise SimulationError(
                f"Process expects a generator, got {type(generator).__name__}"
            )
        super().__init__(env)
        self._generator = generator
        self._target: Optional[Event] = None
        self._interrupts: List[Interrupt] = []
        self._send = generator.send
        self._throw = generator.throw
        # Kick the process off at the current simulation time (no throwaway
        # bootstrap event; the thunk occupies the same queue slot one would).
        env.schedule_thunk(self._start)

    @property
    def is_alive(self) -> bool:
        """Whether the process has not yet terminated."""
        return not self.triggered

    def interrupt(self, cause: Any = None) -> None:
        """Throw an :class:`Interrupt` into the process at the current time."""
        if self.triggered:
            raise SimulationError("cannot interrupt a terminated process")
        self._interrupts.append(Interrupt(cause))
        self.env.schedule_thunk(self._deliver_interrupt)

    # -- queue thunks ------------------------------------------------------------
    def _start(self) -> None:
        if not self.triggered:
            self._advance(True, None)

    def _deliver_interrupt(self) -> None:
        # The process may have terminated -- or consumed the interrupt via an
        # earlier same-time resume -- between scheduling and delivery.
        if self.triggered or not self._interrupts:
            return
        target = self._target
        if target is not None:
            self._target = None
            target.remove_waiter(self)
        self._advance(True, None)

    # -- resume machinery ----------------------------------------------------------
    def _advance(self, ok: Optional[bool], value: Any) -> None:
        """Resume the generator with an event outcome and wait on its yield."""
        if self.triggered:
            return
        try:
            if self._interrupts:
                next_event = self._throw(self._interrupts.pop(0))
            elif ok is False:
                next_event = self._throw(value)
            else:
                next_event = self._send(value)
        except StopIteration as stop:
            self.succeed(stop.value)
            return
        except Interrupt as interrupt:
            self.fail(interrupt)
            return
        except BaseException as exc:  # surface process crashes to the caller
            self.fail(exc)
            return
        self._wait_on(next_event)

    def _wait_on(self, next_event: Any) -> None:
        """Register this process to resume when ``next_event`` fires."""
        if next_event.__class__ is Timeout and not next_event.processed:
            # Fast path: a freshly created timeout, the dominant yield in
            # simulation workloads.  The _waiters check keeps registration
            # order exact even when the _waiter slot was vacated (e.g. by an
            # interrupt detach) while later waiters queue in _waiters.
            self._target = next_event
            if next_event._waiter is None and next_event._waiters is None:
                next_event._waiter = self
            else:
                next_event.add_waiter(self)
            return
        if not isinstance(next_event, Event):
            self._generator.close()
            self.fail(SimulationError(f"process yielded a non-event: {next_event!r}"))
            return
        if next_event.processed:
            # The event already fired; resume at the same time via a thunk
            # instead of a throwaway copy of the event.
            ok2, value2 = next_event.ok, next_event.value
            self.env.schedule_thunk(lambda: self._advance(ok2, value2))
        else:
            self._target = next_event
            next_event.add_waiter(self)


#: Cached allocator: skips the per-call ``LOAD_ATTR __new__`` in the hot
#: :meth:`Environment.timeout` constructor.
_TIMEOUT_NEW = Timeout.__new__


def _fire(waiter: Any, ok: Optional[bool], value: Any) -> None:
    """Deliver an event outcome to one waiter (callable or process)."""
    if waiter.__class__ is Process:
        waiter._advance(ok, value)
    else:
        waiter(ok, value)


class AllOf(Event):
    """Fires when every one of the given events has fired successfully."""

    __slots__ = ("_pending", "_events")

    def __init__(self, env: "Environment", events: Iterable[Event]):
        super().__init__(env)
        self._pending = 0
        self._events = list(events)
        for event in self._events:
            if event.processed:
                if event.ok is False:
                    # An already-failed member fails the conjunction outright
                    # (its value is an exception, not a result).
                    self.fail(event.value)
                    return
                continue
            self._pending += 1
            event.add_waiter(self._on_event)
        if self._pending == 0 and not self.triggered:
            self.succeed([e.value for e in self._events])

    def _on_event(self, ok: Optional[bool], value: Any) -> None:
        if self.triggered:
            return
        if ok is False:
            self.fail(value)
            return
        self._pending -= 1
        if self._pending == 0:
            self.succeed([e.value for e in self._events])


class CountdownEvent(Event):
    """A counter-based barrier: fires once :meth:`arrive` was called ``count`` times.

    The O(1)-per-arrival replacement for joining *homogeneous* fan-ins with
    :class:`AllOf`: where ``all_of`` materialises an N-element event list
    (and every waiter builds its own), a countdown barrier is one shared
    event plus an integer.  Completion time is identical to an ``AllOf``
    over the corresponding per-member events -- the barrier succeeds during
    the same dispatch in which the last member would have fired.

    Members that are themselves events (e.g. processes) can be attached
    with :meth:`arrive_on`, which also propagates the first member failure
    to the barrier, matching ``AllOf``'s failure semantics.
    """

    __slots__ = ("_remaining",)

    def __init__(self, env: "Environment", count: int):
        super().__init__(env)
        if count < 0:
            raise SimulationError(f"countdown count must be >= 0, got {count}")
        self._remaining = count
        if count == 0:
            self.succeed()

    @property
    def remaining(self) -> int:
        """Arrivals still outstanding before the barrier fires."""
        return self._remaining

    def arrive(self) -> None:
        """Record one arrival; the barrier succeeds on the ``count``-th.

        Raises:
            SimulationError: on arrivals beyond ``count`` (the barrier has
                already been triggered).
        """
        if self.triggered:
            raise SimulationError(f"{self!r}: arrival after the barrier fired")
        self._remaining -= 1
        if self._remaining == 0:
            self.succeed()

    def arrive_on(self, event: Event) -> None:
        """Arrive when ``event`` fires; its failure fails the barrier."""
        if event.processed:
            if event.ok is False:
                if not self.triggered:
                    self.fail(event.value)
                return
            self.arrive()
        else:
            event.add_waiter(self._on_member)

    def _on_member(self, ok: Optional[bool], value: Any) -> None:
        if self.triggered:
            return
        if ok is False:
            self.fail(value)
        else:
            self.arrive()


class AnyOf(Event):
    """Fires as soon as any one of the given events fires."""

    __slots__ = ("_events",)

    def __init__(self, env: "Environment", events: Iterable[Event]):
        super().__init__(env)
        self._events = list(events)
        fired = [e for e in self._events if e.processed]
        if fired:
            first = fired[0]
            if first.ok is False:
                # Propagate an already-processed failure instead of handing
                # the exception object out as a success value.
                self.fail(first.value)
            else:
                self.succeed(first.value)
            return
        for event in self._events:
            event.add_waiter(self._on_event)

    def _on_event(self, ok: Optional[bool], value: Any) -> None:
        if self.triggered:
            return
        if ok is False:
            self.fail(value)
        else:
            self.succeed(value)


class Environment:
    """The simulated clock and event queue.

    Queue entries are ``(time, sequence, item)`` where ``item`` is either a
    triggered :class:`Event` (its waiters run when popped) or a zero-arg
    thunk (called when popped).  Both share the sequence counter, so FIFO
    order among same-time occurrences is exact and deterministic.

    The earliest pending entry is cached in the ``_front`` register rather
    than the heap (invariant: ``_front`` compares <= every heap entry), so
    the dominant schedule-next/pop-next cycle of chained timeouts never
    touches the heap at all.
    """

    __slots__ = ("_now", "_queue", "_front", "_sequence", "events_processed")

    def __init__(self, initial_time: float = 0.0):
        self._now = float(initial_time)
        self._queue: List[Tuple[float, int, Any]] = []
        self._front: Optional[Tuple[float, int, Any]] = None
        self._sequence = 0
        self.events_processed = 0

    def _push(self, entry: Tuple[float, int, Any]) -> None:
        """Insert a queue entry, maintaining the ``_front`` minimum register."""
        front = self._front
        if front is None:
            queue = self._queue
            if queue and queue[0] < entry:
                heapq.heappush(queue, entry)
            else:
                self._front = entry
        elif entry < front:
            heapq.heappush(self._queue, front)
            self._front = entry
        else:
            heapq.heappush(self._queue, entry)

    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    # -- event construction -----------------------------------------------------
    def event(self) -> Event:
        """Create an untriggered event."""
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        """Create an event that fires ``delay`` seconds from now."""
        # Hand-inlined Timeout construction (this is the hottest allocation
        # in every simulation sweep): skip the __init__ dispatch and push
        # straight into the front register / heap.
        if delay < 0:
            raise SimulationError(f"negative timeout delay: {delay}")
        t = _TIMEOUT_NEW(Timeout)
        t.env = self
        t._waiter = None
        t._waiters = None
        t.value = value
        t.processed = False
        t.delay = delay
        entry = (self._now + delay, self._sequence, t)
        self._sequence += 1
        front = self._front
        if front is None:
            queue = self._queue
            if queue and queue[0] < entry:
                heapq.heappush(queue, entry)
            else:
                self._front = entry
        elif entry < front:
            heapq.heappush(self._queue, front)
            self._front = entry
        else:
            heapq.heappush(self._queue, entry)
        return t

    def timeout_at(self, time: float, value: Any = None) -> Timeout:
        """Create an event that fires at the absolute simulated ``time``.

        Equivalent to ``timeout(time - now)`` except that the queue entry
        carries ``time`` bit-exactly -- the round trip through a delta can
        perturb the instant by one ulp, which matters when ``time`` was
        derived analytically (e.g. a tail-clock finish) and must coincide
        with other occurrences at the same instant.
        """
        if time < self._now:
            raise SimulationError(
                f"cannot time out in the past: {time} < {self._now}")
        t = _TIMEOUT_NEW(Timeout)
        t.env = self
        t._waiter = None
        t._waiters = None
        t.value = value
        t.processed = False
        t.delay = time - self._now
        self._push((time, self._sequence, t))
        self._sequence += 1
        return t

    def process(self, generator: Generator) -> Process:
        """Start a new process from a generator."""
        return Process(self, generator)

    def all_of(self, events: Iterable[Event]) -> AllOf:
        """Event that fires when all of ``events`` have fired."""
        return AllOf(self, events)

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        """Event that fires when any of ``events`` has fired."""
        return AnyOf(self, events)

    def countdown(self, count: int) -> CountdownEvent:
        """Barrier event that fires after ``count`` arrivals."""
        return CountdownEvent(self, count)

    # -- scheduling ----------------------------------------------------------------
    def schedule(self, event: Event, delay: float = 0.0) -> None:
        """Insert a triggered event into the queue ``delay`` seconds from now."""
        if delay < 0:
            raise SimulationError(f"cannot schedule into the past (delay={delay})")
        self._push((self._now + delay, self._sequence, event))
        self._sequence += 1

    def schedule_thunk(self, thunk: Callable[[], None], delay: float = 0.0) -> None:
        """Insert a bare callable into the queue; called (once) when popped.

        Thunks are the allocation-free alternative to one-shot helper
        events: they take a queue slot (and a sequence tick) exactly like an
        event, but carry no state and run no waiter list.
        """
        if delay < 0:
            raise SimulationError(f"cannot schedule into the past (delay={delay})")
        self._push((self._now + delay, self._sequence, thunk))
        self._sequence += 1

    @staticmethod
    def _dispatch(item: Any) -> None:
        """Run one popped queue item (event waiters or a thunk)."""
        if isinstance(item, Event):
            item.processed = True
            waiter = item._waiter
            if waiter is not None:
                item._waiter = None
                _fire(waiter, item.ok, item.value)
            waiters = item._waiters
            if waiters:
                item._waiters = None
                ok, value = item.ok, item.value
                for waiter in waiters:
                    _fire(waiter, ok, value)
        else:
            item()

    def step(self) -> None:
        """Process the next item in the queue.

        Raises:
            SimulationError: if the queue is empty.
        """
        entry = self._front
        if entry is None:
            if not self._queue:
                raise SimulationError("no scheduled events left to process")
            entry = heapq.heappop(self._queue)
        else:
            self._front = None
        time, _, item = entry
        if time < self._now:
            raise SimulationError(
                f"event scheduled in the past: {time} < {self._now}"
            )
        self._now = time
        self._dispatch(item)
        self.events_processed += 1

    def run(self, until: Optional[float] = None) -> None:
        """Run until the queue drains or the clock passes ``until`` seconds.

        Any process that raised an exception fails silently unless something
        was waiting on it; :meth:`run_process` is the safer entry point for
        a single root process.
        """
        # Hot loop: the timeout->single-process-resume cycle is fully inlined
        # (no step()/_dispatch/_advance frames).  The scheduled-in-the-past
        # guard of step() cannot trip here -- entries are pushed at
        # >= self._now and consumed in priority order.  The `until` bound
        # gets its own loop so the unbounded run pays no per-iteration bound
        # check.
        #
        # Automatic (cyclic) garbage collection is paused for the duration:
        # the engine's per-event allocations (timeouts, heap tuples) are
        # acyclic and freed by reference counting, so generation-0 scans are
        # pure overhead (~25% of event throughput).  Cycles created by user
        # callbacks are collected as usual once run() returns.
        queue = self._queue
        pop = heapq.heappop
        processed = 0
        gc_was_enabled = gc.isenabled()
        if gc_was_enabled:
            gc.disable()
        try:
            if until is None:
                while True:
                    entry = self._front
                    if entry is not None:
                        self._front = None
                    elif queue:
                        entry = pop(queue)
                    else:
                        return
                    time, _, item = entry
                    self._now = time
                    processed += 1
                    if item.__class__ is Timeout:
                        item.processed = True
                        w = item._waiter
                        if w is not None:
                            item._waiter = None
                            if w.__class__ is Process and not w.triggered:
                                # Inlined Process._advance for the ok=True
                                # timeout outcome, with a tight chain loop:
                                # while the process yields a fresh timeout
                                # that is also the globally next entry (the
                                # dominant simulation pattern), consume it
                                # here without bouncing through the outer
                                # dispatch.  The chain is taken only when
                                # `item` has no extra waiters, so multi-
                                # waiter firing order matches the seed.
                                send = w._send
                                throw = w._throw
                                interrupts = w._interrupts
                                chain_ok = item._waiters is None
                                value = item.value
                                while True:
                                    nxt = _NO_EVENT
                                    try:
                                        if interrupts:
                                            nxt = throw(interrupts.pop(0))
                                        else:
                                            nxt = send(value)
                                    except StopIteration as stop:
                                        w.succeed(stop.value)
                                    except Interrupt as interrupt:
                                        w.fail(interrupt)
                                    except BaseException as exc:
                                        w.fail(exc)
                                    if nxt is _NO_EVENT:
                                        break
                                    if (nxt.__class__ is Timeout
                                            and nxt._waiter is None
                                            and nxt._waiters is None
                                            and not nxt.processed):
                                        if chain_ok:
                                            fentry = self._front
                                            if (fentry is not None
                                                    and fentry[2] is nxt):
                                                # Nothing can have registered
                                                # on nxt or scheduled ahead of
                                                # it: consume it immediately.
                                                self._front = None
                                                self._now = fentry[0]
                                                processed += 1
                                                nxt.processed = True
                                                value = nxt.value
                                                continue
                                        nxt._waiter = w
                                        w._target = nxt
                                        break
                                    w._wait_on(nxt)
                                    break
                            elif w.__class__ is Process:
                                pass  # terminated while queued: drop resume
                            else:
                                w(True, item.value)
                        waiters = item._waiters
                        if waiters:
                            item._waiters = None
                            value = item.value
                            for waiter in waiters:
                                _fire(waiter, True, value)
                    elif isinstance(item, Event):
                        item.processed = True
                        waiter = item._waiter
                        if waiter is not None:
                            item._waiter = None
                            _fire(waiter, item.ok, item.value)
                        waiters = item._waiters
                        if waiters:
                            item._waiters = None
                            ok, value = item.ok, item.value
                            for waiter in waiters:
                                _fire(waiter, ok, value)
                    else:
                        item()
            else:
                while True:
                    entry = self._front
                    if entry is not None:
                        if entry[0] > until:
                            self._now = until
                            return
                        self._front = None
                    elif queue:
                        if queue[0][0] > until:
                            self._now = until
                            return
                        entry = pop(queue)
                    else:
                        return
                    time, _, item = entry
                    self._now = time
                    self._dispatch(item)
                    processed += 1
        finally:
            self.events_processed += processed
            if gc_was_enabled:
                gc.enable()

    def run_process(self, generator: Generator, until: Optional[float] = None) -> Any:
        """Run a root process to completion and return (or raise) its result."""
        process = self.process(generator)
        self.run(until=until)
        if not process.triggered:
            raise SimulationError(
                "root process did not finish before the simulation ended"
            )
        if process.ok is False:
            raise process.value
        return process.value
