"""Message envelope and byte accounting.

The functional substrates exchange numpy payloads directly (they live in one
process), but every exchange is described by a :class:`Message` so that the
number of bytes that *would* cross the network is accounted identically to
the wire formats of the real system: dense float32 tensors, sufficient
factors, or 1-bit quantized tensors.
"""

from __future__ import annotations

import enum
import itertools
import threading
from dataclasses import dataclass, field
from typing import Any, Dict, Optional

import numpy as np

from repro import units


class MessageKind(str, enum.Enum):
    """Payload types exchanged by the synchronization substrates."""

    DENSE_GRADIENT = "dense_gradient"
    SUFFICIENT_FACTORS = "sufficient_factors"
    QUANTIZED_GRADIENT = "quantized_gradient"
    PARAMETERS = "parameters"
    CONTROL = "control"


_MESSAGE_IDS = itertools.count()


def payload_nbytes(payload: Any) -> int:
    """Wire size of a payload: numpy arrays, dicts/lists of arrays, or objects
    exposing ``nbytes``."""
    if payload is None:
        return 0
    if isinstance(payload, np.ndarray):
        return int(payload.nbytes)
    if isinstance(payload, dict):
        return sum(payload_nbytes(value) for value in payload.values())
    if isinstance(payload, (list, tuple)):
        return sum(payload_nbytes(value) for value in payload)
    nbytes = getattr(payload, "nbytes", None)
    if nbytes is not None:
        return int(nbytes)
    return 0


@dataclass(frozen=True)
class Message:
    """One synchronization message.

    Attributes:
        kind: payload type.
        layer: layer name the payload belongs to.
        iteration: training iteration the payload was produced in.
        src: sender identifier (worker id or ``server``).
        dst: receiver identifier.
        payload: the actual numpy data.
        nbytes: wire size; computed from the payload if not given.
    """

    kind: MessageKind
    layer: str
    iteration: int
    src: str
    dst: str
    payload: Any = None
    nbytes: int = -1
    message_id: int = field(default_factory=lambda: next(_MESSAGE_IDS))

    def __post_init__(self) -> None:
        if self.nbytes < 0:
            object.__setattr__(self, "nbytes", payload_nbytes(self.payload))


class ByteMeter:
    """Thread-safe counter of bytes sent/received, grouped by tag."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self.sent = 0
        self.received = 0
        self.by_tag: Dict[str, int] = {}

    def record(self, nbytes: int, direction: str = "sent",
               tag: Optional[str] = None) -> None:
        """Record a transfer of ``nbytes`` in the given direction."""
        with self._lock:
            if direction == "sent":
                self.sent += int(nbytes)
            elif direction == "received":
                self.received += int(nbytes)
            else:
                raise ValueError(f"unknown direction {direction!r}")
            if tag is not None:
                self.by_tag[tag] = self.by_tag.get(tag, 0) + int(nbytes)

    @property
    def total(self) -> int:
        """Total bytes in both directions."""
        return self.sent + self.received

    @property
    def total_megabytes(self) -> float:
        """Total traffic in MiB."""
        return self.total / units.MB

    def snapshot(self) -> Dict[str, int]:
        """A copy of the counters, safe to read while training continues."""
        with self._lock:
            return {
                "sent": self.sent,
                "received": self.received,
                **{f"tag:{key}": value for key, value in self.by_tag.items()},
            }
