"""Hierarchical parameter server: rack-local aggregation, then a root shard.

Datacenter Ethernet is typically oversubscribed above the top-of-rack
switch, so a flat parameter server pays cross-rack bandwidth for every
worker's gradient.  The hierarchical scheme aggregates gradients inside
each rack first (workers push to their rack leader), ships one pre-reduced
gradient per rack to the root shard that owns the layer, and distributes
the updated parameters back down the same tree -- cross-rack traffic drops
from ``P1`` flows to ``ceil(P1 / R)`` flows per layer.

Like :mod:`repro.comm.ring`, this module is a complete self-registering
communication backend: functional substrate
(:class:`HierarchicalParameterServer`, which reuses
:class:`~repro.comm.parameter_server.ShardedParameterServer` as its root),
trainer syncer (:class:`HierPSSyncer`), simulator flow pattern
(:class:`HierPSFlowPlan`, built on the existing NIC-contention model) and
Algorithm-1 cost (:class:`HierPSBackend`).
"""

from __future__ import annotations

import math
import threading
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.comm.backend import (
    CommBackend,
    FlowPlan,
    TrainerContext,
    WorkerResources,
    reduce_in_worker_order,
    register_backend,
)
from repro.comm.parameter_server import ShardedParameterServer
from repro.core.cost_model import CommScheme
from repro.core.syncer import Syncer
from repro.exceptions import CommunicationError, TrainingError
from repro.nn.optim import SGD

#: A layer's parameters or gradients: parameter name -> array.
ArrayDict = Dict[str, np.ndarray]

#: Workers aggregated under one top-of-rack switch by default.
DEFAULT_RACK_SIZE = 4


class HierarchicalParameterServer:
    """Two-level BSP parameter server: rack accumulators over a root PS.

    Workers are grouped into racks of ``rack_size`` consecutive ids.  A
    ``push`` lands in the worker's rack accumulator; once the rack is
    complete its gradients are reduced **in worker-id order** and forwarded
    (as one contribution per rack) to the root
    :class:`ShardedParameterServer`, which applies the optimiser step after
    the last rack arrives -- rack forwarding order is likewise fixed by the
    root's ordered reduction, so the whole tree is bit-reproducible.

    With ``aggregation="mean"`` each rack's partial sum is pre-scaled by
    ``1/P1`` and the root aggregates with ``"sum"``, which reproduces the
    flat PS mean exactly (up to float associativity).
    """

    def __init__(self, initial_params: Dict[str, ArrayDict], num_workers: int,
                 rack_size: int = DEFAULT_RACK_SIZE,
                 optimizer: Optional[SGD] = None, aggregation: str = "mean"):
        if num_workers < 1:
            raise CommunicationError(f"num_workers must be >= 1, got {num_workers}")
        if rack_size < 1:
            raise CommunicationError(f"rack_size must be >= 1, got {rack_size}")
        if aggregation not in ("mean", "sum"):
            raise CommunicationError(
                f"aggregation must be 'mean' or 'sum', got {aggregation!r}"
            )
        self.num_workers = int(num_workers)
        self.rack_size = int(rack_size)
        self.num_racks = math.ceil(self.num_workers / self.rack_size)
        self.aggregation = aggregation
        self.root = ShardedParameterServer(
            initial_params, num_workers=self.num_racks, optimizer=optimizer,
            aggregation="sum", ordered=True,
        )
        self._pending: Dict[Tuple[str, int], Dict[int, ArrayDict]] = {}
        self._lock = threading.Lock()

    # -- topology ---------------------------------------------------------------
    def rack_of(self, worker_id: int) -> int:
        """Rack index of a worker."""
        if not 0 <= worker_id < self.num_workers:
            raise CommunicationError(
                f"worker_id {worker_id} out of range [0, {self.num_workers})"
            )
        return worker_id // self.rack_size

    def rack_members(self, rack: int) -> List[int]:
        """Worker ids aggregated under one rack."""
        first = rack * self.rack_size
        return list(range(first, min(first + self.rack_size, self.num_workers)))

    def leader_of(self, rack: int) -> int:
        """The rack's aggregating worker (its first member)."""
        return self.rack_members(rack)[0]

    # -- worker-facing API --------------------------------------------------------
    def push(self, worker_id: int, layer: str, grads: ArrayDict) -> int:
        """Contribute one worker's gradient; returns its wire bytes.

        The rack-completing push reduces the rack and forwards the partial
        aggregate to the root shard; the last rack's forward triggers the
        root's optimiser step.
        """
        rack = self.rack_of(worker_id)
        nbytes = sum(int(g.nbytes) for g in grads.values())
        key = (layer, rack)
        with self._lock:
            pending = self._pending.setdefault(key, {})
            if worker_id in pending:
                raise CommunicationError(
                    f"worker {worker_id} already pushed {layer!r} this iteration"
                )
            pending[worker_id] = grads
            if len(pending) < len(self.rack_members(rack)):
                return nbytes
            del self._pending[key]
        partial = self._reduce_rack(pending)
        self.root.push(rack, layer, partial)
        return nbytes

    def pull(self, worker_id: int, layer: str, min_version: int,
             timeout: Optional[float] = 30.0) -> ArrayDict:
        """Block until the root reaches ``min_version``; shared snapshot."""
        return self.root.pull(worker_id, layer, min_version, timeout=timeout,
                              copy=False)

    def version(self, layer: str) -> int:
        """Aggregated updates applied to ``layer`` at the root."""
        return self.root.version(layer)

    def global_params(self, layer: str) -> ArrayDict:
        """Copy of the root's current global parameters of ``layer``."""
        return self.root.global_params(layer)

    # -- fault tolerance ----------------------------------------------------------
    def checkpoint(self, include_optimizer: bool = False) -> Dict[str, ArrayDict]:
        """Snapshot the root's global state (rack buffers never persist)."""
        return self.root.checkpoint(include_optimizer=include_optimizer)

    def restore(self, snapshot: Dict[str, ArrayDict]) -> None:
        """Restore the root and discard partially-aggregated rack buffers."""
        with self._lock:
            self._pending.clear()
        self.root.restore(snapshot)

    def abort(self, exc: BaseException) -> None:
        """Wake every blocked root ``pull`` with a failure."""
        self.root.abort(exc)

    def clear_abort(self) -> None:
        """Re-arm the tree after recovery handled the abort."""
        self.root.clear_abort()

    # -- reduction ----------------------------------------------------------------
    def _reduce_rack(self, pending: Dict[int, ArrayDict]) -> ArrayDict:
        """Sum one rack's contributions in worker-id order (pre-scaled mean)."""
        divisor = self.num_workers if self.aggregation == "mean" else None
        return reduce_in_worker_order(pending, mean_divisor=divisor)


class HierPSSyncer(Syncer):
    """Per-layer syncer pushing through the rack tree, pulling the root."""

    def __init__(self, worker_id: int, layer, hier: HierarchicalParameterServer,
                 aggregation: str = "mean", policy=None,
                 sync_timeout: Optional[float] = 30.0):
        self.hier = hier
        super().__init__(worker_id, layer, CommScheme.HIERPS,
                         aggregation=aggregation, policy=policy,
                         sync_timeout=sync_timeout)

    def _validate_backends(self) -> None:
        if self.hier is None:
            raise TrainingError(
                f"syncer for {self.layer.name!r}: hierarchical PS needs a "
                f"HierarchicalParameterServer"
            )

    def _scheme_handler(self):
        return self._sync_hier

    def _sync_hier(self, iteration: int) -> None:
        assert self._staged_grads is not None
        sent = self.hier.push(self.worker_id, self.layer.name, self._staged_grads)
        params = self.hier.pull(self.worker_id, self.layer.name,
                                min_version=iteration + 1,
                                timeout=self.sync_timeout)
        self.layer.set_params(params)
        self.stats.bytes_sent += sent
        self.stats.bytes_received += sum(int(p.nbytes) for p in params.values())


class HierPSFlowPlan(FlowPlan):
    """Simulator flow pattern of the rack tree.

    Per unit: rack members push dense gradients to their rack leader
    (point-to-point flows into the leader's downlink); each complete rack's
    leader forwards one aggregate to the unit's root owner; once every
    rack's aggregate arrived the root applies the update and the leaders
    pull the fresh parameters and redistribute them inside their racks.
    All hops ride the existing per-NIC TailChannel contention model, so
    leader and root hotspots emerge naturally.
    """

    def __init__(self, rack_size: int = DEFAULT_RACK_SIZE):
        self.rack_size = int(rack_size)

    def _sim_rack_size(self, sim) -> int:
        """The aggregation rack size used for one simulation.

        On a rack-oversubscribed cluster the tree aggregates along the
        *physical* racks (that is the whole point of the scheme); on the
        flat default it keeps the backend's configured logical rack size.
        """
        config = sim.cluster_config
        if not config.is_flat_topology:
            return config.nodes_per_rack
        return self.rack_size

    def _tree_state(self, sim, unit):
        state = sim.unit_state(unit)
        tree = state.extra.get("hierps")
        if tree is None:
            rack_size = self._sim_rack_size(sim)
            racks = sim.cluster.racks(rack_size)
            tree = {
                "rack_size": rack_size,
                "racks": racks,
                "rack_done": {rack: sim.env.countdown(len(members))
                              for rack, members in enumerate(racks)},
                "root_done": sim.env.countdown(len(racks)),
                "delivered": {rack: sim.env.event() for rack in range(len(racks))},
            }
            state.extra["hierps"] = tree
        return state, tree

    def worker_sync(self, sim, worker, unit, scheme):
        state, tree = self._tree_state(sim, unit)
        rack = worker // tree["rack_size"]
        members = tree["racks"][rack]
        leader = members[0]
        dense_bytes = unit.param_bytes / sim.compression(scheme)
        state.mark_send_started()
        if worker != leader:
            yield from sim.cluster.transfer(worker, leader, dense_bytes,
                                            tag=f"hier-push:{unit.name}")
            tree["rack_done"][rack].arrive()
            if not sim.system.overlap_pull:
                yield sim.backward_done(worker)
            yield tree["delivered"][rack]
            state.all_sent.arrive()
            return
        # Rack leader: own gradient is already local; wait for the rack,
        # forward one aggregate to the root owner, pull, redistribute.
        tree["rack_done"][rack].arrive()
        yield tree["rack_done"][rack]
        owner = sim.coarse_owner[unit.name]
        yield from sim.cluster.transfer(leader, owner, dense_bytes,
                                        tag=f"hier-up:{unit.name}")
        tree["root_done"].arrive()
        yield tree["root_done"]
        if not sim.system.overlap_pull:
            # No-overlap systems fetch parameters only after the backward
            # pass, exactly as the PS flow plan gates its pulls.
            yield sim.backward_done(leader)
        yield from sim.cluster.transfer(owner, leader, dense_bytes,
                                        tag=f"hier-down:{unit.name}")
        peers = [member for member in members if member != leader]
        if peers:
            yield from sim.cluster.broadcast(leader, peers, dense_bytes,
                                             tag=f"hier-dist:{unit.name}")
        tree["delivered"][rack].succeed()
        state.all_sent.arrive()


class HierPSBackend(CommBackend):
    """Rack-aggregated parameter server as a pluggable backend."""

    scheme = CommScheme.HIERPS
    #: Joins Algorithm 1 only on oversubscribed networks: rack aggregation
    #: shrinks cross-rack traffic from one flow per worker to one per rack.
    topology_candidate = True
    hybrid_rank = 3  # never steals a flat tie from SFB (0) or PS (1)

    def __init__(self, rack_size: int = DEFAULT_RACK_SIZE):
        if rack_size < 1:
            raise CommunicationError(f"rack_size must be >= 1, got {rack_size}")
        self.rack_size = int(rack_size)
        self.flow_plan = HierPSFlowPlan(rack_size)

    def _cost_rack_size(self, num_workers: int, topology=None) -> int:
        """Aggregation rack size: physical racks when oversubscribed."""
        if topology is not None and not topology.is_flat:
            return topology.nodes_per_rack(num_workers)
        return self.rack_size

    def cost(self, m, n, num_workers, num_servers, batch_size,
             bandwidth_bps=None, topology=None):
        """Transmit+receive volume at the busiest node of the tree.

        A rack leader exchanges the whole rack's gradients and parameters
        (``2 R M N``); the root owner exchanges one aggregate per rack
        (``2 ceil(P1/R) M N``).  The hotspot is whichever fan is wider.
        On an oversubscribed cluster the tree follows the physical racks,
        and the cross-rack premium applies only to the per-rack aggregates
        (see :meth:`rack_uplink_params`).
        """
        if num_workers <= 1:
            return 0.0
        rack_size = self._cost_rack_size(num_workers, topology)
        local_fan = min(rack_size, num_workers)
        num_racks = math.ceil(num_workers / rack_size)
        flat = 2.0 * m * n * max(local_fan, num_racks)
        return self._topology_cost(flat, m, n, num_workers, num_servers,
                                   batch_size, topology)

    def rack_uplink_params(self, m, n, num_workers, num_servers, batch_size,
                           topology):
        # Only the pre-reduced per-rack aggregates cross rack boundaries.
        # The root owner's rack is the hotspot: every other rack's
        # aggregate comes in and the updated parameters go back out.
        return 2.0 * m * n * (topology.num_racks(num_workers) - 1)

    def latency_messages(self, num_workers, num_servers):
        # Two tree levels, each a push + pull round trip.
        return 4.0

    def build_substrate(self, initial_layers, ctx: TrainerContext):
        return HierarchicalParameterServer(
            initial_layers, ctx.num_workers, rack_size=self.rack_size,
            optimizer=ctx.make_optimizer(), aggregation=ctx.aggregation,
        )

    def make_syncer(self, layer, substrate, resources: WorkerResources,
                    ctx: TrainerContext, policy=None):
        return HierPSSyncer(resources.worker_id, layer, substrate,
                            aggregation=ctx.aggregation,
                            policy=ctx.policy if policy is None else policy,
                            sync_timeout=ctx.sync_timeout)


HIERPS_BACKEND = register_backend(HierPSBackend())
