"""Project Adam's communication strategy for FC layers.

Instead of broadcasting sufficient factors peer-to-peer (SFB) or pushing
dense gradients (PS), Adam workers *push* sufficient factors to the single
parameter-server shard that owns the layer and then *pull back the full
updated parameter matrix* (Section 3.2).  This reduces the push direction
but makes the owning server broadcast ``P1`` full matrices per iteration,
which is the load imbalance Figure 10 visualises.
"""

from __future__ import annotations

import threading
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.comm.message import ByteMeter
from repro.exceptions import CommunicationError, SyncTimeout, WorkerFailure
from repro.nn.optim import SGD
from repro.nn.sufficient_factors import SufficientFactors

ArrayDict = Dict[str, np.ndarray]


class _AdamSlot:
    """Aggregation state of one FC layer owned by one server shard."""

    def __init__(self, params: ArrayDict):
        self.params = {key: value.copy() for key, value in params.items()}
        self.pending: List[Tuple[int, SufficientFactors, ArrayDict]] = []
        self.version = 0
        self.condition = threading.Condition()


class AdamSFServer:
    """Functional model of Adam's SF-push / matrix-pull synchronization.

    With ``ordered=True`` the per-iteration reduction runs in worker-id
    order instead of push-arrival order, making the aggregate bit-identical
    run-to-run under the threaded trainer.
    """

    def __init__(self, initial_params: Dict[str, ArrayDict], num_workers: int,
                 optimizer: Optional[SGD] = None, aggregation: str = "mean",
                 ordered: bool = False):
        if num_workers < 1:
            raise CommunicationError(f"num_workers must be >= 1, got {num_workers}")
        if aggregation not in ("mean", "sum"):
            raise CommunicationError(
                f"aggregation must be 'mean' or 'sum', got {aggregation!r}"
            )
        self.num_workers = int(num_workers)
        self.aggregation = aggregation
        self.ordered = bool(ordered)
        self.optimizer = optimizer or SGD(learning_rate=0.01)
        self._slots = {name: _AdamSlot(params) for name, params in initial_params.items()}
        self.meter = ByteMeter()
        self._abort_reason: Optional[BaseException] = None

    def _slot(self, layer: str) -> _AdamSlot:
        try:
            return self._slots[layer]
        except KeyError as exc:
            raise CommunicationError(f"Adam server has no layer {layer!r}") from exc

    def version(self, layer: str) -> int:
        """Number of aggregated updates applied to ``layer``."""
        return self._slot(layer).version

    def push_factors(self, worker_id: int, layer: str, factors: SufficientFactors,
                     extras: Optional[ArrayDict] = None) -> int:
        """Push one worker's sufficient factors to the owning shard."""
        slot = self._slot(layer)
        extras = extras or {}
        nbytes = factors.nbytes + sum(int(v.nbytes) for v in extras.values())
        with slot.condition:
            if self.ordered and any(entry[0] == worker_id for entry in slot.pending):
                raise CommunicationError(
                    f"layer {layer!r}: worker {worker_id} pushed twice in one iteration"
                )
            slot.pending.append(
                (worker_id, factors, {k: np.asarray(v) for k, v in extras.items()}))
            if len(slot.pending) > self.num_workers:
                raise CommunicationError(
                    f"layer {layer!r}: more pushes than workers in one iteration"
                )
            if len(slot.pending) == self.num_workers:
                self._apply_locked(layer, slot)
        self.meter.record(nbytes, "received", tag=f"adam-push:{layer}")
        return nbytes

    def pull_matrix(self, worker_id: int, layer: str, min_version: int,
                    timeout: Optional[float] = 30.0) -> ArrayDict:
        """Pull the full updated parameter matrix (the expensive direction)."""
        slot = self._slot(layer)
        with slot.condition:
            if not slot.condition.wait_for(
                    lambda: (slot.version >= min_version
                             or self._abort_reason is not None),
                    timeout=timeout):
                raise SyncTimeout(
                    f"pull of {layer!r} timed out waiting for version {min_version}"
                )
            if self._abort_reason is not None and slot.version < min_version:
                raise self._wrap_abort(layer)
            params = {key: value.copy() for key, value in slot.params.items()}
        nbytes = sum(int(v.nbytes) for v in params.values())
        self.meter.record(nbytes, "sent", tag=f"adam-pull:{layer}")
        return params

    # -- fault tolerance ----------------------------------------------------------------
    def checkpoint(self, include_optimizer: bool = True
                   ) -> Dict[str, ArrayDict]:
        """Deep-copy snapshot of parameters, versions and optimiser state.

        Unlike the plain PS (whose snapshot schema predates fault
        tolerance), the Adam server includes its optimiser state by
        default: its momentum velocities live server-side, so an exact
        restart is impossible without them.
        """
        snapshot: Dict[str, ArrayDict] = {}
        for name, slot in self._slots.items():
            with slot.condition:
                snapshot[name] = {key: value.copy()
                                  for key, value in slot.params.items()}
                snapshot[name]["__version__"] = np.array(slot.version)
        if include_optimizer:
            snapshot["__optimizer__"] = self.optimizer.get_state()
        return snapshot

    def restore(self, snapshot: Dict[str, ArrayDict]) -> None:
        """Restore from a :meth:`checkpoint` snapshot; clears pending pushes.

        Raises:
            CommunicationError: on unknown layers or mismatched shapes.
        """
        optimizer_state = snapshot.get("__optimizer__")
        if optimizer_state is not None:
            self.optimizer.set_state(optimizer_state)
        for name, params in snapshot.items():
            if name == "__optimizer__":
                continue
            slot = self._slot(name)
            with slot.condition:
                for key, value in params.items():
                    if key == "__version__":
                        slot.version = int(value)
                        continue
                    if key not in slot.params:
                        raise CommunicationError(
                            f"snapshot has unknown parameter {name}/{key}")
                    if value.shape != slot.params[key].shape:
                        raise CommunicationError(
                            f"snapshot shape mismatch for {name}/{key}: "
                            f"{value.shape} vs {slot.params[key].shape}")
                    np.copyto(slot.params[key], value)
                slot.pending.clear()
                slot.condition.notify_all()

    def abort(self, exc: BaseException) -> None:
        """Wake every blocked ``pull_matrix`` with a failure."""
        self._abort_reason = exc
        for slot in self._slots.values():
            with slot.condition:
                slot.condition.notify_all()

    def clear_abort(self) -> None:
        """Re-arm the server after recovery handled the abort."""
        self._abort_reason = None

    def _wrap_abort(self, layer: str) -> BaseException:
        reason = self._abort_reason
        if isinstance(reason, WorkerFailure):
            return WorkerFailure(
                f"Adam server aborted (layer {layer!r}): {reason}",
                worker_id=reason.worker_id, iteration=reason.iteration,
                cascade=True)
        return CommunicationError(
            f"Adam server aborted (layer {layer!r}): {reason}")

    def _apply_locked(self, layer: str, slot: _AdamSlot) -> None:
        weight_total = None
        extra_totals: ArrayDict = {}
        pending = slot.pending
        if self.ordered:
            pending = sorted(pending, key=lambda entry: entry[0])
        for _, factors, extras in pending:
            dense = factors.reconstruct()
            weight_total = dense if weight_total is None else weight_total + dense
            for key, value in extras.items():
                extra_totals[key] = extra_totals.get(key, 0.0) + value
        if self.aggregation == "mean":
            weight_total = weight_total / float(self.num_workers)
            extra_totals = {k: v / float(self.num_workers) for k, v in extra_totals.items()}
        if "weight" in slot.params and weight_total is not None:
            self.optimizer.apply(f"{layer}/weight", slot.params["weight"], weight_total)
        for key, grad in extra_totals.items():
            if key in slot.params:
                self.optimizer.apply(f"{layer}/{key}", slot.params[key], grad)
        slot.pending.clear()
        slot.version += 1
        slot.condition.notify_all()
