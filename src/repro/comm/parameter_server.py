"""A bulk-synchronous sharded parameter server.

Functional equivalent of the paper's KV-store-backed PS (Section 4.1): the
server holds the authoritative copy of every layer's parameters, receives
gradient contributions from all workers, applies them once every worker has
contributed (bulk synchronous consistency: a KV pair is broadcast when its
update count equals the number of workers), and hands the fresh parameters
back.

Because the functional runtime lives in a single process, "shards" are a
partitioning of the parameters used for byte accounting and balance
statistics; correctness does not depend on the shard count.
"""

from __future__ import annotations

import threading
from typing import Callable, Dict, List, Optional

import numpy as np

from repro.comm.message import ByteMeter
from repro.exceptions import CommunicationError, SyncTimeout, WorkerFailure
from repro.nn.optim import SGD

#: A layer's parameters or gradients: parameter name -> array.
ArrayDict = Dict[str, np.ndarray]


class _LayerSlot:
    """Per-layer aggregation state.

    Gradient pushes accumulate in place into the preallocated ``accum``
    buffers (one per parameter, allocated once at construction) instead of
    being queued as per-worker dicts and summed at the end of the iteration.
    """

    def __init__(self, params: ArrayDict):
        self.params = {key: value.copy() for key, value in params.items()}
        self.accum = {key: np.zeros_like(value) for key, value in self.params.items()}
        self.touched: set = set()       # accum keys with >= 1 contribution
        self.pushes = 0                 # contributions this iteration
        self.version = 0
        self.condition = threading.Condition()
        # Ordered mode: contributions buffered per worker id so the
        # reduction can run in worker-id order instead of arrival order.
        self.contributions: Dict[int, ArrayDict] = {}
        # Read-only parameter snapshot shared by pull(copy=False) callers,
        # rebuilt lazily per version.
        self.snapshot: Optional[ArrayDict] = None
        self.snapshot_version = -1


class ShardedParameterServer:
    """BSP parameter server over named layers.

    Args:
        initial_params: layer name -> parameter dict; defines the global
            model state all workers will train.
        num_workers: number of workers that must contribute per iteration.
        optimizer: optimiser applied to the global parameters on aggregation.
        aggregation: ``"mean"`` (average worker gradients; equivalent to
            training on the combined batch with the same learning rate) or
            ``"sum"`` (the literal form of Eq. 2).
        ordered: buffer contributions per worker and reduce them in
            worker-id order once the iteration is complete, making the
            aggregate bit-identical run-to-run regardless of which thread
            pushes first (floating-point addition is not associative).
            Arrival-order in-place accumulation (the default) avoids the
            buffering but lets thread scheduling perturb the last bits.
        updates_per_version: pushes that trigger one optimiser step and
            version bump.  ``None`` (the default) means ``num_workers`` --
            the BSP rendezvous.  Relaxed-consistency policies (SSP with
            s > 0, fully async) pass 1 so each worker's update is applied
            as it arrives; the double-push guard is disabled since workers
            legitimately run ahead of each other.
    """

    def __init__(self, initial_params: Dict[str, ArrayDict], num_workers: int,
                 optimizer: Optional[SGD] = None, aggregation: str = "mean",
                 ordered: bool = False,
                 updates_per_version: Optional[int] = None):
        if num_workers < 1:
            raise CommunicationError(f"num_workers must be >= 1, got {num_workers}")
        if aggregation not in ("mean", "sum"):
            raise CommunicationError(
                f"aggregation must be 'mean' or 'sum', got {aggregation!r}"
            )
        if updates_per_version is not None and updates_per_version < 1:
            raise CommunicationError(
                f"updates_per_version must be >= 1, got {updates_per_version}")
        self.num_workers = int(num_workers)
        self.updates_per_version = (int(num_workers)
                                    if updates_per_version is None
                                    else int(updates_per_version))
        self.aggregation = aggregation
        self.ordered = bool(ordered)
        self.optimizer = optimizer or SGD(learning_rate=0.01)
        self._slots: Dict[str, _LayerSlot] = {
            name: _LayerSlot(params) for name, params in initial_params.items()
        }
        self.meter = ByteMeter()
        self._apply_hooks: List[Callable[[str, ArrayDict], None]] = []
        self._abort_reason: Optional[BaseException] = None
        self._dropped: set = set()

    # -- introspection -----------------------------------------------------------
    @property
    def layer_names(self) -> List[str]:
        """Names of the layers this server manages."""
        return list(self._slots)

    def version(self, layer: str) -> int:
        """Number of aggregated updates applied to ``layer`` so far."""
        return self._slot(layer).version

    def global_params(self, layer: str) -> ArrayDict:
        """Copy of the current global parameters of ``layer``."""
        slot = self._slot(layer)
        with slot.condition:
            return {key: value.copy() for key, value in slot.params.items()}

    def add_apply_hook(self, hook: Callable[[str, ArrayDict], None]) -> None:
        """Register a callback invoked with (layer, aggregated gradient) on apply."""
        self._apply_hooks.append(hook)

    def _slot(self, layer: str) -> _LayerSlot:
        try:
            return self._slots[layer]
        except KeyError as exc:
            raise CommunicationError(f"parameter server has no layer {layer!r}") from exc

    # -- worker-facing API ----------------------------------------------------------
    def push(self, worker_id: int, layer: str, grads: ArrayDict,
             nbytes: Optional[int] = None) -> int:
        """Contribute one worker's gradient for ``layer``.

        The last contribution of the iteration triggers aggregation and the
        optimiser step.  Returns the number of bytes this push represents on
        the wire.
        """
        slot = self._slot(layer)
        push_bytes = int(nbytes) if nbytes is not None else sum(
            int(g.nbytes) for g in grads.values())
        with slot.condition:
            if self._abort_reason is not None:
                raise self._wrap_abort(layer)
            if worker_id in self._dropped:
                raise WorkerFailure(
                    f"dropped worker {worker_id} pushed to layer {layer!r}",
                    worker_id=worker_id, cascade=True)
            for key, grad in grads.items():
                if key not in slot.params:
                    raise CommunicationError(
                        f"layer {layer!r} has no parameter {key!r}"
                    )
                if grad.shape != slot.params[key].shape:
                    raise CommunicationError(
                        f"layer {layer!r} parameter {key!r}: gradient shape "
                        f"{grad.shape} does not match parameter {slot.params[key].shape}"
                    )
            if slot.pushes >= self.updates_per_version:
                raise CommunicationError(
                    f"layer {layer!r} received {slot.pushes + 1} pushes for "
                    f"{self.updates_per_version} expected per version; "
                    f"a worker pushed twice in one iteration"
                )
            if self.ordered and self.updates_per_version == self.num_workers:
                if worker_id in slot.contributions:
                    raise CommunicationError(
                        f"layer {layer!r}: worker {worker_id} pushed twice in "
                        f"one iteration"
                    )
                # Buffered by reference: BSP guarantees the pusher blocks on
                # its pull until the aggregate is applied, so the gradient
                # buffers stay untouched until the reduction below runs.
                slot.contributions[worker_id] = grads
            else:
                for key, grad in grads.items():
                    acc = slot.accum[key]
                    if key in slot.touched:
                        np.add(acc, grad, out=acc, casting="unsafe")
                    else:
                        np.copyto(acc, grad, casting="unsafe")
                        slot.touched.add(key)
            slot.pushes += 1
            if slot.pushes == self.updates_per_version:
                if slot.contributions:
                    self._reduce_ordered_locked(slot)
                self._apply_locked(layer, slot)
        self.meter.record(push_bytes, "received", tag=f"push:{layer}")
        return push_bytes

    def pull(self, worker_id: int, layer: str, min_version: int,
             timeout: Optional[float] = 30.0, copy: bool = True) -> ArrayDict:
        """Block until ``layer`` has reached ``min_version`` and return its params.

        Args:
            copy: when True (default) every puller gets its own mutable
                copy.  With ``copy=False`` all pullers of a version share
                one read-only snapshot (built lazily, once per version)
                instead of paying one full parameter copy per worker --
                callers must install it via a copying setter such as
                ``Layer.set_params`` and never mutate it.

        Raises:
            CommunicationError: if the wait times out (deadlock guard).
        """
        slot = self._slot(layer)
        with slot.condition:
            if not slot.condition.wait_for(
                    lambda: (slot.version >= min_version
                             or self._abort_reason is not None),
                    timeout=timeout):
                raise SyncTimeout(
                    f"pull of layer {layer!r} timed out waiting for version "
                    f"{min_version} (current {slot.version})"
                )
            if self._abort_reason is not None and slot.version < min_version:
                raise self._wrap_abort(layer)
            if copy:
                params = {key: value.copy() for key, value in slot.params.items()}
            else:
                if slot.snapshot_version != slot.version:
                    snapshot = {key: value.copy() for key, value in slot.params.items()}
                    for value in snapshot.values():
                        value.setflags(write=False)
                    slot.snapshot = snapshot
                    slot.snapshot_version = slot.version
                params = slot.snapshot
        pull_bytes = sum(int(p.nbytes) for p in params.values())
        self.meter.record(pull_bytes, "sent", tag=f"pull:{layer}")
        return params

    # -- fault tolerance ----------------------------------------------------------------
    def checkpoint(self, include_optimizer: bool = False
                   ) -> Dict[str, Dict[str, np.ndarray]]:
        """Snapshot the global parameter state (plus per-layer versions).

        The paper's KV store "will regularly checkpoint current parameter
        states for fault tolerance" (Section 4.1); this returns a deep copy
        that :meth:`restore` accepts.  With ``include_optimizer=True`` the
        server-side optimiser state (momentum velocities) is captured under
        a top-level ``"__optimizer__"`` key, which exact crash recovery
        needs whenever the optimiser is stateful.
        """
        snapshot: Dict[str, Dict[str, np.ndarray]] = {}
        for name, slot in self._slots.items():
            with slot.condition:
                snapshot[name] = {key: value.copy() for key, value in slot.params.items()}
                snapshot[name]["__version__"] = np.array(slot.version)
        if include_optimizer:
            snapshot["__optimizer__"] = self.optimizer.get_state()
        return snapshot

    def restore(self, snapshot: Dict[str, Dict[str, np.ndarray]]) -> None:
        """Restore parameters and versions from a :meth:`checkpoint` snapshot.

        Raises:
            CommunicationError: if the snapshot covers unknown layers or has
                mismatched shapes.
        """
        optimizer_state = snapshot.get("__optimizer__")
        if optimizer_state is not None:
            self.optimizer.set_state(optimizer_state)
            snapshot = {name: params for name, params in snapshot.items()
                        if name != "__optimizer__"}
        for name, params in snapshot.items():
            slot = self._slot(name)
            with slot.condition:
                for key, value in params.items():
                    if key == "__version__":
                        slot.version = int(value)
                        continue
                    if key not in slot.params:
                        raise CommunicationError(
                            f"snapshot has unknown parameter {name}/{key}")
                    if value.shape != slot.params[key].shape:
                        raise CommunicationError(
                            f"snapshot shape mismatch for {name}/{key}: "
                            f"{value.shape} vs {slot.params[key].shape}")
                    np.copyto(slot.params[key], value)
                slot.touched.clear()
                slot.pushes = 0
                slot.contributions.clear()
                slot.snapshot = None
                slot.snapshot_version = -1
                slot.condition.notify_all()

    def remove_worker(self, worker_id: int) -> None:
        """Drop a dead worker: renormalize aggregation to a P-1 mean.

        Any in-flight contribution buffered for the dead worker is
        discarded; if the survivors have already all pushed the pending
        iteration, aggregation triggers immediately so nobody waits for
        the ghost.  The BSP rendezvous count shrinks with the membership
        (``updates_per_version`` tracks ``num_workers`` when they were
        equal), so subsequent means divide by the surviving worker count.
        """
        if worker_id in self._dropped:
            return
        shrink_rendezvous = self.updates_per_version == self.num_workers
        if self.num_workers <= 1:
            raise CommunicationError("cannot drop the last remaining worker")
        self._dropped.add(worker_id)
        self.num_workers -= 1
        if shrink_rendezvous:
            self.updates_per_version = self.num_workers
        for layer, slot in self._slots.items():
            with slot.condition:
                if worker_id in slot.contributions:
                    del slot.contributions[worker_id]
                    slot.pushes -= 1
                if 0 < slot.pushes >= self.updates_per_version:
                    if slot.contributions:
                        self._reduce_ordered_locked(slot)
                    self._apply_locked(layer, slot)

    def abort(self, exc: BaseException) -> None:
        """Wake every blocked ``pull`` with a failure (dead-peer fan-out)."""
        self._abort_reason = exc
        for slot in self._slots.values():
            with slot.condition:
                slot.condition.notify_all()

    def clear_abort(self) -> None:
        """Re-arm the server after recovery handled the abort."""
        self._abort_reason = None

    def _wrap_abort(self, layer: str) -> BaseException:
        reason = self._abort_reason
        if isinstance(reason, WorkerFailure):
            return WorkerFailure(
                f"parameter server aborted (layer {layer!r}): {reason}",
                worker_id=reason.worker_id, iteration=reason.iteration,
                cascade=True)
        return CommunicationError(
            f"parameter server aborted (layer {layer!r}): {reason}")

    # -- aggregation -------------------------------------------------------------------
    def _reduce_ordered_locked(self, slot: _LayerSlot) -> None:
        """Fold the buffered contributions into ``accum`` in worker-id order."""
        for worker_id in sorted(slot.contributions):
            for key, grad in slot.contributions[worker_id].items():
                acc = slot.accum[key]
                if key in slot.touched:
                    np.add(acc, grad, out=acc, casting="unsafe")
                else:
                    np.copyto(acc, grad, casting="unsafe")
                    slot.touched.add(key)
        slot.contributions.clear()

    def _apply_locked(self, layer: str, slot: _LayerSlot) -> None:
        """Apply the accumulated gradients to the global params (lock held)."""
        aggregated: ArrayDict = {}
        for key in slot.params:
            if key not in slot.touched:
                continue
            total = slot.accum[key]
            if self.aggregation == "mean":
                if np.issubdtype(total.dtype, np.floating):
                    total /= float(self.num_workers)
                else:
                    total = total / float(self.num_workers)
            aggregated[key] = total
        for key, grad in aggregated.items():
            self.optimizer.apply(f"{layer}/{key}", slot.params[key], grad)
        slot.touched.clear()
        slot.pushes = 0
        slot.version += 1
        if self._apply_hooks:
            # Hooks get their own copies: the aggregated values above are the
            # reusable accumulation buffers, overwritten next iteration.
            hook_grads = {key: grad.copy() for key, grad in aggregated.items()}
            for hook in self._apply_hooks:
                hook(layer, hook_grads)
        slot.condition.notify_all()
