"""Periodic parameter averaging -- the wire substrate of local SGD.

Local SGD workers take ``H`` purely local optimizer steps, then rendezvous
to average their *parameters* (not gradients) across the cluster.  The
:class:`ParameterAverager` is that rendezvous: a BSP-style board keyed by
(layer, round) where every worker deposits its parameter arrays and blocks
until the worker-id-ordered mean is available.

Averaging rounds happen every ``H``-th iteration, so wire traffic drops by
``H``x versus per-iteration gradient sync -- the byte accounting in
:class:`repro.core.syncer.LocalSGDSyncer` reflects exactly that.
"""

from __future__ import annotations

import threading
from typing import Dict, Optional, Tuple

import numpy as np

from repro.exceptions import CommunicationError, SyncTimeout, WorkerFailure

#: A layer's parameters: parameter name -> array.
ArrayDict = Dict[str, np.ndarray]


class _Round:
    """One (layer, round) averaging rendezvous."""

    __slots__ = ("contributions", "result", "readers")

    def __init__(self) -> None:
        self.contributions: Dict[int, ArrayDict] = {}
        self.result: Optional[ArrayDict] = None
        self.readers = 0


class ParameterAverager:
    """All-worker parameter averaging board, deterministic by construction.

    Contributions are buffered per worker id and reduced in ascending
    worker-id order once all ``num_workers`` have arrived (floating-point
    addition is not associative; a fixed reduction order keeps consecutive
    runs bit-identical regardless of thread scheduling).  The averaged
    result is shared read-only between all workers of the round and the
    round's state is garbage-collected once every worker has read it.
    """

    def __init__(self, num_workers: int):
        if num_workers < 1:
            raise CommunicationError(
                f"num_workers must be >= 1, got {num_workers}")
        self.num_workers = int(num_workers)
        self._rounds: Dict[Tuple[str, int], _Round] = {}
        self._condition = threading.Condition()
        self._abort_reason: Optional[BaseException] = None
        self._dropped: set = set()

    def average(self, worker_id: int, layer: str, round_index: int,
                params: ArrayDict,
                timeout: Optional[float] = 60.0) -> ArrayDict:
        """Deposit one worker's parameters; block for the cluster mean.

        Args:
            worker_id: contributing worker (each may contribute once per
                round).
            layer: layer name keying the board.
            round_index: averaging round (monotonic per layer).
            params: the worker's current parameter arrays (buffered by
                reference; the worker blocks here until the mean is built,
                so the arrays are not mutated concurrently).
            timeout: deadlock guard for the all-worker wait.

        Returns:
            The worker-id-ordered mean of all contributions, shared
            read-only across workers -- install via a copying setter such
            as ``Layer.set_params`` and never mutate it.
        """
        key = (layer, int(round_index))
        with self._condition:
            if self._abort_reason is not None:
                raise self._wrap_abort(layer, round_index)
            if worker_id in self._dropped:
                raise WorkerFailure(
                    f"dropped worker {worker_id} joined averaging round "
                    f"{round_index} of layer {layer!r}",
                    worker_id=worker_id, cascade=True)
            board = self._rounds.get(key)
            if board is None:
                board = self._rounds[key] = _Round()
            if worker_id in board.contributions:
                raise CommunicationError(
                    f"layer {layer!r} round {round_index}: worker "
                    f"{worker_id} contributed twice")
            board.contributions[worker_id] = params
            if len(board.contributions) >= self.num_workers:
                board.result = self._reduce(board.contributions)
                self._condition.notify_all()
            elif not self._condition.wait_for(
                    lambda: (board.result is not None
                             or self._abort_reason is not None),
                    timeout=timeout):
                raise SyncTimeout(
                    f"parameter averaging of layer {layer!r} round "
                    f"{round_index} timed out with "
                    f"{len(board.contributions)}/{self.num_workers} workers")
            if board.result is None:
                raise self._wrap_abort(layer, round_index)
            result = board.result
            board.readers += 1
            if board.readers >= self.num_workers:
                del self._rounds[key]
        return result

    # -- fault tolerance ----------------------------------------------------------------
    def checkpoint(self) -> dict:
        """Rounds never span checkpoints under BSP; nothing to save."""
        return {}

    def restore(self, snapshot: dict) -> None:
        """Clear all in-flight rounds (restart recovery)."""
        with self._condition:
            self._rounds.clear()
            self._dropped.clear()
            self._abort_reason = None
            self._condition.notify_all()

    def remove_worker(self, worker_id: int) -> None:
        """Drop a dead worker: future rounds average over P-1 survivors.

        A pending round the survivors have already fully joined is reduced
        immediately so nobody waits for the ghost.
        """
        with self._condition:
            if worker_id in self._dropped:
                return
            if self.num_workers <= 1:
                raise CommunicationError("cannot drop the last remaining worker")
            self._dropped.add(worker_id)
            self.num_workers -= 1
            for board in self._rounds.values():
                board.contributions.pop(worker_id, None)
                if (board.result is None
                        and len(board.contributions) >= self.num_workers):
                    board.result = self._reduce(board.contributions)
            self._condition.notify_all()

    def abort(self, exc: BaseException) -> None:
        """Wake every blocked ``average`` with a failure."""
        with self._condition:
            self._abort_reason = exc
            self._condition.notify_all()

    def clear_abort(self) -> None:
        """Re-arm the board after recovery handled the abort."""
        with self._condition:
            self._abort_reason = None

    def _wrap_abort(self, layer: str, round_index: int) -> BaseException:
        reason = self._abort_reason
        if isinstance(reason, WorkerFailure):
            return WorkerFailure(
                f"averaging of layer {layer!r} round {round_index} aborted: "
                f"{reason}", worker_id=reason.worker_id,
                iteration=reason.iteration, cascade=True)
        return CommunicationError(
            f"averaging of layer {layer!r} round {round_index} aborted: "
            f"{reason}")

    def _reduce(self, contributions: Dict[int, ArrayDict]) -> ArrayDict:
        """Mean of the contributions, folded in ascending worker-id order."""
        order = sorted(contributions)
        total = {key: value.copy()
                 for key, value in contributions[order[0]].items()}
        for worker_id in order[1:]:
            for key, value in contributions[worker_id].items():
                np.add(total[key], value, out=total[key], casting="unsafe")
        for value in total.values():
            if np.issubdtype(value.dtype, np.floating):
                value /= float(self.num_workers)
            value.setflags(write=False)
        return total
