"""Bucketed wire granularity: fewer, larger gradient messages.

Production data-parallel stacks fuse per-layer gradients into fixed-size
buckets flushed the moment they fill during the backward pass (the DDP
communication-hook pattern).  Two mirrored pieces implement that axis
here, both driven by the same greedy partition rule
(:func:`repro.comm.wire.bucket_partition`) so the trainer's real message
counts and the simulators' modelled ones agree by construction:

* :class:`GradientBucketer` -- trainer side.  Per-layer sync closures are
  added in reverse layer order as backprop produces them; the bucketer
  flushes a combined WFBP scheduler job the moment the accumulated dense
  bytes reach the bucket size, so bucket flushes overlap with the
  remaining backward pass exactly like per-layer sends do.
* :func:`bucket_workload` -- simulator side.  Consecutive same-scheme
  units of a bucketable (dense-gradient) backend are merged into one
  :class:`~repro.simulation.workload.SyncUnit` whose backward time is the
  members' sum -- the merged unit's sync starts when the bucket would
  flush -- and whose ``payload_parts`` carry the members' shapes so
  compressed wire bytes stay exact.

Bucketing never changes byte totals, only message counts: each merged
flow pays the per-message latency once instead of once per layer.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.comm.backend import get_backend, registry_generation
from repro.comm.wire import bucket_partition
from repro.core.cost_model import CommScheme
from repro.exceptions import ConfigurationError
from repro.simulation.workload import IterationWorkload, SyncUnit


class GradientBucketer:
    """Groups per-layer sync jobs into fixed-byte-size scheduler jobs.

    ``add`` is called once per layer, in the order backprop produces
    gradients (reverse layer order).  Jobs of bucketable schemes
    accumulate until the bucket fills (``>= bucket_bytes`` of dense
    gradient), then one combined job is scheduled; it runs the member
    syncs sequentially in submission order, which is the same order on
    every worker -- no cross-worker deadlock, and under the deterministic
    scheduler bit-identical parameters for every bucket size.  Jobs of
    non-bucketable schemes (factor/quantized payloads) flush the pending
    bucket and are scheduled directly, mirroring
    :func:`bucket_workload`'s pass-through rule.
    """

    def __init__(self, bucket_bytes: int, scheduler: Any):
        if bucket_bytes < 1:
            raise ConfigurationError(
                f"bucket_bytes must be >= 1, got {bucket_bytes}")
        self.bucket_bytes = int(bucket_bytes)
        self.scheduler = scheduler
        self._pending: List[Callable[[], Any]] = []
        self._pending_bytes = 0.0
        #: Messages actually flushed (bucketed and pass-through alike).
        self.messages_flushed = 0
        #: Per-layer jobs routed through the bucketer.
        self.jobs_added = 0

    def add(self, nbytes: float, job: Callable[[], Any],
            bucketable: bool = True) -> None:
        """Queue one layer's sync job carrying ``nbytes`` of dense gradient."""
        self.jobs_added += 1
        if not bucketable:
            self.flush()
            self.messages_flushed += 1
            self.scheduler.schedule(job)
            return
        self._pending.append(job)
        self._pending_bytes += nbytes
        if self._pending_bytes >= self.bucket_bytes:
            self.flush()

    def flush(self) -> None:
        """Schedule the pending bucket as one combined job (no-op if empty)."""
        if not self._pending:
            return
        jobs, self._pending = self._pending, []
        self._pending_bytes = 0.0
        self.messages_flushed += 1

        def bucket_job(jobs: List[Callable[[], Any]] = jobs) -> None:
            for job in jobs:
                job()

        self.scheduler.schedule(bucket_job)

    def finish(self) -> None:
        """Flush the final partial bucket (call after the backward pass)."""
        self.flush()


def _bucketable(scheme: CommScheme) -> bool:
    """Whether a scheme's payload is a dense gradient that can be fused."""
    return get_backend(scheme).compressible


#: Memoized bucketed workloads: the transformation only depends on the
#: workload, the per-unit scheme assignment, the bucket size and the
#: registry generation (bucketability is a backend capability).
_BUCKET_CACHE: Dict[Tuple, Tuple[IterationWorkload, Dict[str, CommScheme]]] = {}


def _merge_units(members: List[SyncUnit]) -> SyncUnit:
    """Fuse a backward-order run of units into one bucket unit."""
    if len(members) == 1:
        return members[0]
    forward = list(reversed(members))  # members arrive in backward order
    layer_names: Tuple[str, ...] = ()
    parts = []
    for unit in forward:
        layer_names += unit.layer_names
        if unit.payload_parts is not None:
            parts.extend(unit.payload_parts)
        else:
            parts.append((unit.param_bytes, unit.fc_dims))
    return SyncUnit(
        name=f"bucket({forward[0].name}..{forward[-1].name})",
        param_bytes=sum(unit.param_bytes for unit in forward),
        sf_eligible=False,
        fc_dims=None,
        backward_seconds=sum(unit.backward_seconds for unit in forward),
        layer_names=layer_names,
        payload_parts=tuple(parts),
    )


def bucket_workload(workload: IterationWorkload,
                    schemes: Dict[str, CommScheme],
                    bucket_bytes: Optional[int]
                    ) -> Tuple[IterationWorkload, Dict[str, CommScheme]]:
    """Transform a workload to bucketed wire granularity.

    Walks the units in backward (reverse) order -- the order gradients
    appear -- and fuses consecutive same-scheme runs of bucketable units
    with the greedy :func:`~repro.comm.wire.bucket_partition` rule; a
    non-bucketable unit flushes the partial bucket and passes through
    unchanged.  Returns the (memoized) transformed workload plus its
    scheme assignment; ``bucket_bytes=None`` returns the inputs untouched.
    """
    if bucket_bytes is None:
        return workload, schemes
    if bucket_bytes < 1:
        raise ConfigurationError(
            f"bucket_bytes must be >= 1, got {bucket_bytes}")
    key = (workload,
           tuple(schemes[unit.name] for unit in workload.units),
           int(bucket_bytes), registry_generation())
    cached = _BUCKET_CACHE.get(key)
    if cached is not None:
        return cached

    new_units_backward: List[SyncUnit] = []
    new_schemes: Dict[str, CommScheme] = {}

    def emit(members: List[SyncUnit], scheme: CommScheme) -> None:
        merged = _merge_units(members)
        new_units_backward.append(merged)
        new_schemes[merged.name] = scheme

    run: List[SyncUnit] = []
    run_scheme: Optional[CommScheme] = None

    def flush_run() -> None:
        nonlocal run, run_scheme
        if not run:
            return
        partition = bucket_partition([unit.param_bytes for unit in run],
                                     bucket_bytes)
        for indices in partition:
            emit([run[i] for i in indices], run_scheme)
        run = []
        run_scheme = None

    for unit in reversed(workload.units):
        scheme = schemes[unit.name]
        if not _bucketable(scheme):
            flush_run()
            new_units_backward.append(unit)
            new_schemes[unit.name] = scheme
            continue
        if run_scheme is not None and scheme is not run_scheme:
            flush_run()
        run.append(unit)
        run_scheme = scheme
    flush_run()

    bucketed = IterationWorkload(
        model_name=workload.model_name,
        batch_size=workload.batch_size,
        forward_seconds=workload.forward_seconds,
        tail_backward_seconds=workload.tail_backward_seconds,
        units=tuple(reversed(new_units_backward)),
        single_node_seconds=workload.single_node_seconds,
        total_param_bytes=workload.total_param_bytes,
    )
    result = (bucketed, new_schemes)
    _BUCKET_CACHE[key] = result
    return result
