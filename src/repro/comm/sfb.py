"""Sufficient-factor broadcasting (SFB).

The peer-to-peer scheme of Figure 2(b): every worker broadcasts the
sufficient factors of its FC-layer gradients to all peers, reconstructs the
full gradient locally from everyone's factors, and applies the update to its
own model replica.  Because every replica applies the same aggregate update
(the sum of everyone's outer products) with the same optimiser state,
replicas stay bit-wise consistent without a central server.

The functional implementation below is a shared bulletin board with BSP
semantics: ``publish`` posts a worker's factors for (layer, iteration) and
``collect`` blocks until all workers have posted.
"""

from __future__ import annotations

import threading
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.comm.message import ByteMeter
from repro.exceptions import CommunicationError, SyncTimeout, WorkerFailure
from repro.nn.sufficient_factors import SufficientFactors, batch_reconstruct

#: Extra (non-factorisable) arrays sent alongside the factors, e.g. the bias
#: gradient of an FC layer.  name -> array.
ExtraDict = Dict[str, np.ndarray]


class SufficientFactorBroadcaster:
    """A BSP bulletin board for sufficient factors."""

    def __init__(self, num_workers: int):
        if num_workers < 1:
            raise CommunicationError(f"num_workers must be >= 1, got {num_workers}")
        self.num_workers = int(num_workers)
        self._board: Dict[Tuple[str, int], Dict[int, Tuple[SufficientFactors, ExtraDict]]] = {}
        #: Workers that have collected each (layer, iteration); once all
        #: workers have, the entry is dropped automatically.
        self._collected: Dict[Tuple[str, int], set] = {}
        self._condition = threading.Condition()
        self.meter = ByteMeter()
        self._abort_reason: Optional[BaseException] = None

    def publish(self, worker_id: int, layer: str, iteration: int,
                factors: SufficientFactors, extras: Optional[ExtraDict] = None) -> int:
        """Post a worker's factors; returns the wire bytes of the broadcast.

        The wire cost counts ``num_workers - 1`` copies (one per peer), the
        P2P fan-out of Figure 2(b).
        """
        if not 0 <= worker_id < self.num_workers:
            raise CommunicationError(
                f"worker_id {worker_id} out of range [0, {self.num_workers})"
            )
        extras = extras or {}
        key = (layer, int(iteration))
        with self._condition:
            entry = self._board.setdefault(key, {})
            if worker_id in entry:
                raise CommunicationError(
                    f"worker {worker_id} already published {layer!r} at iteration {iteration}"
                )
            entry[worker_id] = (factors, {k: np.asarray(v) for k, v in extras.items()})
            self._condition.notify_all()
        per_peer = factors.nbytes + sum(int(v.nbytes) for v in extras.values())
        nbytes = per_peer * (self.num_workers - 1)
        self.meter.record(nbytes, "sent", tag=f"sfb:{layer}")
        return nbytes

    def collect(self, worker_id: int, layer: str, iteration: int,
                timeout: Optional[float] = 30.0
                ) -> List[Tuple[int, SufficientFactors, ExtraDict]]:
        """Block until every worker has published (layer, iteration).

        Returns:
            A list of ``(worker_id, factors, extras)`` sorted by worker id,
            including the caller's own contribution (so aggregation is simply
            a sum over the list).

        Once every worker has collected an iteration its board entry is
        garbage-collected automatically (the board would otherwise grow
        without bound over a long BSP run); a worker collecting the same
        iteration a second time after that point times out like a missing
        iteration would.

        Raises:
            CommunicationError: on timeout.
        """
        key = (layer, int(iteration))
        with self._condition:
            def _complete() -> bool:
                return (self._abort_reason is not None
                        or len(self._board.get(key, {})) >= self.num_workers)

            if not self._condition.wait_for(_complete, timeout=timeout):
                have = len(self._board.get(key, {}))
                raise SyncTimeout(
                    f"collect of {layer!r}@{iteration} timed out with "
                    f"{have}/{self.num_workers} contributions"
                )
            if (self._abort_reason is not None
                    and len(self._board.get(key, {})) < self.num_workers):
                raise self._wrap_abort(layer, iteration)
            entry = self._board[key]
            result = [(wid, factors, extras)
                      for wid, (factors, extras) in sorted(entry.items())]
            seen = self._collected.setdefault(key, set())
            seen.add(worker_id)
            if len(seen) >= self.num_workers:
                del self._board[key]
                del self._collected[key]
        received = sum(
            factors.nbytes + sum(int(v.nbytes) for v in extras.values())
            for wid, factors, extras in result if wid != worker_id
        )
        self.meter.record(received, "received", tag=f"sfb:{layer}")
        return result

    # -- fault tolerance ----------------------------------------------------------------
    def checkpoint(self) -> dict:
        """The board carries no state across BSP iterations; nothing to save."""
        return {}

    def restore(self, snapshot: dict) -> None:
        """Clear all in-flight board state (restart recovery)."""
        with self._condition:
            self._board.clear()
            self._collected.clear()
            self._abort_reason = None
            self._condition.notify_all()

    def abort(self, exc: BaseException) -> None:
        """Wake every blocked ``collect`` with a failure."""
        with self._condition:
            self._abort_reason = exc
            self._condition.notify_all()

    def clear_abort(self) -> None:
        """Re-arm the board after recovery handled the abort."""
        with self._condition:
            self._abort_reason = None

    def _wrap_abort(self, layer: str, iteration: int) -> BaseException:
        reason = self._abort_reason
        if isinstance(reason, WorkerFailure):
            return WorkerFailure(
                f"SFB collect of {layer!r}@{iteration} aborted: {reason}",
                worker_id=reason.worker_id, iteration=reason.iteration,
                cascade=True)
        return CommunicationError(
            f"SFB collect of {layer!r}@{iteration} aborted: {reason}")

    def garbage_collect(self, before_iteration: int) -> int:
        """Drop board entries older than ``before_iteration``; returns count dropped."""
        with self._condition:
            stale = [key for key in self._board if key[1] < before_iteration]
            for key in stale:
                del self._board[key]
                self._collected.pop(key, None)
        return len(stale)

    @staticmethod
    def aggregate(contributions: List[Tuple[int, SufficientFactors, ExtraDict]],
                  aggregation: str = "mean") -> Tuple[np.ndarray, ExtraDict]:
        """Reconstruct and combine everyone's gradients.

        The weight gradient is computed with one GEMM over the
        row-concatenated factors (``concat(U)^T @ concat(V)``), which equals
        the sum of the per-contribution outer-product reconstructions
        (Eq. 1) without materialising one dense ``M x N`` temporary per
        worker.  Extras accumulate in place into a single buffer per key.

        Returns:
            ``(weight_gradient, extra_gradients)`` where the weight gradient
            is the sum (or mean) of all reconstructed outer products.
        """
        if not contributions:
            raise CommunicationError("cannot aggregate an empty contribution list")
        if aggregation not in ("mean", "sum"):
            raise CommunicationError(
                f"aggregation must be 'mean' or 'sum', got {aggregation!r}"
            )
        weight_grad = batch_reconstruct([factors for _, factors, _ in contributions])
        extra_totals: ExtraDict = {}
        for _, _, extras in contributions:
            for key, value in extras.items():
                total = extra_totals.get(key)
                if total is None:
                    extra_totals[key] = np.array(value, copy=True)
                elif total.dtype == value.dtype and total.shape == value.shape:
                    np.add(total, value, out=total)
                else:  # mixed dtypes: fall back to upcasting semantics
                    extra_totals[key] = total + value
        if aggregation == "mean":
            count = float(len(contributions))
            if np.issubdtype(weight_grad.dtype, np.floating):
                weight_grad /= count
            else:
                weight_grad = weight_grad / count
            for key, total in extra_totals.items():
                if np.issubdtype(total.dtype, np.floating):
                    total /= count
                else:
                    extra_totals[key] = total / count
        return weight_grad, extra_totals
