"""Pluggable communication backends.

Historically every communication scheme was hard-wired through four layers
at once: the :class:`~repro.core.cost_model.CommScheme` enum, the
``if``/``elif`` chains of :func:`repro.parallel.schemes.assign_schemes`, the
substrate wiring inside :class:`~repro.parallel.trainer.DistributedTrainer`
and the per-scheme flow processes of
:class:`repro.simulation.throughput.IterationSimulator`.  Adding a scheme
meant editing all of them by hand.

A :class:`CommBackend` bundles everything one scheme needs:

* ``cost(m, n, P1, P2, K)`` -- the Algorithm-1 / Table-1 cost (parameters
  transmitted plus received per combined server/worker node per iteration),
  the quantity HybComm minimises;
* ``wire_bytes(...)`` -- the same cost in bytes on the wire;
* ``build_substrate`` / ``make_syncer`` -- the functional trainer side: the
  shared communication substrate (parameter server, bulletin board, ...)
  and the per-layer :class:`~repro.core.syncer.Syncer` that speaks to it;
* ``flow_plan`` -- a :class:`FlowPlan` describing the scheme's transfer
  pattern for the flow-level throughput simulator.

Backends register themselves in a process-wide registry; the scheme
assigner, the trainer and the simulator all resolve schemes through
:func:`get_backend`, so a new scheme is one self-registering file (see
:mod:`repro.comm.ring` and :mod:`repro.comm.hierarchical` for complete
examples, and PERFORMANCE.md "Communication backends" for the recipe).
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import Any, Callable, ClassVar, Dict, Generator, Optional, Tuple

import numpy as np

from repro import units
from repro.cluster.machine import FABRIC
from repro.core.cost_model import (
    CommScheme,
    NetworkTopology,
    adam_combined_cost,
    ps_combined_cost,
    sfb_worker_cost,
)
from repro.core.policy import BSP, SyncPolicy
from repro.engines.base import Partitioning
from repro.exceptions import ConfigurationError

#: A layer's parameters or gradients: parameter name -> array.
ArrayDict = Dict[str, Any]

#: Factor by which 1-bit quantization shrinks gradient payloads.
ONEBIT_COMPRESSION = 32.0


@dataclass(frozen=True)
class TrainerContext:
    """Cluster/training shape a backend needs to build trainer-side state.

    Attributes:
        num_workers: worker count (``P1``).
        num_servers: PS shard count (``P2``).
        batch_size: per-worker batch size (``K``).
        aggregation: ``"mean"`` or ``"sum"`` gradient aggregation.
        deterministic: request bit-reproducible reductions (worker-id order)
            from every substrate that aggregates floating point.
        optimizer_factory: builds one fresh optimiser instance per call; used
            by substrates that hold the authoritative parameter copy.
        policy: the execution-semantics policy the trainer runs under; BSP
            by default.  Substrates consult it to pick their consistency
            mode (e.g. the PS applies pushes on arrival for relaxed
            policies) and :meth:`CommBackend.create_syncer` uses it to
            route local-SGD parameter averaging.
        averager: shared :class:`~repro.comm.averaging.ParameterAverager`
            for local-SGD policies (``None`` otherwise).
        sync_timeout: deadlock guard plumbed into policy-driven waits.
    """

    num_workers: int
    num_servers: int
    batch_size: int
    aggregation: str = "mean"
    deterministic: bool = False
    optimizer_factory: Optional[Callable[[], Any]] = None
    policy: SyncPolicy = BSP
    averager: Any = None
    sync_timeout: Optional[float] = 60.0

    def make_optimizer(self) -> Any:
        if self.optimizer_factory is None:
            raise ConfigurationError(
                "this backend needs an optimizer_factory in its TrainerContext"
            )
        return self.optimizer_factory()


@dataclass
class WorkerResources:
    """Per-worker objects shared by all of that worker's syncers.

    Attributes:
        worker_id: the worker these resources belong to.
        local_optimizer: optimiser applied to the worker's own replica by
            peer-to-peer schemes (SFB, ring all-reduce).
        quantizer: the worker's stateful 1-bit quantizer (error feedback).
        compressor: the worker's stateful pluggable
            :class:`~repro.comm.compression.Compressor` (``None`` for the
            default dense wire format).
    """

    worker_id: int
    local_optimizer: Any = None
    quantizer: Any = None
    compressor: Any = None


class FlowPlan:
    """Simulator-side description of one scheme's transfer pattern.

    A plan operates on the running
    :class:`~repro.simulation.throughput.IterationSimulator` (passed as
    ``sim``): it may use the cluster's flow primitives
    (``sim.cluster.transfer`` / ``broadcast`` / fabric fans), the shared
    per-unit synchronization state (``sim.unit_state(unit)``) and the
    system descriptor (``sim.system``).  ``worker_sync`` is a simulation
    process generator; ``server_process`` (optional) models scheme logic
    that runs on the server side rather than being driven by a worker.
    """

    def needs_server_process(self, sim: Any, unit: Any, scheme: CommScheme) -> bool:
        """Whether :meth:`server_process` must be spawned for ``unit``."""
        return False

    def server_process(self, sim: Any, unit: Any, scheme: CommScheme) -> Generator:
        raise NotImplementedError

    def worker_sync(self, sim: Any, worker: int, unit: Any,
                    scheme: CommScheme) -> Generator:
        """Process: synchronize ``unit`` at ``worker`` under this plan."""
        raise NotImplementedError


class CommBackend(abc.ABC):
    """One communication scheme, end to end.

    Class attributes:
        scheme: the :class:`CommScheme` this backend implements.
        requires_factorization: gradients travel as sufficient factors, so
            the scheme only applies to factorisable (Dense / SF-eligible)
            layers; everything else falls back to PS.
        hybrid_candidate: participates in Algorithm 1's per-layer choice
            (the paper considers exact schemes only: PS and SFB).
        topology_candidate: additionally joins the Algorithm-1 choice when
            the network is rack-oversubscribed (the regime the scheme was
            built for); never consulted on a flat network, so the paper's
            decisions are untouched.
        hybrid_rank: tie-break for equal Algorithm-1 costs -- lower wins,
            which keeps the paper's "SFB on ties" rule.
        compression: payload shrink factor on dense PS-style transfers.
        compressible: whether the scheme moves whole dense gradients, so a
            pluggable :mod:`~repro.comm.compression` compressor (and the
            gradient bucketer) can ride it.  True for the PS and ring
            backends; factor- and quantized-payload schemes (SFB, Adam,
            1-bit, hierarchical PS) keep their own encodings.
        sync_semantics: execution-semantics capability declaration -- the
            :class:`~repro.core.policy.SyncPolicy` kinds this substrate can
            run.  Every backend supports ``bsp`` and ``local_sgd``
            (parameter averaging rides any substrate); only backends whose
            substrate tolerates workers running ahead of each other declare
            ``ssp``/``async`` (the PS family does, the collective schemes'
            all-worker rendezvous are inherent barriers).  Degenerate
            policies (ssp(0), local_sgd(1)) validate as ``bsp``.
        fault_modes: crash-recovery capability declaration -- the trainer
            recovery modes this substrate can serve.  Every backend
            supports ``restart`` (restore a checkpoint and replay);
            only substrates whose aggregation can renormalize to a
            ``P-1`` mean mid-run declare ``drop`` (the PS family does;
            collectives' fixed all-worker membership cannot shrink, so
            the trainer rejects drop mode for them at construction).
    """

    scheme: ClassVar[CommScheme]
    requires_factorization: ClassVar[bool] = False
    hybrid_candidate: ClassVar[bool] = False
    topology_candidate: ClassVar[bool] = False
    hybrid_rank: ClassVar[int] = 0
    compression: ClassVar[float] = 1.0
    compressible: ClassVar[bool] = False
    sync_semantics: ClassVar[Tuple[str, ...]] = ("bsp", "local_sgd")
    fault_modes: ClassVar[Tuple[str, ...]] = ("restart",)
    flow_plan: ClassVar[FlowPlan]

    @property
    def name(self) -> str:
        """Registry key (the scheme's wire name)."""
        return self.scheme.value

    # -- Algorithm 1 ------------------------------------------------------------
    @abc.abstractmethod
    def cost(self, m: int, n: int, num_workers: int, num_servers: int,
             batch_size: int, bandwidth_bps: Optional[float] = None,
             topology: Optional[NetworkTopology] = None) -> float:
        """Table-1 cost: parameters a combined server/worker node moves.

        ``bandwidth_bps`` is accepted for cost models that are not purely
        volumetric (none of the built-ins use it).  With a non-flat
        ``topology`` the value includes the scheme's cross-rack premium:
        ``max(flat_cost, rack_uplink_params * oversubscription / L)``
        (see :class:`~repro.core.cost_model.NetworkTopology`); a flat or
        absent topology returns the flat Table-1 cost bit-exactly.
        """

    def rack_uplink_params(self, m: int, n: int, num_workers: int,
                           num_servers: int, batch_size: int,
                           topology: NetworkTopology) -> float:
        """Parameters crossing the busiest rack's uplink per iteration (tx+rx).

        The default models traffic spread uniformly over peers (true for
        the PS, SFB and 1-bit schemes): each of the rack's ``L`` members
        contributes its flat per-node cost scaled by the fraction of peers
        outside the rack.  Schemes with non-uniform cross-rack patterns
        (ring, hierarchical PS, Adam) override this with their exact split.
        """
        local = topology.nodes_per_rack(num_workers)
        flat = self.cost(m, n, num_workers, num_servers, batch_size)
        return local * flat * topology.cross_peer_fraction(num_workers)

    def _topology_cost(self, flat: float, m: int, n: int, num_workers: int,
                       num_servers: int, batch_size: int,
                       topology: Optional[NetworkTopology]) -> float:
        """Combine a flat Table-1 cost with the rack-uplink bottleneck term.

        Returns ``flat`` itself (bit-exact) when the topology is flat or
        absent, so default configurations reproduce the paper's numbers.
        """
        if topology is None or topology.is_flat or num_workers <= 1:
            return flat
        local = topology.nodes_per_rack(num_workers)
        uplink = self.rack_uplink_params(m, n, num_workers, num_servers,
                                         batch_size, topology)
        return max(flat, uplink * topology.oversubscription / local)

    def wire_bytes(self, m: int, n: int, num_workers: int, num_servers: int,
                   batch_size: int,
                   topology: Optional[NetworkTopology] = None) -> float:
        """Same as :meth:`cost` but in bytes on the wire.

        ``topology`` is only forwarded when set, so backends implementing
        the flat Table-1 ``cost`` signature keep working everywhere a
        topology cannot carry a premium.
        """
        if topology is None:
            cost = self.cost(m, n, num_workers, num_servers, batch_size)
        else:
            cost = self.cost(m, n, num_workers, num_servers, batch_size,
                             topology=topology)
        return cost * units.FLOAT32_BYTES

    # -- timed Algorithm 1 hooks -------------------------------------------------
    def latency_messages(self, num_workers: int, num_servers: int) -> float:
        """Serialized message rounds on the critical path of one sync.

        Multiplied by the cluster's per-message latency in the timed variant
        of Algorithm 1 (:meth:`repro.core.cost_model.CostModel.scheme_seconds`).
        The default models the PS family's push + pull round trip; schemes
        whose critical path touches every peer individually override this.
        """
        return 2.0

    def extra_flops(self, m: int, n: int, num_workers: int, num_servers: int,
                    batch_size: int) -> float:
        """Scheme-specific compute overhead (FLOPs) of one sync at one node.

        Zero for schemes that ship ready-to-apply dense gradients; factor
        schemes pay the outer-product reconstruction of each peer's update.
        """
        return 0.0

    # -- functional trainer -----------------------------------------------------
    @abc.abstractmethod
    def build_substrate(self, initial_layers: Dict[str, ArrayDict],
                        ctx: TrainerContext) -> Any:
        """Build the shared communication substrate for this scheme's layers."""

    @abc.abstractmethod
    def make_syncer(self, layer: Any, substrate: Any,
                    resources: WorkerResources, ctx: TrainerContext,
                    policy: Optional[SyncPolicy] = None) -> Any:
        """Build the per-layer syncer one worker uses for ``layer``.

        ``policy`` defaults to ``ctx.policy``; implementations forward it
        into the :class:`~repro.core.syncer.Syncer` so pulls and gates
        follow the trainer's execution semantics.
        """

    def supports_policy(self, policy: SyncPolicy) -> bool:
        """Whether this substrate can run under ``policy``.

        Degenerate policies (ssp(0), local_sgd(1)) are BSP by construction
        and validate against the ``bsp`` capability.
        """
        kind = "bsp" if policy.is_bsp_equivalent else policy.kind
        return kind in self.sync_semantics

    def supports_fault_mode(self, mode: str) -> bool:
        """Whether this substrate can serve a trainer recovery mode.

        ``"none"`` (no recovery) is always valid; other modes validate
        against :attr:`fault_modes`:

            >>> from repro.comm.backend import get_backend
            >>> get_backend("ps").supports_fault_mode("drop")
            True
            >>> get_backend("ring").supports_fault_mode("drop")
            False
        """
        return mode == "none" or mode in self.fault_modes

    def supports_compression(self, compression: Any) -> bool:
        """Whether this substrate can carry a pluggable compressor.

        ``compression`` is a :class:`repro.comm.wire.CompressionConfig` (or
        ``None``); identity configs are always valid, anything else needs a
        dense-gradient (:attr:`compressible`) wire format:

            >>> from repro.comm.backend import get_backend
            >>> from repro.comm.wire import CompressionConfig
            >>> cfg = CompressionConfig.parse("topk(0.01)")
            >>> get_backend("ps").supports_compression(cfg)
            True
            >>> get_backend("sfb").supports_compression(cfg)
            False
        """
        return compression is None or compression.is_identity or self.compressible

    def compression_cost_factor(self, compression: Any, m: int, n: int) -> float:
        """Algorithm-1 scale on :meth:`cost` when a compressor rides this scheme.

        The default (non-compressible backends, identity configs, or
        matrices below the compressor scope threshold) is exactly 1.0, so
        cost queries without a compressor are bit-identical to Table 1.
        Compressible backends override with their wire pattern's ratio.
        """
        return 1.0

    def create_syncer(self, layer: Any, substrate: Any,
                      resources: WorkerResources, ctx: TrainerContext,
                      policy: Optional[SyncPolicy] = None) -> Any:
        """Policy-aware syncer factory: the trainer's single entry point.

        Validates the policy against :attr:`sync_semantics`, routes
        parameter-averaging policies (local SGD with H > 1) to the
        substrate-agnostic :class:`~repro.core.syncer.LocalSGDSyncer`, and
        otherwise delegates to the backend's :meth:`make_syncer`.
        """
        policy = ctx.policy if policy is None else policy
        if not self.supports_policy(policy):
            raise ConfigurationError(
                f"backend {self.name!r} cannot run under policy {policy} "
                f"(supported semantics: {self.sync_semantics})"
            )
        if policy.averages_parameters:
            from repro.core.syncer import LocalSGDSyncer
            if ctx.averager is None:
                raise ConfigurationError(
                    f"policy {policy} needs a ParameterAverager in the "
                    f"TrainerContext"
                )
            return LocalSGDSyncer(resources.worker_id, layer, self.scheme,
                                  averager=ctx.averager,
                                  local_optimizer=resources.local_optimizer,
                                  policy=policy,
                                  sync_timeout=ctx.sync_timeout)
        return self.make_syncer(layer, substrate, resources, ctx,
                                policy=policy)


def reduce_in_worker_order(contributions: Dict[int, ArrayDict],
                           mean_divisor: Optional[float] = None) -> ArrayDict:
    """Sum per-worker gradient dicts in worker-id order (fresh buffers).

    The fixed fold order makes the result bit-identical regardless of which
    thread contributed first (floating-point addition is not associative).
    With ``mean_divisor`` the totals are scaled by ``1/mean_divisor`` in
    place; mixed-dtype contributions fall back to upcasting semantics.
    Shared by the peer-to-peer substrates (ring all-reduce, hierarchical
    rack accumulators); the flat parameter server keeps its own in-place
    variant that folds into preallocated accumulation buffers.
    """
    totals: ArrayDict = {}
    for worker_id in sorted(contributions):
        for name, grad in contributions[worker_id].items():
            total = totals.get(name)
            if total is None:
                totals[name] = np.array(grad, copy=True)
            elif total.dtype == grad.dtype and total.shape == grad.shape:
                np.add(total, grad, out=total)
            else:  # mixed dtypes: fall back to upcasting semantics
                totals[name] = total + grad
    if mean_divisor is not None:
        count = float(mean_divisor)
        for name, total in totals.items():
            if np.issubdtype(total.dtype, np.floating):
                total /= count
            else:
                totals[name] = total / count
    return totals


# -- registry ---------------------------------------------------------------------

_REGISTRY: Dict[str, CommBackend] = {}

#: Bumped on every (un)registration so caches keyed on scheme decisions
#: (e.g. the simulator's memoized assignments) can detect registry changes.
_GENERATION = 0


def registry_generation() -> int:
    """Monotonic counter of registry mutations (for cache invalidation)."""
    return _GENERATION


def register_backend(backend: CommBackend) -> CommBackend:
    """Add a backend to the registry; rejects duplicate scheme names.

    Returns the backend so modules can ``BACKEND = register_backend(...)``.
    Registering makes the scheme a valid trainer mode, simulator comm mode
    and Algorithm-1 vocabulary entry everywhere at once:

        >>> from repro.comm import backend as B
        >>> B.get_backend("ring") is B.registered_backends()["ring"]
        True
        >>> sorted(B.registered_backends())
        ['adam', 'hierps', 'onebit', 'ps', 'ring', 'sfb']

    Raises:
        ConfigurationError: if a backend with the same name is registered.
    """
    global _GENERATION
    key = backend.name
    if key in _REGISTRY:
        raise ConfigurationError(
            f"communication backend {key!r} is already registered "
            f"(by {type(_REGISTRY[key]).__name__})"
        )
    _REGISTRY[key] = backend
    _GENERATION += 1
    return backend


def unregister_backend(name: str) -> None:
    """Remove a backend (primarily for tests exercising registration)."""
    global _GENERATION
    if _REGISTRY.pop(str(name), None) is not None:
        _GENERATION += 1


def get_backend(scheme: Any) -> CommBackend:
    """Resolve a scheme (enum member or wire name) to its backend.

    Accepts either the :class:`CommScheme` member or its wire name:

        >>> from repro.comm.backend import get_backend
        >>> from repro.core.cost_model import CommScheme
        >>> get_backend("sfb") is get_backend(CommScheme.SFB)
        True
        >>> get_backend("ps").cost(m=4096, n=4096, num_workers=8,
        ...                        num_servers=8, batch_size=32)
        58720256.0

    Raises:
        ConfigurationError: for unknown schemes.
    """
    key = scheme.value if isinstance(scheme, CommScheme) else str(scheme)
    try:
        return _REGISTRY[key]
    except KeyError:
        raise ConfigurationError(
            f"unknown communication scheme {key!r}; registered backends: "
            f"{sorted(_REGISTRY)}"
        ) from None


def registered_backends() -> Dict[str, CommBackend]:
    """Copy of the registry in registration order."""
    return dict(_REGISTRY)


def hybrid_candidates() -> Tuple[CommBackend, ...]:
    """Backends Algorithm 1 chooses between, in registration order."""
    return tuple(b for b in _REGISTRY.values() if b.hybrid_candidate)


def topology_candidates() -> Tuple[CommBackend, ...]:
    """Backends that join Algorithm 1 only on rack-oversubscribed networks."""
    return tuple(b for b in _REGISTRY.values() if b.topology_candidate)


def hybrid_choice(m: int, n: int, num_workers: int, num_servers: int,
                  batch_size: int, sf_eligible: bool = True,
                  topology: Optional[NetworkTopology] = None) -> CommScheme:
    """Algorithm 1: the cheapest hybrid-candidate scheme for one layer.

    Factor-based candidates are skipped for non-factorisable layers and for
    single-worker clusters (one worker never communicates factors); ties go
    to the lowest ``hybrid_rank`` (SFB before PS, matching the paper).

    With a non-flat ``topology`` every candidate's cost carries its
    cross-rack premium and the :attr:`~CommBackend.topology_candidate`
    backends (ring all-reduce, hierarchical PS) enter the comparison --
    so the per-layer choice becomes rack-aware:

        >>> from repro.comm.backend import hybrid_choice
        >>> from repro.core.cost_model import NetworkTopology
        >>> hybrid_choice(4096, 1000, num_workers=16, num_servers=16,
        ...               batch_size=32).value
        'sfb'
        >>> racked = NetworkTopology(racks=4, oversubscription=4.0)
        >>> hybrid_choice(4096, 1000, num_workers=16, num_servers=16,
        ...               batch_size=32, topology=racked).value
        'ring'
    """
    candidates = hybrid_candidates()
    if topology is not None and topology.is_flat:
        # A flat topology carries no premium: treat it as absent, so
        # backends implementing the flat Table-1 cost signature are
        # still valid hybrid candidates.
        topology = None
    if topology is not None:
        candidates += topology_candidates()
    best: Optional[Tuple[Tuple[float, int], CommScheme]] = None
    for backend in candidates:
        if backend.requires_factorization and (not sf_eligible or num_workers <= 1):
            continue
        if topology is None:
            cost = backend.cost(m, n, num_workers, num_servers, batch_size)
        else:
            cost = backend.cost(m, n, num_workers, num_servers, batch_size,
                                topology=topology)
        key = (cost, backend.hybrid_rank)
        if best is None or key < best[0]:
            best = (key, backend.scheme)
    if best is None:
        raise ConfigurationError("no hybrid-candidate backend is registered")
    return best[1]


# -- built-in flow plans -----------------------------------------------------------


class PSFlowPlan(FlowPlan):
    """Dense (optionally quantized) parameter-server traffic.

    Respects the system's partitioning: fine-grained balanced KV pairs are
    modelled as aggregate fabric flows plus a server-side gather/apply/
    scatter process, coarse per-tensor placement as point-to-point flows
    against the owning shard's NIC (hotspots emerge naturally).
    """

    def needs_server_process(self, sim, unit, scheme):
        return sim.system.partitioning is Partitioning.FINE

    def worker_sync(self, sim, worker, unit, scheme):
        if sim.system.partitioning is Partitioning.FINE:
            yield from self._fine_worker_sync(sim, worker, unit, scheme)
        else:
            yield from self._coarse_worker_sync(sim, worker, unit, scheme)

    # -- fine-grained PS (Poseidon KV store / TF+WFBP) ----------------------------
    def _fine_worker_sync(self, sim, worker, unit, scheme):
        state = sim.unit_state(unit)
        push_bytes = sim.fine_push_bytes(unit, scheme)
        state.mark_send_started()
        yield from sim.cluster.transfer(
            worker, FABRIC, push_bytes, tag=f"push:{unit.name}")
        state.all_sent.arrive()

        yield state.aggregated
        if not sim.system.overlap_pull:
            yield sim.backward_done(worker)
        pull_bytes = sim.fine_push_bytes(unit, scheme)
        yield from sim.cluster.transfer(
            FABRIC, worker, pull_bytes, tag=f"pull:{unit.name}")
        if state.scatter_done is not None:
            yield state.scatter_done

    def server_process(self, sim, unit, scheme):
        """Server-shard side of a fine-grained PS unit: gather, apply, scatter."""
        state = sim.unit_state(unit)
        yield state.send_started
        server_bytes = sim.fine_server_bytes(unit, scheme)
        shard_nodes = list(set(sim.server_nodes))
        yield sim.cluster.fabric_gather(shard_nodes, server_bytes,
                                        tag=f"gather:{unit.name}")
        yield state.all_sent
        state.aggregated.succeed()
        state.scatter_done = sim.cluster.fabric_scatter(
            shard_nodes, server_bytes, tag=f"scatter:{unit.name}")

    # -- coarse per-tensor PS (stock TensorFlow) ----------------------------------
    def _coarse_worker_sync(self, sim, worker, unit, scheme):
        state = sim.unit_state(unit)
        owner = sim.coarse_owner[unit.name]
        # Push and pull are priced separately: a pluggable compressor
        # shrinks the pushed gradient while the pulled parameters stay
        # dense.  Without a compressor both resolve to the same
        # ``param_bytes / compression`` the plan always charged.
        push_bytes = sim.coarse_push_bytes(unit, scheme)
        pull_bytes = sim.coarse_pull_bytes(unit, scheme)
        state.mark_send_started()
        yield from sim.cluster.transfer(
            worker, owner, push_bytes, tag=f"push:{unit.name}")
        state.all_sent.arrive()

        yield state.all_sent
        if not sim.system.overlap_pull:
            yield sim.backward_done(worker)
        # The pull stays a spawned process: when ``overlap_pull`` is off,
        # every gated pull of every worker is released in one cascade at
        # backward-done, and the bootstrap hop keeps those bookings ordered
        # behind the final unit's pushes exactly as the seed serialised them.
        yield sim.env.process(sim.cluster.transfer(
            owner, worker, pull_bytes, tag=f"pull:{unit.name}"))


class SFBFlowPlan(FlowPlan):
    """Peer-to-peer sufficient-factor broadcasting (Figure 2(b))."""

    def worker_sync(self, sim, worker, unit, scheme):
        sf_bytes = unit.sufficient_factor_bytes(sim.workload.batch_size)
        peers = [p for p in range(sim.num_workers) if p != worker]
        state = sim.unit_state(unit)
        state.mark_send_started()
        yield from sim.cluster.broadcast(worker, peers, sf_bytes,
                                         tag=f"sfb:{unit.name}")
        state.all_sent.arrive()
        # The unit is synchronized at this worker once every peer's factors
        # have arrived, i.e. once every peer has finished its own broadcast.
        yield state.all_sent


class AdamFlowPlan(FlowPlan):
    """Project Adam: SF push to the owning shard, full-matrix pull back."""

    def worker_sync(self, sim, worker, unit, scheme):
        state = sim.unit_state(unit)
        owner = sim.coarse_owner[unit.name]
        sf_bytes = unit.sufficient_factor_bytes(sim.workload.batch_size)
        state.mark_send_started()
        yield from sim.cluster.transfer(
            worker, owner, sf_bytes, tag=f"adam-push:{unit.name}")
        state.all_sent.arrive()

        yield state.all_sent
        yield from sim.cluster.transfer(
            owner, worker, unit.param_bytes, tag=f"adam-pull:{unit.name}")


# -- built-in backends -------------------------------------------------------------


class PSBackend(CommBackend):
    """Dense gradients through the sharded parameter server (Figure 2(a))."""

    scheme = CommScheme.PS
    hybrid_candidate = True
    hybrid_rank = 1  # PS loses Algorithm-1 ties to SFB
    compressible = True  # whole dense gradients: compressors/buckets apply
    # The server can apply pushes on arrival, so workers may legitimately
    # run ahead of each other: the full consistency spectrum is available.
    sync_semantics = ("bsp", "ssp", "async", "local_sgd")
    # The server's mean is a running count over live workers, so it can
    # renormalize to P-1 when a dead worker is dropped mid-run.
    fault_modes = ("restart", "drop")
    flow_plan = PSFlowPlan()

    def cost(self, m, n, num_workers, num_servers, batch_size,
             bandwidth_bps=None, topology=None):
        flat = ps_combined_cost(m, n, num_workers, num_servers)
        # Sharded traffic is spread uniformly over peers, so the default
        # rack-uplink split applies.
        return self._topology_cost(flat, m, n, num_workers, num_servers,
                                   batch_size, topology)

    def compression_cost_factor(self, compression, m, n):
        # PS pushes travel compressed, pulls come back dense; with
        # ``r = compressed/dense`` the 2 M N worker term becomes
        # (1 + r) M N, i.e. a (1 + r)/2 scale on every Table-1 PS term.
        # Non-compressible subclasses (1-bit) keep their own encoding.
        if (not self.compressible or compression is None
                or not compression.compresses(m, n)):
            return 1.0
        return (1.0 + compression.weight_ratio(m, n)) / 2.0

    def build_substrate(self, initial_layers, ctx):
        from repro.comm.parameter_server import ShardedParameterServer
        # Relaxed-consistency policies (ssp s>0, async) apply each push on
        # arrival instead of waiting for the all-worker rendezvous.
        updates = 1 if ctx.policy.relaxed_consistency else None
        return ShardedParameterServer(
            initial_layers, ctx.num_workers, optimizer=ctx.make_optimizer(),
            aggregation=ctx.aggregation, ordered=ctx.deterministic,
            updates_per_version=updates,
        )

    def make_syncer(self, layer, substrate, resources, ctx, policy=None):
        from repro.core.syncer import Syncer
        return Syncer(resources.worker_id, layer, self.scheme, ps=substrate,
                      aggregation=ctx.aggregation,
                      compressor=resources.compressor,
                      policy=ctx.policy if policy is None else policy,
                      sync_timeout=ctx.sync_timeout)


class OneBitBackend(PSBackend):
    """1-bit quantized gradients through the PS (the CNTK baseline)."""

    scheme = CommScheme.ONEBIT
    hybrid_candidate = False  # approximate: Algorithm 1 only weighs exact schemes
    compression = ONEBIT_COMPRESSION
    compressible = False  # already quantized: pluggable compressors don't stack
    flow_plan = PSFlowPlan()

    def cost(self, m, n, num_workers, num_servers, batch_size,
             bandwidth_bps=None, topology=None):
        # 1-bit quantization shrinks the PS payload by ~32x in both
        # directions (scales are negligible at this granularity).
        flat = ps_combined_cost(m, n, num_workers, num_servers) / self.compression
        return self._topology_cost(flat, m, n, num_workers, num_servers,
                                   batch_size, topology)

    def make_syncer(self, layer, substrate, resources, ctx, policy=None):
        from repro.core.syncer import Syncer
        return Syncer(resources.worker_id, layer, self.scheme, ps=substrate,
                      quantizer=resources.quantizer, aggregation=ctx.aggregation,
                      policy=ctx.policy if policy is None else policy,
                      sync_timeout=ctx.sync_timeout)


class SFBBackend(CommBackend):
    """Peer-to-peer sufficient-factor broadcasting."""

    scheme = CommScheme.SFB
    requires_factorization = True
    hybrid_candidate = True
    hybrid_rank = 0  # SFB wins Algorithm-1 ties
    flow_plan = SFBFlowPlan()

    def cost(self, m, n, num_workers, num_servers, batch_size,
             bandwidth_bps=None, topology=None):
        flat = sfb_worker_cost(m, n, batch_size, num_workers)
        # Factor broadcasts address every peer directly, so the default
        # uniform peer split is the exact cross-rack accounting.
        return self._topology_cost(flat, m, n, num_workers, num_servers,
                                   batch_size, topology)

    def latency_messages(self, num_workers, num_servers):
        # P-1 unicast broadcasts: each peer transfer pays its own setup.
        return float(max(num_workers - 1, 1))

    def extra_flops(self, m, n, num_workers, num_servers, batch_size):
        # Reconstruct each peer's dW = U^T V: 2 K M N FLOPs per peer.
        return 2.0 * batch_size * max(num_workers - 1, 0) * m * n

    def build_substrate(self, initial_layers, ctx):
        from repro.comm.sfb import SufficientFactorBroadcaster
        return SufficientFactorBroadcaster(ctx.num_workers)

    def make_syncer(self, layer, substrate, resources, ctx, policy=None):
        from repro.core.syncer import Syncer
        return Syncer(resources.worker_id, layer, self.scheme, sfb=substrate,
                      local_optimizer=resources.local_optimizer,
                      aggregation=ctx.aggregation,
                      policy=ctx.policy if policy is None else policy,
                      sync_timeout=ctx.sync_timeout)


class AdamBackend(CommBackend):
    """Project Adam's SF-push / full-matrix-pull strategy."""

    scheme = CommScheme.ADAM
    requires_factorization = True
    flow_plan = AdamFlowPlan()

    def cost(self, m, n, num_workers, num_servers, batch_size,
             bandwidth_bps=None, topology=None):
        flat = adam_combined_cost(m, n, batch_size, num_workers)
        return self._topology_cost(flat, m, n, num_workers, num_servers,
                                   batch_size, topology)

    def rack_uplink_params(self, m, n, num_workers, num_servers, batch_size,
                           topology):
        # The owning shard is the hotspot: its rack's uplink carries every
        # out-of-rack worker's factors in and full matrices back out.
        local = min(topology.nodes_per_rack(num_workers), num_workers)
        remote = num_workers - local
        return remote * (m * n + batch_size * (m + n))

    def extra_flops(self, m, n, num_workers, num_servers, batch_size):
        # The owning node reconstructs every peer's factors before applying.
        return 2.0 * batch_size * max(num_workers - 1, 0) * m * n

    def build_substrate(self, initial_layers, ctx):
        from repro.comm.adam import AdamSFServer
        return AdamSFServer(
            initial_layers, ctx.num_workers, optimizer=ctx.make_optimizer(),
            aggregation=ctx.aggregation, ordered=ctx.deterministic,
        )

    def make_syncer(self, layer, substrate, resources, ctx, policy=None):
        from repro.core.syncer import Syncer
        return Syncer(resources.worker_id, layer, self.scheme, adam=substrate,
                      aggregation=ctx.aggregation,
                      policy=ctx.policy if policy is None else policy,
                      sync_timeout=ctx.sync_timeout)


PS_BACKEND = register_backend(PSBackend())
SFB_BACKEND = register_backend(SFBBackend())
ONEBIT_BACKEND = register_backend(OneBitBackend())
ADAM_BACKEND = register_backend(AdamBackend())

# Self-registering backends that live in their own modules -- importing this
# module is the single entry point that guarantees the full registry.
from repro.comm import hierarchical as _hierarchical  # noqa: E402,F401
from repro.comm import ring as _ring  # noqa: E402,F401


@dataclass(frozen=True)
class FluidTerms:
    """Per-unit byte terms of one synchronization, for closed-form engines.

    The fluid simulator (:mod:`repro.simulation.fluid`) composes iteration
    times out of per-unit payload sizes rather than walking flow events;
    these are the Algorithm-1 cost terms of one unit reduced to the three
    quantities the analytic laws need.  All fields are plain floats so an
    axis sweep can broadcast them against numpy bandwidth vectors.

    Attributes:
        push_bytes: bytes each non-owner worker uploads.
        pull_bytes: bytes each non-owner worker downloads.
        symmetric_bytes: sent+received bytes at a typical (non-owner) node.
        owner_bytes: extra sent+received bytes at the unit's owner/root
            node on top of ``symmetric_bytes`` (0 for symmetric schemes).
    """

    push_bytes: float
    pull_bytes: float
    symmetric_bytes: float
    owner_bytes: float


def fluid_terms(scheme: CommScheme, unit, batch_size: int, num_workers: int,
                num_servers: int, fine: bool = True,
                colocated: bool = True, compression=None) -> FluidTerms:
    """Byte terms of synchronizing ``unit`` once under ``scheme``.

    ``unit`` is any object with the :class:`repro.simulation.workload.SyncUnit`
    payload interface (``param_bytes``, ``sufficient_factor_bytes``,
    ``chunk_bytes``).  ``fine`` selects the fine-grained KV-sharded PS path
    (Poseidon's default) over the coarse whole-unit owner fan.
    ``compression`` is a :class:`repro.comm.wire.CompressionConfig`; on a
    compressible backend it shrinks the gradient-direction payloads
    through the shared :func:`repro.comm.wire.unit_wire_bytes` accounting
    (PS pushes compressed / pulls dense, ring symmetric).  ``None`` or an
    identity config is byte-identical to the historical terms.
    """
    from repro.comm.wire import unit_wire_bytes

    n, s = num_workers, num_servers
    backend = get_backend(scheme)
    c = backend.compression
    dense = unit.param_bytes / c
    if compression is not None and (compression.is_identity
                                    or not backend.compressible):
        compression = None
    if scheme is CommScheme.SFB:
        sf = unit.sufficient_factor_bytes(batch_size)
        each = (n - 1) * sf
        return FluidTerms(sf, sf, 2.0 * each, 0.0)
    if scheme is CommScheme.RING:
        if compression is not None:
            # Both all-reduce phases carry the (compressed) gradient.
            payload = unit_wire_bytes(compression, unit.param_bytes,
                                      unit.fc_dims, unit.payload_parts)
            chunk = payload / n
        else:
            chunk = unit.chunk_bytes(n)
        each = 2 * (n - 1) * chunk
        return FluidTerms(chunk, chunk, 2.0 * each, 0.0)
    if scheme is CommScheme.ADAM:
        sf = unit.sufficient_factor_bytes(batch_size)
        pull = unit.param_bytes
        return FluidTerms(sf, pull, sf + pull, (n - 2) * (sf + pull))
    if scheme is CommScheme.HIERPS:
        # members see one up + one down copy; the root additionally
        # exchanges with every other rack leader.
        racks = max(1, -(-n // 4))
        return FluidTerms(dense, dense, 2.0 * dense,
                          2.0 * (racks - 1) * dense)
    if fine:
        # KV-sharded PS: every node is worker (push/pull its remote
        # shards) and, when colocated, also server (gather/scatter).
        remote_shards = s - (1 if colocated else 0)
        remote_workers = n - (1 if colocated else 0)
        push = dense * remote_shards / s
        shard = dense * remote_workers / s
        return FluidTerms(push, push, 2.0 * (push + shard), 0.0)
    if compression is not None:
        # Coarse PS with a compressor: the push travels compressed, the
        # parameter pull stays dense; the owner's extra share scales with
        # the same split.
        push = unit_wire_bytes(compression, unit.param_bytes,
                               unit.fc_dims, unit.payload_parts)
        return FluidTerms(push, dense, push + dense,
                          (n - 2) * (push + dense))
    return FluidTerms(dense, dense, 2.0 * dense, 2.0 * (n - 2) * dense)
