"""Pluggable gradient compressors (the zoo behind ``compressor=...``).

Generalizes the 1-bit quantizer into a protocol the dense-gradient
backends (PS, ring) plug in behind their syncers, DDP-communication-hook
style: a :class:`Compressor` takes one layer's gradient dict and returns
a *lossy* dict of the same shapes plus the exact wire bytes the
compressed message would occupy.  The substrate then moves the lossy
gradients with the compressed byte count booked against the wire, so the
trainer's arithmetic sees what the receiver would reconstruct while the
byte accounting matches :func:`repro.comm.wire.unit_wire_bytes` exactly.

Scope rule (shared with :mod:`repro.comm.wire`): only 2-D weight
matrices with at least :data:`~repro.comm.wire.MIN_COMPRESS_ELEMENTS`
elements are compressed -- fully-connected weights.  Biases and
convolution kernels ship dense under every compressor, which is what
lets the simulators price any layer kind from ``fc_dims`` alone.

Compressors are stateful (error-feedback residuals, PowerSGD's
warm-started factors); their state joins the trainer's substrate-wide
checkpoint/restore API through :meth:`Compressor.get_state` /
:meth:`Compressor.set_state` so restart recovery stays bit-identical.
"""

from __future__ import annotations

import zlib
from typing import Any, Dict, Optional, Tuple

import numpy as np

from repro.comm.quantization import OneBitQuantizer
from repro.comm.wire import (
    MIN_COMPRESS_ELEMENTS,
    CompressionConfig,
    powersgd_rank,
    topk_count,
)

ArrayDict = Dict[str, np.ndarray]


def _compressible(array: np.ndarray) -> bool:
    """The trainer-side scope rule: 2-D weights of at least 64 elements."""
    return array.ndim == 2 and array.size >= MIN_COMPRESS_ELEMENTS


class Compressor:
    """Base class: lossy-compress one layer's gradient dict.

    Subclasses implement :meth:`_compress_array` for in-scope 2-D weight
    matrices; everything else passes through dense.  ``compress`` returns
    the lossy gradients plus the total wire bytes of the compressed
    message (compressed weights + dense remainder), which by construction
    equals ``wire.unit_wire_bytes(self.config, ...)`` for the layer.
    """

    def __init__(self, config: CompressionConfig):
        self.config = config

    @property
    def spec(self) -> str:
        """Canonical spec string (round-trips through ``make_compressor``)."""
        if self.config.kind == "topk":
            return f"topk({self.config.k:g})"
        if self.config.kind == "powersgd":
            return f"powersgd({self.config.rank})"
        return self.config.kind

    def compress(self, layer: str, grads: ArrayDict) -> Tuple[ArrayDict, int]:
        """Lossy-compress ``grads``; returns ``(lossy_grads, wire_bytes)``."""
        lossy: ArrayDict = {}
        wire = 0
        for name, grad in grads.items():
            if _compressible(grad):
                key = f"{layer}/{name}"
                lossy[name], nbytes = self._compress_array(key, grad)
                wire += nbytes
            else:
                lossy[name] = grad
                wire += int(grad.nbytes)
        return lossy, wire

    def _compress_array(self, key: str,
                        grad: np.ndarray) -> Tuple[np.ndarray, int]:
        raise NotImplementedError

    def reset(self) -> None:
        """Drop all compressor state."""

    def get_state(self) -> Dict[str, Any]:
        """Deep-copied state snapshot (for checkpointing)."""
        return {}

    def set_state(self, state: Dict[str, Any]) -> None:
        """Restore a :meth:`get_state` snapshot."""


class OneBitCompressor(Compressor):
    """1-bit sign quantization with error feedback, as a compressor.

    Delegates the math to :class:`~repro.comm.quantization.OneBitQuantizer`
    byte-for-byte (same masked-sum scales, same residual update); only the
    scope rule differs from the legacy ``mode="onebit"`` path, which also
    quantizes >=2-D convolution kernels.
    """

    def __init__(self, config: CompressionConfig):
        super().__init__(config)
        self._quantizer = OneBitQuantizer()

    def _compress_array(self, key, grad):
        quantized = self._quantizer.quantize(key, grad)
        return quantized.dequantize(), quantized.nbytes

    def reset(self):
        self._quantizer.reset()

    def get_state(self):
        return {"residuals": self._quantizer.get_state()}

    def set_state(self, state):
        self._quantizer.set_state(state["residuals"])


class TopKCompressor(Compressor):
    """Top-k magnitude sparsification with per-key error feedback.

    Keeps the ``topk_count(k, elements)`` largest-magnitude entries of the
    residual-corrected gradient (deterministic selection: stable argsort
    of the negated magnitudes) and carries everything un-sent forward as
    the next iteration's residual, so no gradient mass is ever dropped.
    """

    def __init__(self, config: CompressionConfig):
        super().__init__(config)
        self._residuals: Dict[str, np.ndarray] = {}

    def _compress_array(self, key, grad):
        corrected = grad + self._residuals.get(key, 0.0)
        flat = corrected.reshape(-1)
        count = topk_count(self.config.k, flat.size)
        order = np.argsort(-np.abs(flat), kind="stable")
        keep = order[:count]
        lossy_flat = np.zeros_like(flat)
        lossy_flat[keep] = flat[keep]
        lossy = lossy_flat.reshape(corrected.shape).astype(grad.dtype)
        self._residuals[key] = corrected - lossy
        m, n = grad.shape
        return lossy, self.config.weight_payload_bytes(m, n)

    def reset(self):
        self._residuals.clear()

    def get_state(self):
        return {"residuals": {key: residual.copy()
                              for key, residual in self._residuals.items()}}

    def set_state(self, state):
        self._residuals = {key: np.array(residual, copy=True)
                           for key, residual in state["residuals"].items()}


class PowerSGDCompressor(Compressor):
    """Rank-``r`` low-rank approximation with warm-started factors.

    The natural kin to SFB's ``m x n`` outer-product factorization: the
    residual-corrected gradient ``M`` is approximated as ``P Q^T`` with
    ``P = qr(M Q_prev)`` (orthonormalized) and ``Q = M^T P``; only the two
    factors travel.  ``Q`` is warm-started across iterations (one power
    iteration per step) from a per-key deterministically seeded Gaussian,
    and the approximation error feeds back into the next gradient.
    """

    def __init__(self, config: CompressionConfig):
        super().__init__(config)
        self._qs: Dict[str, np.ndarray] = {}
        self._residuals: Dict[str, np.ndarray] = {}

    def _initial_q(self, key: str, n: int, rank: int) -> np.ndarray:
        rng = np.random.default_rng(zlib.crc32(key.encode("utf-8")))
        return rng.standard_normal((n, rank)).astype(np.float32)

    def _compress_array(self, key, grad):
        m, n = grad.shape
        rank = powersgd_rank(self.config.rank, m, n)
        corrected = (grad + self._residuals.get(key, 0.0)).astype(
            np.float32, copy=False)
        q_prev = self._qs.get(key)
        if q_prev is None or q_prev.shape != (n, rank):
            q_prev = self._initial_q(key, n, rank)
        p = corrected @ q_prev
        p, _ = np.linalg.qr(p)
        q_new = corrected.T @ p
        lossy = (p @ q_new.T).astype(grad.dtype)
        self._qs[key] = q_new.astype(np.float32)
        self._residuals[key] = corrected - lossy
        return lossy, self.config.weight_payload_bytes(m, n)

    def reset(self):
        self._qs.clear()
        self._residuals.clear()

    def get_state(self):
        return {
            "qs": {key: q.copy() for key, q in self._qs.items()},
            "residuals": {key: residual.copy()
                          for key, residual in self._residuals.items()},
        }

    def set_state(self, state):
        self._qs = {key: np.array(q, copy=True)
                    for key, q in state["qs"].items()}
        self._residuals = {key: np.array(residual, copy=True)
                           for key, residual in state["residuals"].items()}


_COMPRESSORS = {
    "onebit": OneBitCompressor,
    "topk": TopKCompressor,
    "powersgd": PowerSGDCompressor,
}


def make_compressor(spec: Optional[str]) -> Optional[Compressor]:
    """Build a fresh compressor from a spec string (``None`` for identity).

    Raises :class:`~repro.exceptions.ConfigurationError` on unparseable
    specs, so trainers and simulators fail at construction, not mid-run.
    """
    config = CompressionConfig.parse(spec)
    if config.is_identity:
        return None
    return _COMPRESSORS[config.kind](config)
