"""Ring all-reduce: a bandwidth-optimal peer-to-peer communication backend.

The classic chunked ring (Baidu/Horovod style): the ``P`` workers form a
logical ring and run ``2(P-1)`` lockstep steps -- ``P-1`` reduce-scatter
steps followed by ``P-1`` all-gather steps -- each moving ``1/P`` of the
gradient to the next neighbour.  Every worker therefore sends (and receives)
``2 (P-1)/P`` times the gradient size regardless of cluster size, which is
the bandwidth-optimal bound for an all-reduce.  Like SFB, the scheme is
server-free: every replica applies the same aggregate update locally, so
replicas stay consistent without a parameter server.

This module is a complete, self-registering communication backend -- the
functional substrate (:class:`RingAllReducer`), the per-layer trainer syncer
(:class:`RingSyncer`), the simulator flow pattern (:class:`RingFlowPlan`)
and the Algorithm-1 cost model (:class:`RingBackend`) all live here; nothing
outside this file special-cases the scheme.
"""

from __future__ import annotations

import threading
from typing import Dict, Optional, Set, Tuple

import numpy as np

from repro.comm.backend import (
    CommBackend,
    FlowPlan,
    TrainerContext,
    WorkerResources,
    reduce_in_worker_order,
    register_backend,
)
from repro.comm.message import ByteMeter
from repro.core.cost_model import CommScheme
from repro.core.syncer import Syncer
from repro.exceptions import (
    CommunicationError,
    SyncTimeout,
    TrainingError,
    WorkerFailure,
)

#: A layer's parameters or gradients: parameter name -> array.
ArrayDict = Dict[str, np.ndarray]


class RingAllReducer:
    """A BSP all-reduce board with ring wire-cost accounting.

    Functionally the all-reduce is modelled like the SFB bulletin board:
    every worker posts its gradient dict for (layer, iteration), the first
    collector reduces all contributions **in worker-id order** (so the
    result is bit-identical run-to-run regardless of thread arrival order)
    and the reduced dict is shared read-only by every collector.  The wire
    cost charged per worker is the chunked ring's ``2 (P-1)/P`` of the
    dense gradient size in each direction.
    """

    def __init__(self, num_workers: int):
        if num_workers < 1:
            raise CommunicationError(f"num_workers must be >= 1, got {num_workers}")
        self.num_workers = int(num_workers)
        self._board: Dict[Tuple[str, int], Dict[int, ArrayDict]] = {}
        self._reduced: Dict[Tuple[str, int], Dict[str, ArrayDict]] = {}
        self._collected: Dict[Tuple[str, int], Set[int]] = {}
        self._condition = threading.Condition()
        self.meter = ByteMeter()
        self._abort_reason: Optional[BaseException] = None

    def wire_bytes(self, dense_bytes: int) -> int:
        """Ring traffic one worker sends (= receives) for a dense payload."""
        if self.num_workers == 1:
            return 0
        return int(dense_bytes * 2 * (self.num_workers - 1) / self.num_workers)

    def allreduce(self, worker_id: int, layer: str, iteration: int,
                  grads: ArrayDict, aggregation: str = "mean",
                  timeout: Optional[float] = 30.0,
                  nbytes: Optional[int] = None
                  ) -> Tuple[ArrayDict, int, int]:
        """Contribute ``grads`` and block for the aggregate of all workers.

        Args:
            nbytes: wire size of one worker's payload; defaults to the
                dense size of ``grads``.  Compressed payloads pass the
                compressed size here -- both ring phases carry the
                compressed representation, so the ``2 (P-1)/P`` factor
                applies to it directly.

        Returns:
            ``(reduced, bytes_sent, bytes_received)``.  The reduced arrays
            are shared between all collectors of the iteration and must be
            treated as read-only (optimisers read gradients, never write
            them).

        Raises:
            CommunicationError: on double contribution or timeout.
        """
        if not 0 <= worker_id < self.num_workers:
            raise CommunicationError(
                f"worker_id {worker_id} out of range [0, {self.num_workers})"
            )
        if aggregation not in ("mean", "sum"):
            raise CommunicationError(
                f"aggregation must be 'mean' or 'sum', got {aggregation!r}"
            )
        key = (layer, int(iteration))
        payload = (sum(int(g.nbytes) for g in grads.values())
                   if nbytes is None else int(nbytes))
        wire = self.wire_bytes(payload)
        with self._condition:
            entry = self._board.setdefault(key, {})
            if worker_id in entry:
                raise CommunicationError(
                    f"worker {worker_id} already contributed {layer!r} at "
                    f"iteration {iteration}"
                )
            entry[worker_id] = grads
            self._condition.notify_all()
            if not self._condition.wait_for(
                    lambda: len(self._board.get(key, ())) >= self.num_workers
                    or key in self._reduced
                    or self._abort_reason is not None,
                    timeout=timeout):
                have = len(self._board.get(key, {}))
                raise SyncTimeout(
                    f"ring all-reduce of {layer!r}@{iteration} timed out with "
                    f"{have}/{self.num_workers} contributions"
                )
            if (self._abort_reason is not None and key not in self._reduced
                    and len(self._board.get(key, ())) < self.num_workers):
                raise self._wrap_abort(layer, iteration)
            reduced = self._reduced.get(key)
            if reduced is None:
                reduced = self._reduce_locked(key, aggregation)
            seen = self._collected.setdefault(key, set())
            seen.add(worker_id)
            if len(seen) >= self.num_workers:
                # Every worker holds the result: drop the board entry so a
                # long BSP run does not grow without bound.
                self._board.pop(key, None)
                self._reduced.pop(key, None)
                del self._collected[key]
        self.meter.record(wire, "sent", tag=f"ring:{layer}")
        self.meter.record(wire, "received", tag=f"ring:{layer}")
        return reduced, wire, wire

    # -- fault tolerance ----------------------------------------------------------------
    def checkpoint(self) -> dict:
        """The collective carries no state across iterations; nothing to save."""
        return {}

    def restore(self, snapshot: dict) -> None:
        """Clear all in-flight board state (restart recovery)."""
        with self._condition:
            self._board.clear()
            self._reduced.clear()
            self._collected.clear()
            self._abort_reason = None
            self._condition.notify_all()

    def abort(self, exc: BaseException) -> None:
        """Wake every blocked ``allreduce`` with a failure."""
        with self._condition:
            self._abort_reason = exc
            self._condition.notify_all()

    def clear_abort(self) -> None:
        """Re-arm the collective after recovery handled the abort."""
        with self._condition:
            self._abort_reason = None

    def _wrap_abort(self, layer: str, iteration: int) -> BaseException:
        reason = self._abort_reason
        if isinstance(reason, WorkerFailure):
            return WorkerFailure(
                f"ring all-reduce of {layer!r}@{iteration} aborted: {reason}",
                worker_id=reason.worker_id, iteration=reason.iteration,
                cascade=True)
        return CommunicationError(
            f"ring all-reduce of {layer!r}@{iteration} aborted: {reason}")

    def _reduce_locked(self, key: Tuple[str, int], aggregation: str) -> ArrayDict:
        """Reduce all contributions of ``key`` in worker-id order (lock held)."""
        divisor = self.num_workers if aggregation == "mean" else None
        totals = reduce_in_worker_order(self._board[key], mean_divisor=divisor)
        for total in totals.values():
            total.setflags(write=False)
        self._reduced[key] = totals
        return totals


class RingSyncer(Syncer):
    """Per-layer syncer speaking the ring all-reduce protocol.

    Like the SFB syncer, it applies the aggregate update to the worker's
    own replica with a local optimiser -- no central parameter copy exists.
    """

    def __init__(self, worker_id: int, layer, ring: RingAllReducer,
                 local_optimizer, aggregation: str = "mean", policy=None,
                 compressor=None, sync_timeout: Optional[float] = 30.0):
        self.ring = ring
        super().__init__(worker_id, layer, CommScheme.RING,
                         local_optimizer=local_optimizer, aggregation=aggregation,
                         compressor=compressor, policy=policy,
                         sync_timeout=sync_timeout)

    def _validate_backends(self) -> None:
        if self.ring is None or self.local_optimizer is None:
            raise TrainingError(
                f"syncer for {self.layer.name!r}: ring all-reduce needs a "
                f"RingAllReducer and a local optimizer"
            )

    def _scheme_handler(self):
        return self._sync_ring

    def _sync_ring(self, iteration: int) -> None:
        assert self._staged_grads is not None
        grads, nbytes = self._staged_grads, None
        if self.compressor is not None:
            # Compress-then-all-reduce: every replica reduces the lossy
            # gradients, so all replicas still apply the identical update.
            grads, nbytes = self.compressor.compress(self.layer.name, grads)
        reduced, sent, received = self.ring.allreduce(
            self.worker_id, self.layer.name, iteration, grads,
            aggregation=self.aggregation, timeout=self.sync_timeout,
            nbytes=nbytes)
        for key, grad in reduced.items():
            self.local_optimizer.apply(
                f"{self.layer.name}/{key}", self.layer.params[key], grad)
        self.stats.bytes_sent += sent
        self.stats.bytes_received += received


class RingFlowPlan(FlowPlan):
    """Simulator flow pattern: ``2(P-1)`` lockstep neighbour transfers.

    Each step, every worker ships one ``1/P`` chunk of the unit's gradient
    to its ring successor's downlink (point-to-point TailChannel flows, so
    NIC contention with other units emerges naturally) and waits on a
    per-step countdown barrier before starting the next step, which models
    the lockstep data dependency of the ring.
    """

    def worker_sync(self, sim, worker, unit, scheme):
        num_workers = sim.num_workers
        state = sim.unit_state(unit)
        barriers = state.extra.get("ring")
        if barriers is None:
            barriers = [sim.env.countdown(num_workers)
                        for _ in range(2 * (num_workers - 1))]
            state.extra["ring"] = barriers
        state.mark_send_started()
        chunk = sim.ring_chunk_bytes(unit, scheme)
        successor = sim.cluster.ring_successor(worker)
        for barrier in barriers:
            yield from sim.cluster.transfer(worker, successor, chunk,
                                            tag=f"ring:{unit.name}")
            barrier.arrive()
            yield barrier
        state.all_sent.arrive()


class RingBackend(CommBackend):
    """Chunked ring all-reduce as an Algorithm-1-comparable backend."""

    scheme = CommScheme.RING
    #: Joins Algorithm 1 only on oversubscribed networks, where the ring's
    #: single boundary hop per rack makes it far cheaper than peer fan-outs.
    topology_candidate = True
    hybrid_rank = 2  # never steals a flat tie from SFB (0) or PS (1)
    #: Dense-gradient collective: pluggable compressors apply (the lossy
    #: payload is what both ring phases carry).
    compressible = True
    flow_plan = RingFlowPlan()

    def cost(self, m, n, num_workers, num_servers, batch_size,
             bandwidth_bps=None, topology=None):
        """Transmit+receive volume per node: ``4 M N (P1-1)/P1`` parameters.

        Each direction moves ``2 (P1-1)/P1 * M N`` -- notably equal to the
        colocated sharded-PS combined cost when ``P2 == P1``, which is why
        the paper's PS-with-colocated-shards baseline is already
        bandwidth-optimal for dense layers.  Under rack oversubscription
        the ring shines: consecutive-id workers make every hop intra-rack
        except one per rack, so a rack uplink carries a single node's
        volume however many nodes share it.
        """
        if num_workers <= 1:
            return 0.0
        flat = 4.0 * m * n * (num_workers - 1) / num_workers
        return self._topology_cost(flat, m, n, num_workers, num_servers,
                                   batch_size, topology)

    def rack_uplink_params(self, m, n, num_workers, num_servers, batch_size,
                           topology):
        # One boundary flow leaves (and one enters) each rack per ring
        # step: the uplink carries exactly one node's transmit volume,
        # independent of how many nodes the rack aggregates.
        return 4.0 * m * n * (num_workers - 1) / num_workers

    def latency_messages(self, num_workers, num_servers):
        # 2 (P1 - 1) serialized ring steps (reduce-scatter + all-gather).
        return 2.0 * max(num_workers - 1, 1)

    def compression_cost_factor(self, compression, m, n):
        """Both ring phases carry the compressed payload: the factor is
        the wire ratio itself."""
        if compression is None or not compression.compresses(m, n):
            return 1.0
        return compression.weight_ratio(m, n)

    def build_substrate(self, initial_layers, ctx: TrainerContext):
        return RingAllReducer(ctx.num_workers)

    def make_syncer(self, layer, substrate, resources: WorkerResources,
                    ctx: TrainerContext, policy=None):
        return RingSyncer(resources.worker_id, layer, substrate,
                          resources.local_optimizer, aggregation=ctx.aggregation,
                          compressor=resources.compressor,
                          policy=ctx.policy if policy is None else policy,
                          sync_timeout=ctx.sync_timeout)


RING_BACKEND = register_backend(RingBackend())
