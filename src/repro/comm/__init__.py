"""Communication substrates.

Functional (real numpy payloads, thread-safe, BSP-consistent) implementations
of the synchronization mechanisms the paper builds on and compares against:

* :class:`~repro.comm.parameter_server.ShardedParameterServer` -- the
  client/server scheme of Figure 2(a).
* :class:`~repro.comm.sfb.SufficientFactorBroadcaster` -- the peer-to-peer
  scheme of Figure 2(b).
* :class:`~repro.comm.adam.AdamSFServer` -- Project Adam's SF-push /
  full-matrix-pull strategy (Section 3.2, Section 5.3).
* :mod:`repro.comm.quantization` -- CNTK's 1-bit quantization with error
  feedback (Section 5.3).

These are used by the functional distributed trainer
(:mod:`repro.parallel`); the *timing* of the same schemes on a cluster is
modelled separately by :mod:`repro.simulation`.
"""

from repro.comm.message import Message, MessageKind, ByteMeter
from repro.comm.parameter_server import ShardedParameterServer
from repro.comm.sfb import SufficientFactorBroadcaster
from repro.comm.adam import AdamSFServer
from repro.comm.quantization import OneBitQuantizer, QuantizedGradient

__all__ = [
    "Message",
    "MessageKind",
    "ByteMeter",
    "ShardedParameterServer",
    "SufficientFactorBroadcaster",
    "AdamSFServer",
    "OneBitQuantizer",
    "QuantizedGradient",
]
