"""Shared wire-size accounting for compressed and bucketed gradients.

Every byte that a compressor or the gradient bucketer puts on (or keeps
off) the wire is counted **here and only here**: the functional trainer,
the Table-1 cost model, the event-driven simulator and the fluid engine
all call the same helpers, so the four layers agree exactly by
construction instead of by parallel re-implementation.

Two vocabulary pieces live here:

* :class:`CompressionConfig` -- the parsed form of a compressor spec
  string (``"none"``, ``"onebit"``, ``"topk(0.01)"``, ``"powersgd(4)"``)
  with the per-matrix payload formulas and the compute-cost model.
* the payload formulas themselves (:func:`sign_payload_bytes`,
  :func:`onebit_payload_bytes`, :func:`topk_payload_bytes`,
  :func:`powersgd_payload_bytes`) plus :func:`unit_wire_bytes`, the
  single entry point that prices a whole sync unit (optionally a merged
  bucket via its ``payload_parts``).

Scope rule (shared with :mod:`repro.comm.compression`): a compressor
applies to 2-D weight matrices with at least
:data:`MIN_COMPRESS_ELEMENTS` elements -- i.e. fully-connected weights.
Biases and convolution kernels always ship dense, so the trainer's
per-array decision and the simulators' per-unit ``fc_dims`` decision
select exactly the same bytes for every layer kind.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro import units
from repro.exceptions import ConfigurationError

#: Minimum element count before a 2-D weight matrix is worth compressing.
#: Matches the 1-bit quantizer's historical ``min_elements`` threshold.
MIN_COMPRESS_ELEMENTS = 64

#: Bytes of one top-k entry on the wire: an int32 flat index + a float32 value.
TOPK_ENTRY_BYTES = 8


def sign_payload_bytes(elements: int) -> int:
    """Bytes of a 1-bit sign payload for ``elements`` values (ceil-divide).

    The PR 2 wire-accounting rule for quantized gradients; shared by
    :class:`repro.comm.quantization.QuantizedGradient` and the 1-bit
    compressor payload formula below.
    """
    return (int(elements) + 7) // 8


def onebit_payload_bytes(m: int, n: int) -> int:
    """Wire bytes of a 1-bit quantized ``m x n`` matrix.

    Sign bits (ceil-divided) plus the two per-column float32 scale rows --
    byte-identical to ``QuantizedGradient.nbytes``.
    """
    return sign_payload_bytes(m * n) + 2 * n * units.FLOAT32_BYTES


def topk_count(k: float, elements: int) -> int:
    """Entries a ``topk(k)`` compressor keeps from ``elements`` values.

    ``k < 1`` is a fraction of the elements (rounded, at least one);
    ``k >= 1`` is an absolute count.  Never exceeds ``elements``.
    """
    if elements < 1:
        raise ConfigurationError(f"elements must be >= 1, got {elements}")
    if k < 1.0:
        return max(1, min(elements, int(round(k * elements))))
    return max(1, min(elements, int(k)))


def topk_payload_bytes(k: float, m: int, n: int) -> int:
    """Wire bytes of a top-k sparsified ``m x n`` matrix (index+value pairs)."""
    return topk_count(k, m * n) * TOPK_ENTRY_BYTES


def powersgd_rank(rank: int, m: int, n: int) -> int:
    """Effective factor rank of a PowerSGD-compressed ``m x n`` matrix."""
    return max(1, min(int(rank), m, n))


def powersgd_payload_bytes(rank: int, m: int, n: int) -> int:
    """Wire bytes of PowerSGD's two float32 factors ``P (m x r)``, ``Q (n x r)``."""
    r = powersgd_rank(rank, m, n)
    return (m + n) * r * units.FLOAT32_BYTES


_SPEC_RE = re.compile(r"^(?P<kind>[a-z]+)(?:\((?P<arg>[^)]*)\))?$")


@dataclass(frozen=True)
class CompressionConfig:
    """Parsed compressor spec: kind plus its parameter.

    Attributes:
        kind: ``"none"`` / ``"onebit"`` / ``"topk"`` / ``"powersgd"``.
        k: top-k keep parameter (fraction if < 1, else absolute count).
        rank: PowerSGD factor rank.
    """

    kind: str
    k: Optional[float] = None
    rank: Optional[int] = None

    @classmethod
    def parse(cls, spec: Optional[str]) -> "CompressionConfig":
        """Parse a compressor spec string.

        Accepts ``None`` / ``"none"``, ``"onebit"``, ``"topk(K)"`` and
        ``"powersgd(R)"``; raises :class:`ConfigurationError` on anything
        else so misconfigurations surface at construction time.
        """
        if spec is None:
            return cls(kind="none")
        if isinstance(spec, CompressionConfig):
            return spec
        match = _SPEC_RE.match(str(spec).strip().lower())
        if match is None:
            raise ConfigurationError(
                f"unparseable compressor spec {spec!r}; expected 'none', "
                f"'onebit', 'topk(K)' or 'powersgd(R)'")
        kind, arg = match.group("kind"), match.group("arg")
        if kind in ("none", "onebit"):
            if arg is not None:
                raise ConfigurationError(
                    f"compressor {kind!r} takes no argument, got {spec!r}")
            return cls(kind=kind)
        if kind == "topk":
            if arg is None:
                raise ConfigurationError(
                    f"topk needs a keep parameter, e.g. 'topk(0.01)'; got {spec!r}")
            try:
                k = float(arg)
            except ValueError:
                raise ConfigurationError(
                    f"invalid topk parameter {arg!r} in {spec!r}") from None
            if k <= 0:
                raise ConfigurationError(f"topk parameter must be > 0, got {k}")
            return cls(kind="topk", k=k)
        if kind == "powersgd":
            if arg is None:
                raise ConfigurationError(
                    f"powersgd needs a rank, e.g. 'powersgd(4)'; got {spec!r}")
            try:
                rank = int(arg)
            except ValueError:
                raise ConfigurationError(
                    f"invalid powersgd rank {arg!r} in {spec!r}") from None
            if rank < 1:
                raise ConfigurationError(f"powersgd rank must be >= 1, got {rank}")
            return cls(kind="powersgd", rank=rank)
        raise ConfigurationError(
            f"unknown compressor {kind!r} in spec {spec!r}; expected 'none', "
            f"'onebit', 'topk(K)' or 'powersgd(R)'")

    @property
    def is_identity(self) -> bool:
        """Whether this config leaves every payload dense (the default)."""
        return self.kind == "none"

    def compresses(self, m: int, n: int) -> bool:
        """Whether an ``m x n`` weight matrix falls under the scope rule."""
        return not self.is_identity and m * n >= MIN_COMPRESS_ELEMENTS

    def weight_payload_bytes(self, m: int, n: int) -> int:
        """Wire bytes of one ``m x n`` weight matrix under this config."""
        if not self.compresses(m, n):
            return m * n * units.FLOAT32_BYTES
        if self.kind == "onebit":
            return onebit_payload_bytes(m, n)
        if self.kind == "topk":
            return topk_payload_bytes(self.k, m, n)
        return powersgd_payload_bytes(self.rank, m, n)

    def weight_ratio(self, m: int, n: int) -> float:
        """Compressed/dense byte ratio of one ``m x n`` weight matrix."""
        dense = m * n * units.FLOAT32_BYTES
        return self.weight_payload_bytes(m, n) / dense

    def compression_flops(self, m: int, n: int) -> float:
        """Modelled compressor FLOPs for one ``m x n`` weight matrix.

        A deliberately coarse per-element model, zero at the identity:
        1-bit costs a sign pass plus per-column scale reductions (~4
        flops/element), top-k a selection pass (~8 flops/element),
        PowerSGD its two rank-``r`` GEMMs (~4 r flops/element).
        """
        if not self.compresses(m, n):
            return 0.0
        elements = m * n
        if self.kind == "onebit":
            return 4.0 * elements
        if self.kind == "topk":
            return 8.0 * elements
        return 4.0 * powersgd_rank(self.rank, m, n) * elements


#: ``(param_bytes, fc_dims)`` of one member inside a merged bucket.
PayloadPart = Tuple[int, Optional[Tuple[int, int]]]


def unit_wire_bytes(config: Optional[CompressionConfig], param_bytes: float,
                    fc_dims: Optional[Tuple[int, int]] = None,
                    payload_parts: Optional[Sequence[PayloadPart]] = None
                    ) -> float:
    """Wire bytes of one sync unit's gradient payload under ``config``.

    The single accounting entry point: a dense unit (or identity config)
    prices at ``param_bytes``; an FC unit prices its weight matrix through
    the config's payload formula with the remainder (bias) dense; a merged
    bucket (``payload_parts`` set) prices each member independently and
    sums -- bucketing never changes byte totals, only message counts.
    """
    if config is None or config.is_identity:
        return param_bytes
    if payload_parts is not None:
        return float(sum(unit_wire_bytes(config, part_bytes, dims)
                         for part_bytes, dims in payload_parts))
    if fc_dims is None:
        return param_bytes
    m, n = fc_dims
    if not config.compresses(m, n):
        return param_bytes
    dense_weight = m * n * units.FLOAT32_BYTES
    rest = max(0.0, param_bytes - dense_weight)
    return config.weight_payload_bytes(m, n) + rest


def unit_compression_flops(config: Optional[CompressionConfig],
                           fc_dims: Optional[Tuple[int, int]] = None,
                           payload_parts: Optional[Sequence[PayloadPart]] = None
                           ) -> float:
    """Modelled compressor FLOPs for one sync unit (0 for dense payloads)."""
    if config is None or config.is_identity:
        return 0.0
    if payload_parts is not None:
        return float(sum(unit_compression_flops(config, dims)
                         for _part_bytes, dims in payload_parts))
    if fc_dims is None:
        return 0.0
    return config.compression_flops(*fc_dims)


def bucket_partition(sizes: Sequence[float],
                     bucket_bytes: int) -> List[List[int]]:
    """Greedy fixed-byte-size bucket partition over ``sizes`` (in order).

    Items fill the current bucket in the given order and the bucket is
    flushed the moment its accumulated bytes reach ``bucket_bytes``; a
    non-empty remainder forms the final bucket.  Both the trainer's
    :class:`~repro.comm.bucketing.GradientBucketer` and the simulators'
    :func:`~repro.comm.bucketing.bucket_workload` follow exactly this
    rule, so their message counts agree by construction.
    """
    if bucket_bytes < 1:
        raise ConfigurationError(
            f"bucket_bytes must be >= 1, got {bucket_bytes}")
    buckets: List[List[int]] = []
    current: List[int] = []
    filled = 0.0
    for index, size in enumerate(sizes):
        current.append(index)
        filled += size
        if filled >= bucket_bytes:
            buckets.append(current)
            current = []
            filled = 0.0
    if current:
        buckets.append(current)
    return buckets
