"""1-bit gradient quantization with error feedback (the CNTK baseline).

Section 5.3 of the paper compares Poseidon against CNTK's 1-bit SGD: each
gradient element is reduced to its sign, a per-column scale restores the
magnitude, and the quantization error is carried over ("error feedback")
into the next iteration's gradient.  The paper observes that the delayed
residual updates hurt convergence on image models (Figure 11) even though
the technique works well for speech.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

import numpy as np

from repro.exceptions import CommunicationError


@dataclass(frozen=True)
class QuantizedGradient:
    """A 1-bit quantized tensor plus reconstruction scales.

    Attributes:
        signs: boolean array, True where the (residual-corrected) gradient is
            non-negative.
        positive_scale: per-column mean of the non-negative entries.
        negative_scale: per-column mean of the negative entries.
        shape: original tensor shape.
    """

    signs: np.ndarray
    positive_scale: np.ndarray
    negative_scale: np.ndarray
    shape: Tuple[int, ...]

    @property
    def nbytes(self) -> int:
        """Wire size: one bit per element plus the float32 scales.

        The sign payload is a packed bitfield, so it occupies a whole
        number of bytes: ceiling division, not floor -- flooring would
        undercount every tensor whose element count is not a multiple
        of 8 (and report zero bytes for tensors under 8 elements).  The
        ceil-divide itself lives in :func:`repro.comm.wire.sign_payload_bytes`
        so the trainer, cost model and simulators share one formula.
        """
        from repro.comm.wire import sign_payload_bytes
        bits = int(np.prod(self.shape))
        return (sign_payload_bytes(bits) + int(self.positive_scale.nbytes)
                + int(self.negative_scale.nbytes))

    def dequantize(self) -> np.ndarray:
        """Reconstruct the dense tensor from signs and scales."""
        dense = np.where(self.signs, self.positive_scale, self.negative_scale)
        return dense.reshape(self.shape).astype(np.float32)


class OneBitQuantizer:
    """Stateful 1-bit quantizer with per-parameter error feedback."""

    def __init__(self) -> None:
        self._residuals: Dict[str, np.ndarray] = {}

    def residual(self, key: str) -> Optional[np.ndarray]:
        """The residual currently carried for ``key`` (None before first use)."""
        return self._residuals.get(key)

    def quantize(self, key: str, gradient: np.ndarray) -> QuantizedGradient:
        """Quantize ``gradient`` to 1 bit, folding in and updating the residual."""
        if gradient.ndim == 0:
            raise CommunicationError("cannot quantize a scalar gradient")
        corrected = gradient + self._residuals.get(key, 0.0)
        matrix = corrected.reshape(corrected.shape[0], -1)
        signs = matrix >= 0
        # Per-column means of the non-negative / negative entries, computed
        # with masked sums and counts: one pass over the matrix instead of
        # O(columns) fancy-indexing round trips (float64 accumulation keeps
        # the result within 1e-6 of the per-column reference on any dtype).
        positive_count = signs.sum(axis=0, dtype=np.int64)
        negative_count = matrix.shape[0] - positive_count
        positive_sum = np.where(signs, matrix, 0.0).sum(axis=0, dtype=np.float64)
        negative_sum = matrix.sum(axis=0, dtype=np.float64) - positive_sum
        positive_scale = np.divide(
            positive_sum, positive_count,
            out=np.zeros(matrix.shape[1], dtype=np.float64),
            where=positive_count > 0).astype(np.float32).reshape(1, -1)
        negative_scale = np.divide(
            negative_sum, negative_count,
            out=np.zeros(matrix.shape[1], dtype=np.float64),
            where=negative_count > 0).astype(np.float32).reshape(1, -1)
        quantized = QuantizedGradient(
            signs=signs,
            positive_scale=positive_scale,
            negative_scale=negative_scale,
            shape=corrected.shape,
        )
        self._residuals[key] = corrected - quantized.dequantize()
        return quantized

    def quantize_dict(self, layer: str, grads: Dict[str, np.ndarray],
                      min_elements: int = 64
                      ) -> Tuple[Dict[str, QuantizedGradient], Dict[str, np.ndarray]]:
        """Quantize every large-enough array in a gradient dict.

        Small tensors (biases) are cheaper to send exactly than to quantize;
        they are returned unmodified in the second dict.
        """
        quantized: Dict[str, QuantizedGradient] = {}
        dense: Dict[str, np.ndarray] = {}
        for key, grad in grads.items():
            if grad.size >= min_elements and grad.ndim >= 2:
                quantized[key] = self.quantize(f"{layer}/{key}", grad)
            else:
                dense[key] = grad
        return quantized, dense

    def reset(self) -> None:
        """Drop all residual state."""
        self._residuals.clear()

    def get_state(self) -> Dict[str, np.ndarray]:
        """Deep copy of the error-feedback residuals (for checkpointing)."""
        return {key: residual.copy() for key, residual in self._residuals.items()}

    def set_state(self, state: Dict[str, np.ndarray]) -> None:
        """Restore residuals from a :meth:`get_state` snapshot."""
        self._residuals = {key: np.array(residual, copy=True)
                           for key, residual in state.items()}


def dequantize_dict(quantized: Dict[str, QuantizedGradient],
                    dense: Dict[str, np.ndarray]) -> Dict[str, np.ndarray]:
    """Merge quantized and dense parts back into a full gradient dict."""
    result = {key: q.dequantize() for key, q in quantized.items()}
    result.update({key: np.asarray(value) for key, value in dense.items()})
    return result


def quantized_nbytes(quantized: Dict[str, QuantizedGradient],
                     dense: Dict[str, np.ndarray]) -> int:
    """Wire size of a mixed quantized/dense gradient message."""
    total = sum(q.nbytes for q in quantized.values())
    total += sum(int(v.nbytes) for v in dense.values())
    return total
