"""Logging helpers.

The library logs under the ``"repro"`` namespace.  Nothing is configured by
default (library best practice); :func:`enable_console_logging` is a
convenience for examples and the experiment runner.
"""

from __future__ import annotations

import logging

ROOT_LOGGER_NAME = "repro"


def get_logger(name: str) -> logging.Logger:
    """Return a logger in the library namespace.

    Args:
        name: dotted suffix, typically ``__name__`` of the calling module.
    """
    if name.startswith(ROOT_LOGGER_NAME):
        return logging.getLogger(name)
    return logging.getLogger(f"{ROOT_LOGGER_NAME}.{name}")


def enable_console_logging(level: int = logging.INFO) -> None:
    """Attach a stream handler to the library root logger.

    Safe to call repeatedly; only one handler is ever installed.
    """
    logger = logging.getLogger(ROOT_LOGGER_NAME)
    logger.setLevel(level)
    if not any(isinstance(h, logging.StreamHandler) for h in logger.handlers):
        handler = logging.StreamHandler()
        handler.setFormatter(
            logging.Formatter("%(asctime)s %(name)s %(levelname)s: %(message)s")
        )
        logger.addHandler(handler)
