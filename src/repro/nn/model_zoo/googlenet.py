"""GoogLeNet (Inception v1).

A 22-layer (counting only parameterised layers) CNN whose only
fully-connected layer is the thin 1024x1000 classifier.  The paper notes
(Section 5.2) that because of this single thin FC layer and the large batch
size (128), Poseidon's hybrid communication usually *reduces to a parameter
server* for GoogLeNet -- a property the cost-model tests check explicitly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

from repro.nn.spec import ModelSpec, SpecBuilder


@dataclass(frozen=True)
class InceptionConfig:
    """Channel configuration of one GoogLeNet inception module."""

    name: str
    n1x1: int
    n3x3_reduce: int
    n3x3: int
    n5x5_reduce: int
    n5x5: int
    pool_proj: int

    @property
    def output_channels(self) -> int:
        """Channels after concatenating the four branches."""
        return self.n1x1 + self.n3x3 + self.n5x5 + self.pool_proj


#: The nine inception modules of GoogLeNet (Szegedy et al., 2015, Table 1).
INCEPTION_MODULES: Tuple[InceptionConfig, ...] = (
    InceptionConfig("inception_3a", 64, 96, 128, 16, 32, 32),
    InceptionConfig("inception_3b", 128, 128, 192, 32, 96, 64),
    InceptionConfig("inception_4a", 192, 96, 208, 16, 48, 64),
    InceptionConfig("inception_4b", 160, 112, 224, 24, 64, 64),
    InceptionConfig("inception_4c", 128, 128, 256, 24, 64, 64),
    InceptionConfig("inception_4d", 112, 144, 288, 32, 64, 64),
    InceptionConfig("inception_4e", 256, 160, 320, 32, 128, 128),
    InceptionConfig("inception_5a", 256, 160, 320, 32, 128, 128),
    InceptionConfig("inception_5b", 384, 192, 384, 48, 128, 128),
)

#: Max-pool layers are inserted after these modules (spatial downsampling).
_POOL_AFTER = {"inception_3b", "inception_4e"}


def _add_inception_module(builder: SpecBuilder, config: InceptionConfig) -> None:
    """Append the four branches of an inception module to the builder.

    The builder is sequential, so each branch is emitted with the module's
    input shape restored via :meth:`SpecBuilder.set_shape`; a final
    ``concat`` layer records the concatenated output shape.  Parameter and
    FLOP accounting (what the communication model consumes) is exact.
    """
    input_shape = builder.current_shape
    # Branch 1: 1x1 convolution.
    builder.conv(f"{config.name}/1x1", out_channels=config.n1x1, kernel=1)
    builder.relu(f"{config.name}/relu_1x1")
    # Branch 2: 1x1 reduction then 3x3 convolution.
    builder.set_shape(input_shape)
    builder.conv(f"{config.name}/3x3_reduce", out_channels=config.n3x3_reduce, kernel=1)
    builder.relu(f"{config.name}/relu_3x3_reduce")
    builder.conv(f"{config.name}/3x3", out_channels=config.n3x3, kernel=3, pad=1)
    builder.relu(f"{config.name}/relu_3x3")
    # Branch 3: 1x1 reduction then 5x5 convolution.
    builder.set_shape(input_shape)
    builder.conv(f"{config.name}/5x5_reduce", out_channels=config.n5x5_reduce, kernel=1)
    builder.relu(f"{config.name}/relu_5x5_reduce")
    builder.conv(f"{config.name}/5x5", out_channels=config.n5x5, kernel=5, pad=2)
    builder.relu(f"{config.name}/relu_5x5")
    # Branch 4: 3x3 max-pool then 1x1 projection.
    builder.set_shape(input_shape)
    builder.max_pool(f"{config.name}/pool", kernel=3, stride=1, pad=1)
    builder.conv(f"{config.name}/pool_proj", out_channels=config.pool_proj, kernel=1)
    builder.relu(f"{config.name}/relu_pool_proj")
    # Concatenate the branches along the channel axis.
    builder.concat_channels(
        f"{config.name}/output",
        (config.n1x1, config.n3x3, config.n5x5, config.pool_proj),
    )


def googlenet_spec() -> ModelSpec:
    """Layer spec of GoogLeNet (ILSVRC12, batch size 128)."""
    b = SpecBuilder("GoogLeNet", input_shape=(3, 224, 224))
    b.conv("conv1/7x7_s2", out_channels=64, kernel=7, stride=2, pad=3)
    b.relu("conv1/relu")
    b.max_pool("pool1/3x3_s2", kernel=3, stride=2, pad=1)
    b.lrn("pool1/norm1")
    b.conv("conv2/3x3_reduce", out_channels=64, kernel=1)
    b.relu("conv2/relu_reduce")
    b.conv("conv2/3x3", out_channels=192, kernel=3, pad=1)
    b.relu("conv2/relu")
    b.lrn("conv2/norm2")
    b.max_pool("pool2/3x3_s2", kernel=3, stride=2, pad=1)
    for config in INCEPTION_MODULES:
        _add_inception_module(b, config)
        if config.name in _POOL_AFTER:
            b.max_pool(f"pool_after_{config.name}", kernel=3, stride=2, pad=1)
    b.global_avg_pool("pool5/avg")
    b.dropout("pool5/drop")
    b.flatten("flatten")
    b.fc("loss3/classifier", 1000)
    b.softmax("prob")
    return b.build(
        dataset="ILSVRC12",
        default_batch_size=128,
        reference_images_per_sec=257.0,
        notes=(
            "Main tower only (no auxiliary classifiers); ~6M parameters vs. "
            "the 5M quoted in the paper's Table 3, which counts the "
            "convolutional trunk only."
        ),
    )
