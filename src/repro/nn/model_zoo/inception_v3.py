"""Inception-V3.

The TensorFlow-engine flagship of the paper's evaluation (Figure 6):
Poseidon-TensorFlow reaches a 31.5x speedup on 32 nodes versus 20x for
stock distributed TensorFlow.  The network has 27M parameters (Table 3;
standard Inception-V3 weights plus the auxiliary classifier head).
"""

from __future__ import annotations

from repro.nn.spec import ModelSpec, SpecBuilder


def _inception_a(b: SpecBuilder, name: str, pool_features: int) -> None:
    """35x35 module: 1x1 / 5x5 / double-3x3 / pool-proj branches."""
    input_shape = b.current_shape
    b.conv(f"{name}/1x1", out_channels=64, kernel=1)
    b.set_shape(input_shape)
    b.conv(f"{name}/5x5_reduce", out_channels=48, kernel=1)
    b.conv(f"{name}/5x5", out_channels=64, kernel=5, pad=2)
    b.set_shape(input_shape)
    b.conv(f"{name}/3x3dbl_reduce", out_channels=64, kernel=1)
    b.conv(f"{name}/3x3dbl_1", out_channels=96, kernel=3, pad=1)
    b.conv(f"{name}/3x3dbl_2", out_channels=96, kernel=3, pad=1)
    b.set_shape(input_shape)
    b.avg_pool(f"{name}/pool", kernel=3, stride=1, pad=1)
    b.conv(f"{name}/pool_proj", out_channels=pool_features, kernel=1)
    b.concat_channels(f"{name}/output", (64, 64, 96, pool_features))


def _reduction_a(b: SpecBuilder, name: str) -> None:
    """35x35 -> 17x17 grid reduction."""
    input_shape = b.current_shape
    b.conv(f"{name}/3x3", out_channels=384, kernel=3, stride=2)
    reduced_shape = b.current_shape
    b.set_shape(input_shape)
    b.conv(f"{name}/3x3dbl_reduce", out_channels=64, kernel=1)
    b.conv(f"{name}/3x3dbl_1", out_channels=96, kernel=3, pad=1)
    b.conv(f"{name}/3x3dbl_2", out_channels=96, kernel=3, stride=2)
    b.set_shape(input_shape)
    b.max_pool(f"{name}/pool", kernel=3, stride=2)
    pool_channels = input_shape[0]
    b.set_shape(reduced_shape)
    b.concat_channels(f"{name}/output", (384, 96, pool_channels))


def _inception_b(b: SpecBuilder, name: str, channels_7x7: int) -> None:
    """17x17 module with factorised 7x7 convolutions."""
    input_shape = b.current_shape
    b.conv(f"{name}/1x1", out_channels=192, kernel=1)
    b.set_shape(input_shape)
    b.conv(f"{name}/7x7_reduce", out_channels=channels_7x7, kernel=1)
    b.conv_rect(f"{name}/1x7", out_channels=channels_7x7, kernel_h=1, kernel_w=7,
                pad_w=3)
    b.conv_rect(f"{name}/7x1", out_channels=192, kernel_h=7, kernel_w=1, pad_h=3)
    b.set_shape(input_shape)
    b.conv(f"{name}/7x7dbl_reduce", out_channels=channels_7x7, kernel=1)
    b.conv_rect(f"{name}/7x7dbl_1", out_channels=channels_7x7, kernel_h=7, kernel_w=1,
                pad_h=3)
    b.conv_rect(f"{name}/7x7dbl_2", out_channels=channels_7x7, kernel_h=1, kernel_w=7,
                pad_w=3)
    b.conv_rect(f"{name}/7x7dbl_3", out_channels=channels_7x7, kernel_h=7, kernel_w=1,
                pad_h=3)
    b.conv_rect(f"{name}/7x7dbl_4", out_channels=192, kernel_h=1, kernel_w=7, pad_w=3)
    b.set_shape(input_shape)
    b.avg_pool(f"{name}/pool", kernel=3, stride=1, pad=1)
    b.conv(f"{name}/pool_proj", out_channels=192, kernel=1)
    b.concat_channels(f"{name}/output", (192, 192, 192, 192))


def _reduction_b(b: SpecBuilder, name: str) -> None:
    """17x17 -> 8x8 grid reduction."""
    input_shape = b.current_shape
    b.conv(f"{name}/3x3_reduce", out_channels=192, kernel=1)
    b.conv(f"{name}/3x3", out_channels=320, kernel=3, stride=2)
    reduced_shape = b.current_shape
    b.set_shape(input_shape)
    b.conv(f"{name}/7x7x3_reduce", out_channels=192, kernel=1)
    b.conv_rect(f"{name}/1x7", out_channels=192, kernel_h=1, kernel_w=7, pad_w=3)
    b.conv_rect(f"{name}/7x1", out_channels=192, kernel_h=7, kernel_w=1, pad_h=3)
    b.conv(f"{name}/3x3_2", out_channels=192, kernel=3, stride=2)
    b.set_shape(input_shape)
    b.max_pool(f"{name}/pool", kernel=3, stride=2)
    pool_channels = input_shape[0]
    b.set_shape(reduced_shape)
    b.concat_channels(f"{name}/output", (320, 192, pool_channels))


def _inception_c(b: SpecBuilder, name: str) -> None:
    """8x8 module with expanded filter banks."""
    input_shape = b.current_shape
    b.conv(f"{name}/1x1", out_channels=320, kernel=1)
    b.set_shape(input_shape)
    b.conv(f"{name}/3x3_reduce", out_channels=384, kernel=1)
    b.conv_rect(f"{name}/1x3", out_channels=384, kernel_h=1, kernel_w=3, pad_w=1)
    b.set_shape(input_shape)
    b.conv(f"{name}/3x3_reduce_b", out_channels=384, kernel=1)
    b.conv_rect(f"{name}/3x1", out_channels=384, kernel_h=3, kernel_w=1, pad_h=1)
    b.set_shape(input_shape)
    b.conv(f"{name}/3x3dbl_reduce", out_channels=448, kernel=1)
    b.conv(f"{name}/3x3dbl_1", out_channels=384, kernel=3, pad=1)
    b.conv_rect(f"{name}/3x3dbl_1x3", out_channels=384, kernel_h=1, kernel_w=3, pad_w=1)
    b.set_shape(input_shape)
    b.conv(f"{name}/3x3dbl_reduce_b", out_channels=448, kernel=1)
    b.conv(f"{name}/3x3dbl_1_b", out_channels=384, kernel=3, pad=1)
    b.conv_rect(f"{name}/3x3dbl_3x1", out_channels=384, kernel_h=3, kernel_w=1, pad_h=1)
    b.set_shape(input_shape)
    b.avg_pool(f"{name}/pool", kernel=3, stride=1, pad=1)
    b.conv(f"{name}/pool_proj", out_channels=192, kernel=1)
    b.concat_channels(f"{name}/output", (320, 384, 384, 384, 384, 192))


def inception_v3_spec() -> ModelSpec:
    """Layer spec of Inception-V3 (ILSVRC12, batch size 32)."""
    b = SpecBuilder("Inception-V3", input_shape=(3, 299, 299))
    b.conv("conv0/3x3_s2", out_channels=32, kernel=3, stride=2)
    b.conv("conv1/3x3", out_channels=32, kernel=3)
    b.conv("conv2/3x3", out_channels=64, kernel=3, pad=1)
    b.max_pool("pool1", kernel=3, stride=2)
    b.conv("conv3/1x1", out_channels=80, kernel=1)
    b.conv("conv4/3x3", out_channels=192, kernel=3)
    b.max_pool("pool2", kernel=3, stride=2)
    _inception_a(b, "mixed_35x35x256a", pool_features=32)
    _inception_a(b, "mixed_35x35x288a", pool_features=64)
    _inception_a(b, "mixed_35x35x288b", pool_features=64)
    _reduction_a(b, "mixed_17x17x768a")
    _inception_b(b, "mixed_17x17x768b", channels_7x7=128)
    _inception_b(b, "mixed_17x17x768c", channels_7x7=160)
    _inception_b(b, "mixed_17x17x768d", channels_7x7=160)
    _inception_b(b, "mixed_17x17x768e", channels_7x7=192)
    _reduction_b(b, "mixed_8x8x1280a")
    _inception_c(b, "mixed_8x8x2048a")
    _inception_c(b, "mixed_8x8x2048b")
    b.global_avg_pool("pool3")
    b.dropout("drop")
    b.flatten("flatten")
    b.fc("logits", 1000)
    b.softmax("prob")
    return b.build(
        dataset="ILSVRC12",
        default_batch_size=32,
        reference_images_per_sec=43.2,
        notes=(
            "Main tower without the auxiliary classifier; ~24M parameters "
            "vs. 27M in the paper's Table 3 (which includes the aux head)."
        ),
    )
