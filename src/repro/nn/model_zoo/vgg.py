"""VGG family.

VGG19 (143M parameters) and VGG19-22K (229M parameters; the 1000-way
classifier replaced by a 21841-way classifier for ImageNet22K) are the
paper's communication-heaviest workloads: the three FC layers hold about 91%
of the parameters while the 16 CONV layers hold about 90% of the
computation, the exact asymmetry wait-free backpropagation exploits.
"""

from __future__ import annotations

from typing import Sequence, Tuple

from repro.nn.spec import ModelSpec, SpecBuilder

#: Convolution plan for VGG16/VGG19: (number of conv layers, output channels)
#: per stage; every stage is followed by a 2x2 max-pool.
_VGG16_STAGES: Tuple[Tuple[int, int], ...] = ((2, 64), (2, 128), (3, 256), (3, 512), (3, 512))
_VGG19_STAGES: Tuple[Tuple[int, int], ...] = ((2, 64), (2, 128), (4, 256), (4, 512), (4, 512))


def _build_vgg(name: str, stages: Sequence[Tuple[int, int]], num_classes: int,
               dataset: str, batch_size: int, reference_ips: float,
               notes: str = "") -> ModelSpec:
    b = SpecBuilder(name, input_shape=(3, 224, 224))
    conv_index = 0
    for stage_index, (layer_count, channels) in enumerate(stages, start=1):
        for within in range(1, layer_count + 1):
            conv_index += 1
            b.conv(f"conv{stage_index}_{within}", out_channels=channels, kernel=3,
                   stride=1, pad=1)
            b.relu(f"relu{stage_index}_{within}")
        b.max_pool(f"pool{stage_index}", kernel=2, stride=2)
    b.flatten("flatten")
    b.fc("fc6", 4096)
    b.relu("relu6")
    b.dropout("drop6")
    b.fc("fc7", 4096)
    b.relu("relu7")
    b.dropout("drop7")
    b.fc("fc8", num_classes)
    b.softmax("prob")
    return b.build(
        dataset=dataset,
        default_batch_size=batch_size,
        reference_images_per_sec=reference_ips,
        notes=notes,
    )


def vgg16_spec() -> ModelSpec:
    """VGG16 (138M parameters); not in Table 3 but useful for ablations."""
    return _build_vgg("VGG16", _VGG16_STAGES, num_classes=1000,
                      dataset="ILSVRC12", batch_size=32, reference_ips=40.0)


def vgg19_spec() -> ModelSpec:
    """VGG19 (143M parameters, ILSVRC12, batch size 32)."""
    return _build_vgg(
        "VGG19", _VGG19_STAGES, num_classes=1000, dataset="ILSVRC12",
        batch_size=32, reference_ips=35.5,
        notes="16 CONV + 3 FC layers; FC layers hold ~86% of parameters.",
    )


def vgg19_22k_spec() -> ModelSpec:
    """VGG19-22K (229M parameters): VGG19 with a 21841-way classifier."""
    return _build_vgg(
        "VGG19-22K", _VGG19_STAGES, num_classes=21841, dataset="ImageNet22K",
        batch_size=32, reference_ips=34.6,
        notes="VGG19 with the 1000-way classifier replaced by a 21841-way one.",
    )
