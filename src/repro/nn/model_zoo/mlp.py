"""A small multi-layer perceptron.

Not part of the paper's evaluation; it exists as the cheapest runnable model
with multiple FC layers, which makes it the workhorse of unit tests for the
distributed runtime (every layer is sufficient-factor decomposable, so both
PS and SFB paths get exercised).
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.nn.layers import Dense, ReLU
from repro.nn.network import Network
from repro.nn.spec import ModelSpec, SpecBuilder


def mlp_spec(input_dim: int = 64, hidden_dims: Sequence[int] = (128, 64),
             num_classes: int = 10) -> ModelSpec:
    """Spec of a plain MLP with the given layer widths."""
    b = SpecBuilder("MLP", input_shape=(input_dim,))
    for index, width in enumerate(hidden_dims, start=1):
        b.fc(f"fc{index}", width)
        b.relu(f"relu{index}")
    b.fc("classifier", num_classes)
    b.softmax("prob")
    return b.build(dataset="synthetic", default_batch_size=32)


def build_mlp_network(input_dim: int = 64, hidden_dims: Sequence[int] = (128, 64),
                      num_classes: int = 10, seed: int = 0,
                      rng: Optional[np.random.Generator] = None) -> Network:
    """Runnable numpy MLP matching :func:`mlp_spec`."""
    rng = rng or np.random.default_rng(seed)
    layers = []
    previous = input_dim
    for index, width in enumerate(hidden_dims, start=1):
        layers.append(Dense(f"fc{index}", in_features=previous, out_features=width, rng=rng))
        layers.append(ReLU(f"relu{index}"))
        previous = width
    layers.append(Dense("classifier", in_features=previous, out_features=num_classes, rng=rng))
    return Network(layers, name="mlp")
