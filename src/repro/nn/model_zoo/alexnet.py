"""AlexNet.

Used by the paper's Section 2.2 motivating example: with 61.5M parameters
and a 0.25 s/batch iteration time on a Titan X, a naive parameter-server
parallelisation over 8 nodes needs to move roughly 840M floats per second
per node, exceeding commodity Ethernet.
"""

from __future__ import annotations

from repro.nn.spec import ModelSpec, SpecBuilder


def alexnet_spec() -> ModelSpec:
    """Layer spec of AlexNet (single-tower, ungrouped convolutions)."""
    b = SpecBuilder("AlexNet", input_shape=(3, 227, 227))
    b.conv("conv1", out_channels=96, kernel=11, stride=4)
    b.relu("relu1")
    b.lrn("norm1")
    b.max_pool("pool1", kernel=3, stride=2)
    b.conv("conv2", out_channels=256, kernel=5, stride=1, pad=2)
    b.relu("relu2")
    b.lrn("norm2")
    b.max_pool("pool2", kernel=3, stride=2)
    b.conv("conv3", out_channels=384, kernel=3, stride=1, pad=1)
    b.relu("relu3")
    b.conv("conv4", out_channels=384, kernel=3, stride=1, pad=1)
    b.relu("relu4")
    b.conv("conv5", out_channels=256, kernel=3, stride=1, pad=1)
    b.relu("relu5")
    b.max_pool("pool5", kernel=3, stride=2)
    b.flatten("flatten")
    b.fc("fc6", 4096)
    b.relu("relu6")
    b.dropout("drop6")
    b.fc("fc7", 4096)
    b.relu("relu7")
    b.dropout("drop7")
    b.fc("fc8", 1000)
    b.softmax("prob")
    return b.build(
        dataset="ILSVRC12",
        default_batch_size=256,
        reference_images_per_sec=1024.0,  # 0.25 s per 256-sample batch (Sec. 2.2)
        notes="Ungrouped convolutions; parameter count ~62M vs. 61.5M in the paper.",
    )
