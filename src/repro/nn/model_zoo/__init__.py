"""Model zoo.

Every network evaluated in the paper (Table 3) is available as a
:class:`~repro.nn.spec.ModelSpec` through :func:`get_model_spec`, plus
AlexNet (used by the Section 2.2 motivating example) and a tiny runnable MLP
used by tests and examples.

The small networks (CIFAR-10 quick, the MLP) can additionally be
instantiated as runnable numpy :class:`~repro.nn.network.Network` objects via
:func:`build_cifar_quick_network` / :func:`build_mlp_network` for the
functional convergence experiments (Figure 11).
"""

from repro.nn.model_zoo.registry import (
    MODEL_REGISTRY,
    available_models,
    get_model_spec,
    register_model,
)
from repro.nn.model_zoo.cifar_quick import (
    build_cifar_quick_network,
    build_cifar_quick_small_network,
    cifar_quick_spec,
)
from repro.nn.model_zoo.mlp import build_mlp_network, mlp_spec
from repro.nn.model_zoo.alexnet import alexnet_spec
from repro.nn.model_zoo.vgg import vgg19_spec, vgg19_22k_spec, vgg16_spec
from repro.nn.model_zoo.googlenet import googlenet_spec
from repro.nn.model_zoo.inception_v3 import inception_v3_spec
from repro.nn.model_zoo.resnet import resnet50_spec, resnet152_spec
from repro.nn.model_zoo.transformer import (
    build_transformer_network,
    gpt2_small_spec,
    nanogpt_12l_spec,
    transformer_spec,
)

__all__ = [
    "MODEL_REGISTRY",
    "available_models",
    "get_model_spec",
    "register_model",
    "cifar_quick_spec",
    "build_cifar_quick_network",
    "build_cifar_quick_small_network",
    "mlp_spec",
    "build_mlp_network",
    "alexnet_spec",
    "vgg16_spec",
    "vgg19_spec",
    "vgg19_22k_spec",
    "googlenet_spec",
    "inception_v3_spec",
    "resnet50_spec",
    "resnet152_spec",
    "transformer_spec",
    "nanogpt_12l_spec",
    "gpt2_small_spec",
    "build_transformer_network",
]
