"""CIFAR-10 quick -- the small Caffe CNN used in Figure 11.

Architecture (Caffe's ``cifar10_quick``): three 5x5 conv/pool stages followed
by two fully-connected layers, 145.6K parameters, trained with batch size 100
and converging to roughly 73% accuracy on CIFAR-10.

Besides the :class:`ModelSpec`, this module builds a runnable numpy network
(and a downscaled variant for fast tests) used by the functional distributed
trainer in the convergence experiments.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.nn.layers import Conv2D, Dense, Flatten, MaxPool2D, ReLU
from repro.nn.network import Network
from repro.nn.spec import ModelSpec, SpecBuilder


def cifar_quick_spec() -> ModelSpec:
    """Layer spec of Caffe's CIFAR-10 quick network (145.6K parameters)."""
    b = SpecBuilder("CIFAR-10 quick", input_shape=(3, 32, 32))
    b.conv("conv1", out_channels=32, kernel=5, stride=1, pad=2)
    b.max_pool("pool1", kernel=3, stride=2, pad=1)
    b.relu("relu1")
    b.conv("conv2", out_channels=32, kernel=5, stride=1, pad=2)
    b.relu("relu2")
    b.avg_pool("pool2", kernel=3, stride=2, pad=1)
    b.conv("conv3", out_channels=64, kernel=5, stride=1, pad=2)
    b.relu("relu3")
    b.avg_pool("pool3", kernel=3, stride=2, pad=1)
    b.flatten("flatten")
    b.fc("ip1", 64)
    b.fc("ip2", 10)
    b.softmax("prob")
    return b.build(
        dataset="CIFAR-10",
        default_batch_size=100,
        reference_images_per_sec=4000.0,
        notes="Toy CNN from Caffe; converges at ~73% accuracy on CIFAR-10.",
    )


def build_cifar_quick_network(seed: int = 0, num_classes: int = 10,
                              image_size: int = 32) -> Network:
    """Runnable numpy version of CIFAR-10 quick.

    Args:
        seed: RNG seed for weight initialisation; every worker replica must
            use the same seed so model replicas start identical.
        num_classes: size of the classifier output.
        image_size: square input size; 32 reproduces the real network.
    """
    rng = np.random.default_rng(seed)
    # Spatial size after three stride-2 pool stages with 3x3 windows.
    size_after = image_size
    for _ in range(3):
        size_after = (size_after + 2 - 3) // 2 + 1
    flattened = 64 * size_after * size_after
    layers = [
        Conv2D("conv1", in_channels=3, out_channels=32, kernel=5, stride=1, pad=2, rng=rng),
        MaxPool2D("pool1", kernel=3, stride=2, pad=1),
        ReLU("relu1"),
        Conv2D("conv2", in_channels=32, out_channels=32, kernel=5, stride=1, pad=2, rng=rng),
        ReLU("relu2"),
        MaxPool2D("pool2", kernel=3, stride=2, pad=1),
        Conv2D("conv3", in_channels=32, out_channels=64, kernel=5, stride=1, pad=2, rng=rng),
        ReLU("relu3"),
        MaxPool2D("pool3", kernel=3, stride=2, pad=1),
        Flatten("flatten"),
        Dense("ip1", in_features=flattened, out_features=64, rng=rng),
        ReLU("relu_ip1"),
        Dense("ip2", in_features=64, out_features=num_classes, rng=rng),
    ]
    return Network(layers, name="cifar10-quick")


def build_cifar_quick_small_network(seed: int = 0, num_classes: int = 10,
                                    image_size: int = 16,
                                    rng: Optional[np.random.Generator] = None) -> Network:
    """A downscaled CIFAR-quick (16x16 inputs, thinner convolutions).

    Used by tests and quick benchmark runs where full 32x32 convolutions on
    CPU would dominate the runtime without changing the conclusions.
    """
    rng = rng or np.random.default_rng(seed)
    size_after = image_size
    for _ in range(2):
        size_after = (size_after + 2 - 3) // 2 + 1
    flattened = 16 * size_after * size_after
    layers = [
        Conv2D("conv1", in_channels=3, out_channels=8, kernel=5, stride=1, pad=2, rng=rng),
        MaxPool2D("pool1", kernel=3, stride=2, pad=1),
        ReLU("relu1"),
        Conv2D("conv2", in_channels=8, out_channels=16, kernel=5, stride=1, pad=2, rng=rng),
        ReLU("relu2"),
        MaxPool2D("pool2", kernel=3, stride=2, pad=1),
        Flatten("flatten"),
        Dense("ip1", in_features=flattened, out_features=32, rng=rng),
        ReLU("relu_ip1"),
        Dense("ip2", in_features=32, out_features=num_classes, rng=rng),
    ]
    return Network(layers, name="cifar10-quick-small")
