"""ResNet-50 / ResNet-152.

ResNet-152 (60.2M parameters) is the network used for the paper's
statistical-performance experiment (Figure 9): Poseidon reaches the reported
0.24 top-1 error within ~90 epochs on 16 and 32 nodes, scaling linearly in
time-to-accuracy.
"""

from __future__ import annotations

from typing import Sequence, Tuple

from repro.nn.spec import ModelSpec, SpecBuilder

#: Bottleneck block counts per stage for the two depths we model.
_RESNET50_BLOCKS: Tuple[int, ...] = (3, 4, 6, 3)
_RESNET152_BLOCKS: Tuple[int, ...] = (3, 8, 36, 3)

#: (bottleneck width, output channels) for the four stages.
_STAGE_CHANNELS: Tuple[Tuple[int, int], ...] = (
    (64, 256),
    (128, 512),
    (256, 1024),
    (512, 2048),
)


def _add_bottleneck(builder: SpecBuilder, name: str, width: int, out_channels: int,
                    stride: int, project: bool) -> None:
    """Append one bottleneck residual block (1x1 -> 3x3 -> 1x1 [+ shortcut])."""
    input_shape = builder.current_shape
    builder.conv(f"{name}/conv1", out_channels=width, kernel=1, stride=1, bias=False)
    builder.batch_norm(f"{name}/bn1")
    builder.relu(f"{name}/relu1")
    builder.conv(f"{name}/conv2", out_channels=width, kernel=3, stride=stride, pad=1,
                 bias=False)
    builder.batch_norm(f"{name}/bn2")
    builder.relu(f"{name}/relu2")
    builder.conv(f"{name}/conv3", out_channels=out_channels, kernel=1, stride=1,
                 bias=False)
    builder.batch_norm(f"{name}/bn3")
    main_shape = builder.current_shape
    if project:
        # Projection shortcut operates on the block input.
        builder.set_shape(input_shape)
        builder.conv(f"{name}/shortcut", out_channels=out_channels, kernel=1,
                     stride=stride, bias=False)
        builder.batch_norm(f"{name}/shortcut_bn")
    builder.set_shape(main_shape)
    builder.add_layer(
        # Elementwise residual addition; parameter free.
        _residual_add_spec(f"{name}/add", main_shape)
    )
    builder.relu(f"{name}/relu_out")


def _residual_add_spec(name: str, shape: Sequence[int]):
    from repro.nn.spec import LayerKind, LayerSpec

    numel = 1
    for dim in shape:
        numel *= int(dim)
    return LayerSpec(
        name=name,
        kind=LayerKind.ADD,
        flops_forward=float(numel),
        flops_backward=float(numel),
        output_shape=tuple(int(d) for d in shape),
    )


def _build_resnet(name: str, blocks_per_stage: Sequence[int], reference_ips: float,
                  notes: str = "") -> ModelSpec:
    b = SpecBuilder(name, input_shape=(3, 224, 224))
    b.conv("conv1", out_channels=64, kernel=7, stride=2, pad=3, bias=False)
    b.batch_norm("bn1")
    b.relu("relu1")
    b.max_pool("pool1", kernel=3, stride=2, pad=1)
    for stage_index, (block_count, (width, out_channels)) in enumerate(
            zip(blocks_per_stage, _STAGE_CHANNELS), start=2):
        for block_index in range(1, block_count + 1):
            first = block_index == 1
            stride = 2 if (first and stage_index > 2) else 1
            _add_bottleneck(
                b,
                name=f"res{stage_index}_{block_index}",
                width=width,
                out_channels=out_channels,
                stride=stride,
                project=first,
            )
    b.global_avg_pool("pool5")
    b.flatten("flatten")
    b.fc("fc1000", 1000)
    b.softmax("prob")
    return b.build(
        dataset="ILSVRC12",
        default_batch_size=32,
        reference_images_per_sec=reference_ips,
        notes=notes,
    )


def resnet50_spec() -> ModelSpec:
    """ResNet-50 (25.6M parameters); used for ablations."""
    return _build_resnet("ResNet-50", _RESNET50_BLOCKS, reference_ips=50.0)


def resnet152_spec() -> ModelSpec:
    """ResNet-152 (60.2M parameters, ILSVRC12, batch size 32)."""
    return _build_resnet(
        "ResNet-152", _RESNET152_BLOCKS, reference_ips=18.0,
        notes="152-layer bottleneck ResNet used for the Figure 9 experiment.",
    )
