"""GPT-style transformer specs and a runnable mini-transformer.

The paper predates the transformer, but its Algorithm-1 sweet spot replays
directly on GPT workloads: the untied vocabulary-projection head is a giant
``n_embd x vocab`` FC layer where sufficient-factor broadcasting crushes a
dense parameter-server push, while the ``n_embd x n_embd`` attention output
projections sit near the PS/SFB crossover.  Two shapes are registered:

* ``nanogpt-12l`` -- the 12-layer character/byte-level nanoGPT training
  shape (n_embd 384, 6 heads, block 256, vocab padded to 50304).
* ``gpt2-small`` -- the GPT-2 124M shape (n_embd 768, 12 heads, block
  1024, vocab 50257), with an untied head like the paper's FC layers.

Costing caveat: Table 1 prices sufficient factors with ``K = batch``, where
a "sample" is one *sequence* -- the same abstraction as one image for a CNN.
Token-level accounting would use ``K = batch * seq_len`` factor pairs;
sequence-level factors are the natural unit here because each sequence's
contribution to a token-FC weight gradient is itself a rank-``<=T`` product
that ships as one activation/gradient slab per sequence, mirroring how the
paper ships one slab per image.  The report and docs state this explicitly.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.nn.layers import (
    Dense,
    Embedding,
    LayerNorm,
    PositionalEmbedding,
    SequenceMeanPool,
    TokenFlatten,
    TransformerBlock,
)
from repro.nn.network import Network
from repro.nn.spec import ModelSpec, SpecBuilder


def transformer_spec(name: str, vocab_size: int, block_size: int, n_embd: int,
                     num_heads: int, num_blocks: int, mlp_ratio: int = 4,
                     dataset: str = "openwebtext",
                     default_batch_size: int = 12,
                     notes: str = "") -> ModelSpec:
    """Declarative GPT-style spec: embeddings, N blocks, final norm, LM head."""
    b = SpecBuilder(name, input_shape=(block_size,))
    b.embedding("wte", vocab_size, n_embd)
    b.positional("wpe")
    for index in range(num_blocks):
        b.transformer_block(f"h{index}", num_heads, mlp_ratio=mlp_ratio)
    b.layer_norm("ln_f")
    b.token_fc("lm_head", vocab_size, bias=False)
    b.softmax("prob")
    return b.build(dataset=dataset, default_batch_size=default_batch_size,
                   notes=notes)


def nanogpt_12l_spec() -> ModelSpec:
    """12-layer nanoGPT shape: n_embd 384, 6 heads, block 256, vocab 50304."""
    return transformer_spec(
        "nanogpt-12l", vocab_size=50304, block_size=256, n_embd=384,
        num_heads=6, num_blocks=12,
        notes="nanoGPT 12-layer training shape; untied lm_head, "
              "vocab padded to a multiple of 64",
    )


def gpt2_small_spec() -> ModelSpec:
    """GPT-2 small (124M) shape: n_embd 768, 12 heads, block 1024."""
    return transformer_spec(
        "gpt2-small", vocab_size=50257, block_size=1024, n_embd=768,
        num_heads=12, num_blocks=12,
        notes="GPT-2 124M shape with an untied lm_head "
              "(tied embeddings would halve the head's sync traffic)",
    )


def build_transformer_network(vocab_size: int = 64, block_size: int = 8,
                              n_embd: int = 16, num_heads: int = 2,
                              num_blocks: int = 2, num_classes: Optional[int] = None,
                              causal: bool = True, seed: int = 0,
                              rng: Optional[np.random.Generator] = None) -> Network:
    """Runnable numpy mini-transformer for the distributed trainer.

    Two head variants share the same trunk (token embedding + positional
    table + ``num_blocks`` pre-norm blocks + final LayerNorm):

    * ``num_classes=None`` (LM mode): a :class:`TokenFlatten` folds the
      sequence axis into the batch and a plain :class:`Dense` projects to
      ``vocab_size`` -- logits are ``(B*T, vocab)`` and labels must be the
      flattened next-token ids ``(B*T,)``.
    * ``num_classes=k`` (sequence classification): a
      :class:`SequenceMeanPool` collapses the sequence and a Dense head
      projects to ``k`` classes -- logits ``(B, k)``, labels ``(B,)``,
      which matches the trainer's one-label-per-sample datasets.

    Either way the head is a plain ``Dense``, so it stays eligible for
    sufficient-factor broadcasting in the runnable trainer.
    """
    rng = rng or np.random.default_rng(seed)
    layers = [
        Embedding("wte", vocab_size, n_embd, rng=rng),
        PositionalEmbedding("wpe", block_size, n_embd, rng=rng),
    ]
    for index in range(num_blocks):
        layers.append(TransformerBlock(f"h{index}", n_embd, num_heads,
                                       causal=causal, rng=rng))
    layers.append(LayerNorm("ln_f", n_embd))
    if num_classes is None:
        layers.append(TokenFlatten("tokens"))
        layers.append(Dense("lm_head", n_embd, vocab_size, rng=rng))
    else:
        layers.append(SequenceMeanPool("pool"))
        layers.append(Dense("cls_head", n_embd, num_classes, rng=rng))
    return Network(layers, name="transformer")
