"""Registry mapping model names to spec builder functions.

The registry is filled lazily: builder callables are registered at import
time, but specs are only constructed (and then cached) when first requested,
because some of the big specs (ResNet-152, Inception-V3) take a visible
fraction of a millisecond to build and most callers only need one or two.
"""

from __future__ import annotations

from typing import Callable, Dict, List

from repro.exceptions import ConfigurationError
from repro.nn.spec import ModelSpec

SpecFactory = Callable[[], ModelSpec]

MODEL_REGISTRY: Dict[str, SpecFactory] = {}
_SPEC_CACHE: Dict[str, ModelSpec] = {}


def register_model(name: str, factory: SpecFactory, overwrite: bool = False) -> None:
    """Register a spec factory under ``name`` (case-insensitive lookup).

    Raises:
        ConfigurationError: if the name is taken and ``overwrite`` is False.
    """
    key = name.lower()
    if key in MODEL_REGISTRY and not overwrite:
        raise ConfigurationError(f"model {name!r} is already registered")
    MODEL_REGISTRY[key] = factory
    _SPEC_CACHE.pop(key, None)


def get_model_spec(name: str) -> ModelSpec:
    """Return the (cached) :class:`ModelSpec` registered under ``name``.

    Raises:
        KeyError: if no model with that name is registered.
    """
    key = name.lower()
    if key not in MODEL_REGISTRY:
        raise KeyError(
            f"unknown model {name!r}; available: {', '.join(available_models())}"
        )
    if key not in _SPEC_CACHE:
        _SPEC_CACHE[key] = MODEL_REGISTRY[key]()
    return _SPEC_CACHE[key]


def available_models() -> List[str]:
    """Sorted list of registered model names."""
    return sorted(MODEL_REGISTRY)


def _register_builtin_models() -> None:
    """Register the paper's models; deferred imports avoid cycles."""
    from repro.nn.model_zoo import (  # noqa: WPS433 (intentional late import)
        alexnet,
        cifar_quick,
        googlenet,
        inception_v3,
        mlp,
        resnet,
        transformer,
        vgg,
    )

    builders = {
        "cifar10-quick": cifar_quick.cifar_quick_spec,
        "mlp": mlp.mlp_spec,
        "alexnet": alexnet.alexnet_spec,
        "googlenet": googlenet.googlenet_spec,
        "inception-v3": inception_v3.inception_v3_spec,
        "vgg16": vgg.vgg16_spec,
        "vgg19": vgg.vgg19_spec,
        "vgg19-22k": vgg.vgg19_22k_spec,
        "resnet-50": resnet.resnet50_spec,
        "resnet-152": resnet.resnet152_spec,
        "nanogpt-12l": transformer.nanogpt_12l_spec,
        "gpt2-small": transformer.gpt2_small_spec,
    }
    for name, factory in builders.items():
        if name not in MODEL_REGISTRY:
            register_model(name, factory)


_register_builtin_models()
