"""Loss functions."""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.exceptions import ShapeError


def softmax(logits: np.ndarray) -> np.ndarray:
    """Numerically stable softmax over the last axis."""
    shifted = logits - logits.max(axis=-1, keepdims=True)
    exp = np.exp(shifted)
    return exp / exp.sum(axis=-1, keepdims=True)


class SoftmaxCrossEntropyLoss:
    """Softmax + cross-entropy loss with integer class labels.

    The returned gradient is with respect to the *logits* and is already
    averaged over the batch, matching the convention of Eq. (1)/(2) in the
    paper where gradients are additive over samples and scaled by the
    learning rate at update time.
    """

    def forward(self, logits: np.ndarray, labels: np.ndarray) -> Tuple[float, np.ndarray]:
        """Compute the mean loss and the gradient w.r.t. the logits.

        Args:
            logits: ``(B, num_classes)`` raw scores.
            labels: ``(B,)`` integer class indices.

        Returns:
            ``(loss, grad_logits)``.
        """
        if logits.ndim != 2:
            raise ShapeError(f"logits must be 2-D, got shape {logits.shape}")
        if labels.ndim != 1 or labels.shape[0] != logits.shape[0]:
            raise ShapeError(
                f"labels must be 1-D with length {logits.shape[0]}, got {labels.shape}"
            )
        if labels.min() < 0 or labels.max() >= logits.shape[1]:
            raise ShapeError(
                f"labels out of range [0, {logits.shape[1]}): "
                f"min={labels.min()}, max={labels.max()}"
            )
        batch = logits.shape[0]
        probs = softmax(logits)
        log_likelihood = -np.log(probs[np.arange(batch), labels] + 1e-12)
        loss = float(log_likelihood.mean())
        grad = probs.copy()
        grad[np.arange(batch), labels] -= 1.0
        grad /= batch
        return loss, grad

    @staticmethod
    def accuracy(logits: np.ndarray, labels: np.ndarray) -> float:
        """Top-1 classification accuracy."""
        predictions = logits.argmax(axis=1)
        return float((predictions == labels).mean())

    @staticmethod
    def error_rate(logits: np.ndarray, labels: np.ndarray) -> float:
        """Top-1 error rate (1 - accuracy), the metric plotted in Figure 11."""
        return 1.0 - SoftmaxCrossEntropyLoss.accuracy(logits, labels)
